"""Synthetic-workload vulnerability sweep (and sweep-driven exploration).

One seeded call generates a synthetic suite (every registered scenario
family x ``--per-family`` members), runs a fault-injection campaign on each
member through the checkpointed parallel engine -- whole workload campaigns
sharded over ``--workers`` processes -- and prints the per-profile
vulnerability table.  The measured per-flip-flop vulnerability map is then
fed to the application-benchmark-dependence analysis (Sec. 4 machinery),
training a selective-hardening design on a random subset of the synthetic
workloads and validating it on the rest -- the same optimism/pessimism study
the paper runs on its 18 fixed benchmarks, now on generated stimulus.

``--explore`` closes the loop: the sweep's vulnerability map drives the
cross-layer exploration engine into a Pareto frontier over a sample of the
combination pool, persisted to ``--frontier-out`` and reloaded to verify the
round trip (the synthesis -> campaign -> frontier -> store pipeline).

Results are bit-identical across repeated runs with the same seed and across
serial / process-pool executors.

Run with:  python examples/synthetic_sweep.py [--seed S] [--per-family N]
           [--injections I] [--workers W] [--families a,b,...] [--core ooo]
           [--explore] [--frontier-out PATH] [--sample N] [--smoke]
"""

from __future__ import annotations

import argparse
import time

from repro.analysis.benchmark_dependence import BenchmarkDependenceStudy, make_splits
from repro.analysis.store import load_frontier
from repro.core import enumerate_combinations, sdc_targets
from repro.microarch import InOrderCore, OutOfOrderCore
from repro.reporting import format_frontier
from repro.workloads import family_names
from repro.workloads.synthesis import frontier_from_sweep, run_synthetic_sweep
from repro.workloads.synthesis.frontier import SyntheticFrontierResult


def main() -> None:
    parser = argparse.ArgumentParser(
        description="Per-profile vulnerability sweep over synthetic workloads")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--per-family", type=int, default=4,
                        help="workloads generated per scenario family")
    parser.add_argument("--injections", type=int, default=40,
                        help="injections per workload")
    parser.add_argument("--workers", type=int, default=2,
                        help="worker processes sharding whole workload "
                             "campaigns (1 = serial loop)")
    parser.add_argument("--families", type=str, default=None,
                        help="comma-separated family subset "
                             f"(default: all of {family_names()})")
    parser.add_argument("--target-cycles", type=int, default=None,
                        help="override every profile's cycle budget")
    parser.add_argument("--core", choices=["ino", "ooo"], default="ino")
    parser.add_argument("--explore", action="store_true",
                        help="explore a cross-layer Pareto frontier on the "
                             "sweep's vulnerability map")
    parser.add_argument("--frontier-out", type=str, default=None,
                        help="persist the explored frontier (JSON) and "
                             "verify the reload round trip")
    parser.add_argument("--sample", type=int, default=48,
                        help="combinations sampled into the frontier sweep "
                             "(0 = the full pool)")
    parser.add_argument("--smoke", action="store_true",
                        help="tiny CI-sized run: one small workload per "
                             "family, a handful of injections")
    args = parser.parse_args()

    if args.smoke:
        args.per_family, args.injections = 1, 8
        args.sample = min(args.sample, 24)
        if args.target_cycles is None:
            args.target_cycles = 1000

    core = OutOfOrderCore() if args.core == "ooo" else InOrderCore()
    families = args.families.split(",") if args.families else None
    overrides = ({"target_cycles": args.target_cycles}
                 if args.target_cycles is not None else {})

    started = time.perf_counter()
    sweep = run_synthetic_sweep(core, seed=args.seed,
                                per_family=args.per_family,
                                injections_per_workload=args.injections,
                                families=families, workers=args.workers,
                                **overrides)
    elapsed = time.perf_counter() - started
    total = sum(p.injections for p in sweep.profiles)
    print(sweep.table())
    print(f"\n{len(sweep.workload_names)} generated workloads, {total} "
          f"injections in {elapsed:.1f}s ({total / elapsed:.1f} injections/s, "
          f"{args.workers} worker(s))")

    if args.explore:
        _explore(core, sweep, args)

    names = sweep.workload_names
    if len(names) < 4:
        return
    # Benchmark-dependence on generated stimulus: train selective hardening
    # on a random subset of the synthetic workloads, validate on the rest.
    study = BenchmarkDependenceStudy(core.registry, sweep.vulnerability,
                                     seed=args.seed)
    splits = make_splits(names, training_size=max(2, len(names) // 3),
                         count=5, seed=args.seed)
    outcome, _ = study.evaluate_selective(target=10.0, split=splits[0])
    print(f"\nBenchmark-dependence (train {len(splits[0].training)} / "
          f"validate {len(splits[0].validation)} synthetic workloads, "
          f"SDC target {outcome.target:.0f}x):")
    print(f"  trained SDC improvement   : {outcome.trained_sdc:.1f}x")
    print(f"  validated SDC improvement : {outcome.validated_sdc:.1f}x "
          f"({outcome.sdc_underestimate_pct:+.1f}% vs trained)")


def _explore(core, sweep, args) -> None:
    """Sweep-driven frontier exploration plus the persistence round trip."""
    family = "OoO" if args.core == "ooo" else "InO"
    pool = enumerate_combinations(family)
    if args.sample:
        pool = pool[::max(1, len(pool) // args.sample)]
    started = time.perf_counter()
    frontier = frontier_from_sweep(core, sweep, targets=sdc_targets()[:4],
                                   combinations=pool, workers=args.workers)
    elapsed = time.perf_counter() - started
    print()
    print(format_frontier(
        f"Synthetic-workload-driven frontier on {core.name} "
        f"({len(pool)} combinations in {elapsed:.1f}s)", frontier))
    if args.frontier_out:
        result = SyntheticFrontierResult(
            sweep=sweep, frontier=frontier,
            metadata={"kind": "synthetic-frontier", "core": core.name,
                      "seed": args.seed, "workloads": len(sweep.workload_names)})
        path = result.save(args.frontier_out)
        reloaded = load_frontier(path)
        coords = lambda f: [(p.improvement, p.energy_pct, p.area_pct,
                             p.exec_time_pct, p.label) for p in f.points()]
        if coords(reloaded.frontier) != coords(frontier) \
                or reloaded.frontier.seen != frontier.seen:
            raise SystemExit("frontier store round trip diverged")
        print(f"\npersisted {len(frontier)} frontier points to {path} "
              f"(reload round trip verified)")


if __name__ == "__main__":
    main()
