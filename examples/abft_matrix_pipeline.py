"""ABFT-protected matrix workloads and the cross-layer combination they enable.

The paper's Sec. 3.2 shows that when the application space is restricted to
matrix-style kernels, Algorithm-Based Fault Tolerance (ABFT) correction
combined with selective hardening, parity and micro-architectural recovery is
the cheapest cross-layer solution.  This example:

1. runs the three ABFT-correctable PERFECT kernels (2d_convolution,
   debayer_filter, inner_product) in baseline and ABFT-protected form on the
   in-order core and reports the measured execution-time impact;
2. shows that an injected corruption in the matrix-product kernel is caught
   and corrected by the Huang-Abraham checksum (recomputation);
3. compares the ABFT cross-layer combination against the general-purpose one
   at a 50x SDC target on both cores.

Run with:  python examples/abft_matrix_pipeline.py
"""

from __future__ import annotations

from repro.core import ClearFramework, ResilienceTarget
from repro.faultinjection import FlipFlopInjector, Injection, OutcomeCategory
from repro.microarch import InOrderCore
from repro.physical import RecoveryKind
from repro.resilience import measure_abft_impact
from repro.workloads import abft_correction_suite, workload_by_name


def measure_overheads() -> None:
    core = InOrderCore()
    print("Measured ABFT-correction execution-time impact (InO-core):")
    for workload in abft_correction_suite():
        measurement = measure_abft_impact(core, workload)
        print(f"  {workload.name:16s} baseline {measurement.baseline_cycles:6d} cycles, "
              f"ABFT {measurement.abft_cycles:6d} cycles "
              f"(+{measurement.exec_time_impact_pct:.1f}%)")


def demonstrate_correction() -> None:
    core = InOrderCore()
    workload = workload_by_name("inner_product")
    injector = FlipFlopInjector(core, seed=13)
    program = workload.abft_program()
    golden = injector.golden_run(program)
    counts = {category: 0 for category in OutcomeCategory}
    for seed in range(80):
        injection = Injection(flat_index=(seed * 37) % core.flip_flop_count,
                              cycle=(seed * 97) % golden.cycles)
        _, outcome = injector.run_with_injection(program, injection, golden)
        counts[outcome] += 1
    print("\nInjections into the ABFT-protected matrix product (80 single-bit flips):")
    for category, count in counts.items():
        print(f"  {category.value:22s} {count}")
    print("  (corrupted checksums trigger recomputation; residual detections are "
          "counted as detected errors)")


def compare_cross_layer_combinations() -> None:
    print("\nCross-layer combinations at a 50x SDC target (energy cost %):")
    target = ResilienceTarget(sdc=50)
    for factory in (ClearFramework.for_inorder_core, ClearFramework.for_out_of_order_core):
        framework = factory()
        explorer = framework.explorer
        recovery = (RecoveryKind.FLUSH if framework.explorer.family == "InO"
                    else RecoveryKind.ROB)
        general = explorer.evaluate(explorer.best_practice_combination(), target)
        abft = explorer.evaluate(
            explorer.named_combination(("abft-correction", "leap-dice", "parity"),
                                       recovery), target)
        print(f"  {framework.core.name:9s} general-purpose {general.cost.energy_pct:5.1f}%   "
              f"with ABFT correction {abft.cost.energy_pct:5.1f}%")


if __name__ == "__main__":
    measure_overheads()
    demonstrate_correction()
    compare_cross_layer_combinations()
