"""Quickstart: explore cross-layer soft-error resilience for a processor core.

Builds a CLEAR framework instance for the in-order core, asks for the paper's
headline result -- a 50x SDC improvement using the best-practice combination
of selective LEAP-DICE hardening, logic parity and micro-architectural
(flush) recovery -- compares it against selective hardening alone, and then
sweeps a sample of the 586 cross-layer combinations into a Pareto frontier
(sharded over worker processes with ``--workers``).

With ``--frontier-store PATH`` the swept frontier is persisted as versioned
JSON; when the file already holds a previous run, the two are merged and
compared -- the cross-run comparison workflow of ``repro.analysis.store``.

Run with:  python examples/quickstart.py [--workers N] [--sample N]
           [--frontier-store PATH]
"""

from __future__ import annotations

import argparse
from pathlib import Path

from repro.analysis.store import load_frontier, merge_frontiers, save_frontier
from repro.core import ClearFramework, ResilienceTarget, enumerate_combinations, sdc_targets
from repro.reporting import format_frontier_comparison


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--workers", type=int, default=1,
                        help="worker processes for the combination sweep "
                             "(1 = serial; results are identical either way)")
    parser.add_argument("--sample", type=int, default=48,
                        help="combinations to sweep into the Pareto frontier "
                             "(0 = the full 417-combination InO pool)")
    parser.add_argument("--frontier-store", type=str, default=None,
                        help="persist the swept frontier here; an existing "
                             "store is loaded and merged for comparison")
    args = parser.parse_args()

    framework = ClearFramework.for_inorder_core()
    target = ResilienceTarget(sdc=50)

    print(f"Core: {framework.core.name} with {framework.core.flip_flop_count} flip-flops, "
          f"{len(framework.workloads)} benchmarks")

    best_practice = framework.evaluate_best_practice(target)
    print("\nBest-practice cross-layer combination "
          f"({best_practice.combination.label}):")
    print(f"  protected flip-flops : {best_practice.protected_flip_flops}")
    print(f"  SDC improvement      : {best_practice.sdc_improvement:.1f}x")
    print(f"  DUE improvement      : {best_practice.due_improvement:.1f}x")
    print(f"  energy cost          : {best_practice.cost.energy_pct:.1f}%")
    print(f"  area cost            : {best_practice.cost.area_pct:.1f}%")

    dice_only = framework.explorer.evaluate(
        framework.explorer.named_combination(("leap-dice",)), target)
    print("\nSelective LEAP-DICE hardening alone:")
    print(f"  energy cost          : {dice_only.cost.energy_pct:.1f}%")
    print(f"  SDC improvement      : {dice_only.sdc_improvement:.1f}x")

    pool = enumerate_combinations("InO")
    if args.sample:
        pool = pool[::max(1, len(pool) // args.sample)]
    frontier = framework.explorer.explore_frontier(
        sdc_targets()[:4], pool, workers=args.workers)
    print(f"\nPareto frontier over {frontier.seen} swept (combination, target) "
          f"points ({len(pool)} combinations, workers={args.workers}):")
    print(f"  non-dominated points : {len(frontier)}")
    cheapest = frontier.cheapest_at_least(50)
    if cheapest is not None:
        print(f"  cheapest >=50x       : {cheapest.label} "
              f"({cheapest.energy_pct:.1f}% energy)")

    if args.frontier_store:
        store_path = Path(args.frontier_store)
        previous = load_frontier(store_path) if store_path.exists() else None
        save_frontier(store_path, frontier,
                      metadata={"label": "current", "core": framework.core.name,
                                "combinations": len(pool),
                                "workers": args.workers})
        print(f"\nFrontier persisted to {store_path}")
        if previous is not None:
            merged = merge_frontiers([previous.frontier, frontier])
            print(format_frontier_comparison(
                "Cross-run frontier comparison",
                [("previous", previous.frontier), ("current", frontier),
                 ("merged", merged)]))

    print("\nConclusion (paper Sec. 1): a carefully optimized combination of circuit "
          "hardening, logic parity and micro-architectural recovery — or selective "
          "hardening alone guided by error injection — achieves large SDC improvements "
          "at a few percent energy cost.")


if __name__ == "__main__":
    main()
