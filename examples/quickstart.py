"""Quickstart: explore cross-layer soft-error resilience for a processor core.

Builds a CLEAR framework instance for the in-order core, asks for the paper's
headline result -- a 50x SDC improvement using the best-practice combination
of selective LEAP-DICE hardening, logic parity and micro-architectural
(flush) recovery -- and compares it against selective hardening alone.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

from repro.core import ClearFramework, ResilienceTarget


def main() -> None:
    framework = ClearFramework.for_inorder_core()
    target = ResilienceTarget(sdc=50)

    print(f"Core: {framework.core.name} with {framework.core.flip_flop_count} flip-flops, "
          f"{len(framework.workloads)} benchmarks")

    best_practice = framework.evaluate_best_practice(target)
    print("\nBest-practice cross-layer combination "
          f"({best_practice.combination.label}):")
    print(f"  protected flip-flops : {best_practice.protected_flip_flops}")
    print(f"  SDC improvement      : {best_practice.sdc_improvement:.1f}x")
    print(f"  DUE improvement      : {best_practice.due_improvement:.1f}x")
    print(f"  energy cost          : {best_practice.cost.energy_pct:.1f}%")
    print(f"  area cost            : {best_practice.cost.area_pct:.1f}%")

    dice_only = framework.explorer.evaluate(
        framework.explorer.named_combination(("leap-dice",)), target)
    print("\nSelective LEAP-DICE hardening alone:")
    print(f"  energy cost          : {dice_only.cost.energy_pct:.1f}%")
    print(f"  SDC improvement      : {dice_only.sdc_improvement:.1f}x")

    print("\nConclusion (paper Sec. 1): a carefully optimized combination of circuit "
          "hardening, logic parity and micro-architectural recovery — or selective "
          "hardening alone guided by error injection — achieves large SDC improvements "
          "at a few percent energy cost.")


if __name__ == "__main__":
    main()
