"""Flip-flop-level fault-injection campaign on the in-order core.

Runs a measured soft-error injection campaign for one benchmark on the
unprotected core, classifies every outcome (Vanished / OMM / UT / Hang / ED),
then repeats the campaign with every flip-flop hardened (LEAP-DICE) and with
logic parity + flush recovery, and reports the measured SDC/DUE improvements
(Eq. 1 of the paper).

Run with:  python examples/injection_campaign.py  [injections]
"""

from __future__ import annotations

import sys

from repro.core import ResilienceTarget, SelectionPolicy, SelectiveHardeningPlanner, sdc_improvement, due_improvement
from repro.faultinjection import CalibratedVulnerabilityModel, InjectionCampaign
from repro.microarch import InOrderCore
from repro.physical import RecoveryKind, TimingModel
from repro.resilience import ProtectedDesign, harden_top_flip_flops
from repro.workloads import workload_by_name


def main(injections: int = 150) -> None:
    core = InOrderCore()
    workload = workload_by_name("histogram")
    program = workload.program()
    print(f"Workload: {workload.name} ({workload.description})")

    baseline = InjectionCampaign(core, program, seed=1).run(injections=injections)
    print(f"\nBaseline campaign: {baseline.injections} injections "
          f"(margin of error {100 * baseline.achieved_margin_of_error:.1f}%)")
    for outcome, count in baseline.outcomes.as_dict().items():
        print(f"  {outcome:22s} {count}")

    # Configuration 1: every flip-flop hardened with LEAP-DICE.
    hardened = ProtectedDesign(
        registry=core.registry,
        hardening=harden_top_flip_flops(list(range(core.flip_flop_count)),
                                        core.flip_flop_count))
    hardened_run = InjectionCampaign(core, program, protection=hardened,
                                     seed=1).run(injections=injections)

    # Configuration 2: Heuristic-1 mix of parity + LEAP-DICE with flush recovery.
    vulnerability = CalibratedVulnerabilityModel(core.registry, [workload.name]).build_map()
    planner = SelectiveHardeningPlanner(core.registry, vulnerability,
                                        TimingModel(core.registry),
                                        benchmarks=[workload.name])
    cross_layer = planner.plan(ResilienceTarget(sdc=float("inf")),
                               recovery=RecoveryKind.FLUSH,
                               policy=SelectionPolicy()).design
    cross_layer_run = InjectionCampaign(core, program, protection=cross_layer,
                                        seed=1).run(injections=injections)

    for label, run, design in (("LEAP-DICE everywhere", hardened_run, hardened),
                               ("parity + LEAP-DICE + flush", cross_layer_run, cross_layer)):
        sdc = sdc_improvement(baseline.outcomes, run.outcomes, design.gamma())
        due = due_improvement(baseline.outcomes, run.outcomes, design.gamma())
        print(f"\n{label}:")
        print(f"  residual SDC / DUE counts : {run.outcomes.sdc_count} / {run.outcomes.due_count}")
        print(f"  measured SDC improvement  : {sdc:.1f}x")
        print(f"  measured DUE improvement  : {due:.1f}x")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 150)
