"""Flip-flop-level fault-injection campaign on the in-order core.

Runs a measured soft-error injection campaign for one benchmark on the
unprotected core, classifies every outcome (Vanished / OMM / UT / Hang / ED),
then repeats the campaign with every flip-flop hardened (LEAP-DICE) and with
logic parity + flush recovery, and reports the measured SDC/DUE improvements
(Eq. 1 of the paper).

All three campaigns run on the checkpointed parallel injection engine: the
golden run is recorded once with periodic core snapshots and shared across
the three protection configurations (they only differ in injected-run
semantics), each injected run fast-forwards from the nearest snapshot at or
below its injection cycle, and the plan is sharded over worker processes.
With the same seed the engine reports statistics identical to a serial
cycle-0 re-simulation loop.

Run with:  python examples/injection_campaign.py [injections] [--workers N] [--seed S]
"""

from __future__ import annotations

import argparse
import time

from repro.core import ResilienceTarget, SelectionPolicy, SelectiveHardeningPlanner, sdc_improvement, due_improvement
from repro.engine import EngineConfig, InjectionEngine
from repro.faultinjection import CalibratedVulnerabilityModel
from repro.microarch import InOrderCore
from repro.physical import RecoveryKind, TimingModel
from repro.reporting import format_phase_breakdown
from repro.resilience import ProtectedDesign, harden_top_flip_flops
from repro.workloads import workload_by_name


def main(injections: int = 150, workers: int = 2, seed: int = 1,
         trace: str | None = None, artifact_dir: str | None = None) -> None:
    core = InOrderCore()
    workload = workload_by_name("histogram")
    program = workload.program()
    config = EngineConfig(workers=workers, metrics=True,
                          artifact_dir=artifact_dir)
    # Only the baseline campaign is traced: the three campaigns share one
    # config otherwise, and each traced run would overwrite the file.
    baseline_config = EngineConfig(workers=workers, metrics=True,
                                   artifact_dir=artifact_dir,
                                   trace=trace if trace else False)
    print(f"Workload: {workload.name} ({workload.description})")
    print(f"Engine: {workers} worker(s), adaptive checkpointing, seed {seed}")
    if artifact_dir:
        print(f"Golden-artifact store: {artifact_dir} (repeat runs load "
              f"golden runs instead of re-recording them)")

    started = time.perf_counter()
    baseline_engine = InjectionEngine(core, program, seed=seed,
                                      config=baseline_config)
    baseline = baseline_engine.run(injections=injections)
    # With --artifact-dir the engine resolves a store-backed shared cache
    # instead of the process-wide default; read stats from the one it used.
    cache = baseline_engine.golden_cache
    checkpointed = cache.get(core, program)
    print(f"\nGolden run: {checkpointed.golden.cycles} cycles, "
          f"{checkpointed.checkpoint_count} checkpoints "
          f"every {checkpointed.interval} cycles, "
          f"{checkpointed.fingerprint_count} fingerprints "
          f"every {checkpointed.fingerprint_interval} cycles")
    print(f"Baseline campaign: {baseline.injections} injections "
          f"(margin of error {100 * baseline.achieved_margin_of_error:.1f}%)")
    print(f"Convergence gating: {baseline.converged_count}/{baseline.injections} "
          f"runs early-terminated, "
          f"{100 * baseline.saved_cycle_fraction:.0f}% of replay cycles skipped")
    for outcome, count in baseline.outcomes.as_dict().items():
        print(f"  {outcome:22s} {count}")
    print("\n" + format_phase_breakdown(baseline,
                                        title="Baseline phase breakdown"))
    if trace:
        print(f"Trace written to {trace} (open in chrome://tracing "
              f"or ui.perfetto.dev)")

    # Configuration 1: every flip-flop hardened with LEAP-DICE.  The golden
    # run (and its checkpoints) are reused from the cache: protection only
    # changes injected-run semantics.
    hardened = ProtectedDesign(
        registry=core.registry,
        hardening=harden_top_flip_flops(list(range(core.flip_flop_count)),
                                        core.flip_flop_count))
    hardened_run = InjectionEngine(core, program, protection=hardened, seed=seed,
                                   config=config).run(injections=injections)

    # Configuration 2: Heuristic-1 mix of parity + LEAP-DICE with flush recovery.
    vulnerability = CalibratedVulnerabilityModel(core.registry, [workload.name]).build_map()
    planner = SelectiveHardeningPlanner(core.registry, vulnerability,
                                        TimingModel(core.registry),
                                        benchmarks=[workload.name])
    cross_layer = planner.plan(ResilienceTarget(sdc=float("inf")),
                               recovery=RecoveryKind.FLUSH,
                               policy=SelectionPolicy()).design
    cross_layer_run = InjectionEngine(core, program, protection=cross_layer,
                                      seed=seed, config=config).run(injections=injections)

    for label, run, design in (("LEAP-DICE everywhere", hardened_run, hardened),
                               ("parity + LEAP-DICE + flush", cross_layer_run, cross_layer)):
        sdc = sdc_improvement(baseline.outcomes, run.outcomes, design.gamma())
        due = due_improvement(baseline.outcomes, run.outcomes, design.gamma())
        print(f"\n{label}:")
        print(f"  residual SDC / DUE counts : {run.outcomes.sdc_count} / {run.outcomes.due_count}")
        print(f"  measured SDC improvement  : {sdc:.1f}x")
        print(f"  measured DUE improvement  : {due:.1f}x")

    elapsed = time.perf_counter() - started
    total = 3 * injections
    print(f"\n{total} injections across 3 protection configs in {elapsed:.1f}s "
          f"({total / elapsed:.1f} injections/s; golden runs cached: "
          f"{cache.hits} hit(s), {cache.misses} miss(es))")
    if artifact_dir:
        stats = cache.stats()
        store_stats = cache.store.stats()
        print(f"Artifact store: {stats.artifacts_loaded} loaded, "
              f"{stats.recorded} recorded this run; "
              f"{store_stats.entries} artifact(s), "
              f"{store_stats.size_bytes / 1024:.0f} KiB on disk")


if __name__ == "__main__":
    parser = argparse.ArgumentParser(
        description="Engine-backed injection campaign across three "
                    "protection configurations")
    parser.add_argument("injections", nargs="?", type=int, default=150,
                        help="injections per protection configuration")
    parser.add_argument("--workers", type=int, default=2,
                        help="worker processes for the parallel executor "
                             "(1 = serial)")
    parser.add_argument("--seed", type=int, default=1,
                        help="campaign seed (same seed => identical statistics)")
    parser.add_argument("--trace", default=None, metavar="PATH",
                        help="write a Chrome trace-event JSON of the "
                             "baseline campaign to PATH")
    parser.add_argument("--artifact-dir", default=None, metavar="DIR",
                        help="persistent golden-artifact store directory: "
                             "repeat runs load the golden run from disk "
                             "instead of re-recording it")
    args = parser.parse_args()
    main(args.injections, workers=args.workers, seed=args.seed,
         trace=args.trace, artifact_dir=args.artifact_dir)
