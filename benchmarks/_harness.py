"""Helpers shared by the benchmark harness."""

from __future__ import annotations


def run_once(benchmark, func):
    """Run a benchmark payload exactly once and return its result.

    The harness regenerates tables (one simulation/exploration pass each), so
    repeated rounds would only slow it down without adding information.
    """
    return benchmark.pedantic(func, iterations=1, rounds=1)
