"""Helpers shared by the benchmark harness."""

from __future__ import annotations

import json
import os
import platform
from pathlib import Path

from repro.obs import git_revision, manifest_dict

BENCH_SCHEMA = 2
"""Layout version of persisted ``BENCH_*.json`` documents.

Version history: 1 = headers/rows/context (implicit, unversioned);
2 = adds ``schema``, git revision in ``context``, and a ``manifest``."""


def run_once(benchmark, func):
    """Run a benchmark payload exactly once and return its result.

    The harness regenerates tables (one simulation/exploration pass each), so
    repeated rounds would only slow it down without adding information.
    """
    return benchmark.pedantic(func, iterations=1, rounds=1)


def bench_output_dir() -> Path:
    """Directory benchmark result files are written to.

    Defaults to the ``benchmarks/`` directory itself (so results are
    committed alongside the harness and the perf trajectory is tracked
    across PRs); override with ``BENCH_OUTPUT_DIR``.
    """
    override = os.environ.get("BENCH_OUTPUT_DIR")
    return Path(override) if override else Path(__file__).resolve().parent


def persist_bench(name: str, headers: list[str], rows: list[list],
                  context: dict | None = None, seed: int | None = None,
                  core=None, config=None) -> Path:
    """Write one benchmark's result table to ``BENCH_<name>.json``.

    The payload is machine-readable (headers + rows + host context) so later
    PRs can diff throughput numbers without re-parsing printed tables.  The
    document carries ``schema`` (see :data:`BENCH_SCHEMA`), the git revision
    of the working tree in ``context``, and a full provenance manifest
    (:func:`repro.obs.manifest_dict`).  ``seed``, ``core`` and ``config``
    thread the benchmark's campaign seed, core (class or instance) and
    :class:`~repro.engine.EngineConfig` into the manifest -- without them the
    manifest records ``null`` provenance, which defeats drift detection.
    Returns the written path.
    """
    path = bench_output_dir() / f"BENCH_{name}.json"
    payload = {
        "schema": BENCH_SCHEMA,
        "benchmark": name,
        "headers": headers,
        "rows": rows,
        "context": {
            "python": platform.python_version(),
            "machine": platform.machine(),
            "cpu_count": os.cpu_count(),
            "git": git_revision(),
            **(context or {}),
        },
        "manifest": manifest_dict(seed=seed, core=core, config=config,
                                  benchmark=name),
    }
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path
