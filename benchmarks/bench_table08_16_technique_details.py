"""Tables 8-14 and 16: per-technique analyses.

Table 8: DFC error coverage.  Table 9: monitor core vs main core throughput.
Table 10: assertion data/control breakdown.  Tables 11/14: improvement as a
function of the injection model (flip-flop vs regU/regW/varU/varW), measured
with real injections on the in-order core.  Table 12: CFCSS coverage.
Table 13: EDDI with/without store-readback.  Table 16: "selective" EDDI
variants from the literature.
"""

from __future__ import annotations

from _harness import run_once

from repro.engine import InjectionEngine
from repro.faultinjection import HighLevelInjector, InjectionLevel
from repro.microarch import InOrderCore
from repro.reporting import format_table
from repro.resilience import (
    ASSERTION_BREAKDOWN,
    DFC_COVERAGE,
    EDDI_STORE_READBACK_TABLE,
    MONITOR_CORE_IPC,
    SELECTIVE_EDDI_TABLE,
)
from repro.resilience.software import CFCSS_COVERAGE_TABLE
from repro.workloads import workload_by_name


def bench_table08_dfc_coverage(benchmark):
    def payload():
        rows = []
        for family, coverage in DFC_COVERAGE.items():
            rows.append([family, f"{100 * coverage.ff_coverage_sdc:.0f}%",
                         f"{100 * coverage.detect_sdc:.0f}%",
                         f"{100 * coverage.overall_sdc_detection:.1f}%",
                         f"{100 * coverage.ff_coverage_due:.0f}%",
                         f"{100 * coverage.overall_due_detection:.1f}%"])
        return rows

    rows = run_once(benchmark, payload)
    print()
    print(format_table("Table 8: DFC error coverage",
                       ["core", "FFs covered (SDC)", "detect per FF",
                        "overall SDC detected", "FFs covered (DUE)",
                        "overall DUE detected"], rows))


def bench_table09_monitor_core(benchmark, ooo_fw):
    def payload():
        program = workload_by_name("crafty").program()
        result = ooo_fw.core.run(program)
        monitor_clock, monitor_ipc = MONITOR_CORE_IPC["Monitor core"]
        return [[ooo_fw.core.name, f"{ooo_fw.core.clock_mhz:.0f} MHz", round(result.ipc, 2)],
                ["Monitor core", f"{monitor_clock:.0f} MHz", monitor_ipc]]

    rows = run_once(benchmark, payload)
    print()
    print(format_table("Table 9: monitor core vs main core", ["design", "clock", "IPC"], rows))


def bench_table10_assertions_breakdown(benchmark):
    def payload():
        return [[kind, values["exec_time_pct"], values["sdc_improvement"],
                 values["due_improvement"], values["false_positive_rate"]]
                for kind, values in ASSERTION_BREAKDOWN.items()]

    rows = run_once(benchmark, payload)
    print()
    print(format_table("Table 10: assertions checking data vs control variables",
                       ["check", "time %", "SDC improve", "DUE improve",
                        "false positives"], rows))


def bench_table11_14_injection_levels(benchmark):
    """Outcome rates under flip-flop vs architectural injection (Tables 11/14)."""

    def payload():
        core = InOrderCore()
        workload = workload_by_name("parser")
        rows = []
        flip_flop = InjectionEngine(core, workload.program(), seed=5).run(injections=60)
        rows.append(["flip-flop (ground truth)",
                     f"{100 * flip_flop.outcomes.sdc_count / flip_flop.injections:.1f}%",
                     f"{100 * flip_flop.outcomes.due_count / flip_flop.injections:.1f}%"])
        injector = HighLevelInjector(core, seed=5)
        for level in (InjectionLevel.REGISTER_UNIFORM, InjectionLevel.REGISTER_WRITE,
                      InjectionLevel.VARIABLE_UNIFORM, InjectionLevel.VARIABLE_WRITE):
            counts = injector.campaign(level, workload.program(), count=40).counts
            rows.append([level.value, f"{100 * counts.sdc_count / counts.total:.1f}%",
                         f"{100 * counts.due_count / counts.total:.1f}%"])
        return rows

    rows = run_once(benchmark, payload)
    print()
    print(format_table(
        "Tables 11/14: outcome rates under different injection models (parser, InO)",
        ["injection model", "SDC rate", "DUE rate"], rows))


def bench_table12_cfcss_coverage(benchmark):
    def payload():
        return [[kind, f"{100 * values['ff_coverage']:.0f}%",
                 f"{100 * values['detect_per_ff']:.0f}%", f"{values['improvement']}x"]
                for kind, values in CFCSS_COVERAGE_TABLE.items()]

    rows = run_once(benchmark, payload)
    print()
    print(format_table("Table 12: CFCSS error coverage",
                       ["class", "FFs covered", "detected per FF", "improvement"], rows))


def bench_table13_eddi_store_readback(benchmark):
    def payload():
        return [[variant, values["sdc_improvement"], values["sdc_detected_pct"],
                 values["sdc_escaped"], values["due_improvement"]]
                for variant, values in EDDI_STORE_READBACK_TABLE.items()]

    rows = run_once(benchmark, payload)
    print()
    print(format_table("Table 13: EDDI and the importance of store-readback",
                       ["store-readback", "SDC improve", "% SDC detected",
                        "SDC escaped", "DUE improve"], rows))


def bench_table16_selective_eddi(benchmark):
    def payload():
        return [list(row) for row in SELECTIVE_EDDI_TABLE]

    rows = run_once(benchmark, payload)
    print()
    print(format_table("Table 16: 'selective' EDDI variants vs flip-flop-evaluated EDDI",
                       ["technique", "injection level", "SDC improve", "exec time x"],
                       rows))
