"""Table 18: enumeration of the 586 cross-layer combinations."""

from __future__ import annotations

from _harness import run_once

from repro.core import (
    combination_counts,
    enumerate_combinations,
    shard_combinations,
    total_combination_count,
)
from repro.reporting import format_table


def bench_table18_combination_counts(benchmark):
    def payload():
        rows = []
        for family in ("InO", "OoO"):
            counts = combination_counts(family)
            assert len(enumerate_combinations(family)) == counts["total"]
            # The exploration engine shards this exact pool; the shards must
            # partition it.
            shards = shard_combinations(counts["total"], workers=4)
            assert sorted(i for s in shards for i in s.combination_indices) \
                == list(range(counts["total"]))
            rows.append([family, counts["base_no_recovery"], counts["base_flush_rob"],
                         counts["base_ir_eir"], counts["abft_alone"],
                         counts["abft_correction_plus"], counts["abft_detection_plus"],
                         counts["total"]])
        rows.append(["total", "", "", "", "", "", "", total_combination_count()])
        return rows

    rows = run_once(benchmark, payload)
    print()
    print(format_table("Table 18: creating the 586 cross-layer combinations",
                       ["core", "no recovery", "flush/RoB", "IR/EIR", "ABFT alone",
                        "ABFT corr. +", "ABFT det. +", "total"], rows))
