"""Shared fixtures for the benchmark harness.

Each ``bench_*.py`` file regenerates one or more of the paper's tables or
figures (see DESIGN.md for the experiment index and EXPERIMENTS.md for
paper-vs-measured numbers).  All benchmarks run one round so the harness
completes in minutes; they print the regenerated table to stdout (run pytest
with ``-s`` to see them).
"""

from __future__ import annotations

import pytest

from repro.core import ClearFramework


@pytest.fixture(scope="session")
def ino_fw() -> ClearFramework:
    return ClearFramework.for_inorder_core(seed=2016)


@pytest.fixture(scope="session")
def ooo_fw() -> ClearFramework:
    return ClearFramework.for_out_of_order_core(seed=2016)


@pytest.fixture(scope="session")
def frameworks(ino_fw, ooo_fw):
    return {"InO": ino_fw, "OoO": ooo_fw}
