"""Table 4 (resilient flip-flop cells) and Table 15 (recovery-hardware costs)."""

from __future__ import annotations

from _harness import run_once

from repro.physical import CELL_LIBRARY, RecoveryKind, available_recoveries, recovery_cost
from repro.reporting import format_table


def bench_table04_cells(benchmark):
    def payload():
        return [[cell.cell_type.value, f"{cell.soft_error_rate:.1e}", cell.area,
                 cell.power, cell.delay, cell.energy, "yes" if cell.detects else "no"]
                for cell in CELL_LIBRARY.values()]

    rows = run_once(benchmark, payload)
    print()
    print(format_table("Table 4: resilient flip-flop cells (relative to baseline)",
                       ["cell", "SER", "area", "power", "delay", "energy", "detects"],
                       rows))


def bench_table15_recovery_costs(benchmark):
    def payload():
        rows = []
        for core_name in ("InO-core", "OoO-core"):
            for kind in available_recoveries(core_name):
                if kind is RecoveryKind.NONE:
                    continue
                cost = recovery_cost(core_name, kind)
                unrecoverable = ", ".join(cost.unrecoverable_units) or "none"
                rows.append([core_name, kind.value, cost.area_pct, cost.power_pct,
                             cost.energy_pct, cost.latency_cycles, unrecoverable])
        return rows

    rows = run_once(benchmark, payload)
    print()
    print(format_table("Table 15: hardware error recovery costs",
                       ["core", "recovery", "area %", "power %", "energy %",
                        "latency (cycles)", "unrecoverable units"], rows))
