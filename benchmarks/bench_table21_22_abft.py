"""Tables 21/22 and Figure 8: ABFT cross-layer combinations.

Table 21: combinations involving ABFT correction/detection (including the
LEAP-ctrl dual-mode variant).  Table 22: flip-flops covered by ABFT.
Figure 8: measured SDC/DUE behaviour of ABFT correction vs detection
workloads (execution-time impact measured by running the ABFT-protected
kernels on the in-order core).
"""

from __future__ import annotations

from _harness import run_once

from repro.core import ResilienceTarget, STANDARD_TARGETS
from repro.physical import RecoveryKind
from repro.reporting import format_series, format_table
from repro.resilience import (
    ABFT_FF_COVERAGE,
    ProtectedDesign,
    abft_correction_descriptor,
    abft_detection_descriptor,
    measure_abft_impact,
)
from repro.workloads import abft_correction_suite, abft_detection_suite

_TARGETS = [ResilienceTarget(sdc=t) for t in STANDARD_TARGETS]


def bench_table21_abft_combinations(benchmark, frameworks):
    def payload():
        rows = []
        for family, framework in frameworks.items():
            explorer = framework.explorer
            recovery = RecoveryKind.FLUSH if family == "InO" else RecoveryKind.ROB
            for names, rec in ((("abft-correction", "leap-dice", "parity"), recovery),
                               (("abft-detection", "leap-dice", "parity"),
                                RecoveryKind.NONE)):
                combination = explorer.named_combination(names, rec)
                row = [family, combination.label]
                for evaluated in explorer.sweep_targets(combination, _TARGETS):
                    row.append(round(evaluated.cost.energy_pct, 1))
                rows.append(row)
        return rows

    rows = run_once(benchmark, payload)
    print()
    print(format_table("Table 21: ABFT cross-layer combinations (energy % per SDC target)",
                       ["core", "combination", "2x", "5x", "50x", "500x"], rows))


def bench_table22_abft_ff_coverage(benchmark):
    def payload():
        return [[family, f"{100 * values['union']:.0f}%",
                 f"{100 * values['intersection']:.0f}%"]
                for family, values in ABFT_FF_COVERAGE.items()]

    rows = run_once(benchmark, payload)
    print()
    print(format_table("Table 22: flip-flops with errors corrected by ABFT",
                       ["core", "union over algorithms", "intersection"], rows))


def bench_fig08_abft_correction_vs_detection(benchmark, ino_fw):
    def payload():
        correction = ProtectedDesign(registry=ino_fw.core.registry,
                                     high_level=[abft_correction_descriptor()])
        detection = ProtectedDesign(registry=ino_fw.core.registry,
                                    high_level=[abft_detection_descriptor()])
        points = []
        for label, design in (("correction", correction), ("detection", detection)):
            estimate = design.estimate_improvement(ino_fw.vulnerability)
            points.append((label, (round(estimate.sdc_improvement, 2),
                                   round(estimate.due_improvement, 2))))
        impacts = []
        for workload in abft_correction_suite() + abft_detection_suite():
            measurement = measure_abft_impact(ino_fw.core, workload)
            impacts.append((workload.name, round(measurement.exec_time_impact_pct, 1)))
        return points, impacts

    points, impacts = run_once(benchmark, payload)
    print()
    print(format_series("Figure 8: ABFT correction vs detection (SDC, DUE improvement)",
                        points, x_label="flavour", y_label="(SDC, DUE)"))
    print()
    print(format_series("Figure 8 (supporting): measured ABFT execution-time impact",
                        impacts, x_label="workload", y_label="time impact %"))
