"""Tables 17, 19 and 20: tunable techniques and cross-layer combinations.

Table 17: cost vs SDC/DUE improvement for the tunable techniques (LEAP-DICE,
parity, EDS).  Table 19: the general-purpose cross-layer combinations, led by
LEAP-DICE + parity + flush/RoB recovery.  Table 20: joint SDC+DUE targets.
"""

from __future__ import annotations

from _harness import run_once

from repro.core import ResilienceTarget, STANDARD_TARGETS, joint_targets
from repro.physical import RecoveryKind
from repro.reporting import format_table

_TARGETS = [ResilienceTarget(sdc=t) for t in STANDARD_TARGETS]


def _sweep_rows(framework, family, names, recovery):
    explorer = framework.explorer
    combination = explorer.named_combination(names, recovery)
    row_area = [family, combination.label, "area %"]
    row_energy = [family, combination.label, "energy %"]
    for evaluated in explorer.sweep_targets(combination, _TARGETS):
        row_area.append(round(evaluated.cost.area_pct, 1))
        row_energy.append(round(evaluated.cost.energy_pct, 1))
    return [row_area, row_energy]


def bench_table17_tunable_techniques(benchmark, frameworks):
    def payload():
        rows = []
        for family, framework in frameworks.items():
            ir = RecoveryKind.IR
            rows.extend(_sweep_rows(framework, family, ("leap-dice",), RecoveryKind.NONE))
            rows.extend(_sweep_rows(framework, family, ("parity",), ir))
            rows.extend(_sweep_rows(framework, family, ("eds",), ir))
        return rows

    rows = run_once(benchmark, payload)
    print()
    print(format_table("Table 17: tunable technique cost vs SDC improvement",
                       ["core", "technique", "metric", "2x", "5x", "50x", "500x"], rows))


def bench_table19_general_purpose_combinations(benchmark, frameworks):
    def payload():
        rows = []
        for family, framework in frameworks.items():
            recovery = RecoveryKind.FLUSH if family == "InO" else RecoveryKind.ROB
            rows.extend(_sweep_rows(framework, family, ("leap-dice", "parity"), recovery))
            rows.extend(_sweep_rows(framework, family, ("eds", "leap-dice", "parity"),
                                    recovery))
            rows.extend(_sweep_rows(framework, family, ("dfc", "leap-dice", "parity"),
                                    RecoveryKind.EIR))
            if family == "InO":
                rows.extend(_sweep_rows(framework, family,
                                        ("assertions", "leap-dice", "parity"),
                                        RecoveryKind.NONE))
                rows.extend(_sweep_rows(framework, family,
                                        ("cfcss", "leap-dice", "parity"),
                                        RecoveryKind.NONE))
                rows.extend(_sweep_rows(framework, family,
                                        ("eddi", "leap-dice", "parity"),
                                        RecoveryKind.NONE))
            else:
                rows.extend(_sweep_rows(framework, family,
                                        ("monitor-core", "leap-dice", "parity"),
                                        RecoveryKind.ROB))
        return rows

    rows = run_once(benchmark, payload)
    print()
    print(format_table("Table 19: cross-layer combinations for general-purpose cores",
                       ["core", "combination", "metric", "2x", "5x", "50x", "500x"], rows))


def bench_table20_joint_targets(benchmark, frameworks):
    def payload():
        rows = []
        for family, framework in frameworks.items():
            explorer = framework.explorer
            combination = explorer.best_practice_combination()
            for target in joint_targets()[:4]:
                evaluated = explorer.evaluate(combination, target)
                rows.append([family, target.label, round(evaluated.cost.area_pct, 1),
                             round(evaluated.cost.energy_pct, 1),
                             round(evaluated.sdc_improvement, 1),
                             round(evaluated.due_improvement, 1)])
        return rows

    rows = run_once(benchmark, payload)
    print()
    print(format_table("Table 20: joint SDC/DUE targets (LEAP-DICE + parity + recovery)",
                       ["core", "target", "area %", "energy %", "SDC achieved",
                        "DUE achieved"], rows))
