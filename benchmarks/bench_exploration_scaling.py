"""Exploration-engine scaling: per-target replanning vs incremental vs sharded.

Measures the full cross-layer sweep -- every one of the 586 combinations
(417 InO + 169 OoO) over the standard SDC target ladder -- under three
strategies:

* ``serial, replanning`` -- the pre-schedule behaviour: every (combination,
  target) pair reruns the Fig. 7 loop from scratch
  (``CrossLayerExplorer.evaluate_reference``);
* ``serial, incremental`` -- prefix schedules answer all targets of a
  combination from one cached walk (``stream_records(workers=1)``);
* ``sharded, incremental`` -- the combination pool sharded over the engine's
  process-pool executor (``stream_records(workers=N)``).

All strategies produce bit-identical records (asserted below); the energy
numbers feed the same Pareto frontier either way.  ``BENCH_exploration.json``
persists the sweep timings so later PRs can diff exploration throughput.

The ``smoke`` benchmark runs a small slice of the same three-way comparison
and is what CI executes (``-k smoke``).
"""

from __future__ import annotations

import os
import time

from _harness import persist_bench, run_once

from repro.core import ClearFramework, enumerate_combinations, sdc_targets
from repro.reporting import format_table

PARALLEL_WORKERS = max(2, min(os.cpu_count() or 1, 4))
SMOKE_COMBINATIONS = 24


def _reference_sweep(explorer, combinations, targets):
    records = []
    for ci, combination in enumerate(combinations):
        for ti, target in enumerate(targets):
            evaluated = explorer.evaluate_reference(combination, target)
            records.append((ci, ti, evaluated.cost.energy_pct,
                            evaluated.sdc_improvement, evaluated.due_improvement,
                            evaluated.protected_flip_flops))
    return records


def _record_sweep(explorer, combinations, targets, workers):
    return sorted((r.combination_index, r.target_index, r.energy_pct,
                   r.sdc_improvement, r.due_improvement, r.protected_flip_flops)
                  for r in explorer.stream_records(targets, combinations,
                                                   workers=workers))


def _sweep_rows(frameworks, combination_cap=None):
    """Run the three-way comparison; returns (table rows, pair count)."""
    targets = sdc_targets()
    pools = {family: enumerate_combinations(family)[:combination_cap]
             for family in frameworks}
    pairs = sum(len(pool) for pool in pools.values()) * len(targets)

    def timed(strategy):
        start = time.perf_counter()
        outputs = {}
        for family, framework in frameworks.items():
            outputs[family] = strategy(framework.explorer, pools[family], targets)
        return time.perf_counter() - start, outputs

    # Strategy order keeps every timing honest: replanning bypasses the
    # schedule caches entirely, so the serial-incremental pass that follows
    # still starts cold; the sharded pass does its work in fresh worker
    # processes with their own (cold) caches.

    replan_elapsed, replan = timed(lambda ex, pool, tg: sorted(
        _reference_sweep(ex, pool, tg)))
    serial_elapsed, serial = timed(lambda ex, pool, tg: _record_sweep(ex, pool, tg, 1))
    sharded_elapsed, sharded = timed(lambda ex, pool, tg: _record_sweep(
        ex, pool, tg, PARALLEL_WORKERS))
    for family in frameworks:
        assert serial[family] == replan[family], \
            "incremental schedules must reproduce replanning bit-for-bit"
        assert sharded[family] == serial[family], \
            "sharded evaluation must be independent of worker count"

    rows = []
    for label, elapsed in (("serial, replanning", replan_elapsed),
                           ("serial, incremental", serial_elapsed),
                           (f"sharded x{PARALLEL_WORKERS}, incremental",
                            sharded_elapsed)):
        rows.append([label, pairs, f"{elapsed:.2f}s", f"{pairs / elapsed:.1f}",
                     f"{replan_elapsed / elapsed:.2f}x"])
    return rows, pairs


def _fresh_frameworks(families):
    frameworks = {}
    if "InO" in families:
        frameworks["InO"] = ClearFramework.for_inorder_core(seed=2016)
    if "OoO" in families:
        frameworks["OoO"] = ClearFramework.for_out_of_order_core(seed=2016)
    return frameworks


def bench_exploration_smoke(benchmark):
    """CI-sized slice of the sweep comparison (no persistence)."""
    def payload():
        frameworks = _fresh_frameworks(("InO",))
        return _sweep_rows(frameworks, combination_cap=SMOKE_COMBINATIONS)

    rows, pairs = run_once(benchmark, payload)
    print()
    print(format_table(
        f"Exploration scaling (smoke): {SMOKE_COMBINATIONS} InO combinations "
        f"x {pairs // SMOKE_COMBINATIONS} targets",
        ["strategy", "pairs", "wall time", "pairs/s", "speedup"], rows))


def bench_exploration_full_sweep(benchmark):
    """The full 586-combination x standard-target sweep on both cores."""
    def payload():
        frameworks = _fresh_frameworks(("InO", "OoO"))
        return _sweep_rows(frameworks)

    rows, pairs = run_once(benchmark, payload)
    headers = ["strategy", "pairs", "wall time", "pairs/s", "speedup"]
    persist_bench("exploration", headers, rows,
                  context={"combinations": 586, "targets": len(sdc_targets()),
                           "parallel_workers": PARALLEL_WORKERS},
                  seed=2016, core="InO+OoO")
    print()
    print(format_table(
        f"Exploration scaling: 586 combinations x {len(sdc_targets())} targets "
        f"({pairs} pairs)",
        headers, rows))
