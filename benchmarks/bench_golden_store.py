"""Persistent golden-artifact store: cold vs warm starts, stealing vs static.

Two row groups, both on the mcf workload (7.4k golden cycles on the
InO-core), persisted to ``BENCH_golden_store.json``.

**Store round-trip** (small campaign, N=3, so golden recording dominates):

* ``store-less`` -- in-memory cache only, the pre-store behaviour: every
  fresh process re-records the golden run from cycle 0;
* ``cold store`` -- fresh artifact directory: records the golden run once
  and persists it (recording + atomic blob write + campaign);
* ``warm store`` -- same directory, fresh process-equivalent cache: the
  golden run is *loaded* (integrity-checked deserialisation, zero
  simulated golden cycles) and the campaign starts immediately.

Wall time includes golden acquisition -- that is the quantity the store
changes.  The warm start must be >= 3x faster than the cold start with zero
golden recordings, and all three rows must report bit-identical statistics
(both asserted).

**Execution schedule** (batched campaign, N=120, width 16): serial vs
``workers=2`` with static up-front sharding vs the work-stealing guided
chunk queue.  All three must be bit-identical (asserted); on multi-core
hosts work stealing must be >= serial (asserted when ``os.cpu_count() >=
2`` -- a single-core container cannot speed anything up by adding
processes, but the schedule comparison rows are still recorded there).
"""

from __future__ import annotations

import os
import shutil
import tempfile
import time

from _harness import persist_bench, run_once

from repro.engine import (
    EngineConfig,
    GoldenArtifactStore,
    GoldenRunCache,
    InjectionEngine,
)
from repro.microarch import InOrderCore
from repro.reporting import format_table
from repro.workloads import workload_by_name

WORKLOAD = "mcf"
STORE_INJECTIONS = 3
"""Small on purpose: the store amortises *golden acquisition*, so the rows
quote the regime where acquisition dominates (repeat campaigns, sweep
workers, CI smoke runs -- all small-N, many-process shapes)."""
SCHEDULE_INJECTIONS = 120
BATCH_WIDTH = 16
WORKERS = 2
MIN_WARM_SPEEDUP = 3.0
"""Acceptance floor: a warm start (artifact loaded) must beat a cold start
(artifact recorded + saved) by this factor on the small campaign."""


def _campaign(config, cache, injections, seed=9):
    """One engine campaign, timed *including* golden acquisition."""
    program = workload_by_name(WORKLOAD).program()
    engine = InjectionEngine(InOrderCore(), program, seed=seed, config=config,
                             golden_cache=cache)
    start = time.perf_counter()
    result = engine.run(injections=injections)
    elapsed = time.perf_counter() - start
    return result, elapsed, cache.stats()


def bench_golden_store(benchmark):
    def payload():
        rows = []
        store_dir = tempfile.mkdtemp(prefix="bench_golden_store_")
        try:
            # ---------------------------------------------- store round-trip
            reference = None
            cold_elapsed = warm_elapsed = None
            modes = [
                ("store-less", lambda: GoldenRunCache()),
                ("cold store", lambda: GoldenRunCache(
                    store=GoldenArtifactStore(store_dir))),
                ("warm store", lambda: GoldenRunCache(
                    store=GoldenArtifactStore(store_dir))),
            ]
            for label, make_cache in modes:
                result, elapsed, stats = _campaign(EngineConfig(),
                                                   make_cache(),
                                                   STORE_INJECTIONS)
                if reference is None:
                    reference = result
                assert result.outcomes == reference.outcomes \
                    and result.per_site == reference.per_site, \
                    "the store must be invisible in campaign statistics"
                if label == "cold store":
                    cold_elapsed = elapsed
                    assert stats.artifacts_saved == 1
                if label == "warm store":
                    warm_elapsed = elapsed
                    assert stats.recorded == 0, (
                        "a warm start must load the golden artifact, "
                        f"not re-record it (recorded {stats.recorded})")
                    assert stats.artifacts_loaded == 1
                rows.append(["store round-trip", label,
                             STORE_INJECTIONS, stats.artifacts_loaded,
                             stats.recorded, f"{elapsed:.3f}s",
                             f"{STORE_INJECTIONS / elapsed:.1f}"])
            warm_speedup = cold_elapsed / warm_elapsed
            assert warm_speedup >= MIN_WARM_SPEEDUP, (
                f"warm start is only {warm_speedup:.1f}x faster than cold "
                f"(floor {MIN_WARM_SPEEDUP}x)")
            rows.append(["store round-trip", "warm vs cold speedup", "-",
                         "-", "-", "-", f"{warm_speedup:.1f}x"])

            # --------------------------------------------- execution schedule
            schedules = [
                ("serial", EngineConfig(batch_width=BATCH_WIDTH)),
                (f"parallel x{WORKERS}, static shards",
                 EngineConfig(batch_width=BATCH_WIDTH, workers=WORKERS,
                              parallel_threshold=0, work_stealing=False)),
                (f"parallel x{WORKERS}, work stealing",
                 EngineConfig(batch_width=BATCH_WIDTH, workers=WORKERS,
                              parallel_threshold=0, work_stealing=True)),
            ]
            serial_rate = stealing_rate = None
            schedule_ref = None
            for label, config in schedules:
                cache = GoldenRunCache(store=GoldenArtifactStore(store_dir))
                result, elapsed, stats = _campaign(config, cache,
                                                   SCHEDULE_INJECTIONS)
                assert stats.recorded == 0, \
                    "every schedule row must start warm from the store"
                if schedule_ref is None:
                    schedule_ref = result
                assert result.outcomes == schedule_ref.outcomes \
                    and result.per_site == schedule_ref.per_site, \
                    "schedules must report bit-identical statistics"
                rate = SCHEDULE_INJECTIONS / elapsed
                if label == "serial":
                    serial_rate = rate
                if "work stealing" in label:
                    stealing_rate = rate
                rows.append(["execution schedule", label,
                             SCHEDULE_INJECTIONS, stats.artifacts_loaded,
                             stats.recorded, f"{elapsed:.2f}s",
                             f"{rate:.1f}"])
            if (os.cpu_count() or 1) >= 2:
                assert stealing_rate >= serial_rate, (
                    f"work stealing ({stealing_rate:.1f} inj/s) lost to "
                    f"serial ({serial_rate:.1f} inj/s) on a multi-core host")
            rows.append(["execution schedule", "stealing vs serial", "-", "-",
                         "-", "-", f"{stealing_rate / serial_rate:.2f}x"])
        finally:
            shutil.rmtree(store_dir, ignore_errors=True)
        return rows

    rows = run_once(benchmark, payload)
    headers = ["group", "mode", "injections", "artifacts loaded",
               "goldens recorded", "wall time", "injections/s"]
    persist_bench("golden_store", headers, rows,
                  context={"workload": WORKLOAD,
                           "store_injections": STORE_INJECTIONS,
                           "schedule_injections": SCHEDULE_INJECTIONS,
                           "batch_width": BATCH_WIDTH,
                           "workers": WORKERS,
                           "min_warm_speedup": MIN_WARM_SPEEDUP},
                  seed=9, core=InOrderCore(), config=EngineConfig())
    print()
    print(format_table(
        f"Golden-artifact store on {WORKLOAD} (InO-core); wall time "
        f"includes golden acquisition",
        headers, rows))
