"""Figure 1(d), Figure 9 and Figure 10: exploration cloud and bounds.

Figure 1(d): energy cost vs fraction of SDC-causing errors protected across a
sample of the 586 cross-layer combinations.  Figures 9/10: the energy-cost
vs improvement envelopes that new resilience techniques must beat -- for the
best cross-layer combination (Fig. 9) and for the best standalone technique,
LEAP-DICE (Fig. 10).
"""

from __future__ import annotations

from _harness import run_once

from repro.analysis import ParetoFrontier, ParetoPoint
from repro.core import ResilienceTarget, enumerate_combinations
from repro.reporting import format_frontier, format_series

#: Number of combinations sampled for the Fig. 1(d) cloud (keeps the harness
#: fast; pass the full 417-element list to explore_all for the complete cloud).
CLOUD_SAMPLE = 60


def bench_fig01d_exploration_cloud(benchmark, ino_fw):
    def payload():
        combinations = enumerate_combinations("InO")
        sample = combinations[::max(1, len(combinations) // CLOUD_SAMPLE)]
        evaluated = ino_fw.explorer.explore_all(ResilienceTarget(sdc=50), sample)
        baseline = ino_fw.vulnerability.total_sdc_rate()
        points = []
        for entry in evaluated:
            protected_fraction = 1.0 - min(1.0, entry.design.estimate_improvement(
                ino_fw.vulnerability).residual_sdc / baseline)
            points.append((round(100 * protected_fraction, 1),
                           round(entry.cost.energy_pct, 1)))
        # The streaming frontier condenses the same cloud to its non-
        # dominated edge -- the points that actually bound new-technique
        # opportunity.
        frontier = ParetoFrontier()
        frontier.update(
            ParetoPoint(improvement=entry.sdc_improvement,
                        energy_pct=entry.cost.energy_pct,
                        area_pct=entry.cost.area_pct,
                        exec_time_pct=entry.cost.exec_time_pct,
                        label=entry.combination.label)
            for entry in evaluated)
        return sorted(points), frontier

    points, frontier = run_once(benchmark, payload)
    print()
    print(format_series(
        f"Figure 1(d): energy cost vs % SDC-causing errors protected "
        f"({len(points)} of 417 InO combinations)",
        points, x_label="% SDC errors protected", y_label="energy cost %"))
    print()
    print(format_frontier("Figure 1(d) frontier: non-dominated cloud points",
                          frontier))


def bench_fig09_crosslayer_bounds(benchmark, frameworks):
    def payload():
        series = {}
        for family, framework in frameworks.items():
            series[family] = framework.explorer.bounds_envelope()
        return series

    series = run_once(benchmark, payload)
    for family, points in series.items():
        print()
        print(format_series(
            f"Figure 9: bounds for new techniques ({family}, LEAP-DICE + parity + recovery)",
            [(f"{imp:g}x", round(energy, 1)) for imp, energy in points],
            x_label="SDC improvement", y_label="energy cost %"))


def bench_fig10_standalone_bounds(benchmark, frameworks):
    def payload():
        series = {}
        for family, framework in frameworks.items():
            series[family] = framework.explorer.bounds_envelope(standalone=True)
        return series

    series = run_once(benchmark, payload)
    for family, points in series.items():
        print()
        print(format_series(
            f"Figure 10: bounds for new standalone techniques ({family}, LEAP-DICE)",
            [(f"{imp:g}x", round(energy, 1)) for imp, energy in points],
            x_label="SDC improvement", y_label="energy cost %"))
