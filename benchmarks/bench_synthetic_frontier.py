"""Synthetic-workload-driven frontier: the synthesis-to-exploration loop.

One seeded call per core: generate a synthetic suite, measure per-flip-flop
vulnerability through the sharded injection engine, sweep a sample of the
cross-layer combination pool against that measured map (incremental
improvement + cost curves, no per-target design materialisation), and fold
the results into a Pareto frontier.  The frontier itself is persisted via
the ``repro.analysis.store`` round trip and reloaded to validate it, and the
timing/condensation table is written to ``BENCH_synthetic_frontier.json``.
"""

from __future__ import annotations

import time

import _harness
from _harness import persist_bench, run_once

from repro.analysis.store import load_frontier
from repro.core import enumerate_combinations, sdc_targets
from repro.microarch import InOrderCore
from repro.reporting import (format_convergence_summary, format_frontier,
                             format_table)
from repro.workloads.synthesis import explore_synthetic_frontier

SEED = 2016
PER_FAMILY = 2
INJECTIONS_PER_WORKLOAD = 12
TARGET_CYCLES = 1500
COMBINATION_STEP = 6          # ~70 of the 417 InO combinations
TARGET_COUNT = 4


def bench_synthetic_frontier(benchmark):
    def payload():
        core = InOrderCore()
        pool = enumerate_combinations("InO")[::COMBINATION_STEP]
        targets = sdc_targets()[:TARGET_COUNT]
        started = time.perf_counter()
        result = explore_synthetic_frontier(
            core, seed=SEED, per_family=PER_FAMILY,
            injections_per_workload=INJECTIONS_PER_WORKLOAD,
            target_cycles=TARGET_CYCLES, targets=targets, combinations=pool,
            sweep_workers=2, exploration_workers=2)
        elapsed = time.perf_counter() - started

        store_path = _harness.bench_output_dir() / "FRONTIER_synthetic_ino.json"
        store_started = time.perf_counter()
        result.save(store_path)
        reloaded = load_frontier(store_path)
        store_elapsed = time.perf_counter() - store_started
        assert len(reloaded.frontier) == len(result.frontier)

        injections = sum(p.injections for p in result.sweep.profiles)
        rows = [[core.name, len(result.sweep.workload_names), injections,
                 len(pool), result.frontier.seen, len(result.frontier),
                 f"{elapsed:.1f}", f"{1000 * store_elapsed:.1f}"]]
        return result, rows

    result, rows = run_once(benchmark, payload)
    headers = ["core", "workloads", "injections", "combinations",
               "swept points", "frontier points", "pipeline s",
               "store round trip ms"]
    persist_bench("synthetic_frontier", headers, rows,
                  context={"seed": SEED, "per_family": PER_FAMILY,
                           "injections_per_workload": INJECTIONS_PER_WORKLOAD,
                           "target_cycles": TARGET_CYCLES,
                           "combination_step": COMBINATION_STEP,
                           "targets": TARGET_COUNT},
                  seed=SEED, core=InOrderCore())
    print()
    print(format_table("Synthetic-workload-driven frontier pipeline",
                       headers, rows))
    print()
    print(format_frontier("Frontier (measured synthetic vulnerability)",
                          result.frontier))
    print()
    print(format_convergence_summary(
        [(p.family, p) for p in result.sweep.profiles],
        title="Convergence gate (sweep behind the frontier)"))
