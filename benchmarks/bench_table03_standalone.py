"""Table 3: standalone costs and improvements of every resilience technique."""

from __future__ import annotations

from _harness import run_once

from repro.core import MAX_TARGET, ResilienceTarget
from repro.physical import RecoveryKind
from repro.reporting import format_table
from repro.resilience import ProtectedDesign, high_level_techniques


def bench_table03_standalone_techniques(benchmark, frameworks):
    def payload():
        rows = []
        for family, framework in frameworks.items():
            explorer = framework.explorer
            # Tunable low-level techniques at their maximum-protection point.
            for names, recovery in ((("leap-dice",), RecoveryKind.NONE),
                                    (("parity",), RecoveryKind.IR),
                                    (("eds",), RecoveryKind.IR)):
                combo = explorer.named_combination(names, recovery)
                evaluated = explorer.evaluate(combo, ResilienceTarget(sdc=MAX_TARGET))
                rows.append([family, combo.label,
                             round(evaluated.cost.area_pct, 1),
                             round(evaluated.cost.energy_pct, 1),
                             round(evaluated.cost.exec_time_pct, 1),
                             round(evaluated.sdc_improvement, 1),
                             round(evaluated.due_improvement, 1),
                             round(evaluated.design.gamma(), 2)])
            # High-level techniques as standalone solutions.
            for technique in high_level_techniques(family):
                design = ProtectedDesign(registry=framework.core.registry,
                                         high_level=[technique])
                estimate = design.estimate_improvement(framework.vulnerability)
                cost = design.cost(framework.cost_model)
                rows.append([family, technique.name, round(cost.area_pct, 1),
                             round(cost.energy_pct, 1), round(cost.exec_time_pct, 1),
                             round(estimate.sdc_improvement, 1),
                             round(estimate.due_improvement, 1),
                             round(design.gamma(), 2)])
        return rows

    rows = run_once(benchmark, payload)
    print()
    print(format_table("Table 3: standalone technique costs and improvements",
                       ["core", "technique", "area %", "energy %", "time %",
                        "SDC improve", "DUE improve", "gamma"], rows))
