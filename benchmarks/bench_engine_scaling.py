"""Injection-engine scaling: full re-simulation vs checkpointed vs parallel.

Measures campaign throughput (injections/second) for the same fixed-seed
campaign on a >=5k-cycle workload under three execution strategies:

* ``serial, no checkpoints`` -- every injected run re-simulates from cycle 0
  (the pre-engine behaviour, ``EngineConfig(checkpoint_interval=0)``);
* ``serial, checkpointed`` -- injected runs fast-forward from the nearest
  golden-run snapshot at or below their injection cycle;
* ``parallel, checkpointed`` -- the checkpointed plan sharded over worker
  processes.

All three report identical outcome statistics (asserted below); golden-run
recording time is excluded via a warm cache, matching the steady-state
regime of multi-config campaigns.
"""

from __future__ import annotations

import os
import time

from _harness import persist_bench, run_once

from repro.engine import EngineConfig, GoldenRunCache, InjectionEngine
from repro.microarch import InOrderCore
from repro.reporting import format_table
from repro.workloads import workload_by_name

WORKLOAD = "mcf"          # 7.4k golden cycles on the InO-core
INJECTIONS = 30
PARALLEL_WORKERS = max(2, min(os.cpu_count() or 1, 4))


def bench_engine_scaling(benchmark):
    def payload():
        program = workload_by_name(WORKLOAD).program()
        modes = [
            ("serial, no checkpoints", EngineConfig(checkpoint_interval=0)),
            ("serial, checkpointed", EngineConfig()),
            (f"parallel x{PARALLEL_WORKERS}, checkpointed",
             EngineConfig(workers=PARALLEL_WORKERS)),
        ]
        rows = []
        reference = None
        baseline_rate = None
        for label, config in modes:
            cache = GoldenRunCache()
            engine = InjectionEngine(InOrderCore(), program, seed=9,
                                     config=config, golden_cache=cache)
            checkpointed = engine.golden()  # warm the cache
            start = time.perf_counter()
            result = engine.run(injections=INJECTIONS)
            elapsed = time.perf_counter() - start
            if reference is None:
                reference = result.outcomes
            assert result.outcomes == reference, \
                "execution strategies must report identical statistics"
            rate = INJECTIONS / elapsed
            if baseline_rate is None:
                baseline_rate = rate
            rows.append([label, checkpointed.checkpoint_count,
                         f"{elapsed:.2f}s", f"{rate:.1f}",
                         f"{rate / baseline_rate:.2f}x"])
        return rows

    rows = run_once(benchmark, payload)
    headers = ["strategy", "checkpoints", "wall time", "injections/s", "speedup"]
    persist_bench("engine", headers, rows,
                  context={"workload": WORKLOAD, "injections": INJECTIONS,
                           "parallel_workers": PARALLEL_WORKERS})
    print()
    print(format_table(
        f"Engine scaling: {INJECTIONS} injections on {WORKLOAD} (InO-core)",
        headers, rows))
