"""Injection-engine scaling: full re-simulation vs checkpoints vs convergence.

Measures campaign throughput (injections/second) for the same fixed-seed
campaign on a >=5k-cycle workload under four execution strategies:

* ``serial, no checkpoints`` -- every injected run re-simulates from cycle 0
  to termination (the pre-engine behaviour,
  ``EngineConfig(checkpoint_interval=0, convergence=False)``);
* ``serial, checkpointed`` -- injected runs fast-forward from the nearest
  golden-run snapshot but still simulate to termination
  (``convergence=False``, the pre-convergence baseline);
* ``serial, converged`` -- checkpointed replay plus convergence-gated early
  termination: an injected run stops the moment its state fingerprint
  re-converges with the golden run's dense fingerprint grid;
* ``parallel, converged`` -- the convergence-gated plan sharded over worker
  processes.

All four report identical outcome statistics (asserted below), and the
convergence gate must cut the simulated injected-run cycles of the
checkpointed baseline by at least 30% (asserted below; typically it is well
above 60%).  Golden-run recording time is excluded via a warm cache,
matching the steady-state regime of multi-config campaigns.
"""

from __future__ import annotations

import os
import time

from _harness import persist_bench, run_once

from repro.engine import EngineConfig, GoldenRunCache, InjectionEngine
from repro.microarch import InOrderCore
from repro.reporting import format_table
from repro.workloads import workload_by_name

WORKLOAD = "mcf"          # 7.4k golden cycles on the InO-core
INJECTIONS = 30
PARALLEL_WORKERS = max(2, min(os.cpu_count() or 1, 4))
MIN_SAVED_CYCLE_FRACTION = 0.30
"""Acceptance floor: convergence gating must remove at least this fraction
of the simulated injected-run cycles on the standard campaign."""


def bench_engine_scaling(benchmark):
    def payload():
        program = workload_by_name(WORKLOAD).program()
        modes = [
            ("serial, no checkpoints",
             EngineConfig(checkpoint_interval=0, convergence=False)),
            ("serial, checkpointed", EngineConfig(convergence=False)),
            ("serial, converged", EngineConfig()),
            (f"parallel x{PARALLEL_WORKERS}, converged",
             EngineConfig(workers=PARALLEL_WORKERS)),
        ]
        rows = []
        reference = None
        baseline_rate = None
        checkpointed_cycles = None
        for label, config in modes:
            cache = GoldenRunCache()
            engine = InjectionEngine(InOrderCore(), program, seed=9,
                                     config=config, golden_cache=cache)
            checkpointed = engine.golden()  # warm the cache
            start = time.perf_counter()
            result = engine.run(injections=INJECTIONS)
            elapsed = time.perf_counter() - start
            if reference is None:
                reference = result.outcomes
            assert result.outcomes == reference, \
                "execution strategies must report identical statistics"
            if label == "serial, checkpointed":
                checkpointed_cycles = result.replayed_cycles
            if config.convergence_enabled and checkpointed_cycles:
                saved_fraction = 1 - result.replayed_cycles / checkpointed_cycles
                assert saved_fraction >= MIN_SAVED_CYCLE_FRACTION, (
                    f"convergence gating saved only {saved_fraction:.0%} of "
                    f"the checkpointed baseline's simulated cycles "
                    f"(floor {MIN_SAVED_CYCLE_FRACTION:.0%})")
            rate = INJECTIONS / elapsed
            if baseline_rate is None:
                baseline_rate = rate
            rows.append([label, checkpointed.checkpoint_count,
                         checkpointed.fingerprint_count,
                         result.replayed_cycles,
                         f"{100 * result.saved_cycle_fraction:.0f}%",
                         f"{elapsed:.2f}s", f"{rate:.1f}",
                         f"{rate / baseline_rate:.2f}x"])
        return rows

    rows = run_once(benchmark, payload)
    headers = ["strategy", "checkpoints", "fingerprints", "replayed cycles",
               "cycles saved", "wall time", "injections/s", "speedup"]
    persist_bench("engine", headers, rows,
                  context={"workload": WORKLOAD, "injections": INJECTIONS,
                           "parallel_workers": PARALLEL_WORKERS,
                           "min_saved_cycle_fraction": MIN_SAVED_CYCLE_FRACTION})
    print()
    print(format_table(
        f"Engine scaling: {INJECTIONS} injections on {WORKLOAD} (InO-core)",
        headers, rows))
