"""Injection-engine scaling: re-simulation vs checkpoints vs convergence vs batching.

Measures campaign throughput (injections/second) for the same fixed-seed
campaign on a >=5k-cycle workload under two groups of execution strategies.

The first group runs the standard campaign size and shows the scalar-path
trajectory:

* ``serial, no checkpoints`` -- every injected run re-simulates from cycle 0
  to termination (the pre-engine behaviour,
  ``EngineConfig(checkpoint_interval=0, convergence=False)``);
* ``serial, checkpointed`` -- injected runs fast-forward from the nearest
  golden-run snapshot but still simulate to termination
  (``convergence=False``, the pre-convergence baseline);
* ``serial, converged`` -- checkpointed replay plus convergence-gated early
  termination: an injected run stops the moment its state fingerprint
  re-converges with the golden run's dense fingerprint grid;
* ``parallel, converged`` -- the convergence-gated plan sharded over worker
  processes.

The second group adds batched lockstep replay (``EngineConfig.batch_width``)
on top of the convergence-gated configuration.  Batched rows run a larger
campaign: at small N the wall time is dominated by the handful of
never-reconverging runs each wavefront hard-evicts to the scalar path, so
throughput is quoted at a size where the wavefront is actually saturated.
Serial throughput is N-independent (each injection replays in isolation),
but the serial-converged reference is re-measured at the batched size anyway
so the comparison is same-N by construction.

Within each group the ``speedup`` column is relative to the group's first
row (the group's serial baseline).  All strategies must report bit-identical
outcome statistics (asserted below, including per-site tallies for the
batched rows); convergence gating must cut the checkpointed baseline's
simulated cycles by >=30% and batched replay at width >=16 must beat the
serial-converged reference by >=5x (both asserted below).  Golden-run
recording time is excluded via a warm cache, matching the steady-state
regime of multi-config campaigns.
"""

from __future__ import annotations

import os
import time

from _harness import persist_bench, run_once

from repro.engine import EngineConfig, GoldenRunCache, InjectionEngine
from repro.microarch import InOrderCore
from repro.obs.phases import (COUNT_FINGERPRINT_CHECKS, PHASE_CONVERGENCE)
from repro.reporting import format_table
from repro.workloads import workload_by_name

WORKLOAD = "mcf"          # 7.4k golden cycles on the InO-core
INJECTIONS = 30
BATCH_INJECTIONS = 120
BATCH_WIDTHS = (8, 16, 32)
PARALLEL_WORKERS = max(2, min(os.cpu_count() or 1, 4))
MIN_SAVED_CYCLE_FRACTION = 0.30
"""Acceptance floor: convergence gating must remove at least this fraction
of the simulated injected-run cycles on the standard campaign."""
MIN_BATCH_SPEEDUP = 5.0
"""Acceptance floor: batched lockstep replay at width >=16 must beat the
serial convergence-gated reference (same campaign size) by this factor."""
MIN_ROLLING_SPEEDUP = 1.3
"""Rolling-fingerprint acceptance, throughput branch: injections/s over the
full-digest converged baseline."""
MIN_FP_TIME_REDUCTION = 3.0
"""Rolling-fingerprint acceptance, phase-time branch: reduction in measured
convergence-phase (fingerprint hashing) wall time.  Either this OR the
throughput branch must hold -- fingerprinting is a few percent of scalar
replay wall time on this workload, so the phase-time branch is the
meaningful one."""


def bench_engine_scaling(benchmark):
    def payload():
        program = workload_by_name(WORKLOAD).program()

        def run_campaign(config, injections):
            engine = InjectionEngine(InOrderCore(), program, seed=9,
                                     config=config,
                                     golden_cache=GoldenRunCache())
            checkpointed = engine.golden()  # warm the cache
            start = time.perf_counter()
            result = engine.run(injections=injections)
            elapsed = time.perf_counter() - start
            return checkpointed, result, elapsed

        rows = []

        # -------------------------------------------------- scalar strategies
        modes = [
            ("serial, no checkpoints",
             EngineConfig(checkpoint_interval=0, convergence=False)),
            ("serial, checkpointed", EngineConfig(convergence=False)),
            ("serial, converged", EngineConfig()),
            # parallel_threshold=0: at N=30 the engine's small-plan fallback
            # would silently serialize this row, hiding what it measures
            # (pool spin-up cost on a small campaign).
            (f"parallel x{PARALLEL_WORKERS}, converged",
             EngineConfig(workers=PARALLEL_WORKERS, parallel_threshold=0)),
        ]
        reference = None
        baseline_rate = None
        checkpointed_cycles = None
        for label, config in modes:
            checkpointed, result, elapsed = run_campaign(config, INJECTIONS)
            if reference is None:
                reference = result.outcomes
            assert result.outcomes == reference, \
                "execution strategies must report identical statistics"
            if label == "serial, checkpointed":
                checkpointed_cycles = result.replayed_cycles
            if config.convergence_enabled and checkpointed_cycles:
                saved_fraction = 1 - result.replayed_cycles / checkpointed_cycles
                assert saved_fraction >= MIN_SAVED_CYCLE_FRACTION, (
                    f"convergence gating saved only {saved_fraction:.0%} of "
                    f"the checkpointed baseline's simulated cycles "
                    f"(floor {MIN_SAVED_CYCLE_FRACTION:.0%})")
            rate = INJECTIONS / elapsed
            if baseline_rate is None:
                baseline_rate = rate
            rows.append([label, "-", checkpointed.checkpoint_count,
                         checkpointed.fingerprint_count,
                         result.replayed_cycles,
                         f"{100 * result.saved_cycle_fraction:.0f}%",
                         "0%", f"{elapsed:.2f}s", f"{rate:.1f}",
                         f"{rate / baseline_rate:.2f}x"])

        # ------------------------------------------------- batched strategies
        checkpointed, scalar_ref, elapsed = run_campaign(
            EngineConfig(), BATCH_INJECTIONS)
        reference_rate = BATCH_INJECTIONS / elapsed
        rows.append([f"serial, converged (N={BATCH_INJECTIONS})", "-",
                     checkpointed.checkpoint_count,
                     checkpointed.fingerprint_count,
                     scalar_ref.replayed_cycles,
                     f"{100 * scalar_ref.saved_cycle_fraction:.0f}%",
                     "0%", f"{elapsed:.2f}s", f"{reference_rate:.1f}", "1.00x"])
        for width in BATCH_WIDTHS:
            checkpointed, result, elapsed = run_campaign(
                EngineConfig(batch_width=width), BATCH_INJECTIONS)
            assert result.outcomes == scalar_ref.outcomes \
                and result.per_site == scalar_ref.per_site, \
                "batched replay must report statistics bit-identical to scalar"
            rate = BATCH_INJECTIONS / elapsed
            speedup = rate / reference_rate
            if width >= 16:
                assert speedup >= MIN_BATCH_SPEEDUP, (
                    f"batched x{width} reached only {speedup:.1f}x over the "
                    f"serial-converged reference (floor {MIN_BATCH_SPEEDUP}x)")
            rows.append([f"batched x{width}, converged", width,
                         checkpointed.checkpoint_count,
                         checkpointed.fingerprint_count,
                         result.replayed_cycles,
                         f"{100 * result.saved_cycle_fraction:.0f}%",
                         f"{100 * result.evicted_fraction:.0f}%",
                         f"{elapsed:.2f}s", f"{rate:.1f}",
                         f"{speedup:.2f}x"])

        # ------------------------------------------------ rolling fingerprints
        # Metered group (EngineConfig(metrics=True) on both sides so the
        # convergence-phase timer records the actual hashing cost): full
        # digests at every grid point vs rolling digests under the adaptive
        # per-site schedule.  Statistics must stay bit-identical; the
        # acceptance target is MIN_ROLLING_SPEEDUP on throughput OR
        # MIN_FP_TIME_REDUCTION on the measured fingerprint-phase time.
        def fp_phase(result):
            timers = result.metrics.get("timers", {})
            entry = timers.get(PHASE_CONVERGENCE)
            seconds = entry["seconds"] if entry else 0.0
            probes = result.metrics.get("counters", {}).get(
                COUNT_FINGERPRINT_CHECKS, 0)
            return probes, seconds

        # The middle row is the ablation: rolling digests on the dense grid
        # alone cannot win on this core (the latch file spans only 3 banks
        # and nearly every bank is written every cycle, so per-probe cost is
        # flat) -- the win comes from the adaptive schedule slashing the
        # probe *count* on diverging sites.  The acceptance assert therefore
        # rides on the combined final row.
        rolling_modes = [
            ("serial, converged (metered)", EngineConfig(metrics=True), False),
            ("rolling fingerprints (metered)",
             EngineConfig(metrics=True, rolling_fingerprints=True), False),
            ("rolling + adaptive spacing (metered)",
             EngineConfig(metrics=True, rolling_fingerprints=True,
                          adaptive_check_spacing=True), True),
        ]
        full_rate = None
        full_seconds = None
        full_per_site = None
        for label, config, asserted in rolling_modes:
            checkpointed, result, elapsed = run_campaign(config, INJECTIONS)
            assert result.outcomes == reference, \
                "rolling fingerprints must not change outcome statistics"
            if full_per_site is None:
                full_per_site = result.per_site
            assert result.per_site == full_per_site, \
                "rolling fingerprints must not change per-site tallies"
            probes, fp_seconds = fp_phase(result)
            rate = INJECTIONS / elapsed
            if full_rate is None:
                full_rate = rate
                full_seconds = fp_seconds
                speedup = 1.0
            else:
                speedup = rate / full_rate
            if asserted:
                reduction = (full_seconds / fp_seconds
                             if fp_seconds > 0 else float("inf"))
                assert (speedup >= MIN_ROLLING_SPEEDUP
                        or reduction >= MIN_FP_TIME_REDUCTION), (
                    f"{label}: {speedup:.2f}x throughput (floor "
                    f"{MIN_ROLLING_SPEEDUP}x) and {reduction:.1f}x "
                    f"fingerprint-phase time reduction (floor "
                    f"{MIN_FP_TIME_REDUCTION}x) -- neither branch met")
            rows.append([label, "-", checkpointed.checkpoint_count,
                         checkpointed.fingerprint_count,
                         result.replayed_cycles,
                         f"{100 * result.saved_cycle_fraction:.0f}%",
                         f"{probes} probes / {1000 * fp_seconds:.1f}ms fp",
                         f"{elapsed:.2f}s", f"{rate:.1f}",
                         f"{speedup:.2f}x"])
        return rows

    rows = run_once(benchmark, payload)
    headers = ["strategy", "batch width", "checkpoints", "fingerprints",
               "replayed cycles", "cycles saved", "evicted / fp cost",
               "wall time", "injections/s", "speedup"]
    persist_bench("engine", headers, rows,
                  context={"workload": WORKLOAD, "injections": INJECTIONS,
                           "batch_injections": BATCH_INJECTIONS,
                           "batch_widths": list(BATCH_WIDTHS),
                           "parallel_workers": PARALLEL_WORKERS,
                           "min_saved_cycle_fraction": MIN_SAVED_CYCLE_FRACTION,
                           "min_batch_speedup": MIN_BATCH_SPEEDUP,
                           "min_rolling_speedup": MIN_ROLLING_SPEEDUP,
                           "min_fp_time_reduction": MIN_FP_TIME_REDUCTION},
                  seed=9, core=InOrderCore(),
                  config=EngineConfig())
    print()
    print(format_table(
        f"Engine scaling on {WORKLOAD} (InO-core); speedup is vs each "
        f"group's serial baseline row",
        headers, rows))
