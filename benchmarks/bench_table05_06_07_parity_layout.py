"""Tables 5-7: flip-flop spacing distributions and parity heuristic comparison.

Table 5: nearest-neighbour spacing in the baseline layout (SEMU exposure).
Table 6: spacing between members of the same parity group after the
minimum-spacing layout constraint.  Table 7: cost of the five parity-group
formation heuristics on the InO-core.
"""

from __future__ import annotations

from _harness import run_once

from repro.reporting import format_table
from repro.resilience import ParityHeuristic, ParityPlanner
from repro.reporting import format_table


def bench_table05_baseline_spacing(benchmark, frameworks):
    def payload():
        rows = []
        for family, framework in frameworks.items():
            distribution = framework.placement.baseline_spacing_distribution(sample=800)
            for label, fraction in distribution.as_rows():
                rows.append([family, label, f"{100 * fraction:.1f}%"])
        return rows

    rows = run_once(benchmark, payload)
    print()
    print(format_table("Table 5: baseline nearest-neighbour flip-flop spacing",
                       ["core", "distance", "fraction"], rows))


def bench_table06_parity_spacing(benchmark, ino_fw):
    def payload():
        planner = ParityPlanner(ino_fw.core.registry, ino_fw.timing, ino_fw.vulnerability)
        groups = planner.build_groups(list(range(ino_fw.core.flip_flop_count)),
                                      ParityHeuristic.OPTIMIZED)
        distribution = ino_fw.placement.parity_spacing_distribution(
            [list(group.members) for group in groups[:40]])
        return distribution

    distribution = run_once(benchmark, payload)
    rows = [[label, f"{100 * fraction:.1f}%"] for label, fraction in distribution.as_rows()]
    rows.append(["average distance", f"{distribution.average:.1f} flip-flops"])
    print()
    print(format_table("Table 6: same-parity-group spacing after the layout constraint",
                       ["distance", "fraction"], rows))


def bench_table07_parity_heuristics(benchmark, ino_fw):
    def payload():
        planner = ParityPlanner(ino_fw.core.registry, ino_fw.timing, ino_fw.vulnerability)
        return planner.compare_heuristics(list(range(ino_fw.core.flip_flop_count)),
                                          ino_fw.cost_model)

    comparison = run_once(benchmark, payload)
    rows = [[label, round(values["area_pct"], 1), round(values["power_pct"], 1),
             round(values["energy_pct"], 1)] for label, values in comparison.items()]
    print()
    print(format_table("Table 7: parity heuristic comparison (all InO flip-flops)",
                       ["heuristic", "area %", "power %", "energy %"], rows))
