"""Table 1 (processor designs studied) and Table 2 (flip-flop vulnerability).

Table 1: flip-flop counts, clock frequencies and measured IPC of the two
cores.  Table 2: fraction of flip-flops with SDC-causing, DUE-causing and
any error across the benchmark suite.
"""

from __future__ import annotations

from _harness import run_once

from repro.reporting import format_table
from repro.workloads import workload_by_name


def bench_table01_cores(benchmark, frameworks):
    def payload():
        rows = []
        for family, framework in frameworks.items():
            program = workload_by_name("crafty").program()
            result = framework.core.run(program)
            rows.append([framework.core.name, framework.core.flip_flop_count,
                         f"{framework.core.clock_mhz / 1000:.1f} GHz",
                         round(result.ipc, 2), len(framework.workloads)])
        return rows

    rows = run_once(benchmark, payload)
    print()
    print(format_table("Table 1: processor designs studied",
                       ["core", "flip-flops", "clock", "IPC", "benchmarks"], rows))


def bench_table02_ff_distribution(benchmark, frameworks):
    def payload():
        rows = []
        for family, framework in frameworks.items():
            vulnerability = framework.vulnerability
            rows.append([framework.core.name,
                         f"{100 * vulnerability.fraction_with_sdc():.1f}%",
                         f"{100 * vulnerability.fraction_with_due():.1f}%",
                         f"{100 * vulnerability.fraction_with_any():.1f}%"])
        return rows

    rows = run_once(benchmark, payload)
    print()
    print(format_table(
        "Table 2: flip-flops with SDC-/DUE-causing errors (paper: 60.1/78.3/81.2 InO, "
        "35.7/52.1/61 OoO)",
        ["core", "% FFs with SDC", "% FFs with DUE", "% FFs with SDC or DUE"], rows))
