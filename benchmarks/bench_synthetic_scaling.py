"""Synthetic-workload scaling: vulnerability across profiles and sizes.

Sweeps every built-in scenario family at several program sizes (cycle
budgets) on both cores, running each generated workload through the
checkpointed injection engine, and reports golden-run length, campaign
throughput and the measured SDC/DUE rates.  The table is persisted to
``BENCH_synthetic.json`` so the perf/vulnerability trajectory is tracked
across PRs.

The OoO-core rows use the smallest size only: its cycle-level model is an
order of magnitude slower per cycle, and the point here is cross-core
coverage, not statistics.
"""

from __future__ import annotations

import time

from _harness import persist_bench, run_once

from repro.engine import EngineConfig
from repro.microarch import InOrderCore, OutOfOrderCore
from repro.reporting import format_table
from repro.workloads import family_names
from repro.workloads.synthesis import run_synthetic_sweep

SEED = 2016
INJECTIONS_PER_WORKLOAD = 15
PER_FAMILY = 2
INO_TARGET_CYCLES = [1500, 6000]
OOO_TARGET_CYCLES = [1500]


def bench_synthetic_scaling(benchmark):
    def payload():
        rows = []
        plans = ([(InOrderCore(), cycles) for cycles in INO_TARGET_CYCLES]
                 + [(OutOfOrderCore(), cycles) for cycles in OOO_TARGET_CYCLES])
        for core, target_cycles in plans:
            started = time.perf_counter()
            sweep = run_synthetic_sweep(
                core, seed=SEED, per_family=PER_FAMILY,
                injections_per_workload=INJECTIONS_PER_WORKLOAD,
                config=EngineConfig(), target_cycles=target_cycles)
            elapsed = time.perf_counter() - started
            total = sum(p.injections for p in sweep.profiles)
            for profile in sweep.profiles:
                rows.append([core.name, profile.family, target_cycles,
                             profile.golden_cycles, profile.injections,
                             f"{100 * profile.sdc_rate:.1f}%",
                             f"{100 * profile.due_rate:.1f}%",
                             f"{total / elapsed:.1f}"])
        return rows

    rows = run_once(benchmark, payload)
    headers = ["core", "profile", "target cycles", "golden cycles",
               "injections", "SDC rate", "DUE rate", "inj/s (sweep)"]
    persist_bench("synthetic", headers, rows,
                  context={"seed": SEED, "per_family": PER_FAMILY,
                           "injections_per_workload": INJECTIONS_PER_WORKLOAD,
                           "families": family_names()},
                  seed=SEED, core=InOrderCore(), config=EngineConfig())
    print()
    print(format_table(
        f"Synthetic scaling: {len(family_names())} families x "
        f"{PER_FAMILY} members, {INJECTIONS_PER_WORKLOAD} injections each",
        headers, rows))
