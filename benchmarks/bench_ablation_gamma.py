"""Ablation: the effect of the gamma susceptibility correction (Sec. 2.1).

The paper reports improvements with the true gamma correction and notes that
conclusions hold for gamma = 1 as well; this ablation quantifies the
difference for representative techniques.
"""

from __future__ import annotations

from _harness import run_once

from repro.reporting import format_table
from repro.resilience import (
    ProtectedDesign,
    cfcss_descriptor,
    dfc_descriptor,
    eddi_descriptor,
    monitor_core_descriptor,
)


def bench_ablation_gamma_correction(benchmark, frameworks):
    def payload():
        rows = []
        cases = {"InO": [dfc_descriptor(), cfcss_descriptor(), eddi_descriptor()],
                 "OoO": [dfc_descriptor(), monitor_core_descriptor()]}
        for family, framework in frameworks.items():
            for technique in cases[family]:
                design = ProtectedDesign(registry=framework.core.registry,
                                         high_level=[technique])
                estimate = design.estimate_improvement(framework.vulnerability)
                gamma = design.gamma()
                rows.append([family, technique.name, round(gamma, 2),
                             round(estimate.sdc_improvement, 2),
                             round(estimate.sdc_improvement * gamma, 2),
                             round(estimate.due_improvement, 2),
                             round(estimate.due_improvement * gamma, 2)])
        return rows

    rows = run_once(benchmark, payload)
    print()
    print(format_table("Ablation: improvement with and without the gamma correction",
                       ["core", "technique", "gamma", "SDC (with gamma)",
                        "SDC (gamma=1)", "DUE (with gamma)", "DUE (gamma=1)"], rows))
