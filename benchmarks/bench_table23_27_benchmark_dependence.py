"""Tables 23-27: application-benchmark dependence (Sec. 4).

Tables 23/24: trained vs validated improvement for standalone high-level
techniques.  Tables 25/26: selective-hardening improvement and cost before
and after LHL augmentation of the unprotected flip-flops.  Table 27: subset
similarity of per-benchmark vulnerability deciles (Eq. 2).
"""

from __future__ import annotations

from _harness import run_once

from repro.analysis import BenchmarkDependenceStudy, make_splits, paired_p_value, subset_similarity
from repro.reporting import format_table
from repro.resilience import abft_correction_descriptor, cfcss_descriptor, dfc_descriptor


def bench_table23_24_high_level_train_validate(benchmark, ino_fw):
    def payload():
        study = BenchmarkDependenceStudy(ino_fw.core.registry, ino_fw.vulnerability,
                                         ino_fw.timing)
        splits = make_splits(ino_fw.benchmark_names(), training_size=4, count=12, seed=3)
        rows = []
        for technique in (dfc_descriptor(), cfcss_descriptor(),
                          abft_correction_descriptor()):
            result = study.evaluate_high_level(technique, splits)
            differences = [result.trained_sdc - result.validated_sdc] * len(splits)
            rows.append([technique.name, round(result.trained_sdc, 2),
                         round(result.validated_sdc, 2),
                         f"{result.sdc_underestimate_pct:.1f}%",
                         round(result.trained_due, 2), round(result.validated_due, 2),
                         f"{paired_p_value(differences):.2g}"])
        return rows

    rows = run_once(benchmark, payload)
    print()
    print(format_table("Tables 23/24: trained vs validated improvement (high-level)",
                       ["technique", "SDC train", "SDC validate", "SDC delta",
                        "DUE train", "DUE validate", "p-value"], rows))


def bench_table25_26_lhl_augmentation(benchmark, ino_fw):
    def payload():
        study = BenchmarkDependenceStudy(ino_fw.core.registry, ino_fw.vulnerability,
                                         ino_fw.timing)
        split = make_splits(ino_fw.benchmark_names(), training_size=4, count=1, seed=9)[0]
        rows = []
        for target in (5.0, 10.0, 50.0):
            plain, plain_cost = study.evaluate_selective(target, split,
                                                         cost_model=ino_fw.cost_model)
            lhl, lhl_cost = study.evaluate_selective(target, split, with_lhl=True,
                                                     cost_model=ino_fw.cost_model)
            rows.append([f"{target:g}x", round(plain.trained_sdc, 1),
                         round(plain.validated_sdc, 1), round(lhl.validated_sdc, 1),
                         round(plain_cost.energy_pct, 1), round(lhl_cost.energy_pct, 1)])
        return rows

    rows = run_once(benchmark, payload)
    print()
    print(format_table(
        "Tables 25/26: SDC improvement and cost before/after LHL augmentation (InO)",
        ["target", "trained", "validated", "validated after LHL",
         "energy % before", "energy % after"], rows))


def bench_table27_subset_similarity(benchmark, ino_fw):
    def payload():
        return subset_similarity(ino_fw.vulnerability)

    similarities = run_once(benchmark, payload)
    rows = [[f"{10 * i}-{10 * (i + 1)}%", round(value, 2)]
            for i, value in enumerate(similarities)]
    print()
    print(format_table("Table 27: vulnerability-decile similarity across benchmarks "
                       "(paper: 0.83 for the top decile, ~0 for the middle)",
                       ["subset (by decreasing vulnerability)", "similarity (Eq. 2)"],
                       rows))
