"""Tests for the micro-architectural core models."""

from __future__ import annotations

import pytest

from repro.isa import assemble
from repro.isa.simulator import FunctionalSimulator
from repro.microarch import (
    InOrderCore,
    MemoryFault,
    MemorySystem,
    OutOfOrderCore,
    TerminationReason,
    TrapKind,
)
from repro.microarch.flipflop import FlipFlopRegistry
from repro.microarch.state import LatchState
from repro.workloads import full_suite, suite_for_core


class TestFlipFlopRegistry:
    def test_registration_and_flat_indices(self):
        registry = FlipFlopRegistry("test")
        a = registry.register("a", 4, "u0")
        b = registry.register("b", 8, "u1")
        assert a.first_index == 0 and b.first_index == 4
        assert registry.total_flip_flops == 12
        site = registry.site(9)
        assert site.structure.name == "b" and site.bit == 5

    def test_duplicate_and_invalid(self):
        registry = FlipFlopRegistry("test")
        registry.register("a", 4, "u0")
        with pytest.raises(ValueError):
            registry.register("a", 2, "u0")
        with pytest.raises(ValueError):
            registry.register("b", 0, "u0")
        with pytest.raises(IndexError):
            registry.site(99)

    def test_freeze_prevents_additions(self):
        registry = FlipFlopRegistry("test")
        registry.register("a", 4, "u0")
        registry.freeze()
        with pytest.raises(ValueError):
            registry.register("b", 4, "u0")

    def test_units_and_fractions(self):
        registry = FlipFlopRegistry("test")
        registry.register("a", 4, "u0")
        registry.register("b", 4, "u1", architectural=False)
        assert registry.units() == ["u0", "u1"]
        assert registry.non_architectural_fraction() == 0.5


class TestLatchState:
    def test_set_get_masking_and_flip(self):
        registry = FlipFlopRegistry("test")
        registry.register("field", 4, "u")
        registry.freeze()
        latches = LatchState(registry)
        latches.set("field", 0x1F)
        assert latches.get("field") == 0xF
        latches.flip_bit("field", 0)
        assert latches.get("field") == 0xE
        name = latches.flip_flat(3)
        assert name == "field" and latches.get("field") == 0x6

    def test_signed_round_trip(self):
        registry = FlipFlopRegistry("test")
        registry.register("field", 8, "u")
        registry.freeze()
        latches = LatchState(registry)
        latches.set_signed("field", -3)
        assert latches.get_signed("field") == -3

    def test_snapshot_restore(self):
        registry = FlipFlopRegistry("test")
        registry.register("field", 8, "u")
        registry.freeze()
        latches = LatchState(registry)
        latches.set("field", 55)
        snapshot = latches.snapshot()
        latches.set("field", 1)
        latches.restore(snapshot)
        assert latches.get("field") == 55

    def test_restore_rejects_unknown_structure(self):
        """A snapshot naming a structure this registry lacks must raise, not
        half-restore: silently skipping it would leave the core in a state
        neither run ever held (regression test for the array-backed store)."""
        registry = FlipFlopRegistry("test")
        registry.register("field", 8, "u")
        registry.freeze()
        latches = LatchState(registry)
        latches.set("field", 7)
        with pytest.raises(ValueError, match="unknown flip-flop structure"):
            latches.restore({"field": 3, "ghost.latch": 1})
        assert latches.get("field") == 7, "failed restore must not mutate"


class TestMemorySystem:
    def test_word_and_byte_access(self):
        from repro.isa.program import DEFAULT_DATA_BASE

        memory = MemorySystem()
        memory.reset(assemble("halt"))
        memory.store_word(DEFAULT_DATA_BASE, 0x11223344)
        assert memory.load_word(DEFAULT_DATA_BASE) == 0x11223344
        assert memory.load_byte(DEFAULT_DATA_BASE + 1) == 0x33
        memory.store_byte(DEFAULT_DATA_BASE + 3, 0xAA)
        assert memory.load_word(DEFAULT_DATA_BASE) == 0xAA223344

    @pytest.mark.parametrize("address", [0x0, 0xFFFF_FFF0])
    def test_unmapped_access_faults(self, address):
        memory = MemorySystem()
        memory.reset(assemble("halt"))
        with pytest.raises(MemoryFault):
            memory.load_word(address)

    def test_misaligned_access_faults(self):
        from repro.isa.program import DEFAULT_DATA_BASE

        memory = MemorySystem()
        memory.reset(assemble("halt"))
        with pytest.raises(MemoryFault):
            memory.load_word(DEFAULT_DATA_BASE + 2)


class TestCoreProperties:
    def test_flip_flop_counts_match_paper_scale(self, ino_core, ooo_core):
        # Table 1: 1,250 flip-flops (InO) and 13,819 (OoO); our models land in
        # the same regime with the OoO core roughly an order of magnitude larger.
        assert 600 <= ino_core.flip_flop_count <= 2000
        assert 10_000 <= ooo_core.flip_flop_count <= 16_000
        assert ooo_core.flip_flop_count > 8 * ino_core.flip_flop_count

    def test_vanish_class_fraction_ordering(self, ino_core, ooo_core):
        # The OoO core has a larger fraction of hint/bookkeeping flip-flops.
        assert (ooo_core.registry.non_architectural_fraction()
                > ino_core.registry.non_architectural_fraction())

    def test_clock_frequencies(self, ino_core, ooo_core):
        assert ino_core.clock_mhz == 2000.0
        assert ooo_core.clock_mhz == 600.0


@pytest.mark.parametrize("workload", full_suite(), ids=lambda w: w.name)
class TestInOrderCorrectness:
    def test_matches_reference_output(self, ino_core, workload):
        result = ino_core.run(workload.program(), max_cycles=300_000)
        assert result.reason is TerminationReason.HALTED
        assert result.output == workload.expected_output()

    def test_matches_functional_simulator(self, ino_core, workload):
        functional = FunctionalSimulator().run_output(workload.program())
        assert functional == workload.expected_output()


@pytest.mark.parametrize("workload", suite_for_core("OoO-core"), ids=lambda w: w.name)
def test_out_of_order_correctness(ooo_core, workload):
    result = ooo_core.run(workload.program(), max_cycles=300_000)
    assert result.reason is TerminationReason.HALTED
    assert result.output == workload.expected_output()


def test_ipc_regimes(ino_core, ooo_core):
    """InO IPC ~0.4 and OoO IPC >1 (Table 1 regime)."""
    from repro.workloads import workload_by_name

    program = workload_by_name("crafty").program()
    ino = ino_core.run(program)
    ooo = ooo_core.run(program)
    assert 0.2 < ino.ipc < 0.6
    assert ooo.ipc > 0.9
    assert ooo.cycles < ino.cycles


def test_fetch_fault_traps():
    core = InOrderCore()
    program = assemble("nop\nnop")  # no halt: falls off the text segment
    result = core.run(program, max_cycles=1000)
    assert result.reason is TerminationReason.TRAP
    assert result.trap is TrapKind.FETCH_FAULT


def test_illegal_memory_access_traps():
    core = OutOfOrderCore()
    program = assemble("li t0, 0\nlw t1, 0(t0)\nhalt")
    result = core.run(program, max_cycles=1000)
    assert result.reason is TerminationReason.TRAP
    assert result.trap is TrapKind.MEMORY_FAULT


def test_assert_instruction_is_detected_outcome():
    core = InOrderCore()
    program = assemble("li t0, 1\nli t1, 2\nassert_eq t0, t1\nhalt")
    result = core.run(program, max_cycles=1000)
    assert result.reason is TerminationReason.DETECTED
    assert result.trap is TrapKind.SOFTWARE_ASSERTION


def test_run_result_watchdog_hang():
    core = InOrderCore()
    program = assemble("loop:\n j loop\n halt")
    result = core.run(program, max_cycles=500)
    assert result.reason is TerminationReason.HANG
    assert result.cycles == 500
