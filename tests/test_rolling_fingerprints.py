"""Rolling fingerprints: the rolling == full bit-identity contract.

``BaseCore.rolling_fingerprint()`` must be byte-identical to
``state_fingerprint()`` at every cycle -- that equality is what lets the
convergence gate swap digest implementations without perturbing a single
outcome.  This module property-tests the contract under random state
mutation on both cores, pins the component caches (latch banks, memory
pages) with unit tests, and asserts the engine-level consequences: campaign
statistics are bit-identical with rolling digests and adaptive per-site
check spacing on or off, across serial / parallel / batched executors and
across repeat campaigns that refine the learned schedule.
"""

from __future__ import annotations

import pickle
import random
from types import SimpleNamespace

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import EngineConfig, GoldenRunCache, InjectionEngine
from repro.engine.executors import _ConvergedEarly, _convergence_hook
from repro.engine.schedule import (
    MAX_DENSE_WINDOW,
    MIN_DENSE_WINDOW,
    ConvergenceSchedule,
    SitePlan,
)
from repro.faultinjection import HighLevelInjector, InjectionLevel
from repro.isa.program import DEFAULT_DATA_BASE
from repro.microarch import InOrderCore, OutOfOrderCore
from repro.microarch.memory import MemorySystem
from repro.microarch.state import LatchState, TrackedLatchState
from repro.workloads import workload_by_name

CORE_CLASSES = (InOrderCore, OutOfOrderCore)


@pytest.fixture(scope="module")
def program():
    return workload_by_name("vpr").program()


class TestRollingEqualsFull:
    """The contract itself, at every probe, under adversarial mutation."""

    @pytest.mark.parametrize("core_cls", CORE_CLASSES,
                             ids=lambda c: c.__name__)
    @settings(max_examples=4, deadline=None)
    @given(data=st.data())
    def test_equal_at_every_probe_under_random_flips(self, core_cls, program,
                                                     data):
        seed = data.draw(st.integers(min_value=0, max_value=2**16),
                         label="seed")
        probe_interval = data.draw(st.sampled_from([1, 4, 16]),
                                   label="probe_interval")
        tracked = data.draw(st.booleans(), label="latch_write_tracking")
        enable_cycle = data.draw(st.integers(min_value=0, max_value=200),
                                 label="enable_cycle")
        rng = random.Random(seed)
        probes = 0

        def hook(core, cycle):
            nonlocal probes
            if tracked and cycle == enable_cycle:
                core.latches.enable_write_tracking()
            if rng.random() < 0.10:
                core.latches.flip_flat(
                    rng.randrange(core.registry.total_flip_flops))
            if rng.random() < 0.10:
                core.memory.store_word(
                    DEFAULT_DATA_BASE + 4 * rng.randrange(2048),
                    rng.getrandbits(32))
            if cycle % probe_interval == 0:
                probes += 1
                assert core.rolling_fingerprint() == core.state_fingerprint()

        core_cls().run(program, max_cycles=400, cycle_hook=hook)
        assert probes > 0

    @pytest.mark.parametrize("core_cls", CORE_CLASSES,
                             ids=lambda c: c.__name__)
    def test_equal_through_snapshot_restore(self, core_cls, program):
        # Restore invalidates every rolling cache wholesale; the next probe
        # must rebuild them to the exact full digest.
        core = core_cls()
        snapshots = []
        core.run(program, max_cycles=600,
                 cycle_hook=lambda c, cycle: snapshots.append(c.snapshot())
                 if cycle == 64 else None)
        core.rolling_fingerprint()  # prime the caches with terminal state
        core.restore(program, snapshots[0])
        assert core.rolling_fingerprint() == core.state_fingerprint()


class TestMemoryRollingDigest:
    def test_empty_and_zero_store_normalisation(self):
        mem = MemorySystem()
        assert mem.fingerprint_digest() == mem.fingerprint_digest_full() == b""
        address = DEFAULT_DATA_BASE
        mem.store_word(address, 7)
        assert mem.fingerprint_digest() == mem.fingerprint_digest_full()
        # Storing zero is architecturally a deletion: the page must drop the
        # word on both digest paths.
        mem.store_word(address, 0)
        assert mem.fingerprint_digest() == mem.fingerprint_digest_full() == b""

    def test_byte_stores_and_cross_page_writes(self):
        mem = MemorySystem()
        mem.store_word(DEFAULT_DATA_BASE, 0x11223344)
        mem.store_byte(DEFAULT_DATA_BASE + 2, 0xAB)
        mem.store_word(DEFAULT_DATA_BASE + 4096, 5)  # a different page
        assert mem.fingerprint_digest() == mem.fingerprint_digest_full()
        assert mem.load_byte(DEFAULT_DATA_BASE + 2) == 0xAB

    def test_restore_words_rebuilds_the_mirror(self):
        mem = MemorySystem()
        mem.store_word(DEFAULT_DATA_BASE, 1)
        mem.store_word(DEFAULT_DATA_BASE + 2048, 2)
        digest = mem.fingerprint_digest()
        image = mem.snapshot_words()
        mem.store_word(DEFAULT_DATA_BASE, 9)
        mem.store_word(DEFAULT_DATA_BASE + 8192, 3)
        assert mem.fingerprint_digest() != digest
        mem.restore_words(image)
        assert mem.fingerprint_digest() == mem.fingerprint_digest_full()
        assert mem.fingerprint_digest() == digest

    @settings(max_examples=30, deadline=None)
    @given(ops=st.lists(
        st.tuples(st.integers(min_value=0, max_value=63),
                  st.integers(min_value=0, max_value=2**32 - 1),
                  st.booleans()),
        max_size=40))
    def test_equal_after_any_store_sequence(self, ops):
        # Addresses are spread over many pages (stride 521 words) so page
        # creation, mutation and all-zero deletion all get exercised; the
        # interleaved probes make the journal consume partial histories.
        mem = MemorySystem()
        for slot, value, probe in ops:
            mem.store_word(DEFAULT_DATA_BASE + 4 * slot * 521, value)
            if probe:
                assert mem.fingerprint_digest() == mem.fingerprint_digest_full()
        assert mem.fingerprint_digest() == mem.fingerprint_digest_full()


class TestTrackedLatchState:
    def test_class_swap_preserves_values_and_digests(self, program):
        core = InOrderCore()
        core.run(program, max_cycles=200)
        latches = core.latches
        full = latches.fingerprint_digest_full()
        # Untracked, the rolling digest degrades to the full recompute.
        assert not latches.write_tracking
        assert latches.fingerprint_digest() == full
        latches.enable_write_tracking()
        assert type(latches) is TrackedLatchState
        assert latches.write_tracking
        assert latches.fingerprint_digest() == full
        name = latches.structures()[0].name
        latches.flip_bit(name, 0)
        changed = latches.fingerprint_digest()
        assert changed == latches.fingerprint_digest_full() != full
        latches.disable_write_tracking()
        assert type(latches) is LatchState
        assert latches.fingerprint_digest() == changed

    def test_tracked_instance_pickle_roundtrip(self, program):
        core = InOrderCore()
        core.run(program, max_cycles=200)
        core.latches.enable_write_tracking()
        core.latches.fingerprint_digest()  # warm the bank cache
        clone = pickle.loads(pickle.dumps(core.latches))
        assert type(clone) is TrackedLatchState
        assert clone.serialize() == core.latches.serialize()
        assert clone.fingerprint_digest() == \
            core.latches.fingerprint_digest_full()

    def test_bulk_mutations_mark_banks_dirty(self, program):
        core = InOrderCore()
        core.run(program, max_cycles=200)
        latches = core.latches
        latches.enable_write_tracking()
        for mutate in (lambda: latches.clear_unit("fetch"),
                       latches.clear,
                       lambda: latches.deserialize(latches.serialize()),
                       lambda: latches.restore(latches.snapshot())):
            mutate()
            assert latches.fingerprint_digest() == \
                latches.fingerprint_digest_full()


class TestSitePlan:
    def test_dense_window_then_backoff(self):
        plan = SitePlan(dense_window=4, max_gap=8)
        checked = [k for k in range(1, 64) if plan.should_check(k)]
        assert checked[:4] == [1, 2, 3, 4]
        past_window = [k - 4 for k in checked[4:]]
        assert all(k % 8 == 0 or (k & (k - 1)) == 0 for k in past_window)

    def test_never_probes_at_or_before_the_injection(self):
        plan = SitePlan()
        assert not plan.should_check(0)
        assert not plan.should_check(-5)

    @settings(max_examples=50, deadline=None)
    @given(dense=st.integers(min_value=MIN_DENSE_WINDOW,
                             max_value=MAX_DENSE_WINDOW),
           max_gap=st.sampled_from([8, 16, 32, 64]))
    def test_gap_is_bounded_by_max_gap(self, dense, max_gap):
        plan = SitePlan(dense_window=dense, max_gap=max_gap)
        checked = [k for k in range(1, dense + 6 * max_gap)
                   if plan.should_check(k)]
        gaps = [b - a for a, b in zip(checked, checked[1:])]
        assert max(gaps) <= max_gap


class TestConvergenceSchedule:
    def test_unknown_site_gets_the_default_plan(self):
        assert ConvergenceSchedule().plan(3, 16) == SitePlan()

    def test_diverging_site_drops_to_the_minimum_window(self):
        schedule = ConvergenceSchedule()
        schedule.observe({5: (0, 4, 0)})
        assert schedule.plan(5, 16).dense_window == MIN_DENSE_WINDOW

    def test_converging_site_window_tracks_observed_lag(self):
        schedule = ConvergenceSchedule()
        interval = 16
        # 4 convergences at a mean lag of 5 grid points each.
        schedule.observe({2: (4, 0, 4 * 5 * interval)})
        assert schedule.plan(2, interval).dense_window == 5 + 2

    def test_observation_fold_is_order_invariant(self):
        batches = [{1: (1, 0, 32)}, {1: (0, 2, 0), 2: (1, 0, 16)},
                   {2: (2, 1, 64)}]
        forward, backward = ConvergenceSchedule(), ConvergenceSchedule()
        for batch in batches:
            forward.observe(batch)
        for batch in reversed(batches):
            backward.observe(batch)
        assert forward.history() == backward.history()
        assert forward.plans_for([1, 2, 3], 16) == \
            backward.plans_for([1, 2, 3], 16)


class TestConvergenceHookAudit:
    """The runtime leg of the contract: sparse rolling-vs-full cross-checks."""

    def _hooked_core(self, program):
        core = InOrderCore()
        core.run(program, max_cycles=400)
        core.latches.enable_write_tracking()
        assert core.rolling_fingerprint() == core.state_fingerprint()
        return core

    def _checkpointed(self, expected):
        return SimpleNamespace(fingerprints={8: expected},
                               fingerprint_interval=8)

    def test_stale_component_cache_raises(self, program):
        core = self._hooked_core(program)
        # Poison a clean bank payload behind the journal's back: exactly the
        # failure mode of state mutated outside the dirty-tracking path.
        core.latches._bank_cache[0] = pickle.dumps(("poisoned",), protocol=4)
        hook = _convergence_hook(lambda c, cycle: None, 0,
                                 self._checkpointed(b"\x00" * 16),
                                 rolling=True, audit_interval=1)
        with pytest.raises(RuntimeError, match="stale"):
            hook(core, 8)

    def test_audit_interval_zero_disables_the_cross_check(self, program):
        core = self._hooked_core(program)
        core.latches._bank_cache[0] = pickle.dumps(("poisoned",), protocol=4)
        hook = _convergence_hook(lambda c, cycle: None, 0,
                                 self._checkpointed(b"\x00" * 16),
                                 rolling=True, audit_interval=0)
        hook(core, 8)  # no audit, no match: the replay just continues

    def test_matching_rolling_digest_converges(self, program):
        core = self._hooked_core(program)
        hook = _convergence_hook(lambda c, cycle: None, 0,
                                 self._checkpointed(core.rolling_fingerprint()),
                                 rolling=True, audit_interval=1)
        with pytest.raises(_ConvergedEarly) as exc:
            hook(core, 8)
        assert exc.value.cycle == 8

    def test_plan_skips_suppress_the_probe(self, program):
        core = self._hooked_core(program)
        plan = SitePlan(dense_window=0, max_gap=32)
        assert plan.should_check(1)   # backoff probes powers of two
        assert not plan.should_check(3)
        hook = _convergence_hook(
            lambda c, cycle: None, 0,
            SimpleNamespace(fingerprints={24: core.rolling_fingerprint()},
                            fingerprint_interval=8),
            rolling=True, plan=plan)
        hook(core, 24)  # grid point 3: skipped, so no _ConvergedEarly


class TestEngineBitExactness:
    """Rolling digests and adaptive spacing must be invisible in statistics."""

    @pytest.mark.parametrize("core_cls", CORE_CLASSES,
                             ids=lambda c: c.__name__)
    def test_rolling_and_adaptive_match_full_across_executors(self, core_cls,
                                                              program):
        def run(config):
            engine = InjectionEngine(core_cls(), program, seed=13,
                                     config=config,
                                     golden_cache=GoldenRunCache())
            return engine.run(injections=8)

        reference = run(EngineConfig())
        variants = [
            EngineConfig(rolling_fingerprints=True),
            EngineConfig(rolling_fingerprints=True,
                         fingerprint_audit_interval=1),
            EngineConfig(rolling_fingerprints=True,
                         adaptive_check_spacing=True),
            EngineConfig(rolling_fingerprints=True,
                         adaptive_check_spacing=True,
                         workers=2, parallel_threshold=0, chunk_size=3),
            EngineConfig(rolling_fingerprints=True,
                         adaptive_check_spacing=True, batch_width=8),
        ]
        for config in variants:
            result = run(config)
            assert result.outcomes == reference.outcomes
            assert result.per_site == reference.per_site

    def test_repeat_campaigns_refine_the_schedule_without_drift(self, program):
        adaptive = InjectionEngine(
            InOrderCore(), program, seed=21,
            config=EngineConfig(rolling_fingerprints=True,
                                adaptive_check_spacing=True),
            golden_cache=GoldenRunCache())
        full = InjectionEngine(InOrderCore(), program, seed=21,
                               config=EngineConfig(),
                               golden_cache=GoldenRunCache())
        for _ in range(2):
            learned = adaptive.run(injections=10)
            dense = full.run(injections=10)
            assert learned.outcomes == dense.outcomes
            assert learned.per_site == dense.per_site
        # The second campaign ran against plans learned from the first.
        assert adaptive._schedule.history()


class TestHighLevelCampaignGate:
    @pytest.mark.parametrize("level", [InjectionLevel.REGISTER_UNIFORM,
                                       InjectionLevel.VARIABLE_WRITE],
                             ids=lambda level: level.value)
    def test_gate_and_rolling_leave_counts_bit_identical(self, small_workload,
                                                         level):
        program = small_workload.program()
        results = {}
        for convergence, rolling in ((False, False), (True, False),
                                     (True, True)):
            injector = HighLevelInjector(InOrderCore(), seed=5)
            results[(convergence, rolling)] = injector.campaign(
                level, program, count=25, convergence=convergence,
                rolling=rolling)
        ungated = results[(False, False)]
        for result in results.values():
            assert result.counts == ungated.counts
            assert result.level is level
        assert ungated.converged_count == 0 and ungated.saved_cycles == 0
        gated = results[(True, False)]
        assert gated.converged_count > 0
        assert gated.saved_cycles > 0
        assert gated.replayed_cycles < ungated.replayed_cycles
        assert results[(True, True)].converged_count == gated.converged_count
        assert results[(True, True)].saved_cycles == gated.saved_cycles
