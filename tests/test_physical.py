"""Tests for the physical-design models."""

from __future__ import annotations

import pytest

from repro.physical import (
    CELL_LIBRARY,
    CellType,
    CostReport,
    DesignCostModel,
    ParityGroupPlan,
    Placement,
    RecoveryKind,
    TimingModel,
    available_recoveries,
    budget_for_core,
    levels_for_group_size,
    recovery_cost,
)


class TestCellLibrary:
    def test_table4_values(self):
        dice = CELL_LIBRARY[CellType.LEAP_DICE]
        assert dice.soft_error_rate == pytest.approx(2.0e-4)
        assert dice.area == 2.0 and dice.energy == 1.8
        lhl = CELL_LIBRARY[CellType.LHL]
        assert lhl.suppression == pytest.approx(0.75)
        assert CELL_LIBRARY[CellType.EDS].detects
        assert CELL_LIBRARY[CellType.EDS].suppression == 0.0

    def test_leap_ctrl_modes(self):
        economy = CELL_LIBRARY[CellType.LEAP_CTRL_ECONOMY]
        resilient = CELL_LIBRARY[CellType.LEAP_CTRL_RESILIENT]
        assert economy.area == resilient.area == 3.1
        assert economy.power < resilient.power
        assert economy.suppression == 0.0 and resilient.suppression > 0.99


class TestRecoveryCosts:
    def test_per_core_availability(self):
        assert RecoveryKind.FLUSH in available_recoveries("InO-core")
        assert RecoveryKind.ROB in available_recoveries("OoO-core")
        assert RecoveryKind.ROB not in available_recoveries("InO-core")

    def test_table15_values(self):
        ir = recovery_cost("InO-core", RecoveryKind.IR)
        assert ir.area_pct == 16.0 and ir.latency_cycles == 47
        rob = recovery_cost("OoO-core", RecoveryKind.ROB)
        assert rob.energy_pct == pytest.approx(0.01)
        flush = recovery_cost("InO-core", RecoveryKind.FLUSH)
        assert "memory" in flush.unrecoverable_units

    def test_unknown_combination_raises(self):
        with pytest.raises(KeyError):
            recovery_cost("InO-core", RecoveryKind.ROB)


class TestCostReport:
    def test_combination_compounds_energy(self):
        a = CostReport.from_power_and_time(1.0, 2.0, 0.0)
        b = CostReport.from_power_and_time(0.5, 1.0, 10.0)
        combined = a.combined_with(b)
        assert combined.area_pct == pytest.approx(1.5)
        assert combined.power_pct == pytest.approx(3.0)
        assert combined.exec_time_pct == pytest.approx(10.0)
        assert combined.energy_pct > combined.power_pct

    def test_energy_equals_power_without_time_impact(self):
        report = CostReport.from_power_and_time(1.0, 5.0, 0.0)
        assert report.energy_pct == pytest.approx(5.0)


class TestDesignCostModel:
    @pytest.mark.parametrize("core_name,expected_energy", [("InO-core", 22.4),
                                                           ("OoO-core", 9.4)])
    def test_all_ff_leap_dice_matches_anchor(self, core_name, expected_energy,
                                             ino_core, ooo_core):
        core = ino_core if core_name == "InO-core" else ooo_core
        model = DesignCostModel(core.name, core.flip_flop_count)
        report = model.hardened_cells_cost({CellType.LEAP_DICE: core.flip_flop_count})
        assert report.energy_pct == pytest.approx(expected_energy, rel=0.05)
        budget = budget_for_core(core_name)
        assert report.area_pct == pytest.approx(100 * budget.flip_flop_area_fraction,
                                                rel=0.05)

    def test_all_ff_parity_matches_anchor(self, ino_core):
        # The Table 3 anchor (10.9% area / 23.1% power for all flip-flops)
        # corresponds to the Fig. 3 optimized mix of unpipelined and
        # pipelined groups; an all-unpipelined plan must come in somewhat
        # cheaper and an all-pipelined plan somewhat costlier.
        model = DesignCostModel(ino_core.name, ino_core.flip_flop_count)
        count = ino_core.flip_flop_count
        unpipelined = [ParityGroupPlan(tuple(range(start, start + 32)), False, True)
                       for start in range(0, count - 31, 32)]
        pipelined = [ParityGroupPlan(tuple(range(start, start + 16)), True, True)
                     for start in range(0, count - 15, 16)]
        cheap = model.parity_cost(unpipelined)
        costly = model.parity_cost(pipelined)
        assert cheap.area_pct < 10.9 < costly.area_pct * 1.35
        assert cheap.power_pct < 23.1 < costly.power_pct * 1.15
        assert cheap.power_pct == pytest.approx(23.1, rel=0.25)

    def test_parity_cost_scales_with_coverage(self, ino_core):
        model = DesignCostModel(ino_core.name, ino_core.flip_flop_count)
        small = model.parity_cost([ParityGroupPlan(tuple(range(16)), True, True)])
        large = model.parity_cost([ParityGroupPlan(tuple(range(16)), True, True),
                                   ParityGroupPlan(tuple(range(16, 32)), True, True)])
        assert large.area_pct > small.area_pct

    def test_pipelined_parity_costlier_than_unpipelined(self, ino_core):
        model = DesignCostModel(ino_core.name, ino_core.flip_flop_count)
        members = tuple(range(16))
        pipelined = model.parity_cost([ParityGroupPlan(members, True, True)])
        unpipelined = model.parity_cost([ParityGroupPlan(members, False, True)])
        assert pipelined.power_pct > unpipelined.power_pct

    def test_eds_cost_anchor(self, ino_core):
        model = DesignCostModel(ino_core.name, ino_core.flip_flop_count)
        report = model.eds_cost(ino_core.flip_flop_count)
        assert report.area_pct == pytest.approx(10.7, rel=0.05)
        assert report.power_pct == pytest.approx(22.9, rel=0.05)

    def test_recovery_report(self, ino_core):
        model = DesignCostModel(ino_core.name, ino_core.flip_flop_count)
        report = model.recovery_report(RecoveryKind.FLUSH)
        assert report.area_pct == pytest.approx(0.6)


class TestPlacement:
    def test_baseline_spacing_distribution(self, ino_core):
        placement = Placement(ino_core.registry, seed=1)
        distribution = placement.baseline_spacing_distribution()
        assert sum(distribution.fractions) == pytest.approx(1.0, abs=1e-6)
        # A majority of flip-flops sit closer than one flip-flop length
        # (Table 5 reports 65.2% for the InO-core).
        assert distribution.fractions[0] > 0.4

    def test_parity_groups_respect_minimum_spacing(self, ino_core):
        placement = Placement(ino_core.registry, seed=1)
        groups = [list(range(start, start + 16)) for start in range(0, 128, 16)]
        distribution = placement.parity_spacing_distribution(groups)
        assert distribution.fractions[0] == 0.0  # no members within SEMU range
        assert distribution.average > 1.0

    def test_positions_deterministic(self, ino_core):
        a = Placement(ino_core.registry, seed=4)
        b = Placement(ino_core.registry, seed=4)
        assert a.position(10) == b.position(10)
        assert a.distance(0, 1) == b.distance(0, 1)


class TestTimingModel:
    def test_slack_levels_bounded(self, ino_core):
        timing = TimingModel(ino_core.registry, seed=2)
        for index in range(0, ino_core.flip_flop_count, 97):
            assert 1 <= timing.slack_levels(index) <= 8

    def test_group_size_levels(self):
        assert levels_for_group_size(32) == 5
        assert levels_for_group_size(16) == 4
        assert levels_for_group_size(2) == 1

    def test_fraction_with_slack_monotone_in_group_size(self, ino_core):
        timing = TimingModel(ino_core.registry, seed=2)
        assert timing.fraction_with_slack(16) >= timing.fraction_with_slack(32)

    def test_ranked_by_slack(self, ino_core):
        timing = TimingModel(ino_core.registry, seed=2)
        ranked = timing.ranked_by_slack()
        assert len(ranked) == ino_core.flip_flop_count
        assert timing.slack_levels(ranked[0]) >= timing.slack_levels(ranked[-1])
