"""Tests for the incremental Pareto exploration engine.

Covers the invariants the exploration refactor rests on:

1. prefix-schedule planning is bit-identical to per-target replanning across
   randomized targets, policies and recoveries on both cores (hypothesis);
2. the incremental explorer matches the replan-from-scratch reference
   evaluation, including non-tunable and high-level combinations;
3. sharded record streaming is independent of worker count and sharding;
4. ParetoFrontier dominance, pruning and order-independence (labels
   included, via the deterministic coordinate tie-break);
5. the incumbent/lower-bound pruned cheapest-combination search returns the
   exhaustive search's answer;
6. the design-free costed evaluation path (incremental cost curves) is
   bit-identical to materialising and costing the design;
7. measured-CPI calibration of synthetic cycle budgets.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.pareto import ParetoFrontier, ParetoPoint
from repro.core import (
    CrossLayerExplorer,
    ResilienceTarget,
    SelectionPolicy,
    enumerate_combinations,
    sdc_targets,
)
from repro.core.exploration import high_level_descriptor, shard_combinations
from repro.core.heuristics import SelectiveHardeningPlanner
from repro.physical import RecoveryKind
from repro.workloads.synthesis import (
    BUILTIN_PROFILES,
    synthesize_calibrated_workload,
    synthesize_workload,
)
from repro.workloads.synthesis.calibration import calibrate_cpi

_TARGET_VALUES = (1.5, 2.0, 5.0, 17.3, 50.0, 500.0, 1e6, float("inf"))
_RECOVERIES = {
    "InO": (RecoveryKind.NONE, RecoveryKind.FLUSH, RecoveryKind.IR, RecoveryKind.EIR),
    "OoO": (RecoveryKind.NONE, RecoveryKind.ROB, RecoveryKind.IR, RecoveryKind.EIR),
}
_HIGH_LEVEL_POOLS = {
    "InO": ("dfc", "assertions", "cfcss", "eddi", "abft-correction"),
    "OoO": ("dfc", "monitor-core", "abft-detection"),
}


def _assert_results_identical(incremental, reference):
    """Planner outputs must match bit-for-bit, designs included."""
    assert incremental.protected_count == reference.protected_count
    assert incremental.achieved_sdc == reference.achieved_sdc
    assert incremental.achieved_due == reference.achieved_due
    assert (incremental.design.hardening.assignments
            == reference.design.hardening.assignments)
    assert incremental.design.parity_groups == reference.design.parity_groups
    assert incremental.design.eds_flip_flops == reference.design.eds_flip_flops
    assert incremental.design.recovery == reference.design.recovery
    assert incremental.design.gamma() == reference.design.gamma()


@st.composite
def _targets(draw):
    kind = draw(st.sampled_from(("sdc", "due", "joint")))
    sdc = draw(st.sampled_from(_TARGET_VALUES)) if kind in ("sdc", "joint") else None
    due = draw(st.sampled_from(_TARGET_VALUES)) if kind in ("due", "joint") else None
    return ResilienceTarget(sdc=sdc, due=due)


class TestScheduleEquivalence:
    """Prefix schedules reproduce per-target replanning exactly."""

    @settings(max_examples=12, deadline=None)
    @given(data=st.data())
    def test_plan_matches_replanning(self, data, ino_framework, ooo_framework):
        framework = data.draw(st.sampled_from((ino_framework, ooo_framework)),
                              label="framework")
        family = "InO" if framework is ino_framework else "OoO"
        target = data.draw(_targets(), label="target")
        recovery = data.draw(st.sampled_from(_RECOVERIES[family]), label="recovery")
        policy = SelectionPolicy(
            allow_hardening=data.draw(st.booleans(), label="hardening"),
            allow_parity=data.draw(st.booleans(), label="parity"),
            allow_eds=data.draw(st.booleans(), label="eds"))
        names = data.draw(st.lists(st.sampled_from(_HIGH_LEVEL_POOLS[family]),
                                   unique=True, max_size=3), label="high_level")
        high_level = [high_level_descriptor(name) for name in names]
        planner = SelectiveHardeningPlanner(framework.core.registry,
                                            framework.vulnerability, framework.timing,
                                            framework.benchmark_names())
        incremental = planner.plan(target, recovery=recovery, policy=policy,
                                   high_level=high_level)
        reference = planner.plan_replanning(target, recovery=recovery, policy=policy,
                                            high_level=high_level)
        _assert_results_identical(incremental, reference)

    def test_schedule_is_cached_and_reused(self, ino_framework):
        planner = SelectiveHardeningPlanner(ino_framework.core.registry,
                                            ino_framework.vulnerability,
                                            ino_framework.timing)
        first = planner.schedule_for(recovery=RecoveryKind.FLUSH)
        second = planner.schedule_for(recovery=RecoveryKind.FLUSH)
        assert first is second
        assert planner.schedule_for(recovery=RecoveryKind.NONE) is not first

    def test_improvement_curve_shape(self, ino_framework):
        planner = SelectiveHardeningPlanner(ino_framework.core.registry,
                                            ino_framework.vulnerability,
                                            ino_framework.timing)
        schedule = planner.schedule_for(recovery=RecoveryKind.FLUSH)
        curve = schedule.improvement_curve()
        assert len(curve) == schedule.effective_length + 1
        assert curve[0][0] == 0
        # The final point answers any unreachable finite target.
        assert schedule.prefix_for(ResilienceTarget(sdc=1e18)) == schedule.effective_length


class TestExplorerEquivalence:
    """The incremental explorer matches replan-from-scratch evaluation."""

    @pytest.fixture(scope="class")
    def sample(self):
        combos = enumerate_combinations("InO")
        return combos[::31]  # tunable, fixed, ABFT and recovery variants

    def test_evaluate_matches_reference(self, ino_framework, sample):
        explorer = ino_framework.explorer
        for combination in sample:
            for target in (ResilienceTarget(sdc=5), ResilienceTarget(sdc=float("inf"))):
                incremental = explorer.evaluate(combination, target)
                reference = explorer.evaluate_reference(combination, target)
                assert incremental.cost == reference.cost
                assert incremental.sdc_improvement == reference.sdc_improvement
                assert incremental.due_improvement == reference.due_improvement
                assert incremental.protected_flip_flops == reference.protected_flip_flops

    def test_costed_evaluation_matches_materialised(self, ino_framework, sample):
        """The incremental cost curves reproduce design costing bit-for-bit."""
        explorer = ino_framework.explorer
        targets = (ResilienceTarget(sdc=5), ResilienceTarget(due=17.3),
                   ResilienceTarget(sdc=50, due=10),
                   ResilienceTarget(sdc=float("inf")))
        for combination in sample:
            for target in targets:
                costed = explorer.evaluate_costed(combination, target)
                materialised = explorer.evaluate(combination, target)
                assert costed.cost == materialised.cost
                assert costed.sdc_improvement == materialised.sdc_improvement
                assert costed.due_improvement == materialised.due_improvement
                assert costed.protected_flip_flops == materialised.protected_flip_flops
                assert costed.meets_target == materialised.meets_target

    def test_costed_evaluation_matches_materialised_ooo(self, ooo_framework):
        explorer = ooo_framework.explorer
        for combination in enumerate_combinations("OoO")[::67]:
            for target in (ResilienceTarget(sdc=50), ResilienceTarget(sdc=float("inf"))):
                costed = explorer.evaluate_costed(combination, target)
                materialised = explorer.evaluate(combination, target)
                assert costed.cost == materialised.cost
                assert costed.sdc_improvement == materialised.sdc_improvement

    def test_cost_curve_aligns_with_improvement_curve(self, ino_framework):
        """Curve index k costs the same design the improvements describe."""
        planner = SelectiveHardeningPlanner(ino_framework.core.registry,
                                            ino_framework.vulnerability,
                                            ino_framework.timing,
                                            ino_framework.benchmark_names())
        schedule = planner.schedule_for(recovery=RecoveryKind.FLUSH)
        cost_model = ino_framework.cost_model
        curve = schedule.cost_curve(cost_model)
        assert len(curve) == schedule.effective_length + 1
        assert curve[0][1].area_pct >= 0.0
        # Spot-check three prefixes against full materialisation.
        from repro.core.schedule import materialise_design

        for prefix in (0, schedule.effective_length // 2, schedule.effective_length):
            report = schedule.cost_at(prefix, cost_model)
            hardened, parity, eds = schedule._membership(schedule._effective[:prefix])
            design = materialise_design(schedule.registry, schedule.timing,
                                        schedule.vulnerability, hardened, parity,
                                        eds, schedule.recovery,
                                        list(schedule.high_level), "spot")
            assert report == design.cost(cost_model)

    def test_fixed_combinations_cached_across_targets(self, ino_framework):
        explorer = ino_framework.explorer
        combination = explorer.named_combination(("dfc",))
        first = explorer.evaluate(combination, ResilienceTarget(sdc=2))
        second = explorer.evaluate(combination, ResilienceTarget(sdc=500))
        assert first.design is second.design          # one design, any target
        assert first.sdc_improvement == second.sdc_improvement

    def test_stream_records_independent_of_workers(self, ino_framework):
        explorer = ino_framework.explorer
        combos = enumerate_combinations("InO")[:12]
        targets = sdc_targets()[:3]
        key = lambda r: (r.combination_index, r.target_index)
        serial = sorted(explorer.stream_records(targets, combos, workers=1), key=key)
        sharded = sorted(explorer.stream_records(targets, combos, workers=2,
                                                 chunk_size=3), key=key)
        assert serial == sharded
        assert len(serial) == len(combos) * len(targets)

    def test_shard_combinations_covers_pool(self):
        shards = shard_combinations(17, workers=2, chunk_size=4)
        indices = [i for shard in shards for i in shard.combination_indices]
        assert indices == list(range(17))
        assert [shard.index for shard in shards] == list(range(len(shards)))
        assert shard_combinations(0, workers=4) == []

    def test_cheapest_pruned_matches_exhaustive(self, ino_framework):
        explorer = ino_framework.explorer
        combos = enumerate_combinations("InO")[::7]
        for target in (ResilienceTarget(sdc=5), ResilienceTarget(sdc=50),
                       ResilienceTarget(sdc=1e18)):
            pruned = explorer.cheapest_meeting_target(target, combos)
            exhaustive = explorer.cheapest_meeting_target(target, combos, prune=False)
            if exhaustive is None:
                assert pruned is None
            else:
                assert pruned is not None
                assert pruned.combination == exhaustive.combination
                assert pruned.cost == exhaustive.cost

    def test_lower_bound_is_a_lower_bound(self, ino_framework):
        explorer = ino_framework.explorer
        for combination in enumerate_combinations("InO")[::43]:
            bound = explorer.fixed_energy_lower_bound(combination)
            actual = explorer.evaluate(combination, ResilienceTarget(sdc=50))
            assert bound <= actual.cost.energy_pct + 1e-9

    def test_high_level_descriptors_are_singletons(self):
        assert high_level_descriptor("dfc") is high_level_descriptor("dfc")

    def test_explore_frontier_dominance(self, ino_framework):
        explorer = ino_framework.explorer
        combos = enumerate_combinations("InO")[:20]
        frontier = explorer.explore_frontier(sdc_targets()[:3], combos, workers=1)
        points = frontier.points()
        assert 0 < len(points) <= frontier.seen == 60
        for a in points:
            assert not any(b.dominates(a) for b in points if b is not a)


class TestParetoFrontier:
    def _point(self, improvement, energy, area=1.0, exec_time=0.0, label=""):
        return ParetoPoint(improvement=improvement, energy_pct=energy,
                           area_pct=area, exec_time_pct=exec_time, label=label)

    def test_dominance(self):
        better = self._point(50, 2.0)
        worse = self._point(10, 5.0)
        assert better.dominates(worse)
        assert not worse.dominates(better)
        # Equal coordinates dominate in neither direction.
        assert not better.dominates(self._point(50, 2.0))

    def test_incomparable_points_coexist(self):
        frontier = ParetoFrontier()
        assert frontier.add(self._point(50, 5.0))
        assert frontier.add(self._point(10, 1.0))   # cheaper but weaker
        assert len(frontier) == 2

    def test_dominated_points_are_pruned(self):
        frontier = ParetoFrontier()
        frontier.add(self._point(10, 5.0, label="old"))
        assert frontier.add(self._point(50, 2.0, label="new"))
        assert len(frontier) == 1 and frontier.points()[0].label == "new"
        assert not frontier.add(self._point(5, 9.0))
        assert frontier.seen == 3

    def test_duplicates_folded_and_order_independent(self):
        points = [self._point(50, 2.0), self._point(50, 2.0),
                  self._point(10, 1.0), self._point(10, 5.0), self._point(60, 9.0)]
        forward, backward = ParetoFrontier(), ParetoFrontier()
        forward.update(points)
        backward.update(list(reversed(points)))
        coords = lambda f: sorted((p.improvement, p.energy_pct) for p in f)
        assert coords(forward) == coords(backward) == [(10, 1.0), (50, 2.0), (60, 9.0)]

    def test_coordinate_ties_keep_smallest_label(self):
        """Exact-coordinate duplicates fold to the smallest label, both ways."""
        for order in ((("b", "a"), ("a", "b"))):
            frontier = ParetoFrontier()
            for label in order:
                frontier.add(self._point(50, 2.0, label=label))
            assert [p.label for p in frontier.points()] == ["a"]
            assert frontier.seen == 2

    @settings(max_examples=60, deadline=None)
    @given(data=st.data())
    def test_frontier_invariant_under_insertion_order(self, data):
        """The frontier -- labels and payloads included -- is a pure function
        of the offered point *set*, not of shard completion order.

        Regression: the old "first one wins" duplicate folding leaked the
        insertion order into the surviving label under workers=N streaming.
        """
        coordinate = st.sampled_from((1.0, 2.0, 5.0, 50.0))
        base_points = data.draw(st.lists(
            st.builds(lambda i, e, label: ParetoPoint(
                improvement=i, energy_pct=e, area_pct=1.0, exec_time_pct=0.0,
                label=label, payload=("payload", label)),
                coordinate, coordinate, st.sampled_from("abcdef")),
            min_size=1, max_size=8), label="points")
        permutation = data.draw(st.permutations(base_points), label="order")
        reference, permuted = ParetoFrontier(), ParetoFrontier()
        reference.update(base_points)
        permuted.update(permutation)
        describe = lambda f: [(p.improvement, p.energy_pct, p.label, p.payload)
                              for p in f.points()]
        assert describe(reference) == describe(permuted)
        assert reference.seen == permuted.seen == len(base_points)

    def test_cheapest_at_least_and_envelope(self):
        frontier = ParetoFrontier()
        frontier.update([self._point(10, 1.0), self._point(50, 2.0),
                         self._point(500, 8.0)])
        assert frontier.cheapest_at_least(40).energy_pct == 2.0
        assert frontier.cheapest_at_least(1000) is None
        envelope = frontier.envelope()
        assert envelope == sorted(envelope)


class TestCalibratedMapDeterminism:
    def test_map_identical_across_hash_randomization(self):
        """The calibrated map must not depend on per-process str-hash salt.

        Regression test: per-benchmark RNG streams were once derived from
        ``hash((seed, benchmark))``, which silently re-rolled the whole
        vulnerability population (and every table built on it) each run.
        """
        import os
        import subprocess
        import sys
        from pathlib import Path

        code = (
            "from repro.faultinjection.calibrated import CalibratedVulnerabilityModel\n"
            "from repro.microarch import InOrderCore\n"
            "registry = InOrderCore().registry\n"
            "model = CalibratedVulnerabilityModel(registry, ['a', 'b'], seed=11)\n"
            "v = model.build_map()\n"
            "names = ['a', 'b']\n"
            "print(repr(sum(v.sdc_probability(i, names)\n"
            "               for i in range(registry.total_flip_flops))))\n")
        src = str(Path(__file__).resolve().parent.parent / "src")
        outputs = []
        for hash_seed in ("1", "271828"):
            env = dict(os.environ, PYTHONHASHSEED=hash_seed, PYTHONPATH=src)
            result = subprocess.run([sys.executable, "-c", code], env=env,
                                    capture_output=True, text=True, check=True)
            outputs.append(result.stdout)
        assert outputs[0] == outputs[1]


class TestCycleCalibration:
    def test_calibration_reduces_cycle_error(self):
        # control_heavy misses its budget by >10% with the fixed CPI estimate.
        profile = BUILTIN_PROFILES["control_heavy"]
        calibrated = synthesize_calibrated_workload(profile, seed=2016)
        assert calibrated.relative_error <= 0.10
        assert calibrated.effective_cpi != pytest.approx(3.0)

    def test_calibration_is_deterministic(self):
        profile = BUILTIN_PROFILES["mixed"]
        first = synthesize_calibrated_workload(profile, seed=5)
        second = synthesize_calibrated_workload(profile, seed=5)
        assert first.workload.source == second.workload.source
        assert first.achieved_cycles == second.achieved_cycles
        assert first.effective_cpi == second.effective_cpi

    def test_cpi_override_preserves_rng_stream(self):
        # Calibration rescales trip counts but must not re-roll the body.
        profile = BUILTIN_PROFILES["arithmetic_dense"]
        default = synthesize_workload(profile, seed=9)
        scaled = synthesize_workload(profile, seed=9, cpi=1.5)
        body = lambda source: [line for line in source.splitlines()
                               if not line.startswith("    li a")]
        assert body(default.source) == body(scaled.source)

    def test_floor_limited_budget_reported_honestly(self):
        # memory_streaming's 4000-cycle budget sits below its epilogue floor;
        # calibration converges to the floor and reports the residual error.
        profile = BUILTIN_PROFILES["memory_streaming"]
        cpi, achieved, rounds = calibrate_cpi(profile, seed=2016, max_rounds=3)
        assert achieved >= profile.floor_cycles
        assert rounds <= 3
