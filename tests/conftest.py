"""Shared pytest fixtures.

Session-scoped fixtures hold the expensive objects (core models, calibrated
frameworks) so the suite stays fast; tests must not mutate them beyond
running programs (cores reset themselves on every run).
"""

from __future__ import annotations

import pytest

from repro.core import ClearFramework
from repro.microarch import InOrderCore, OutOfOrderCore
from repro.workloads import full_suite, workload_by_name


@pytest.fixture(scope="session")
def ino_core() -> InOrderCore:
    return InOrderCore()


@pytest.fixture(scope="session")
def ooo_core() -> OutOfOrderCore:
    return OutOfOrderCore()


@pytest.fixture(scope="session")
def ino_framework() -> ClearFramework:
    return ClearFramework.for_inorder_core(seed=7)


@pytest.fixture(scope="session")
def ooo_framework() -> ClearFramework:
    return ClearFramework.for_out_of_order_core(seed=7)


@pytest.fixture(scope="session")
def suite():
    return full_suite()


@pytest.fixture(scope="session")
def small_workload():
    """A short-running workload used by injection-heavy tests."""
    return workload_by_name("vpr")
