"""Tests for the benchmark-dependence analysis (Sec. 4) and the frontier
persistence layer."""

from __future__ import annotations

import json
from dataclasses import dataclass

import pytest

from repro.analysis import (
    BenchmarkDependenceStudy,
    ParetoFrontier,
    ParetoPoint,
    StoredFrontier,
    frontier_to_dict,
    load_frontier,
    make_splits,
    merge_frontiers,
    paired_p_value,
    save_frontier,
    subset_similarity,
)
from repro.physical import DesignCostModel, RecoveryKind
from repro.resilience import dfc_descriptor


class TestSplits:
    def test_split_sizes_and_disjointness(self, ino_framework):
        benchmarks = ino_framework.benchmark_names()
        splits = make_splits(benchmarks, training_size=4, count=50, seed=1)
        assert len(splits) == 50
        for split in splits:
            assert len(split.training) == 4
            assert set(split.training).isdisjoint(split.validation)
            assert set(split.training) | set(split.validation) == set(benchmarks)

    def test_deterministic(self):
        names = [f"b{i}" for i in range(10)]
        assert make_splits(names, seed=2) == make_splits(names, seed=2)


class TestPValue:
    def test_identical_distributions_high_p(self):
        assert paired_p_value([0.0, 0.0, 0.0, 0.0]) == 1.0

    def test_consistent_shift_low_p(self):
        assert paired_p_value([1.0, 1.1, 0.9, 1.05, 0.95] * 4) < 0.01

    def test_short_input(self):
        assert paired_p_value([1.0]) == 1.0


class TestSimilarity:
    def test_table27_shape(self, ino_framework):
        similarities = subset_similarity(ino_framework.vulnerability)
        assert len(similarities) == 10
        # Top decile and the always-vanish tail are consistent across
        # benchmarks; the middle deciles are benchmark-specific (Table 27).
        assert similarities[0] > 0.3
        assert max(similarities[2:6]) < 0.2
        assert similarities[-1] > 0.7
        assert all(0.0 <= s <= 1.0 for s in similarities)


@dataclass(frozen=True)
class _Payload:
    label: str
    detail: int


class TestFrontierStore:
    def _frontier(self) -> ParetoFrontier:
        frontier = ParetoFrontier()
        frontier.update([
            ParetoPoint(improvement=10.0, energy_pct=1.0, area_pct=0.5,
                        exec_time_pct=0.0, label="cheap",
                        payload=_Payload("cheap", 1)),
            ParetoPoint(improvement=50.3, energy_pct=2.25, area_pct=1.5,
                        exec_time_pct=0.1, label="mid"),
            ParetoPoint(improvement=1e5, energy_pct=8.0, area_pct=3.0,
                        exec_time_pct=0.2, label="max",
                        payload=object()),          # opaque: dropped on save
            ParetoPoint(improvement=5.0, energy_pct=9.0, area_pct=9.0,
                        exec_time_pct=9.0, label="dominated"),
        ])
        return frontier

    def test_round_trip_preserves_dominance_structure(self, tmp_path):
        frontier = self._frontier()
        path = save_frontier(tmp_path / "frontier.json", frontier,
                             metadata={"label": "run-a", "seed": 7})
        stored = load_frontier(path)
        assert isinstance(stored, StoredFrontier)
        assert stored.metadata == {"label": "run-a", "seed": 7}
        assert stored.label == "run-a"
        coords = lambda f: [(p.improvement, p.energy_pct, p.area_pct,
                             p.exec_time_pct, p.label) for p in f.points()]
        assert coords(stored.frontier) == coords(frontier)   # bit-exact floats
        assert stored.frontier.seen == frontier.seen == 4
        assert len(stored.frontier) == len(frontier) == 3
        # Dataclass payloads survive as plain JSON dicts, opaque ones as None.
        by_label = {p.label: p.payload for p in stored.frontier.points()}
        assert by_label["cheap"] == {"label": "cheap", "detail": 1}
        assert by_label["max"] is None

    def test_second_round_trip_is_stable(self, tmp_path):
        first = save_frontier(tmp_path / "a.json", self._frontier())
        second = save_frontier(tmp_path / "b.json", load_frontier(first).frontier)
        assert json.loads(first.read_text())["points"] == \
               json.loads(second.read_text())["points"]

    def test_load_and_merge_across_runs(self, tmp_path):
        run_a = self._frontier()
        run_b = ParetoFrontier()
        run_b.update([
            ParetoPoint(improvement=50.3, energy_pct=2.25, area_pct=1.5,
                        exec_time_pct=0.1, label="aa-first"),  # coordinate tie
            ParetoPoint(improvement=20.0, energy_pct=1.5, area_pct=0.1,
                        exec_time_pct=0.0, label="new"),
        ])
        stored_a = load_frontier(save_frontier(tmp_path / "a.json", run_a))
        stored_b = load_frontier(save_frontier(tmp_path / "b.json", run_b))
        forward = merge_frontiers([stored_a, stored_b])
        backward = merge_frontiers([stored_b, stored_a])
        assert [p.label for p in forward.points()] == \
               [p.label for p in backward.points()]
        assert "aa-first" in {p.label for p in forward.points()}  # tie-break
        assert forward.seen == run_a.seen + run_b.seen

    def test_version_and_format_guards(self, tmp_path):
        frontier = self._frontier()
        document = frontier_to_dict(frontier)
        document["version"] = 99
        path = tmp_path / "future.json"
        path.write_text(json.dumps(document))
        with pytest.raises(ValueError, match="version"):
            load_frontier(path)
        path.write_text(json.dumps({"format": "something-else"}))
        with pytest.raises(ValueError, match="not a Pareto frontier store"):
            load_frontier(path)
        # Truncated-but-valid-header documents surface as ValueError too.
        path.write_text(json.dumps({"format": document["format"], "version": 1}))
        with pytest.raises(ValueError, match="malformed frontier store"):
            load_frontier(path)

    def test_save_replaces_store_atomically(self, tmp_path):
        path = tmp_path / "frontier.json"
        save_frontier(path, self._frontier())
        save_frontier(path, self._frontier())      # overwrite via os.replace
        assert len(load_frontier(path).frontier) == 3
        assert not (tmp_path / "frontier.json.tmp").exists()


class TestDependenceStudy:
    @pytest.fixture(scope="class")
    def study(self, ino_framework):
        return BenchmarkDependenceStudy(ino_framework.core.registry,
                                        ino_framework.vulnerability,
                                        ino_framework.timing)

    def test_selective_training_generalises_roughly(self, study, ino_framework):
        splits = make_splits(ino_framework.benchmark_names(), count=3, seed=4)
        result, _ = study.evaluate_selective(10.0, splits[0])
        assert result.trained_sdc >= 10.0
        assert result.validated_sdc > 1.0

    def test_lhl_augmentation_raises_validated_improvement(self, study, ino_framework):
        cost_model = DesignCostModel(ino_framework.core.name,
                                     ino_framework.core.flip_flop_count)
        split = make_splits(ino_framework.benchmark_names(), count=1, seed=5)[0]
        plain, plain_cost = study.evaluate_selective(20.0, split, cost_model=cost_model)
        augmented, augmented_cost = study.evaluate_selective(20.0, split, with_lhl=True,
                                                             cost_model=cost_model)
        assert augmented.validated_sdc > plain.validated_sdc
        assert augmented_cost.energy_pct > plain_cost.energy_pct

    def test_high_level_train_validate(self, study, ino_framework):
        splits = make_splits(ino_framework.benchmark_names(), count=5, seed=6)
        result = study.evaluate_high_level(dfc_descriptor(), splits)
        # DFC alone provides only a marginal improvement (Table 3 reports
        # 1.2x with the gamma correction folded in; our estimate lands in the
        # same "barely helps" regime).
        assert 0.8 < result.trained_sdc < 2.0
        assert abs(result.sdc_underestimate_pct) < 30.0
