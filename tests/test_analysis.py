"""Tests for the benchmark-dependence analysis (Sec. 4)."""

from __future__ import annotations

import pytest

from repro.analysis import (
    BenchmarkDependenceStudy,
    make_splits,
    paired_p_value,
    subset_similarity,
)
from repro.physical import DesignCostModel, RecoveryKind
from repro.resilience import dfc_descriptor


class TestSplits:
    def test_split_sizes_and_disjointness(self, ino_framework):
        benchmarks = ino_framework.benchmark_names()
        splits = make_splits(benchmarks, training_size=4, count=50, seed=1)
        assert len(splits) == 50
        for split in splits:
            assert len(split.training) == 4
            assert set(split.training).isdisjoint(split.validation)
            assert set(split.training) | set(split.validation) == set(benchmarks)

    def test_deterministic(self):
        names = [f"b{i}" for i in range(10)]
        assert make_splits(names, seed=2) == make_splits(names, seed=2)


class TestPValue:
    def test_identical_distributions_high_p(self):
        assert paired_p_value([0.0, 0.0, 0.0, 0.0]) == 1.0

    def test_consistent_shift_low_p(self):
        assert paired_p_value([1.0, 1.1, 0.9, 1.05, 0.95] * 4) < 0.01

    def test_short_input(self):
        assert paired_p_value([1.0]) == 1.0


class TestSimilarity:
    def test_table27_shape(self, ino_framework):
        similarities = subset_similarity(ino_framework.vulnerability)
        assert len(similarities) == 10
        # Top decile and the always-vanish tail are consistent across
        # benchmarks; the middle deciles are benchmark-specific (Table 27).
        assert similarities[0] > 0.3
        assert max(similarities[2:6]) < 0.2
        assert similarities[-1] > 0.7
        assert all(0.0 <= s <= 1.0 for s in similarities)


class TestDependenceStudy:
    @pytest.fixture(scope="class")
    def study(self, ino_framework):
        return BenchmarkDependenceStudy(ino_framework.core.registry,
                                        ino_framework.vulnerability,
                                        ino_framework.timing)

    def test_selective_training_generalises_roughly(self, study, ino_framework):
        splits = make_splits(ino_framework.benchmark_names(), count=3, seed=4)
        result, _ = study.evaluate_selective(10.0, splits[0])
        assert result.trained_sdc >= 10.0
        assert result.validated_sdc > 1.0

    def test_lhl_augmentation_raises_validated_improvement(self, study, ino_framework):
        cost_model = DesignCostModel(ino_framework.core.name,
                                     ino_framework.core.flip_flop_count)
        split = make_splits(ino_framework.benchmark_names(), count=1, seed=5)[0]
        plain, plain_cost = study.evaluate_selective(20.0, split, cost_model=cost_model)
        augmented, augmented_cost = study.evaluate_selective(20.0, split, with_lhl=True,
                                                             cost_model=cost_model)
        assert augmented.validated_sdc > plain.validated_sdc
        assert augmented_cost.energy_pct > plain_cost.energy_pct

    def test_high_level_train_validate(self, study, ino_framework):
        splits = make_splits(ino_framework.benchmark_names(), count=5, seed=6)
        result = study.evaluate_high_level(dfc_descriptor(), splits)
        # DFC alone provides only a marginal improvement (Table 3 reports
        # 1.2x with the gamma correction folded in; our estimate lands in the
        # same "barely helps" regime).
        assert 0.8 < result.trained_sdc < 2.0
        assert abs(result.sdc_underestimate_pct) < 30.0
