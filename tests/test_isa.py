"""Tests for the ISA substrate: registers, encoding, assembler, simulator."""

from __future__ import annotations

import pytest

from repro.isa import (
    AssemblerError,
    EncodingError,
    Instruction,
    Opcode,
    OPCODE_INFO,
    assemble,
    decode_instruction,
    encode_instruction,
    register_index,
    register_name,
)
from repro.isa.instructions import InstructionFormat, LUI_SHIFT
from repro.isa.program import DEFAULT_DATA_BASE, Program, DataSegment
from repro.isa.simulator import FunctionalSimulator
from repro.microarch.events import TrapKind


class TestRegisters:
    def test_alias_round_trip(self):
        assert register_index("sp") == 2
        assert register_index("t0") == 5
        assert register_index("a0") == 10
        assert register_name(2) == "sp"

    def test_numeric_names(self):
        assert register_index("r7") == 7
        assert register_index("x31") == 31
        assert register_index("12") == 12

    @pytest.mark.parametrize("bad", ["r32", "x-1", "foo", "t9"])
    def test_invalid_names_raise(self, bad):
        with pytest.raises(ValueError):
            register_index(bad)

    def test_register_name_out_of_range(self):
        with pytest.raises(ValueError):
            register_name(32)


class TestEncoding:
    @pytest.mark.parametrize("opcode", list(Opcode))
    def test_round_trip_every_opcode(self, opcode):
        info = OPCODE_INFO[opcode]
        if info.fmt is InstructionFormat.R:
            instruction = Instruction(opcode, rd=3, rs1=4, rs2=5)
        elif info.fmt is InstructionFormat.B:
            instruction = Instruction(opcode, rs1=4, rs2=5, imm=-12)
        else:
            instruction = Instruction(opcode, rd=3, rs1=4, imm=100)
        assert decode_instruction(encode_instruction(instruction)) == instruction

    def test_immediate_overflow_rejected(self):
        with pytest.raises(EncodingError):
            encode_instruction(Instruction(Opcode.ADDI, rd=1, rs1=1, imm=1 << 20))

    def test_illegal_opcode_field_rejected(self):
        with pytest.raises(EncodingError):
            decode_instruction(0x7F << 25)

    def test_register_field_validation(self):
        with pytest.raises(EncodingError):
            encode_instruction(Instruction(Opcode.ADD, rd=40, rs1=0, rs2=0))


class TestAssembler:
    def test_simple_program(self):
        program = assemble("""
            li t0, 5
            li t1, 7
            add t2, t0, t1
            out t2
            halt
        """)
        assert len(program.instructions) == 7  # two li expansions + 3
        result = FunctionalSimulator().run(program)
        assert result.result.output == [12]

    def test_labels_and_branches(self):
        program = assemble("""
            li t0, 0
            li t1, 4
        loop:
            addi t0, t0, 1
            blt t0, t1, loop
            out t0
            halt
        """)
        assert FunctionalSimulator().run_output(program) == [4]

    def test_data_segment_and_loads(self):
        program = assemble("""
            .data
        values:
            .word 10, 20, 30
            .text
            la a0, values
            lw t0, 4(a0)
            out t0
            halt
        """)
        assert program.symbols["values"] == DEFAULT_DATA_BASE
        assert FunctionalSimulator().run_output(program) == [20]

    def test_space_directive_zero_fills(self):
        program = assemble("""
            .data
        buffer:
            .space 4
            .text
            la a0, buffer
            lw t0, 8(a0)
            out t0
            halt
        """)
        assert FunctionalSimulator().run_output(program) == [0]

    def test_call_and_ret(self):
        program = assemble("""
            li a0, 21
            call double
            out a0
            halt
        double:
            add a0, a0, a0
            ret
        """)
        assert FunctionalSimulator().run_output(program) == [42]

    @pytest.mark.parametrize("source", [
        "bogus t0, t1, t2",
        "addi t0, t1",
        "lw t0, 4[t1]",
        ".data\n .word nonsense",
    ])
    def test_errors_raise_assembler_error(self, source):
        with pytest.raises(AssemblerError):
            assemble(source)

    def test_duplicate_label_rejected(self):
        with pytest.raises(AssemblerError):
            assemble("a:\n nop\na:\n halt")

    def test_comments_ignored(self):
        program = assemble("""
            # full line comment
            li t0, 1   # trailing comment
            out t0     ; alt comment
            halt
        """)
        assert FunctionalSimulator().run_output(program) == [1]


class TestProgram:
    def test_instruction_at_bounds(self):
        program = assemble("nop\nhalt")
        assert program.instruction_at(0).opcode is Opcode.NOP
        assert program.instruction_at(4).opcode is Opcode.HALT
        assert program.instruction_at(8) is None
        assert program.instruction_at(2) is None

    def test_data_segment_image(self):
        segment = DataSegment(base=0x100, words=[1, 2, 3])
        assert segment.as_memory_image() == {0x100: 1, 0x104: 2, 0x108: 3}

    def test_address_of_unknown_label(self):
        program = Program(name="p", instructions=[])
        with pytest.raises(KeyError):
            program.address_of("missing")


class TestFunctionalSimulator:
    def test_lui_shift_semantics(self):
        program = assemble("lui t0, 3\nout t0\nhalt")
        assert FunctionalSimulator().run_output(program) == [3 << LUI_SHIFT]

    def test_divide_by_zero_traps(self):
        program = assemble("li t0, 3\nli t1, 0\ndiv t2, t0, t1\nhalt")
        trace = FunctionalSimulator().run(program)
        assert trace.result.trap is TrapKind.DIVIDE_BY_ZERO

    def test_trace_collection(self):
        program = assemble("""
            .data
        buf:
            .word 0
            .text
            li t0, 9
            la a0, buf
            sw t0, 0(a0)
            halt
        """)
        trace = FunctionalSimulator().run(program, collect_trace=True)
        assert trace.memory_writes and trace.memory_writes[0].value == 9
        assert any(entry.rd == register_index("t0") for entry in trace.register_writes)
