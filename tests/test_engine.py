"""Tests for the checkpointed parallel injection engine.

Covers the three invariants the engine rests on:

1. core snapshot/restore is bit-exact (property-tested on both cores);
2. checkpointed replay, serial or parallel, reproduces the legacy serial
   campaign loop exactly (outcome counts *and* per-site tallies);
3. the golden-run cache shares recorded runs across protection configs and
   distinguishes programs by content.
"""

from __future__ import annotations

from dataclasses import replace

import pytest
from hypothesis import given, settings, strategies as st

from repro.engine import (
    CheckpointedGoldenRun,
    EngineConfig,
    GoldenRunCache,
    InjectionEngine,
    ParallelExecutor,
    SerialExecutor,
    record_checkpointed_golden,
)
from repro.faultinjection import (
    FlipFlopInjector,
    OutcomeCounts,
    SiteProtection,
    exhaustive_site_plan,
    uniform_injection_plan,
)
from repro.isa.program import DataSegment
from repro.microarch import InOrderCore, OutOfOrderCore
from repro.workloads import workload_by_name

CORE_CLASSES = (InOrderCore, OutOfOrderCore)


@pytest.fixture(scope="module")
def program():
    return workload_by_name("vpr").program()


@pytest.fixture(scope="module")
def full_results(program):
    """Uncheckpointed reference RunResult per core class."""
    return {cls: cls().run(program) for cls in CORE_CLASSES}


class MixedProtection:
    """Protection with suppression, detection and recovery sites, so the
    equivalence tests exercise the suppression-lottery stream."""

    def site_protection(self, flat_index):
        if flat_index % 3 == 0:
            return SiteProtection(technique="lhl", suppression=0.75)
        if flat_index % 7 == 0:
            return SiteProtection(technique="parity", detects=True,
                                  recoverable=flat_index % 2 == 0,
                                  recovery_latency=7)
        return SiteProtection()


def legacy_campaign(core, program, protection, seed, plan):
    """The pre-engine serial loop: full re-simulation from cycle 0, one
    sequential suppression draw per injection."""
    injector = FlipFlopInjector(core, protection=protection, seed=seed)
    golden = injector.golden_run(program)
    outcomes = OutcomeCounts()
    per_site = {}
    for injection in plan:
        _, outcome = injector.run_with_injection(program, injection, golden)
        outcomes.record(outcome)
        per_site.setdefault(injection.flat_index, OutcomeCounts()).record(outcome)
    return golden, outcomes, per_site


class TestSnapshotRestore:
    @pytest.mark.parametrize("core_cls", CORE_CLASSES, ids=lambda c: c.__name__)
    @settings(max_examples=6, deadline=None)
    @given(data=st.data())
    def test_snapshot_extra_cycles_restore_is_bit_exact(self, core_cls, program,
                                                        full_results, data):
        """snapshot() -> extra cycles -> restore() -> run-to-end reproduces
        the uncheckpointed RunResult bit-for-bit."""
        full = full_results[core_cls]
        cycle = data.draw(st.integers(min_value=0, max_value=full.cycles - 1),
                          label="snapshot_cycle")
        extra = data.draw(st.integers(min_value=0, max_value=64),
                          label="extra_cycles")
        core = core_cls()
        core.reset(program)
        for _ in range(cycle):
            core.step()
        snapshot = core.snapshot()
        for _ in range(extra):
            if not core.step():
                break
        resumed = core.resume(program, snapshot)
        assert resumed == full

    @pytest.mark.parametrize("core_cls", CORE_CLASSES, ids=lambda c: c.__name__)
    def test_restore_onto_fresh_core_and_double_restore(self, core_cls, program,
                                                        full_results):
        recorded = record_checkpointed_golden(core_cls(), program, interval=100)
        snapshot = recorded.snapshots[len(recorded.snapshots) // 2]
        other = core_cls()
        assert other.resume(program, snapshot) == full_results[core_cls]
        # Restoring the same snapshot again must not be corrupted by the
        # first resume (mutable state must be copied on restore).
        assert other.resume(program, snapshot) == full_results[core_cls]

    def test_restore_rejects_foreign_snapshot(self, program):
        snapshot = record_checkpointed_golden(InOrderCore(), program,
                                              interval=100).snapshots[0]
        with pytest.raises(ValueError):
            OutOfOrderCore().restore(program, snapshot)

    def test_latch_serialize_roundtrip(self, program):
        core = InOrderCore()
        core.reset(program)
        for _ in range(50):
            core.step()
        values = core.latches.serialize()
        expected = core.latches.snapshot()
        core.latches.clear()
        core.latches.deserialize(values)
        assert core.latches.snapshot() == expected
        with pytest.raises(ValueError):
            core.latches.deserialize(values[:-1])


class TestCheckpointedGolden:
    def test_recording_does_not_change_golden(self, program, full_results):
        recorded = record_checkpointed_golden(InOrderCore(), program)
        assert recorded.golden == full_results[InOrderCore]
        assert recorded.checkpoint_count > 0
        cycles = [s.cycle for s in recorded.snapshots]
        assert cycles == sorted(cycles)

    def test_nearest_picks_latest_at_or_below(self, program):
        recorded = record_checkpointed_golden(InOrderCore(), program, interval=100)
        assert recorded.nearest(99) is None
        assert recorded.nearest(100).cycle == 100
        assert recorded.nearest(399).cycle == 300
        last = recorded.snapshots[-1]
        assert recorded.nearest(10**9) is last

    def test_adaptive_interval_bounds_snapshot_count(self, program):
        recorded = record_checkpointed_golden(InOrderCore(), program,
                                              max_checkpoints=4)
        assert recorded.checkpoint_count <= 4
        assert recorded.interval > 64  # doubled at least once on this workload

    def test_interval_zero_disables_checkpointing(self, program):
        recorded = record_checkpointed_golden(InOrderCore(), program, interval=0)
        assert recorded.snapshots == []
        assert recorded.nearest(500) is None


class TestEngineEquivalence:
    @pytest.mark.parametrize("core_cls", CORE_CLASSES, ids=lambda c: c.__name__)
    @pytest.mark.parametrize("protected", [False, True], ids=["bare", "protected"])
    def test_engine_matches_legacy_serial_loop(self, core_cls, program, protected):
        protection = MixedProtection() if protected else None
        seed, count = 11, 16
        core = core_cls()
        golden = core.run(program)
        plan = uniform_injection_plan(core.flip_flop_count, golden.cycles,
                                      count, seed=seed)
        _, outcomes, per_site = legacy_campaign(core_cls(), program, protection,
                                                seed, plan)
        engine = InjectionEngine(core_cls(), program, protection=protection,
                                 seed=seed, golden_cache=GoldenRunCache())
        result = engine.run(injections=count)
        assert result.outcomes == outcomes
        assert result.per_site == per_site

    def test_serial_and_parallel_executors_identical(self, program):
        seed, count = 23, 24
        results = []
        for executor in (SerialExecutor(), ParallelExecutor(workers=2)):
            engine = InjectionEngine(InOrderCore(), program,
                                     protection=MixedProtection(), seed=seed,
                                     config=EngineConfig(chunk_size=5),
                                     executor=executor,
                                     golden_cache=GoldenRunCache())
            results.append(engine.run(injections=count))
        serial, parallel = results
        assert serial.outcomes == parallel.outcomes
        assert serial.per_site == parallel.per_site
        assert serial.outcomes.total == count

    def test_explicit_plan_routes_through_engine(self, program):
        core = InOrderCore()
        golden = core.run(program)
        plan = exhaustive_site_plan(8, golden.cycles, 2, seed=3)
        _, outcomes, per_site = legacy_campaign(InOrderCore(), program, None,
                                                3, plan)
        result = InjectionEngine(InOrderCore(), program, seed=3,
                                 golden_cache=GoldenRunCache()).run(plan=plan)
        assert result.outcomes == outcomes
        assert result.per_site == per_site
        assert set(result.per_site) == set(range(8))


class TestGoldenRunCache:
    def test_shared_across_protection_configs(self, program):
        cache = GoldenRunCache()
        core = InOrderCore()
        for protection in (None, MixedProtection()):
            InjectionEngine(core, program, protection=protection, seed=1,
                            golden_cache=cache).run(injections=4)
        assert cache.misses == 1
        assert cache.hits >= 1

    def test_distinguishes_program_content(self, program):
        cache = GoldenRunCache()
        core = InOrderCore()
        cache.get(core, program)
        modified = replace(program, data=DataSegment(
            base=program.data.base, words=list(program.data.words) + [99]))
        cache.get(core, modified)
        assert cache.misses == 2

    def test_lru_eviction(self, program):
        cache = GoldenRunCache(max_entries=1)
        core = InOrderCore()
        cache.get(core, program, interval=100)
        cache.get(core, program, interval=200)
        cache.get(core, program, interval=100)
        assert cache.misses == 3
        assert len(cache) == 1
