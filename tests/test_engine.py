"""Tests for the checkpointed parallel injection engine.

Covers the four invariants the engine rests on:

1. core snapshot/restore is bit-exact (property-tested on both cores);
2. checkpointed replay, serial or parallel, reproduces the legacy serial
   campaign loop exactly (outcome counts *and* per-site tallies);
3. the golden-run cache shares recorded runs across protection configs and
   distinguishes programs by content;
4. convergence-gated early termination is invisible in the statistics:
   campaigns report bit-identical outcome counts and per-site tallies with
   the gate on and off (both cores, both executors, varied seeds and grid
   intervals), and runs carrying detections, recoveries or output divergence
   never early-terminate.
"""

from __future__ import annotations

from dataclasses import replace

import pytest
from hypothesis import given, settings, strategies as st

from repro.engine import (
    CheckpointedGoldenRun,
    EngineConfig,
    GoldenRunCache,
    InjectionEngine,
    ParallelExecutor,
    PlannedInjection,
    SerialExecutor,
    record_checkpointed_golden,
    replay_planned_injection,
)
from repro.faultinjection import (
    FlipFlopInjector,
    Injection,
    OutcomeCategory,
    OutcomeCounts,
    SiteProtection,
    exhaustive_site_plan,
    uniform_injection_plan,
)
from repro.isa.program import DataSegment
from repro.microarch import InOrderCore, OutOfOrderCore
from repro.workloads import workload_by_name

CORE_CLASSES = (InOrderCore, OutOfOrderCore)


@pytest.fixture(scope="module")
def program():
    return workload_by_name("vpr").program()


@pytest.fixture(scope="module")
def full_results(program):
    """Uncheckpointed reference RunResult per core class."""
    return {cls: cls().run(program) for cls in CORE_CLASSES}


class MixedProtection:
    """Protection with suppression, detection and recovery sites, so the
    equivalence tests exercise the suppression-lottery stream."""

    def site_protection(self, flat_index):
        if flat_index % 3 == 0:
            return SiteProtection(technique="lhl", suppression=0.75)
        if flat_index % 7 == 0:
            return SiteProtection(technique="parity", detects=True,
                                  recoverable=flat_index % 2 == 0,
                                  recovery_latency=7)
        return SiteProtection()


def legacy_campaign(core, program, protection, seed, plan):
    """The pre-engine serial loop: full re-simulation from cycle 0, one
    sequential suppression draw per injection."""
    injector = FlipFlopInjector(core, protection=protection, seed=seed)
    golden = injector.golden_run(program)
    outcomes = OutcomeCounts()
    per_site = {}
    for injection in plan:
        _, outcome = injector.run_with_injection(program, injection, golden)
        outcomes.record(outcome)
        per_site.setdefault(injection.flat_index, OutcomeCounts()).record(outcome)
    return golden, outcomes, per_site


class TestSnapshotRestore:
    @pytest.mark.parametrize("core_cls", CORE_CLASSES, ids=lambda c: c.__name__)
    @settings(max_examples=6, deadline=None)
    @given(data=st.data())
    def test_snapshot_extra_cycles_restore_is_bit_exact(self, core_cls, program,
                                                        full_results, data):
        """snapshot() -> extra cycles -> restore() -> run-to-end reproduces
        the uncheckpointed RunResult bit-for-bit."""
        full = full_results[core_cls]
        cycle = data.draw(st.integers(min_value=0, max_value=full.cycles - 1),
                          label="snapshot_cycle")
        extra = data.draw(st.integers(min_value=0, max_value=64),
                          label="extra_cycles")
        core = core_cls()
        core.reset(program)
        for _ in range(cycle):
            core.step()
        snapshot = core.snapshot()
        for _ in range(extra):
            if not core.step():
                break
        resumed = core.resume(program, snapshot)
        assert resumed == full

    @pytest.mark.parametrize("core_cls", CORE_CLASSES, ids=lambda c: c.__name__)
    def test_restore_onto_fresh_core_and_double_restore(self, core_cls, program,
                                                        full_results):
        recorded = record_checkpointed_golden(core_cls(), program, interval=100)
        snapshot = recorded.snapshots[len(recorded.snapshots) // 2]
        other = core_cls()
        assert other.resume(program, snapshot) == full_results[core_cls]
        # Restoring the same snapshot again must not be corrupted by the
        # first resume (mutable state must be copied on restore).
        assert other.resume(program, snapshot) == full_results[core_cls]

    def test_restore_rejects_foreign_snapshot(self, program):
        snapshot = record_checkpointed_golden(InOrderCore(), program,
                                              interval=100).snapshots[0]
        with pytest.raises(ValueError):
            OutOfOrderCore().restore(program, snapshot)

    def test_latch_serialize_roundtrip(self, program):
        core = InOrderCore()
        core.reset(program)
        for _ in range(50):
            core.step()
        values = core.latches.serialize()
        expected = core.latches.snapshot()
        core.latches.clear()
        core.latches.deserialize(values)
        assert core.latches.snapshot() == expected
        with pytest.raises(ValueError):
            core.latches.deserialize(values[:-1])


class TestCheckpointedGolden:
    def test_recording_does_not_change_golden(self, program, full_results):
        recorded = record_checkpointed_golden(InOrderCore(), program)
        assert recorded.golden == full_results[InOrderCore]
        assert recorded.checkpoint_count > 0
        cycles = [s.cycle for s in recorded.snapshots]
        assert cycles == sorted(cycles)

    def test_nearest_picks_latest_at_or_below(self, program):
        recorded = record_checkpointed_golden(InOrderCore(), program, interval=100)
        assert recorded.nearest(99) is None
        assert recorded.nearest(100).cycle == 100
        assert recorded.nearest(399).cycle == 300
        last = recorded.snapshots[-1]
        assert recorded.nearest(10**9) is last

    def test_adaptive_interval_bounds_snapshot_count(self, program):
        recorded = record_checkpointed_golden(InOrderCore(), program,
                                              max_checkpoints=4)
        assert recorded.checkpoint_count <= 4
        assert recorded.interval > 64  # doubled at least once on this workload

    def test_interval_zero_disables_checkpointing(self, program):
        recorded = record_checkpointed_golden(InOrderCore(), program, interval=0)
        assert recorded.snapshots == []
        assert recorded.nearest(500) is None


class TestEngineEquivalence:
    @pytest.mark.parametrize("core_cls", CORE_CLASSES, ids=lambda c: c.__name__)
    @pytest.mark.parametrize("protected", [False, True], ids=["bare", "protected"])
    def test_engine_matches_legacy_serial_loop(self, core_cls, program, protected):
        protection = MixedProtection() if protected else None
        seed, count = 11, 16
        core = core_cls()
        golden = core.run(program)
        plan = uniform_injection_plan(core.flip_flop_count, golden.cycles,
                                      count, seed=seed)
        _, outcomes, per_site = legacy_campaign(core_cls(), program, protection,
                                                seed, plan)
        engine = InjectionEngine(core_cls(), program, protection=protection,
                                 seed=seed, golden_cache=GoldenRunCache())
        result = engine.run(injections=count)
        assert result.outcomes == outcomes
        assert result.per_site == per_site

    def test_serial_and_parallel_executors_identical(self, program):
        seed, count = 23, 24
        results = []
        for executor in (SerialExecutor(), ParallelExecutor(workers=2)):
            engine = InjectionEngine(InOrderCore(), program,
                                     protection=MixedProtection(), seed=seed,
                                     config=EngineConfig(chunk_size=5),
                                     executor=executor,
                                     golden_cache=GoldenRunCache())
            results.append(engine.run(injections=count))
        serial, parallel = results
        assert serial.outcomes == parallel.outcomes
        assert serial.per_site == parallel.per_site
        assert serial.outcomes.total == count

    def test_explicit_plan_routes_through_engine(self, program):
        core = InOrderCore()
        golden = core.run(program)
        plan = exhaustive_site_plan(8, golden.cycles, 2, seed=3)
        _, outcomes, per_site = legacy_campaign(InOrderCore(), program, None,
                                                3, plan)
        result = InjectionEngine(InOrderCore(), program, seed=3,
                                 golden_cache=GoldenRunCache()).run(plan=plan)
        assert result.outcomes == outcomes
        assert result.per_site == per_site
        assert set(result.per_site) == set(range(8))


class TestStateFingerprint:
    @pytest.mark.parametrize("core_cls", CORE_CLASSES, ids=lambda c: c.__name__)
    def test_identical_trajectories_fingerprint_equal(self, core_cls, program):
        first, second = core_cls(), core_cls()
        first.reset(program)
        second.reset(program)
        previous = None
        for _ in range(40):
            digest = first.state_fingerprint()
            assert digest == second.state_fingerprint()
            # The cycle is part of the hashed state, so consecutive
            # fingerprints of even an idle structure never collide.
            assert digest != previous
            previous = digest
            first.step()
            second.step()

    @pytest.mark.parametrize("core_cls", CORE_CLASSES, ids=lambda c: c.__name__)
    def test_flip_changes_fingerprint_and_restore_recovers_it(self, core_cls,
                                                              program):
        core = core_cls()
        core.reset(program)
        for _ in range(30):
            core.step()
        snapshot = core.snapshot()
        reference = core.state_fingerprint()
        core.latches.flip_flat(0)
        assert core.state_fingerprint() != reference
        core.restore(program, snapshot)
        assert core.state_fingerprint() == reference

    def test_memory_key_normalises_explicit_zero_words(self, program):
        """A stored zero and a never-touched word load identically, so the
        fingerprint must not distinguish them (it would only delay
        convergence)."""
        core = InOrderCore()
        core.reset(program)
        key = core.memory.fingerprint_key()
        untouched = next(address for address in range(
            program.data.base, program.data.base + 0x1000, 4)
            if core.memory.load_word(address) == 0)
        core.memory.store_word(untouched, 0)
        assert core.memory.fingerprint_key() == key
        core.memory.store_word(untouched, 7)
        assert core.memory.fingerprint_key() != key

    def test_output_prefix_is_fingerprinted(self, program):
        core = InOrderCore()
        core.reset(program)
        reference = core.state_fingerprint()
        core.emit_output(1)
        assert core.state_fingerprint() != reference


class TestConvergenceGolden:
    def test_fingerprint_grid_denser_than_snapshots(self, program):
        recorded = record_checkpointed_golden(InOrderCore(), program)
        assert recorded.fingerprint_interval > 0
        assert recorded.fingerprint_interval <= recorded.interval
        assert recorded.fingerprint_count > recorded.checkpoint_count
        core = InOrderCore()
        core.reset(program)
        grid_cycle = min(recorded.fingerprints)
        for _ in range(grid_cycle):
            core.step()
        assert core.state_fingerprint() == recorded.fingerprints[grid_cycle]

    def test_adaptive_grid_bounds_fingerprint_count(self, program):
        recorded = record_checkpointed_golden(InOrderCore(), program,
                                              max_fingerprints=16)
        assert 0 < recorded.fingerprint_count <= 16
        assert all(cycle % recorded.fingerprint_interval == 0
                   for cycle in recorded.fingerprints)

    def test_fingerprint_interval_zero_disables_grid(self, program):
        recorded = record_checkpointed_golden(InOrderCore(), program,
                                              fingerprint_interval=0)
        assert recorded.fingerprints == {}
        assert recorded.fingerprint_interval == 0
        # Snapshots are unaffected; recording still observes only.
        assert recorded.checkpoint_count > 0

    def test_recording_does_not_change_golden(self, program, full_results):
        recorded = record_checkpointed_golden(InOrderCore(), program)
        assert recorded.golden == full_results[InOrderCore]


class TestConvergenceBitExactness:
    """The hard requirement of the convergence gate: with a fixed seed,
    outcome counts and per-site tallies are identical with the gate on and
    off -- on both cores, serial and parallel, for bare and protected
    campaigns, across grid intervals."""

    @pytest.mark.parametrize("core_cls", CORE_CLASSES, ids=lambda c: c.__name__)
    @settings(max_examples=4, deadline=None)
    @given(data=st.data())
    def test_campaigns_bit_exact_vs_full_replay(self, core_cls, program, data):
        seed = data.draw(st.integers(min_value=0, max_value=2**16),
                         label="seed")
        interval = data.draw(st.sampled_from([None, 4, 24]),
                             label="convergence_interval")
        protected = data.draw(st.booleans(), label="protected")
        protection = MixedProtection() if protected else None
        results = []
        for convergence in (False, True):
            config = EngineConfig(convergence=convergence,
                                  convergence_interval=interval)
            engine = InjectionEngine(core_cls(), program,
                                     protection=protection, seed=seed,
                                     config=config,
                                     golden_cache=GoldenRunCache())
            results.append(engine.run(injections=10))
        full, gated = results
        assert gated.outcomes == full.outcomes
        assert gated.per_site == full.per_site
        assert full.converged_count == 0 and full.saved_cycles == 0
        # Early-outs require a clean event log and matching output, so only
        # Vanished runs ever converge; the saved cycles must be consistent.
        assert gated.converged_count <= gated.outcomes.vanished_count
        assert gated.replayed_cycles + gated.saved_cycles == full.replayed_cycles

    def test_parallel_gated_matches_serial_full_replay(self, program):
        seed, count = 29, 24
        full = InjectionEngine(
            InOrderCore(), program, protection=MixedProtection(), seed=seed,
            config=EngineConfig(convergence=False),
            executor=SerialExecutor(),
            golden_cache=GoldenRunCache()).run(injections=count)
        gated = InjectionEngine(
            InOrderCore(), program, protection=MixedProtection(), seed=seed,
            config=EngineConfig(chunk_size=5),
            executor=ParallelExecutor(workers=2),
            golden_cache=GoldenRunCache()).run(injections=count)
        assert gated.outcomes == full.outcomes
        assert gated.per_site == full.per_site
        assert gated.converged_count > 0
        assert gated.saved_cycle_fraction > 0.0

    def test_convergence_saves_cycles_on_bare_campaign(self, program):
        gated = InjectionEngine(InOrderCore(), program, seed=7,
                                golden_cache=GoldenRunCache()).run(injections=20)
        assert gated.converged_count > 0
        assert gated.saved_cycles > 0
        assert 0.0 < gated.saved_cycle_fraction < 1.0
        assert gated.converged_fraction == pytest.approx(
            gated.converged_count / 20)


class TestConvergenceReplay:
    """Per-replay semantics of the gate, driven through
    replay_planned_injection directly."""

    @pytest.fixture(scope="class")
    def checkpointed(self, program):
        return record_checkpointed_golden(InOrderCore(), program)

    def test_suppressed_injection_converges_at_first_grid_cycle(
            self, program, checkpointed):
        """A suppressed strike never perturbs state, so the replay converges
        at the first grid cycle after the injection and synthesizes the
        golden result exactly."""
        injection = Injection(flat_index=0, cycle=10)
        planned = PlannedInjection(injection=injection,
                                   protection=SiteProtection(suppression=1.0),
                                   suppressed=True)
        replay = replay_planned_injection(InOrderCore(), program, planned,
                                          checkpointed)
        assert replay.outcome is OutcomeCategory.VANISHED
        expected = min(cycle for cycle in checkpointed.fingerprints
                       if cycle > injection.cycle)
        assert replay.converged_at == expected
        assert replay.converged_at - replay.resumed_from == \
            replay.simulated_cycles
        assert replay.saved_cycles == \
            checkpointed.golden.cycles - replay.converged_at
        assert replay.result == checkpointed.golden
        assert replay.result.output is not checkpointed.golden.output

    def test_detection_runs_never_converge(self, program, checkpointed):
        """Detected errors (recovered or not) must replay to termination:
        their event logs diverge from the golden run's by definition."""
        injection = Injection(flat_index=3, cycle=40)
        unrecovered = PlannedInjection(
            injection=injection,
            protection=SiteProtection(technique="parity", detects=True),
            suppressed=False)
        replay = replay_planned_injection(InOrderCore(), program, unrecovered,
                                          checkpointed)
        assert replay.outcome is OutcomeCategory.ED
        assert replay.converged_at is None

        recovered = PlannedInjection(
            injection=injection,
            protection=SiteProtection(technique="parity", detects=True,
                                      recoverable=True, recovery_latency=7),
            suppressed=False)
        replay = replay_planned_injection(InOrderCore(), program, recovered,
                                          checkpointed)
        # The recovery makes the run architecturally clean (Vanished), but
        # its detection log and recovery stall keep it off the golden
        # trajectory -- it must simulate to termination.
        assert replay.outcome is OutcomeCategory.VANISHED
        assert replay.converged_at is None
        assert replay.result.recovery_cycles == 7

    def test_output_divergence_never_converges(self, program, checkpointed):
        """Flips that corrupt emitted output must replay to termination and
        classify OMM -- identically with the gate on and off."""
        core = InOrderCore()
        outval_sites = [index for index in range(core.flip_flop_count)
                        if core.registry.site(index).structure.name
                        == "w.outval"]
        # Find a cycle at which the writeback stage holds a pending output:
        # flipping w.outval there corrupts the emitted stream directly.
        pending_cycles = []

        def observe(observed, cycle):
            if observed.latches.get("w.outpending"):
                pending_cycles.append(cycle)

        core.run(program, cycle_hook=observe)
        assert pending_cycles, "workload emits no output"
        planned = PlannedInjection(
            injection=Injection(flat_index=outval_sites[0],
                                cycle=pending_cycles[-1]),
            protection=SiteProtection(), suppressed=False)
        replay = replay_planned_injection(core, program, planned, checkpointed)
        assert replay.outcome is OutcomeCategory.OMM
        assert replay.converged_at is None
        ungated = replay_planned_injection(core, program, planned,
                                           checkpointed, convergence=False)
        assert ungated.outcome is OutcomeCategory.OMM
        assert ungated.result == replay.result

    def test_gate_disabled_when_grid_missing(self, program):
        bare = record_checkpointed_golden(InOrderCore(), program,
                                          fingerprint_interval=0)
        planned = PlannedInjection(injection=Injection(flat_index=0, cycle=10),
                                   protection=SiteProtection(suppression=1.0),
                                   suppressed=True)
        replay = replay_planned_injection(InOrderCore(), program, planned, bare)
        assert replay.converged_at is None
        assert replay.outcome is OutcomeCategory.VANISHED

    def test_engine_config_gating_knobs(self):
        assert EngineConfig().convergence_enabled
        assert not EngineConfig(convergence=False).convergence_enabled
        assert not EngineConfig(convergence_interval=0).convergence_enabled
        assert EngineConfig(convergence_interval=4).convergence_enabled


class TestGoldenRunCache:
    def test_shared_across_protection_configs(self, program):
        cache = GoldenRunCache()
        core = InOrderCore()
        for protection in (None, MixedProtection()):
            InjectionEngine(core, program, protection=protection, seed=1,
                            golden_cache=cache).run(injections=4)
        assert cache.misses == 1
        assert cache.hits >= 1

    def test_distinguishes_program_content(self, program):
        cache = GoldenRunCache()
        core = InOrderCore()
        cache.get(core, program)
        modified = replace(program, data=DataSegment(
            base=program.data.base, words=list(program.data.words) + [99]))
        cache.get(core, modified)
        assert cache.misses == 2

    def test_lru_eviction(self, program):
        cache = GoldenRunCache(max_entries=1)
        core = InOrderCore()
        cache.get(core, program, interval=100)
        cache.get(core, program, interval=200)
        cache.get(core, program, interval=100)
        assert cache.misses == 3
        assert len(cache) == 1

    def test_stats_and_reporting(self, program):
        from repro.reporting import format_golden_cache_stats

        cache = GoldenRunCache(max_entries=4)
        core = InOrderCore()
        cache.get(core, program)
        cache.get(core, program)
        stats = cache.stats()
        assert (stats.hits, stats.misses, stats.entries,
                stats.max_entries) == (1, 1, 1, 4)
        assert stats.hit_rate == pytest.approx(0.5)
        rendered = format_golden_cache_stats(cache)
        assert "50%" in rendered and "hit rate" in rendered
        cache.clear()
        assert cache.stats().hit_rate == 0.0

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            GoldenRunCache(max_entries=0)

    def test_suite_runner_sizes_private_cache(self, program):
        from repro.faultinjection.campaign import run_suite_campaign

        workloads = [workload_by_name("histogram"), workload_by_name("vpr")]
        with pytest.raises(ValueError):
            run_suite_campaign(InOrderCore(), workloads,
                               injections_per_workload=2,
                               golden_cache=GoldenRunCache(),
                               max_cache_entries=2)
        vulnerability, results = run_suite_campaign(
            InOrderCore(), workloads, injections_per_workload=2,
            max_cache_entries=2)
        assert len(results) == 2


class TestBatchedReplay:
    """Batched lockstep replay is a pure performance knob: with a fixed seed
    and any ``batch_width``, campaigns report outcome counts and per-site
    tallies bit-identical to scalar replay -- on both cores (unsupported
    cores transparently fall back to scalar), both executors, with the
    convergence gate on and off, and with protections exercising the
    suppressed and detecting paths."""

    @pytest.mark.parametrize("core_cls", CORE_CLASSES, ids=lambda c: c.__name__)
    @settings(max_examples=4, deadline=None)
    @given(data=st.data())
    def test_batched_campaigns_bit_exact_vs_scalar(self, core_cls, program,
                                                   data):
        seed = data.draw(st.integers(min_value=0, max_value=2**16),
                         label="seed")
        width = data.draw(st.sampled_from([2, 5, 16]), label="batch_width")
        convergence = data.draw(st.booleans(), label="convergence")
        protected = data.draw(st.booleans(), label="protected")
        protection = MixedProtection() if protected else None
        results = []
        for batch_width in (0, width):
            config = EngineConfig(convergence=convergence,
                                  batch_width=batch_width)
            engine = InjectionEngine(core_cls(), program,
                                     protection=protection, seed=seed,
                                     config=config,
                                     golden_cache=GoldenRunCache())
            results.append(engine.run(injections=12))
        scalar, batched = results
        assert batched.outcomes == scalar.outcomes
        assert batched.per_site == scalar.per_site
        assert scalar.evicted_count == 0 and scalar.lockstep_cycles == 0

    def test_batched_parallel_executor_matches_scalar_serial(self, program):
        seed, count = 17, 24
        scalar = InjectionEngine(
            InOrderCore(), program, protection=MixedProtection(), seed=seed,
            executor=SerialExecutor(),
            golden_cache=GoldenRunCache()).run(injections=count)
        batched = InjectionEngine(
            InOrderCore(), program, protection=MixedProtection(), seed=seed,
            config=EngineConfig(batch_width=8, chunk_size=8),
            executor=ParallelExecutor(workers=2),
            golden_cache=GoldenRunCache()).run(injections=count)
        assert batched.outcomes == scalar.outcomes
        assert batched.per_site == scalar.per_site

    def test_supported_core_seam(self):
        from repro.engine.batch import batched_replay_supported

        assert batched_replay_supported(InOrderCore())
        assert not batched_replay_supported(OutOfOrderCore())

        class TweakedInOrder(InOrderCore):
            """Subclasses may override stage behaviour the lockstep stepper
            does not mirror, so they must fall back to scalar."""

        assert not batched_replay_supported(TweakedInOrder())

    def test_batched_telemetry_fractions(self, program):
        result = InjectionEngine(
            InOrderCore(), program, seed=5,
            config=EngineConfig(batch_width=8),
            golden_cache=GoldenRunCache()).run(injections=20)
        assert 0.0 <= result.evicted_fraction <= 1.0
        assert 0.0 <= result.lockstep_cycle_fraction <= 1.0
        try:
            import numpy  # noqa: F401
        except ImportError:
            assert result.lockstep_cycles == 0  # graceful scalar fallback
        else:
            assert result.lockstep_cycles > 0
            assert result.lockstep_cycles <= result.replayed_cycles

    def test_replay_telemetry_report(self, program):
        from repro.reporting import format_replay_telemetry

        result = InjectionEngine(
            InOrderCore(), program, seed=5,
            config=EngineConfig(batch_width=8),
            golden_cache=GoldenRunCache()).run(injections=20)
        rendered = format_replay_telemetry([("vpr/batched x8", result)])
        assert "vpr/batched x8" in rendered
        assert "lockstep" in rendered and "evicted" in rendered
        assert str(result.replayed_cycles) in rendered
        assert f"{100 * result.converged_fraction:.0f}%" in rendered

    def test_width_below_two_stays_scalar(self, program):
        result = InjectionEngine(
            InOrderCore(), program, seed=5,
            config=EngineConfig(batch_width=1),
            golden_cache=GoldenRunCache()).run(injections=6)
        assert result.evicted_count == 0 and result.lockstep_cycles == 0
