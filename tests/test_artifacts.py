"""Tests for the persistent content-addressed golden-artifact store.

Covers the store's robustness contract (truncated / corrupted / foreign /
future-versioned / mis-keyed blobs and racing writers all degrade to a clean
re-record -- never a crash, never stale state), the two-tier
:class:`GoldenRunCache`, the warm-vs-cold bit-exactness property on both
cores, and the executor-layer additions riding this PR: guided work-stealing
sharding and the small-plan serial fallback.
"""

from __future__ import annotations

import pickle

import pytest
from hypothesis import given, settings, strategies as st

from repro.engine import (
    EngineConfig,
    GoldenArtifactStore,
    GoldenRunCache,
    InjectionEngine,
    ParallelExecutor,
    SerialExecutor,
    artifact_digest,
    cache_for_artifact_dir,
    golden_run_key,
    shard_plan,
    shard_plan_guided,
)
from repro.engine.artifacts import (
    ARTIFACT_FORMAT,
    ARTIFACT_SUFFIX,
    ARTIFACT_VERSION,
    digest_of_key,
)
from repro.engine.checkpoint import resolve_golden_cache
from repro.microarch import InOrderCore, OutOfOrderCore
from repro.workloads import workload_by_name

CORE_CLASSES = (InOrderCore, OutOfOrderCore)


@pytest.fixture(scope="module")
def program():
    return workload_by_name("vpr").program()


@pytest.fixture()
def store(tmp_path):
    return GoldenArtifactStore(tmp_path / "artifacts")


def _save_one(store, program, core=None):
    core = core or InOrderCore()
    cache = GoldenRunCache(store=store)
    artifact = cache.get(core, program)
    digest = artifact_digest(core, program)
    assert store.path_for(digest).exists()
    return digest, artifact


# --------------------------------------------------------------------- digests
class TestContentAddressing:
    def test_digest_is_deterministic(self, program):
        core = InOrderCore()
        assert artifact_digest(core, program) == artifact_digest(core, program)

    def test_digest_depends_on_recording_knobs(self, program):
        core = InOrderCore()
        base = artifact_digest(core, program)
        assert artifact_digest(core, program, interval=17) != base
        assert artifact_digest(core, program, max_checkpoints=3) != base
        assert artifact_digest(core, program, fingerprint_interval=9) != base

    def test_digest_distinguishes_cores(self, program):
        assert (artifact_digest(InOrderCore(), program)
                != artifact_digest(OutOfOrderCore(), program))

    def test_default_knobs_normalise_to_explicit_defaults(self, program):
        """None budget knobs hash identically to their explicit defaults, so
        the disk tier and the memory tier agree about key identity."""
        from repro.engine.checkpoint import (DEFAULT_MAX_CHECKPOINTS,
                                             DEFAULT_MAX_FINGERPRINTS)
        from repro.microarch.core import DEFAULT_MAX_CYCLES

        core = InOrderCore()
        assert artifact_digest(core, program) == artifact_digest(
            core, program, max_checkpoints=DEFAULT_MAX_CHECKPOINTS,
            max_cycles=DEFAULT_MAX_CYCLES,
            max_fingerprints=DEFAULT_MAX_FINGERPRINTS)

    def test_digest_of_key_matches(self, program):
        core = InOrderCore()
        assert digest_of_key(golden_run_key(core, program)) == \
            artifact_digest(core, program)


# ------------------------------------------------------------------- integrity
class TestBlobIntegrity:
    def test_round_trip(self, store, program):
        digest, artifact = _save_one(store, program)
        loaded = store.load(digest)
        assert pickle.dumps(loaded) == pickle.dumps(artifact)
        assert store.stats().errors == 0

    def test_missing_blob_is_plain_miss(self, store):
        assert store.load("0" * 40) is None
        assert store.stats().errors == 0

    def test_truncated_blob_re_records(self, store, program):
        digest, _ = _save_one(store, program)
        path = store.path_for(digest)
        path.write_bytes(path.read_bytes()[:100])
        assert store.load(digest) is None
        assert store.stats().errors == 1
        # The cache degrades to re-recording and heals the blob in place.
        cache = GoldenRunCache(store=store)
        healed = cache.get(InOrderCore(), program)
        assert healed is not None
        assert store.load(digest) is not None

    def test_corrupted_payload_re_records(self, store, program):
        digest, _ = _save_one(store, program)
        path = store.path_for(digest)
        blob = bytearray(path.read_bytes())
        blob[len(blob) // 2] ^= 0xFF
        path.write_bytes(bytes(blob))
        assert store.load(digest) is None
        assert store.stats().errors == 1

    def test_version_mismatch_re_records(self, store, program):
        digest, artifact = _save_one(store, program)
        payload = pickle.dumps(artifact, protocol=4)
        import hashlib

        store.path_for(digest).write_bytes(pickle.dumps({
            "format": ARTIFACT_FORMAT, "version": ARTIFACT_VERSION + 1,
            "key": digest, "payload": payload,
            "payload_digest": hashlib.blake2b(payload,
                                              digest_size=16).digest(),
        }, protocol=4))
        assert store.load(digest) is None
        assert store.stats().errors == 1

    def test_foreign_pickle_re_records(self, store, program):
        digest = artifact_digest(InOrderCore(), program)
        store.root.mkdir(parents=True, exist_ok=True)
        store.path_for(digest).write_bytes(pickle.dumps({"surprise": 1}))
        assert store.load(digest) is None
        assert store.stats().errors == 1

    def test_renamed_blob_key_mismatch(self, store, program):
        digest, _ = _save_one(store, program)
        other = "f" * 40
        store.path_for(digest).rename(store.path_for(other))
        assert store.load(other) is None
        assert store.stats().errors == 1

    def test_unusable_root_degrades_to_recording(self, tmp_path, program):
        # A plain file where the store directory should be: every mkdir and
        # read below it fails, the cache still serves recordings.
        root = tmp_path / "blocker"
        root.write_text("not a directory")
        store = GoldenArtifactStore(root)
        cache = GoldenRunCache(store=store)
        artifact = cache.get(InOrderCore(), program)
        assert artifact is not None
        assert store.stats().saved == 0
        assert store.stats().errors >= 1
        assert cache.stats().artifacts_saved == 0

    def test_concurrent_writers_race_cleanly(self, store, program):
        """Two stores racing on one key both publish complete blobs; the
        last rename wins and the loser's artifact stays usable."""
        core = InOrderCore()
        key = golden_run_key(core, program)
        first = GoldenRunCache(store=store)
        artifact_a = first.get(core, program)
        # Second writer saves the same content-addressed key again (what a
        # losing racer does after the winner already renamed into place).
        other = GoldenArtifactStore(store.root)
        assert other.save_key(key, artifact_a) is not None
        assert len(store) == 1
        reloaded = other.load_key(key)
        assert pickle.dumps(reloaded) == pickle.dumps(artifact_a)
        # No leftover scratch files from either writer.
        assert not list(store.root.glob(".*.tmp"))

    def test_store_census(self, store, program):
        _save_one(store, program)
        stats = store.stats()
        assert stats.entries == len(store) == 1
        assert stats.size_bytes > 0
        assert stats.saved == 1


# ------------------------------------------------------------- two-tier cache
class TestTwoTierCache:
    def test_warm_cache_loads_instead_of_recording(self, store, program):
        core = InOrderCore()
        cold = GoldenRunCache(store=store)
        cold.get(core, program)
        assert cold.stats().artifacts_saved == 1
        assert cold.stats().recorded == 1
        warm = GoldenRunCache(store=store)
        warm.get(core, program)
        stats = warm.stats()
        assert stats.artifacts_loaded == 1
        assert stats.recorded == 0
        assert stats.misses == 1  # disk load still counts as a memory miss

    def test_memory_tier_shortcuts_disk(self, store, program):
        core = InOrderCore()
        cache = GoldenRunCache(store=store)
        cache.get(core, program)
        cache.get(core, program)
        assert cache.stats().hits == 1
        assert store.stats().loaded == 0

    def test_storeless_cache_unchanged(self, program):
        cache = GoldenRunCache()
        cache.get(InOrderCore(), program)
        stats = cache.stats()
        assert (stats.artifacts_loaded, stats.artifacts_saved) == (0, 0)
        assert stats.recorded == 1

    def test_stats_merge_across_fleet(self):
        from repro.engine import GoldenCacheStats

        a = GoldenCacheStats(hits=2, misses=3, entries=3, max_entries=8,
                             artifacts_loaded=1, artifacts_saved=2)
        b = GoldenCacheStats(hits=1, misses=1, entries=1, max_entries=8,
                             artifacts_loaded=1, artifacts_saved=0)
        merged = a.merged_with(b)
        assert (merged.hits, merged.misses) == (3, 4)
        assert merged.artifacts_loaded == 2
        assert merged.recorded == 2

    def test_cache_for_artifact_dir_is_shared_per_root(self, tmp_path):
        first = cache_for_artifact_dir(tmp_path / "store")
        again = cache_for_artifact_dir(tmp_path / "store")
        other = cache_for_artifact_dir(tmp_path / "elsewhere")
        assert first is again
        assert first is not other

    def test_resolve_attaches_store_to_explicit_cache(self, tmp_path):
        cache = GoldenRunCache()
        resolved = resolve_golden_cache(cache, None,
                                        artifact_dir=tmp_path / "store")
        assert resolved is cache
        assert cache.store is not None
        with pytest.raises(ValueError):
            resolve_golden_cache(cache, 4)


# ------------------------------------------------------ executor-layer pieces
class TestGuidedSharding:
    def _plan(self, engine, program, count):
        from repro.faultinjection import uniform_injection_plan

        core = InOrderCore()
        plan = uniform_injection_plan(core.flip_flop_count, 500, count, seed=3)
        return engine.resolve_plan(plan)

    def test_partition_preserves_plan_order(self, program):
        engine = InjectionEngine(InOrderCore(), program, seed=3)
        planned = self._plan(engine, program, 97)
        chunks = shard_plan_guided(planned, seed=3, workers=3, min_chunk=4)
        flattened = [p for chunk in chunks for p in chunk.planned]
        assert flattened == planned
        assert [chunk.index for chunk in chunks] == list(range(len(chunks)))

    def test_sizes_decrease_toward_min_chunk(self, program):
        engine = InjectionEngine(InOrderCore(), program, seed=3)
        planned = self._plan(engine, program, 120)
        chunks = shard_plan_guided(planned, seed=3, workers=2, min_chunk=4)
        sizes = [len(chunk.planned) for chunk in chunks]
        assert sizes == sorted(sizes, reverse=True)
        assert all(size >= 4 for size in sizes[:-1])
        assert sizes[0] == 30  # ceil(120 / (2 * 2))

    def test_seeds_match_static_scheme(self, program):
        engine = InjectionEngine(InOrderCore(), program, seed=5)
        planned = self._plan(engine, program, 40)
        guided = shard_plan_guided(planned, seed=5, workers=2)
        static = shard_plan(planned, seed=5, chunk_size=10)
        assert guided[0].seed == static[0].seed


class TestSerialFallbackAndStealing:
    def test_small_plan_falls_back_to_serial(self, program):
        engine = InjectionEngine(InOrderCore(), program, seed=1,
                                 config=EngineConfig(workers=2))
        assert isinstance(engine._select_executor(30), SerialExecutor)
        assert isinstance(engine._select_executor(64), ParallelExecutor)

    def test_threshold_zero_disables_fallback(self, program):
        engine = InjectionEngine(InOrderCore(), program, seed=1,
                                 config=EngineConfig(workers=2,
                                                     parallel_threshold=0))
        assert isinstance(engine._select_executor(2), ParallelExecutor)

    def test_explicit_executor_is_honoured(self, program):
        executor = ParallelExecutor(workers=2)
        engine = InjectionEngine(InOrderCore(), program, seed=1,
                                 config=EngineConfig(workers=2),
                                 executor=executor)
        assert engine._select_executor(2) is executor

    def test_work_stealing_stream_matches_serial(self):
        """The pull-based dispatcher yields every shard result exactly once
        (order-insensitively), including with more shards than workers."""
        from repro.engine import ChunkSpec

        payload = {"scale": 10}
        shards = [ChunkSpec(index=i, planned=[], seed=i) for i in range(9)]
        stealing = ParallelExecutor(workers=2, work_stealing=True)
        static = ParallelExecutor(workers=2, work_stealing=False)
        expected = {shard.index for shard in shards}
        got_stealing = {r.index for r in
                        stealing.stream(payload, shards, _echo_shard)}
        got_static = {r.index for r in
                      static.stream(payload, shards, _echo_shard)}
        assert got_stealing == got_static == expected


def _echo_shard(payload, shard):
    return shard


# ----------------------------------------------------- warm/cold bit-exactness
class TestWarmColdEquivalence:
    @settings(max_examples=3, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2 ** 16))
    @pytest.mark.parametrize("core_class", CORE_CLASSES)
    def test_campaigns_bit_identical_warm_vs_cold(self, core_class, seed,
                                                  tmp_path_factory, program):
        """Store on/off x cold/warm: outcome counts and per-site tallies are
        bit-identical -- a loaded artifact is interchangeable with a fresh
        recording."""
        root = tmp_path_factory.mktemp("artifacts")
        core = core_class()

        def campaign(cache):
            engine = InjectionEngine(core, program, seed=seed,
                                     golden_cache=cache)
            return engine.run(injections=12)

        storeless = campaign(GoldenRunCache())
        cold_cache = GoldenRunCache(store=GoldenArtifactStore(root))
        cold = campaign(cold_cache)
        assert cold_cache.stats().artifacts_saved == 1
        warm_cache = GoldenRunCache(store=GoldenArtifactStore(root))
        warm = campaign(warm_cache)
        assert warm_cache.stats().artifacts_loaded == 1
        assert warm_cache.stats().recorded == 0
        for result in (cold, warm):
            assert result.outcomes.as_dict() == storeless.outcomes.as_dict()
            assert result.per_site == storeless.per_site

    @pytest.mark.parametrize("core_class", CORE_CLASSES)
    def test_batched_and_parallel_paths_match_warm(self, core_class, tmp_path,
                                                   program):
        """Store x serial/parallel x batch on/off all agree on a warm start."""
        core = core_class()
        reference = InjectionEngine(core, program, seed=9,
                                    golden_cache=GoldenRunCache()).run(
            injections=40)
        variants = [
            EngineConfig(artifact_dir=tmp_path),
            EngineConfig(artifact_dir=tmp_path, batch_width=8),
            EngineConfig(artifact_dir=tmp_path, workers=2,
                         parallel_threshold=0),
            EngineConfig(artifact_dir=tmp_path, workers=2,
                         parallel_threshold=0, batch_width=8),
            EngineConfig(artifact_dir=tmp_path, workers=2,
                         parallel_threshold=0, work_stealing=False),
        ]
        for config in variants:
            result = InjectionEngine(core, program, seed=9, config=config,
                                     golden_cache=GoldenRunCache(
                                         store=GoldenArtifactStore(tmp_path))
                                     ).run(injections=40)
            assert result.outcomes.as_dict() == reference.outcomes.as_dict()
            assert result.per_site == reference.per_site
