"""Tests for the resilience library and protected-design configurations."""

from __future__ import annotations

import pytest

from repro.faultinjection import FlipFlopInjector, Injection, OutcomeCategory
from repro.microarch import InOrderCore
from repro.physical import CellType, DesignCostModel, RecoveryKind, TimingModel
from repro.resilience import (
    ABFT_FF_COVERAGE,
    HardeningPlan,
    ParityHeuristic,
    ParityPlanner,
    ProtectedDesign,
    TABLE3_PUBLISHED,
    abft_correction_descriptor,
    abft_covered_flip_flops,
    abft_detection_descriptor,
    assertions_descriptor,
    cfcss_descriptor,
    dfc_descriptor,
    dual_mode_plan,
    eddi_descriptor,
    harden_remaining_with_lhl,
    harden_top_flip_flops,
    high_level_techniques,
    measure_abft_impact,
    monitor_core_descriptor,
    monitor_core_throughput_sufficient,
)
from repro.resilience.base import Layer, core_family
from repro.workloads import workload_by_name


class TestDescriptors:
    def test_layers(self):
        assert dfc_descriptor().layer is Layer.ARCHITECTURE
        assert cfcss_descriptor().layer is Layer.SOFTWARE
        assert abft_correction_descriptor().layer is Layer.ALGORITHM

    def test_monitor_core_only_costed_for_ooo(self):
        descriptor = monitor_core_descriptor()
        assert descriptor.costs("OoO").power_pct == pytest.approx(16.3)
        assert descriptor.costs("InO").power_pct == 0.0

    def test_high_level_library_per_family(self):
        ino = {t.name for t in high_level_techniques("InO")}
        ooo = {t.name for t in high_level_techniques("OoO")}
        assert "eddi" in ino and "eddi" not in ooo
        assert "monitor-core" in ooo and "monitor-core" not in ino

    def test_gamma_values_match_paper(self):
        assert dfc_descriptor().gamma("InO").factor == pytest.approx(1.27, rel=0.02)
        assert cfcss_descriptor().gamma("InO").factor == pytest.approx(1.41, rel=0.01)
        assert eddi_descriptor().gamma("InO").factor == pytest.approx(2.1, rel=0.01)
        assert monitor_core_descriptor().gamma("OoO").factor == pytest.approx(1.38, rel=0.01)

    def test_eddi_store_readback_improves_coverage(self):
        with_readback = eddi_descriptor(store_readback=True)
        without = eddi_descriptor(store_readback=False)
        assert (with_readback.coverage.overall_sdc_detection
                > without.coverage.overall_sdc_detection)

    def test_monitor_throughput_check(self):
        assert monitor_core_throughput_sufficient(600.0, 1.3)
        assert not monitor_core_throughput_sufficient(3000.0, 2.0)

    def test_published_table3_reference_data_present(self):
        assert ("leap-dice", "InO") in TABLE3_PUBLISHED
        assert TABLE3_PUBLISHED[("eddi", "InO")]["sdc"] == pytest.approx(37.8)

    def test_core_family_resolution(self):
        assert core_family("InO-core") == "InO"
        assert core_family("OoO-core") == "OoO"


class TestHardeningPlans:
    def test_top_k_hardening(self):
        plan = harden_top_flip_flops([5, 3, 9, 1], 2)
        assert plan.cell_for(5) is CellType.LEAP_DICE
        assert plan.cell_for(9) is CellType.BASELINE
        assert plan.protected_count() == 2
        assert plan.suppression_for(5) > 0.999

    def test_lhl_augmentation_covers_everything(self):
        plan = harden_top_flip_flops([0, 1], 2)
        harden_remaining_with_lhl(plan, range(6))
        assert plan.protected_count() == 6
        assert plan.cell_for(5) is CellType.LHL

    def test_dual_mode_plan_swaps_abft_covered_cells(self):
        base = harden_top_flip_flops([0, 1, 2], 3).assignments
        plan = dual_mode_plan({1, 2}, base)
        assert plan.cell_for(0) is CellType.LEAP_DICE
        assert plan.cell_for(1) is CellType.LEAP_CTRL_RESILIENT


class TestParityPlanner:
    @pytest.fixture(scope="class")
    def planner(self, ino_core, ino_framework):
        timing = TimingModel(ino_core.registry, seed=1)
        return ParityPlanner(ino_core.registry, timing, ino_framework.vulnerability)

    def test_all_heuristics_cover_all_members(self, planner, ino_core):
        flip_flops = list(range(ino_core.flip_flop_count))
        for heuristic in ParityHeuristic:
            groups = planner.build_groups(flip_flops, heuristic, group_size=16)
            covered = sorted(m for g in groups for m in g.members)
            assert covered == flip_flops

    def test_locality_groups_are_single_unit(self, planner, ino_core):
        groups = planner.build_groups(list(range(ino_core.flip_flop_count)),
                                      ParityHeuristic.LOCALITY, group_size=16)
        registry = ino_core.registry
        for group in groups:
            units = {registry.site(m).structure.unit for m in group.members}
            assert len(units) == 1
            assert group.local

    def test_optimized_is_cheapest(self, planner, ino_core):
        cost_model = DesignCostModel(ino_core.name, ino_core.flip_flop_count)
        rows = planner.compare_heuristics(list(range(ino_core.flip_flop_count)), cost_model)
        optimized = rows["optimized"]["energy_pct"]
        assert optimized <= min(row["energy_pct"] for label, row in rows.items()
                                if label != "optimized") * 1.01

    def test_added_flip_flops_counted(self, planner):
        groups = planner.build_groups(list(range(64)), ParityHeuristic.GROUP_SIZE,
                                      group_size=16)
        assert planner.added_flip_flops(groups) >= len(groups)


class TestAbft:
    def test_ff_coverage_fractions(self, ino_core):
        covered = abft_covered_flip_flops(ino_core.registry, ino_core.name)
        expected = ABFT_FF_COVERAGE["InO"]["union"] * ino_core.flip_flop_count
        assert len(covered) == pytest.approx(expected, rel=0.05)

    def test_measured_abft_impact_positive_and_small(self, ino_core):
        measurement = measure_abft_impact(ino_core, workload_by_name("inner_product"))
        assert 0.0 < measurement.exec_time_impact_pct < 60.0

    def test_measure_abft_requires_support(self, ino_core):
        with pytest.raises(ValueError):
            measure_abft_impact(ino_core, workload_by_name("bzip2"))


class TestProtectedDesign:
    def test_gamma_composition(self, ino_core):
        design = ProtectedDesign(registry=ino_core.registry,
                                 high_level=[cfcss_descriptor()])
        assert design.gamma() == pytest.approx(1.41, rel=0.02)
        with_recovery = ProtectedDesign(registry=ino_core.registry,
                                        recovery=RecoveryKind.IR)
        assert with_recovery.gamma() > 1.2

    def test_cost_includes_all_components(self, ino_core):
        cost_model = DesignCostModel(ino_core.name, ino_core.flip_flop_count)
        plan = harden_top_flip_flops(list(range(100)), 100)
        design = ProtectedDesign(registry=ino_core.registry, hardening=plan,
                                 recovery=RecoveryKind.FLUSH,
                                 high_level=[abft_correction_descriptor()])
        report = design.cost(cost_model)
        assert report.area_pct > 0 and report.energy_pct > report.power_pct * 0.99
        assert report.exec_time_pct == pytest.approx(1.4)

    def test_improvement_estimation_increases_with_protection(self, ino_framework):
        registry = ino_framework.core.registry
        vulnerability = ino_framework.vulnerability
        ranked = vulnerability.ranked_by_vulnerability()
        small = ProtectedDesign(registry=registry,
                                hardening=harden_top_flip_flops(ranked, 50))
        large = ProtectedDesign(registry=registry,
                                hardening=harden_top_flip_flops(ranked, 400))
        small_estimate = small.estimate_improvement(vulnerability)
        large_estimate = large.estimate_improvement(vulnerability)
        assert large_estimate.sdc_improvement > small_estimate.sdc_improvement > 1.0

    def test_detection_without_recovery_degrades_due(self, ino_framework):
        registry = ino_framework.core.registry
        vulnerability = ino_framework.vulnerability
        timing = ino_framework.timing
        planner = ParityPlanner(registry, timing, vulnerability)
        groups = planner.build_groups(list(range(registry.total_flip_flops)),
                                      ParityHeuristic.OPTIMIZED)
        unprotected_due = ProtectedDesign(registry=registry).estimate_improvement(
            vulnerability).due_improvement
        detect_only = ProtectedDesign(registry=registry, parity_groups=groups)
        estimate = detect_only.estimate_improvement(vulnerability)
        assert estimate.sdc_improvement > 100  # every SDC detected
        assert estimate.due_improvement < unprotected_due  # DUEs increase

    def test_site_protection_semantics_with_injector(self, ino_framework, small_workload):
        registry = ino_framework.core.registry
        ranked = ino_framework.vulnerability.ranked_by_vulnerability()
        plan = harden_top_flip_flops(ranked, registry.total_flip_flops)
        design = ProtectedDesign(registry=registry, hardening=plan)
        core = InOrderCore()
        injector = FlipFlopInjector(core, protection=design, seed=2)
        program = small_workload.program()
        golden = injector.golden_run(program)
        outcomes = [injector.run_with_injection(
            program, Injection(flat_index=ranked[i], cycle=golden.cycles // 2), golden)[1]
            for i in range(0, 200, 20)]
        assert all(outcome is OutcomeCategory.VANISHED for outcome in outcomes)

    def test_technique_names_listing(self, ino_core):
        design = ProtectedDesign(registry=ino_core.registry,
                                 hardening=harden_top_flip_flops([0, 1], 2),
                                 recovery=RecoveryKind.FLUSH,
                                 high_level=[assertions_descriptor()])
        names = design.technique_names()
        assert "assertions" in names and "flush" in names and "leap-dice" in names

    def test_recovery_coverage_boundaries(self, ino_core):
        design = ProtectedDesign(registry=ino_core.registry, recovery=RecoveryKind.FLUSH)
        writeback_site = next(s.first_index for s in ino_core.registry.structures
                              if s.unit == "writeback")
        fetch_site = next(s.first_index for s in ino_core.registry.structures
                          if s.unit == "fetch")
        assert not design.recovery_covers(writeback_site)
        assert design.recovery_covers(fetch_site)

    def test_abft_detection_descriptor_detection_only(self):
        assert abft_detection_descriptor().detection_only
        assert not abft_correction_descriptor().detection_only
