"""Tests for the fault-injection framework."""

from __future__ import annotations

import pytest

from repro.faultinjection import (
    CalibratedVulnerabilityModel,
    FlipFlopInjector,
    HighLevelInjector,
    Injection,
    InjectionCampaign,
    InjectionLevel,
    OutcomeCategory,
    OutcomeCounts,
    SemuModel,
    SiteProtection,
    VulnerabilityMap,
    classify_outcome,
    exhaustive_site_plan,
    margin_of_error,
    profile_for_core,
    uniform_injection_plan,
)
from repro.microarch import InOrderCore, TerminationReason
from repro.microarch.events import DetectionEvent, RunResult
from repro.physical import Placement


def _result(reason, output, trap=None, detections=()):
    return RunResult(program_name="p", core_name="c", reason=reason, trap=trap,
                     cycles=100, instructions_retired=40, output=list(output),
                     detections=list(detections))


class TestOutcomeClassification:
    def test_vanished(self):
        golden = _result(TerminationReason.HALTED, [1, 2])
        injected = _result(TerminationReason.HALTED, [1, 2])
        assert classify_outcome(golden, injected) is OutcomeCategory.VANISHED

    def test_omm_is_sdc(self):
        golden = _result(TerminationReason.HALTED, [1, 2])
        injected = _result(TerminationReason.HALTED, [1, 3])
        outcome = classify_outcome(golden, injected)
        assert outcome is OutcomeCategory.OMM and outcome.is_sdc

    def test_trap_is_ut(self):
        golden = _result(TerminationReason.HALTED, [1])
        injected = _result(TerminationReason.TRAP, [])
        outcome = classify_outcome(golden, injected)
        assert outcome is OutcomeCategory.UT and outcome.is_due

    def test_hang(self):
        golden = _result(TerminationReason.HALTED, [1])
        injected = _result(TerminationReason.HANG, [])
        assert classify_outcome(golden, injected) is OutcomeCategory.HANG

    def test_unrecovered_detection_is_ed(self):
        golden = _result(TerminationReason.HALTED, [1])
        injected = _result(TerminationReason.DETECTED, [],
                           detections=[DetectionEvent("parity", 5)])
        assert classify_outcome(golden, injected) is OutcomeCategory.ED

    def test_recovered_detection_with_matching_output_vanishes(self):
        golden = _result(TerminationReason.HALTED, [1])
        injected = _result(TerminationReason.HALTED, [1],
                           detections=[DetectionEvent("parity", 5, recovered=True)])
        assert classify_outcome(golden, injected) is OutcomeCategory.VANISHED


class TestOutcomeCounts:
    def test_counting_and_rates(self):
        counts = OutcomeCounts()
        counts.record(OutcomeCategory.OMM, 3)
        counts.record(OutcomeCategory.UT)
        counts.record(OutcomeCategory.ED)
        counts.record(OutcomeCategory.VANISHED, 5)
        assert counts.total == 10
        assert counts.sdc_count == 3
        assert counts.due_count == 2
        assert counts.rate(OutcomeCategory.VANISHED) == 0.5

    def test_merge(self):
        a = OutcomeCounts()
        a.record(OutcomeCategory.OMM, 2)
        b = OutcomeCounts()
        b.record(OutcomeCategory.OMM, 3)
        assert a.merged_with(b).sdc_count == 5

    def test_margin_of_error_decreases_with_samples(self):
        assert margin_of_error(100) > margin_of_error(10_000)
        assert margin_of_error(0) == 1.0


class TestInjectionPlans:
    def test_uniform_plan_shape(self):
        plan = uniform_injection_plan(100, 500, 50, seed=1)
        assert len(plan) == 50
        assert all(0 <= i.flat_index < 100 and 0 <= i.cycle < 500 for i in plan)
        assert plan == uniform_injection_plan(100, 500, 50, seed=1)

    def test_exhaustive_plan_covers_every_site(self):
        plan = exhaustive_site_plan(20, 100, 2, seed=1)
        assert len(plan) == 40
        assert {i.flat_index for i in plan} == set(range(20))


class TestFlipFlopInjector:
    def test_injection_changes_behaviour_sometimes(self, ino_core, small_workload):
        injector = FlipFlopInjector(ino_core, seed=3)
        program = small_workload.program()
        golden = injector.golden_run(program)
        outcomes = set()
        plan = uniform_injection_plan(ino_core.flip_flop_count, golden.cycles, 40, seed=3)
        for injection in plan:
            _, outcome = injector.run_with_injection(program, injection, golden)
            outcomes.add(outcome)
        assert OutcomeCategory.VANISHED in outcomes
        assert len(outcomes) >= 2  # at least some non-vanished outcomes

    def test_protected_site_suppresses_error(self, small_workload):
        class FullProtection:
            def site_protection(self, flat_index):
                return SiteProtection(technique="leap-dice", suppression=1.0)

        core = InOrderCore()
        injector = FlipFlopInjector(core, protection=FullProtection(), seed=1)
        program = small_workload.program()
        golden = injector.golden_run(program)
        plan = uniform_injection_plan(core.flip_flop_count, golden.cycles, 25, seed=5)
        for injection in plan:
            _, outcome = injector.run_with_injection(program, injection, golden)
            assert outcome is OutcomeCategory.VANISHED

    def test_detection_without_recovery_terminates_as_ed(self, small_workload):
        class DetectOnly:
            def site_protection(self, flat_index):
                return SiteProtection(technique="parity", detects=True, recoverable=False)

        core = InOrderCore()
        injector = FlipFlopInjector(core, protection=DetectOnly(), seed=1)
        program = small_workload.program()
        golden = injector.golden_run(program)
        injected, outcome = injector.run_with_injection(
            program, Injection(flat_index=10, cycle=golden.cycles // 2), golden)
        assert outcome is OutcomeCategory.ED
        assert injected.reason is TerminationReason.DETECTED

    def test_detection_with_recovery_vanishes_and_costs_cycles(self, small_workload):
        class DetectRecover:
            def site_protection(self, flat_index):
                return SiteProtection(technique="parity", detects=True, recoverable=True,
                                      recovery_latency=7)

        core = InOrderCore()
        injector = FlipFlopInjector(core, protection=DetectRecover(), seed=1)
        program = small_workload.program()
        golden = injector.golden_run(program)
        injected, outcome = injector.run_with_injection(
            program, Injection(flat_index=10, cycle=golden.cycles // 2), golden)
        assert outcome is OutcomeCategory.VANISHED
        assert injected.recovery_cycles == 7
        assert injected.cycles >= golden.cycles


class TestCampaign:
    def test_campaign_aggregates_and_contributes(self, small_workload):
        core = InOrderCore()
        campaign = InjectionCampaign(core, small_workload.program(), seed=11)
        result = campaign.run(injections=30)
        assert result.injections == 30
        assert 0.0 < result.achieved_margin_of_error <= 1.0
        vulnerability = VulnerabilityMap(core.name, core.flip_flop_count)
        result.contribute_to(vulnerability)
        assert vulnerability.benchmarks == [small_workload.name]


class TestVulnerabilityMap:
    def test_record_and_rank(self):
        vmap = VulnerabilityMap("core", 4)
        vmap.record("b", 0, samples=10, sdc=5, due=1)
        vmap.record("b", 1, samples=10, sdc=1, due=8)
        vmap.record("b", 2, samples=10, sdc=0, due=0)
        assert vmap.sdc_probability(0) == 0.5
        assert vmap.fraction_with_sdc() == 0.5
        assert vmap.fraction_with_any() == 0.5
        ranking = vmap.ranked_by_vulnerability()
        assert ranking[0] in (0, 1) and ranking[-1] in (2, 3)

    def test_merged(self):
        a = VulnerabilityMap("core", 2)
        a.record("b", 0, samples=5, sdc=1, due=0)
        b = VulnerabilityMap("core", 2)
        b.record("b", 0, samples=5, sdc=3, due=1)
        merged = a.merged(b)
        assert merged.site("b", 0).samples == 10
        assert merged.site("b", 0).sdc == 4


class TestCalibratedModel:
    def test_matches_profile_fractions(self, ino_core):
        profile = profile_for_core(ino_core.name)
        model = CalibratedVulnerabilityModel(ino_core.registry, ["a", "b", "c"], seed=5)
        vmap = model.build_map()
        assert abs(vmap.fraction_with_sdc() - profile.fraction_sdc_ffs) < 0.03
        assert abs(vmap.fraction_with_due() - profile.fraction_due_ffs) < 0.03
        assert abs(vmap.fraction_with_any() - profile.fraction_any_ffs) < 0.03

    def test_deterministic_given_seed(self, ino_core):
        first = CalibratedVulnerabilityModel(ino_core.registry, ["a"], seed=9).build_map()
        second = CalibratedVulnerabilityModel(ino_core.registry, ["a"], seed=9).build_map()
        assert first.total_sdc_rate() == second.total_sdc_rate()

    def test_top_decile_concentration(self, ino_framework):
        vmap = ino_framework.vulnerability
        ranking = vmap.ranked_by_vulnerability()
        total = vmap.total_sdc_rate()
        top = ranking[:len(ranking) // 10]
        top_share = sum(vmap.sdc_probability(i) for i in top) / total
        assert top_share > 0.35  # heavy concentration in the top decile


class TestHighLevelInjection:
    def test_register_uniform_campaign(self, small_workload):
        core = InOrderCore()
        injector = HighLevelInjector(core, seed=2)
        result = injector.campaign(InjectionLevel.REGISTER_UNIFORM,
                                   small_workload.program(), count=15)
        assert result.counts.total == 15
        assert result.level is InjectionLevel.REGISTER_UNIFORM

    def test_plan_levels(self, small_workload):
        core = InOrderCore()
        injector = HighLevelInjector(core, seed=2)
        golden = core.run(small_workload.program())
        for level in (InjectionLevel.REGISTER_WRITE, InjectionLevel.VARIABLE_UNIFORM,
                      InjectionLevel.VARIABLE_WRITE):
            plan = injector.plan(level, small_workload.program(), golden, 5)
            assert len(plan) == 5


class TestSemu:
    def test_multiplicity_and_parity_constraint(self, ino_core):
        placement = Placement(ino_core.registry, seed=3)
        semu = SemuModel(placement, seed=3)
        distribution = semu.multiplicity_distribution(sample_size=200)
        assert sum(distribution.values()) == pytest.approx(1.0)
        assert max(distribution) >= 2  # some strikes upset multiple flip-flops
        event = semu.upset_set(0)
        assert 0 in event.upset_indices
        # A group spread by the layout constraint is never double-upset.
        far_apart = [0, ino_core.flip_flop_count // 2, ino_core.flip_flop_count - 1]
        assert not semu.violates_parity_group(far_apart)
