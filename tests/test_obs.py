"""Tests for the unified instrumentation layer (:mod:`repro.obs`).

Covers the observability contracts the engine now rests on:

1. the disabled fast path really is a no-op: disabled registries/recorders
   hand back shared null singletons and stay empty, and campaigns report
   bit-identical outcomes with instrumentation fully on and fully off
   (both cores, both executors);
2. worker metrics merge deterministically: a parallel campaign with pinned
   chunking reproduces the serial campaign's counters and histograms
   exactly;
3. the emitted trace is valid Chrome trace-event JSON carrying the expected
   phase spans, and the phase cycle counters reconcile *exactly* with the
   campaign telemetry (``replayed_cycles`` / ``saved_cycles`` /
   ``lockstep_cycles``);
4. run manifests ride along with persisted frontiers and ``BENCH_*.json``
   documents and survive the round-trip.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

import pytest

from repro.analysis.pareto import ParetoFrontier, ParetoPoint
from repro.analysis.store import (
    STORE_VERSION,
    frontier_from_dict,
    frontier_to_dict,
    load_frontier,
    save_frontier,
)
from repro.engine import EngineConfig, GoldenRunCache, InjectionEngine
from repro.microarch import InOrderCore, OutOfOrderCore
from repro.obs import (
    NULL_METRICS,
    NULL_SPAN,
    NULL_TIMER,
    NULL_TRACER,
    Instrumentation,
    MetricsRegistry,
    TraceRecorder,
    build_manifest,
    git_revision,
    manifest_dict,
    validate_trace_events,
)
from repro.obs.phases import (
    CYCLES_LOCKSTEP,
    CYCLES_SAVED,
    HISTOGRAM_REPLAY_CYCLES,
    PHASE_GOLDEN_RECORD,
    PHASE_LOCKSTEP,
    REPLAY_CYCLE_COUNTERS,
    SPAN_CAMPAIGN,
    SPAN_CHUNK,
    SPAN_PLAN,
    replayed_cycle_total,
)
from repro.reporting import format_phase_breakdown, format_table
from repro.workloads import workload_by_name

CORE_CLASSES = (InOrderCore, OutOfOrderCore)


@pytest.fixture(scope="module")
def program():
    return workload_by_name("histogram").program()


def run_campaign(core, program, seed=3, injections=24, **config_kwargs):
    """One engine campaign on a private golden cache (so the golden-record
    counters do not depend on which test ran first)."""
    engine = InjectionEngine(core, program, seed=seed,
                             config=EngineConfig(**config_kwargs),
                             golden_cache=GoldenRunCache())
    return engine.run(injections=injections)


def assert_same_statistics(a, b):
    """The campaign exactness contract: outcome counts, per-site tallies and
    the replay telemetry all agree."""
    assert a.outcomes == b.outcomes
    assert a.per_site == b.per_site
    assert a.replayed_cycles == b.replayed_cycles
    assert a.saved_cycles == b.saved_cycles
    assert a.converged_count == b.converged_count
    assert a.evicted_count == b.evicted_count
    assert a.lockstep_cycles == b.lockstep_cycles


# ---------------------------------------------------------------------------
# MetricsRegistry
# ---------------------------------------------------------------------------
class TestMetricsRegistry:
    def test_counters_accumulate(self):
        metrics = MetricsRegistry()
        metrics.inc("cycles", 10)
        metrics.inc("cycles", 5)
        metrics.inc("replays")
        assert metrics.value("cycles") == 15
        assert metrics.value("replays") == 1
        assert metrics.value("never-touched") == 0

    def test_timer_accumulates_seconds_and_count(self):
        metrics = MetricsRegistry(timing=True)
        with metrics.timer("phase"):
            pass
        metrics.add_time("phase", 0.5)
        assert metrics.seconds("phase") >= 0.5
        assert metrics.timers["phase"][1] == 2

    def test_histogram_power_of_two_buckets(self):
        metrics = MetricsRegistry()
        for value in (0, 1, 2, 3, 4, 7, 8, 1000):
            metrics.observe("lengths", value)
        assert metrics.histograms["lengths"] == {
            0: 1, 1: 1, 2: 2, 3: 2, 4: 1, 10: 1}

    def test_dict_round_trip_and_merge(self):
        metrics = MetricsRegistry(timing=True)
        metrics.inc("cycles", 7)
        metrics.add_time("phase", 1.25, count=3)
        metrics.observe("lengths", 5)
        restored = MetricsRegistry.from_dict(metrics.to_dict())
        assert restored.to_dict() == metrics.to_dict()

        merged = MetricsRegistry(timing=True)
        merged.merge(metrics)
        merged.merge(restored)
        assert merged.value("cycles") == 14
        assert merged.seconds("phase") == 2.5
        assert merged.histograms["lengths"] == {3: 2}

    def test_disabled_registry_is_a_no_op(self):
        metrics = MetricsRegistry(enabled=False)
        metrics.inc("cycles", 10)
        metrics.add_time("phase", 1.0)
        metrics.observe("lengths", 5)
        metrics.merge_dict({"counters": {"cycles": 3}})
        assert metrics.timer("phase") is NULL_TIMER
        assert not metrics.counters and not metrics.timers
        assert not metrics.histograms
        # The shared singleton must never have accumulated anything either.
        assert not NULL_METRICS.counters

    def test_counters_without_timing_skip_the_clock(self):
        """The engine's per-chunk shape: counters on, clock off."""
        metrics = MetricsRegistry(enabled=True, timing=False)
        metrics.inc("cycles", 2)
        metrics.add_time("phase", 1.0)
        assert metrics.timer("phase") is NULL_TIMER
        assert metrics.value("cycles") == 2
        assert not metrics.timers


# ---------------------------------------------------------------------------
# TraceRecorder
# ---------------------------------------------------------------------------
class TestTraceRecorder:
    def test_disabled_recorder_hands_back_null_span(self):
        tracer = TraceRecorder(enabled=False)
        assert tracer.span("anything") is NULL_SPAN
        tracer.instant("event")
        tracer.absorb([{"name": "x"}])
        assert tracer.events == []
        assert NULL_TRACER.events == []

    def test_span_and_instant_events_validate(self):
        tracer = TraceRecorder(enabled=True)
        with tracer.span("outer", args={"seed": 3}) as span:
            span.note(cycles=12)
            tracer.instant("marker", args={"k": 1})
        events = validate_trace_events(tracer.to_dict())
        assert [event["name"] for event in events] == ["marker", "outer"]
        outer = events[1]
        assert outer["ph"] == "X" and outer["dur"] >= 0
        assert outer["args"] == {"seed": 3, "cycles": 12}
        assert tracer.span_names() == {"outer", "marker"}

    def test_absorb_keeps_worker_events_verbatim(self):
        worker = TraceRecorder(enabled=True)
        with worker.span("chunk"):
            pass
        worker.events[0]["pid"] = 99999  # simulate a different process
        home = TraceRecorder(enabled=True)
        home.absorb(worker.events)
        assert home.events[0]["pid"] == 99999

    def test_validate_rejects_malformed_documents(self):
        with pytest.raises(ValueError, match="traceEvents"):
            validate_trace_events({"events": []})
        with pytest.raises(ValueError, match="missing"):
            validate_trace_events({"traceEvents": [{"name": "x", "ph": "i"}]})
        with pytest.raises(ValueError, match="dur"):
            validate_trace_events({"traceEvents": [
                {"name": "x", "ph": "X", "ts": 0.0, "pid": 1, "tid": 0}]})

    def test_save_writes_loadable_json(self, tmp_path):
        tracer = TraceRecorder(enabled=True)
        with tracer.span("campaign"):
            pass
        path = tracer.save(tmp_path / "nested" / "trace.json")
        document = json.loads(path.read_text())
        assert validate_trace_events(document)[0]["name"] == "campaign"
        assert document["displayTimeUnit"] == "ms"


# ---------------------------------------------------------------------------
# Instrumentation bundle
# ---------------------------------------------------------------------------
class TestInstrumentation:
    def test_off_is_the_shared_disabled_bundle(self):
        obs = Instrumentation.off()
        assert obs.metrics is NULL_METRICS
        assert obs.tracer is NULL_TRACER
        assert not obs.detailed

    def test_configure_tiers(self):
        default = Instrumentation.configure()
        assert default.metrics.enabled and not default.metrics.timing
        assert not default.tracer.enabled and not default.detailed
        detailed = Instrumentation.configure(metrics=True, trace=True)
        assert detailed.metrics.timing and detailed.tracer.enabled
        assert detailed.detailed


# ---------------------------------------------------------------------------
# Disabled fast path through real campaigns
# ---------------------------------------------------------------------------
class TestCampaignsUnchangedByInstrumentation:
    @pytest.mark.parametrize("core_class", CORE_CLASSES,
                             ids=lambda cls: cls.__name__)
    @pytest.mark.parametrize("workers", (1, 2), ids=("serial", "parallel"))
    def test_outcomes_identical_obs_on_and_off(self, core_class, workers,
                                               program, tmp_path):
        baseline = run_campaign(core_class(), program, workers=workers)
        traced = run_campaign(core_class(), program, workers=workers,
                              metrics=True,
                              trace=str(tmp_path / "trace.json"))
        assert_same_statistics(baseline, traced)
        assert baseline.trace_events is None
        assert traced.trace_events

    def test_outcomes_identical_with_batched_replay(self, program, tmp_path):
        baseline = run_campaign(InOrderCore(), program, batch_width=8)
        traced = run_campaign(InOrderCore(), program, batch_width=8,
                              metrics=True,
                              trace=str(tmp_path / "trace.json"))
        assert_same_statistics(baseline, traced)

    def test_counters_collected_even_with_obs_off(self, program):
        """Phase cycle counters back the campaign telemetry, so they are
        always on; only timers/histograms/spans are gated."""
        result = run_campaign(InOrderCore(), program)
        counters = result.metrics["counters"]
        assert result.replayed_cycles == sum(
            counters.get(name, 0) for name in REPLAY_CYCLE_COUNTERS)
        assert not result.metrics["timers"]
        assert not result.metrics["histograms"]


# ---------------------------------------------------------------------------
# Deterministic cross-worker merge
# ---------------------------------------------------------------------------
class TestDeterministicWorkerMerge:
    def test_parallel_counters_match_serial_exactly(self, program):
        """With pinned chunking, a 2-worker campaign merges to the same
        counters and histograms as the serial campaign, bit for bit.
        (Chunking itself must be pinned: each chunk sweeps its own wavefront
        reference lane, so chunk *shape* legitimately shapes the shared-cycle
        counter -- the executor must not.)"""
        serial = run_campaign(InOrderCore(), program, injections=30,
                              workers=1, chunk_size=8, batch_width=8,
                              metrics=True)
        parallel = run_campaign(InOrderCore(), program, injections=30,
                                workers=2, chunk_size=8, batch_width=8,
                                metrics=True)
        assert_same_statistics(serial, parallel)
        assert serial.metrics["counters"] == parallel.metrics["counters"]
        assert serial.metrics["histograms"] == parallel.metrics["histograms"]
        assert serial.metrics["histograms"].get(HISTOGRAM_REPLAY_CYCLES)
        # Wall-clock seconds differ run to run, but the invocation counts
        # under each timer are part of the deterministic merge.
        assert ({name: entry["count"]
                 for name, entry in serial.metrics["timers"].items()}
                == {name: entry["count"]
                    for name, entry in parallel.metrics["timers"].items()})


# ---------------------------------------------------------------------------
# Acceptance scenario: traced parallel batched campaign reconciles
# ---------------------------------------------------------------------------
class TestTracedCampaignReconciliation:
    @pytest.fixture(scope="class")
    def traced(self, tmp_path_factory):
        program = workload_by_name("histogram").program()
        trace_path = tmp_path_factory.mktemp("obs") / "campaign_trace.json"
        # parallel_threshold=0: the fixture's 30 injections sit below the
        # engine's small-plan serial fallback, and this class asserts
        # multi-process trace tracks.
        result = run_campaign(InOrderCore(), program, seed=3, injections=30,
                              workers=2, parallel_threshold=0, batch_width=8,
                              convergence=True, metrics=True,
                              trace=str(trace_path))
        return result, trace_path

    def test_phase_counters_reconcile_with_telemetry(self, traced):
        result, _ = traced
        counters = result.metrics["counters"]
        assert result.replayed_cycles == sum(
            counters.get(name, 0) for name in REPLAY_CYCLE_COUNTERS)
        assert result.replayed_cycles == replayed_cycle_total(result.metrics)
        assert result.lockstep_cycles == counters.get(CYCLES_LOCKSTEP, 0)
        assert result.saved_cycles == counters.get(CYCLES_SAVED, 0)
        assert result.lockstep_cycles > 0
        assert result.saved_cycles > 0

    def test_trace_file_is_valid_chrome_trace_json(self, traced):
        result, trace_path = traced
        document = json.loads(trace_path.read_text())
        events = validate_trace_events(document)
        names = {event["name"] for event in events}
        assert {SPAN_CAMPAIGN, SPAN_PLAN, SPAN_CHUNK,
                PHASE_GOLDEN_RECORD, PHASE_LOCKSTEP} <= names
        # Worker chunks keep their own pid: multiple process tracks.
        assert len({event["pid"] for event in events}) >= 2
        # The in-memory events are the same document.
        assert events == result.trace_events

    def test_outcomes_match_untraced_campaign(self, traced):
        result, _ = traced
        program = workload_by_name("histogram").program()
        plain = run_campaign(InOrderCore(), program, seed=3, injections=30,
                             workers=2, parallel_threshold=0, batch_width=8,
                             convergence=True)
        assert_same_statistics(plain, result)

    def test_phase_breakdown_table_reconciles(self, traced):
        result, _ = traced
        table = format_phase_breakdown(result)
        lines = table.splitlines()
        assert lines[2].split() == ["phase", "cycles", "share", "wall"]
        total_line = lines[-1]
        assert total_line.startswith("replayed total")
        assert int(total_line.split()[2]) == result.replayed_cycles


# ---------------------------------------------------------------------------
# Run manifests
# ---------------------------------------------------------------------------
class TestRunManifest:
    def test_git_revision_in_checkout(self):
        revision = git_revision()
        assert revision is None or (len(revision) == 40
                                    and set(revision) <= set("0123456789abcdef"))

    def test_build_manifest_records_core_and_config(self):
        manifest = build_manifest(seed=7, core=InOrderCore(),
                                  config=EngineConfig(workers=2),
                                  kind="unit-test")
        assert manifest.seed == 7
        assert manifest.core_class == "InOrderCore"
        assert manifest.engine_config["workers"] == 2
        assert manifest.extra == {"kind": "unit-test"}
        assert manifest.packages["python"]
        document = manifest.to_dict()
        json.dumps(document)  # must be JSON-ready
        assert document == manifest_dict(seed=7, core=InOrderCore(),
                                         config=EngineConfig(workers=2),
                                         kind="unit-test") | {
                                             "created": document["created"]}

    def test_frontier_store_round_trips_manifest(self, tmp_path):
        frontier = ParetoFrontier()
        frontier.update([ParetoPoint(improvement=2.0, energy_pct=5.0,
                                     area_pct=1.0, exec_time_pct=0.0,
                                     label="combo")])
        manifest = manifest_dict(seed=11, core="InO-core")
        path = save_frontier(tmp_path / "frontier.json", frontier,
                             metadata={"label": "run"}, manifest=manifest)
        document = json.loads(path.read_text())
        assert document["version"] == STORE_VERSION
        stored = load_frontier(path)
        assert stored.manifest == manifest
        assert stored.metadata == {"label": "run"}

    def test_frontier_store_builds_default_manifest(self, tmp_path):
        frontier = ParetoFrontier()
        document = frontier_to_dict(frontier)
        assert document["manifest"]["version"] == 1
        assert "host" in document["manifest"]

    def test_version1_document_loads_without_manifest(self):
        document = frontier_to_dict(ParetoFrontier())
        del document["manifest"]
        document["version"] = 1
        stored = frontier_from_dict(document)
        assert stored.manifest == {}


# ---------------------------------------------------------------------------
# Reporting
# ---------------------------------------------------------------------------
class TestReporting:
    def test_format_table_has_no_trailing_whitespace(self):
        table = format_table("T", ["long header", "x"],
                             [["a", "bbbb"], ["cc", "d"]])
        for line in table.splitlines():
            assert line == line.rstrip()

    def test_phase_breakdown_accepts_bare_metrics_document(self):
        table = format_phase_breakdown(
            {"counters": {"cycles.replay.scalar": 100,
                          "cycles.saved.convergence": 40}})
        assert "scalar replay" in table and "100.0%" in table
        assert "wall" not in table.splitlines()[2]

    def test_phase_breakdown_tolerates_missing_metrics(self):
        table = format_phase_breakdown(None)
        assert table.splitlines()[-1].startswith("replayed total")


# ---------------------------------------------------------------------------
# Benchmark harness persistence
# ---------------------------------------------------------------------------
class TestBenchPersistence:
    def test_persist_bench_schema_and_provenance(self, tmp_path, monkeypatch):
        benchmarks = Path(__file__).resolve().parents[1] / "benchmarks"
        monkeypatch.syspath_prepend(str(benchmarks))
        monkeypatch.setenv("BENCH_OUTPUT_DIR", str(tmp_path))
        sys.modules.pop("_harness", None)
        import _harness

        path = _harness.persist_bench("obs_unit", ["col"], [[1]],
                                      context={"note": "test"})
        document = json.loads(path.read_text())
        assert document["schema"] == _harness.BENCH_SCHEMA == 2
        assert document["context"]["note"] == "test"
        assert "git" in document["context"]
        assert document["manifest"]["extra"]["benchmark"] == "obs_unit"
