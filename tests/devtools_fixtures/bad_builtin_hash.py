# audit: fixture
"""Known-bad input for the auditor: builtin hash() feeding a seed."""


def seed_for(label: str) -> int:
    return hash(label) & 0xFFFF
