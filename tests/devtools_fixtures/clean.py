# audit: fixture
"""Negative input for the auditor: deterministic idioms that must not flag."""

import hashlib
import random


def seed_for(label: str) -> int:
    digest = hashlib.blake2b(label.encode(), digest_size=8).digest()
    return int.from_bytes(digest, "big")


def draw(seed: int) -> float:
    return random.Random(seed).random()


def artifact_labels(root):
    return [path.stem for path in sorted(root.glob("*.json"))]


def census(root) -> int:
    return sum(1 for _ in root.glob("*.json"))


def unique_stems(root):
    return {path.stem for path in root.glob("*.json")}
