# audit: fixture
"""Negative input for the auditor: bad patterns with reasoned suppressions."""

import time


def stamp() -> float:
    return time.time()  # audit: allow[wall-clock] fixture demonstrating same-line suppression


def seed_for(label: str) -> int:
    # audit: allow[builtin-hash] fixture demonstrating line-above suppression
    return hash(label) & 0xFFFF
