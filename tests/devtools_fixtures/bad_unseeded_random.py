# audit: fixture
"""Known-bad input for the auditor: drawing from the process-global RNG."""

import random


def jitter() -> float:
    return random.random()
