# audit: fixture
"""Known-bad input for the auditor: folding results in completion order."""


def fold(executor, spec, shards, fn):
    outputs = []
    for result in executor.stream(spec, shards, fn):
        outputs.append(result.value)
    return outputs
