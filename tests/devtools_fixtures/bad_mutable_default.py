# audit: fixture
"""Known-bad input for the auditor: mutable default argument."""


def collect(value, into=[]):
    into.append(value)
    return into
