# audit: fixture
"""Known-bad input for the auditor: lambda dispatched to the executor layer."""


def run(executor, spec, shards):
    return sum(1 for _ in executor.stream(spec, shards, lambda payload, shard: shard))
