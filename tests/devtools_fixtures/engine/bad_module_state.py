# audit: fixture
"""Known-bad input for the auditor: module state mutated from functions.

Lives under an ``engine/`` path segment because the rule is scoped to
worker-shipped modules.
"""

_CACHE: dict = {}


def remember(key, value):
    _CACHE[key] = value
    return value
