# audit: fixture
"""Known-bad input for the auditor: wall-clock read outside obs/."""

import time


def stamp() -> float:
    return time.time()
