# audit: fixture
"""Known-bad input for the auditor: folding Path.glob in filesystem order."""


def artifact_labels(root):
    labels = []
    for path in root.glob("*.json"):
        labels.append(path.stem)
    return labels
