# audit: fixture
"""Known-bad input for the auditor: core state escaping the snapshot contract.

``_scratch`` mutates every cycle but never appears in the
snapshot/restore/fingerprint trio -- the PR 7 bug class.
"""


class LeakyCore(BaseCore):  # noqa: F821 - resolved structurally by the rule
    def __init__(self):
        super().__init__()
        self._scratch = []

    def _step_cycle(self):
        self._scratch.append(1)

    def _snapshot_microarchitecture(self):
        return {}

    def _restore_microarchitecture(self, micro):
        return None

    def _fingerprint_microarchitecture(self):
        return ()
