# audit: fixture
"""Known-bad input for the auditor: malformed suppression comments.

A reason-less ``allow`` and an unknown rule id are both reported as
``bad-suppression`` and do NOT silence the underlying finding.
"""

import time


def stamp() -> float:
    return time.time()  # audit: allow[wall-clock]


def stamp_ns() -> float:
    return time.time()  # audit: allow[no-such-rule] misspelled rule ids must not silence anything
