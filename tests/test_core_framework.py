"""Tests for the CLEAR core: metrics, heuristics, combinations, exploration."""

from __future__ import annotations

import pytest

from repro.core import (
    ClearFramework,
    CrossLayerCombination,
    MAX_TARGET,
    ResilienceTarget,
    SelectionPolicy,
    SelectiveHardeningPlanner,
    choose_technique,
    combination_counts,
    due_improvement,
    enumerate_combinations,
    joint_targets,
    sdc_improvement,
    sdc_targets,
    total_combination_count,
)
from repro.core.combinations import LEAP_DICE, PARITY
from repro.core.heuristics import LowLevelChoice
from repro.faultinjection import OutcomeCategory, OutcomeCounts
from repro.physical import RecoveryKind, TimingModel


def _counts(sdc: int, due: int, vanished: int = 0) -> OutcomeCounts:
    counts = OutcomeCounts()
    counts.record(OutcomeCategory.OMM, sdc)
    counts.record(OutcomeCategory.UT, due)
    counts.record(OutcomeCategory.VANISHED, vanished)
    return counts


class TestImprovementMetrics:
    def test_eq1a_and_gamma(self):
        original = _counts(sdc=100, due=50)
        protected = _counts(sdc=2, due=50)
        assert sdc_improvement(original, protected) == pytest.approx(50.0)
        assert sdc_improvement(original, protected, gamma=1.25) == pytest.approx(40.0)

    def test_eq1b_counts_detections_as_due(self):
        original = _counts(sdc=0, due=40)
        protected = OutcomeCounts()
        protected.record(OutcomeCategory.UT, 10)
        protected.record(OutcomeCategory.ED, 10)
        assert due_improvement(original, protected) == pytest.approx(2.0)

    def test_targets(self):
        target = ResilienceTarget(sdc=50, due=5)
        assert target.satisfied_by(60, 5)
        assert not target.satisfied_by(60, 4)
        assert "SDC 50x" in target.label and "DUE 5x" in target.label
        assert len(sdc_targets()) == 5
        assert all(t.sdc == t.due for t in joint_targets())


class TestCombinationEnumeration:
    def test_table18_counts(self):
        ino = combination_counts("InO")
        ooo = combination_counts("OoO")
        assert ino["base_no_recovery"] == 127 and ino["total"] == 417
        assert ooo["base_no_recovery"] == 31 and ooo["total"] == 169
        assert total_combination_count() == 586

    def test_enumeration_matches_counts(self):
        for family in ("InO", "OoO"):
            combos = enumerate_combinations(family)
            assert len(combos) == combination_counts(family)["total"]

    def test_abft_flavours_never_combined(self):
        for combo in enumerate_combinations("InO"):
            assert not ("abft-correction" in combo.techniques
                        and "abft-detection" in combo.techniques)

    def test_monitor_core_absent_from_ino(self):
        assert all("monitor-core" not in combo.techniques
                   for combo in enumerate_combinations("InO"))

    def test_rob_recovery_absent_from_ino(self):
        assert all(combo.recovery is not RecoveryKind.ROB
                   for combo in enumerate_combinations("InO"))


class TestHeuristicOne:
    def test_unflushable_stages_get_leap_dice(self, ino_core):
        timing = TimingModel(ino_core.registry, seed=1)
        policy = SelectionPolicy()
        writeback_site = next(s.first_index for s in ino_core.registry.structures
                              if s.unit == "writeback")
        choice = choose_technique(writeback_site, ino_core.registry, timing,
                                  RecoveryKind.FLUSH, policy)
        assert choice is LowLevelChoice.LEAP_DICE

    def test_parity_used_when_slack_allows(self, ino_core):
        timing = TimingModel(ino_core.registry, seed=1)
        policy = SelectionPolicy()
        candidates = [s.first_index for s in ino_core.registry.structures
                      if s.unit == "fetch"]
        choices = {choose_technique(i, ino_core.registry, timing, RecoveryKind.FLUSH,
                                    policy) for i in candidates}
        assert LowLevelChoice.PARITY in choices

    def test_policy_without_parity_forces_hardening(self, ino_core):
        timing = TimingModel(ino_core.registry, seed=1)
        policy = SelectionPolicy(allow_parity=False)
        assert choose_technique(0, ino_core.registry, timing, RecoveryKind.NONE,
                                policy) is LowLevelChoice.LEAP_DICE


class TestSelectiveHardening:
    @pytest.fixture(scope="class")
    def planner(self, ino_framework):
        return SelectiveHardeningPlanner(ino_framework.core.registry,
                                         ino_framework.vulnerability,
                                         ino_framework.timing)

    def test_targets_met_and_monotone_cost(self, planner, ino_framework):
        previous_protected = 0
        for target in (2.0, 5.0, 50.0):
            result = planner.plan(ResilienceTarget(sdc=target),
                                  recovery=RecoveryKind.FLUSH)
            assert result.achieved_sdc >= target
            assert result.protected_count >= previous_protected
            previous_protected = result.protected_count

    def test_max_target_protects_everything(self, planner, ino_framework):
        result = planner.plan(ResilienceTarget(sdc=MAX_TARGET))
        assert result.protected_count == ino_framework.core.flip_flop_count

    def test_joint_target_meets_both(self, planner):
        result = planner.plan(ResilienceTarget(sdc=10, due=10),
                              recovery=RecoveryKind.FLUSH)
        assert result.achieved_sdc >= 10 and result.achieved_due >= 10


class TestExplorer:
    def test_best_practice_cheaper_than_or_close_to_leap_dice_only(self, ino_framework):
        explorer = ino_framework.explorer
        target = ResilienceTarget(sdc=50)
        best_practice = explorer.evaluate(explorer.best_practice_combination(), target)
        dice_only = explorer.evaluate(explorer.named_combination((LEAP_DICE,)), target)
        assert best_practice.meets_target and dice_only.meets_target
        # The cross-layer combination tracks (and in the paper slightly beats)
        # selective hardening alone; our model keeps them within ~10%.
        assert best_practice.cost.energy_pct <= dice_only.cost.energy_pct * 1.10
        # Both land in the single-digit energy regime the paper reports for 50x.
        assert best_practice.cost.energy_pct < 12.0 and dice_only.cost.energy_pct < 12.0

    def test_cost_grows_with_target(self, ino_framework):
        explorer = ino_framework.explorer
        combination = explorer.named_combination((LEAP_DICE,))
        costs = [explorer.evaluate(combination, ResilienceTarget(sdc=t)).cost.energy_pct
                 for t in (2, 5, 50, 500)]
        assert costs == sorted(costs)

    def test_fixed_combination_without_tunable_techniques(self, ino_framework):
        explorer = ino_framework.explorer
        combination = explorer.named_combination(("dfc",))
        evaluated = explorer.evaluate(combination, ResilienceTarget(sdc=50))
        assert not evaluated.meets_target            # DFC alone barely helps
        assert 0.8 <= evaluated.sdc_improvement < 2.0
        assert evaluated.protected_flip_flops == 0

    def test_ooo_cheaper_than_ino_for_same_target(self, ino_framework, ooo_framework):
        target = ResilienceTarget(sdc=50)
        ino = ino_framework.evaluate_best_practice(target)
        ooo = ooo_framework.evaluate_best_practice(target)
        assert ooo.cost.energy_pct < ino.cost.energy_pct

    def test_bounds_envelope_monotone(self, ino_framework):
        points = ino_framework.explorer.bounds_envelope()
        energies = [energy for _, energy in points]
        assert energies == sorted(energies)
        standalone = ino_framework.explorer.bounds_envelope(standalone=True)
        assert len(standalone) == len(points)

    def test_explore_subset_of_cloud(self, ino_framework):
        explorer = ino_framework.explorer
        combos = enumerate_combinations("InO")[:10]
        evaluated = explorer.explore_all(ResilienceTarget(sdc=5), combos)
        assert len(evaluated) == 10
        assert all(e.cost.energy_pct >= 0 for e in evaluated)

    def test_cheapest_meeting_target(self, ino_framework):
        explorer = ino_framework.explorer
        combos = [explorer.best_practice_combination(),
                  explorer.named_combination((LEAP_DICE,)),
                  explorer.named_combination(("dfc",))]
        best = explorer.cheapest_meeting_target(ResilienceTarget(sdc=50), combos)
        assert best is not None and best.meets_target


class TestFramework:
    def test_constructors_and_defaults(self, ino_framework, ooo_framework):
        assert ino_framework.core.name == "InO-core"
        assert len(ino_framework.benchmark_names()) == 18
        assert len(ooo_framework.benchmark_names()) == 11
        assert ino_framework.vulnerability is not None

    def test_measured_vulnerability_integration(self, small_workload):
        framework = ClearFramework.for_inorder_core(seed=3)
        vulnerability = framework.measure_vulnerability(injections_per_workload=10,
                                                        workloads=[small_workload])
        assert vulnerability.benchmarks == [small_workload.name]
        assert framework.explorer.vulnerability is vulnerability
