"""Tests for the benchmark workload suite."""

from __future__ import annotations

import pytest

from repro.microarch import TerminationReason
from repro.workloads import (
    AbftSupport,
    WorkloadClass,
    abft_correction_suite,
    abft_detection_suite,
    full_suite,
    lcg_sequence,
    perfect_suite,
    spec_suite,
    suite_for_core,
    workload_by_name,
)


class TestSuiteComposition:
    def test_full_suite_size(self, suite):
        assert len(suite) == 18

    def test_spec_and_perfect_split(self):
        assert len(spec_suite()) == 11
        assert len(perfect_suite()) == 7

    def test_per_core_suites_match_paper_counts(self):
        ino = suite_for_core("InO-core")
        ooo = suite_for_core("OoO-core")
        assert len(ino) == 18
        assert len(ooo) == 11  # 8 SPEC + 3 PERFECT (footnote 3)
        assert sum(1 for w in ooo if w.suite is WorkloadClass.SPEC) == 8
        assert sum(1 for w in ooo if w.suite is WorkloadClass.PERFECT) == 3

    def test_abft_partition(self):
        assert {w.name for w in abft_correction_suite()} == {
            "2d_convolution", "debayer_filter", "inner_product"}
        assert len(abft_detection_suite()) == 4

    def test_unknown_workload_raises(self):
        with pytest.raises(KeyError):
            workload_by_name("does-not-exist")

    def test_unique_names(self, suite):
        names = [w.name for w in suite]
        assert len(names) == len(set(names))


class TestWorkloadPrograms:
    @pytest.mark.parametrize("workload", full_suite(), ids=lambda w: w.name)
    def test_program_assembles_and_has_expected_output(self, workload):
        program = workload.program()
        assert len(program.instructions) > 10
        assert program.expected_output == workload.expected_output()
        assert len(workload.expected_output()) >= 2

    def test_program_cached(self):
        workload = workload_by_name("bzip2")
        assert workload.program() is workload.program()

    def test_abft_variant_requires_support(self):
        with pytest.raises(ValueError):
            workload_by_name("bzip2").abft_program()

    @pytest.mark.parametrize("workload", perfect_suite(), ids=lambda w: w.name)
    def test_abft_variants_produce_identical_output(self, ino_core, workload):
        expected = workload.expected_output()
        result = ino_core.run(workload.abft_program(), max_cycles=400_000)
        assert result.reason is TerminationReason.HALTED
        assert result.output == expected

    @pytest.mark.parametrize("workload", perfect_suite(), ids=lambda w: w.name)
    def test_abft_variants_cost_execution_time(self, ino_core, workload):
        base = ino_core.run(workload.program(), max_cycles=400_000)
        protected = ino_core.run(workload.abft_program(), max_cycles=400_000)
        assert protected.cycles > base.cycles


class TestDataGeneration:
    def test_lcg_deterministic(self):
        assert lcg_sequence(10, seed=3) == lcg_sequence(10, seed=3)
        assert lcg_sequence(10, seed=3) != lcg_sequence(10, seed=4)

    def test_lcg_range(self):
        values = lcg_sequence(100, seed=1, modulus=16)
        assert all(0 <= v < 16 for v in values)
        assert len(values) == 100
