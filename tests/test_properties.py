"""Property-based tests (hypothesis) for core data structures and invariants."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.faultinjection import OutcomeCategory, OutcomeCounts, margin_of_error
from repro.isa import Instruction, Opcode, OPCODE_INFO, decode_instruction, encode_instruction
from repro.isa.instructions import InstructionFormat
from repro.microarch.execute import execute_operation, to_signed, to_unsigned
from repro.microarch.flipflop import FlipFlopRegistry
from repro.microarch.state import LatchState
from repro.physical.costmodel import CostReport

_WORD = st.integers(min_value=0, max_value=0xFFFFFFFF)
_REG = st.integers(min_value=0, max_value=31)
_IMM = st.integers(min_value=-(1 << 14), max_value=(1 << 14) - 1)


@st.composite
def instructions(draw):
    opcode = draw(st.sampled_from(sorted(Opcode, key=int)))
    info = OPCODE_INFO[opcode]
    if info.fmt is InstructionFormat.R:
        return Instruction(opcode, rd=draw(_REG), rs1=draw(_REG), rs2=draw(_REG))
    if info.fmt is InstructionFormat.B:
        return Instruction(opcode, rs1=draw(_REG), rs2=draw(_REG), imm=draw(_IMM))
    return Instruction(opcode, rd=draw(_REG), rs1=draw(_REG), imm=draw(_IMM))


class TestEncodingProperties:
    @given(instructions())
    @settings(max_examples=300)
    def test_encode_decode_round_trip(self, instruction):
        assert decode_instruction(encode_instruction(instruction)) == instruction

    @given(instructions())
    def test_encoding_fits_32_bits(self, instruction):
        assert 0 <= encode_instruction(instruction) < (1 << 32)


class TestArithmeticProperties:
    @given(_WORD, _WORD)
    def test_add_matches_python_semantics(self, a, b):
        result = execute_operation(Opcode.ADD, a, b, 0, 0)
        assert result.value == (a + b) & 0xFFFFFFFF

    @given(_WORD, _WORD)
    def test_sub_then_add_round_trips(self, a, b):
        difference = execute_operation(Opcode.SUB, a, b, 0, 0).value
        restored = execute_operation(Opcode.ADD, difference, b, 0, 0).value
        assert restored == a

    @given(_WORD, _WORD)
    def test_xor_is_involution(self, a, b):
        once = execute_operation(Opcode.XOR, a, b, 0, 0).value
        twice = execute_operation(Opcode.XOR, once, b, 0, 0).value
        assert twice == a

    @given(_WORD)
    def test_signed_unsigned_round_trip(self, value):
        assert to_unsigned(to_signed(value)) == value

    @given(_WORD, _WORD)
    def test_sltu_consistent_with_comparison(self, a, b):
        assert execute_operation(Opcode.SLTU, a, b, 0, 0).value == int(a < b)

    @given(_WORD, _WORD, _IMM)
    def test_branch_taken_iff_predicate(self, a, b, offset):
        beq = execute_operation(Opcode.BEQ, a, b, offset, 0)
        bne = execute_operation(Opcode.BNE, a, b, offset, 0)
        assert beq.branch_taken == (a == b)
        assert beq.branch_taken != bne.branch_taken


class TestLatchStateProperties:
    @given(st.integers(min_value=1, max_value=64),
           st.integers(min_value=0, max_value=2**64 - 1),
           st.data())
    def test_double_flip_is_identity(self, width, value, data):
        registry = FlipFlopRegistry("prop")
        registry.register("field", width, "u")
        registry.freeze()
        latches = LatchState(registry)
        latches.set("field", value)
        original = latches.get("field")
        bit = data.draw(st.integers(min_value=0, max_value=width - 1))
        latches.flip_bit("field", bit)
        assert latches.get("field") != original
        latches.flip_bit("field", bit)
        assert latches.get("field") == original

    @given(st.integers(min_value=1, max_value=64),
           st.integers(min_value=0, max_value=2**70))
    def test_set_masks_to_width(self, width, value):
        registry = FlipFlopRegistry("prop")
        registry.register("field", width, "u")
        registry.freeze()
        latches = LatchState(registry)
        latches.set("field", value)
        assert latches.get("field") < (1 << width)


class TestOutcomeCountProperties:
    @given(st.lists(st.sampled_from(list(OutcomeCategory)), max_size=200))
    def test_totals_are_consistent(self, outcomes):
        counts = OutcomeCounts()
        for outcome in outcomes:
            counts.record(outcome)
        assert counts.total == len(outcomes)
        assert counts.sdc_count + counts.due_count <= counts.total
        assert counts.vanished_count == outcomes.count(OutcomeCategory.VANISHED)

    @given(st.integers(min_value=1, max_value=10**7),
           st.floats(min_value=0.0, max_value=1.0))
    def test_margin_of_error_bounds(self, samples, proportion):
        margin = margin_of_error(samples, proportion)
        assert 0.0 <= margin <= 1.0


class TestCostReportProperties:
    @given(st.floats(min_value=0, max_value=50), st.floats(min_value=0, max_value=50),
           st.floats(min_value=0, max_value=50), st.floats(min_value=0, max_value=50))
    def test_combination_is_commutative(self, a_area, a_power, b_area, b_power):
        a = CostReport.from_power_and_time(a_area, a_power, 0.0)
        b = CostReport.from_power_and_time(b_area, b_power, 0.0)
        ab = a.combined_with(b)
        ba = b.combined_with(a)
        assert ab.area_pct == ba.area_pct
        assert abs(ab.energy_pct - ba.energy_pct) < 1e-9

    @given(st.floats(min_value=0, max_value=100), st.floats(min_value=0, max_value=100))
    def test_energy_at_least_power_when_time_grows(self, power, time):
        report = CostReport.from_power_and_time(0.0, power, time)
        assert report.energy_pct >= report.power_pct - 1e-9


@st.composite
def _registries(draw):
    """Small frozen registries with mixed widths and architectural flags."""
    widths = draw(st.lists(st.integers(min_value=1, max_value=64),
                           min_size=1, max_size=6))
    registry = FlipFlopRegistry("prop")
    for position, width in enumerate(widths):
        registry.register(f"s{position}", width, f"u{position % 2}",
                          architectural=draw(st.booleans()))
    registry.freeze()
    return registry


class TestArrayLatchStateEquivalence:
    """The array-backed LatchState must be observationally identical to the
    obvious dict-of-values model under any operation sequence: same reads,
    same serialize/fingerprint keys, same snapshot/restore round-trips."""

    @settings(max_examples=60, deadline=None)
    @given(registry=_registries(), data=st.data())
    def test_operation_sequence_matches_dict_model(self, registry, data):
        latches = LatchState(registry)
        model: dict[str, int] = {s.name: 0 for s in registry.structures}
        masks = {s.name: (1 << s.width) - 1 for s in registry.structures}
        names = sorted(model)
        operations = data.draw(st.lists(st.tuples(
            st.sampled_from(["set", "flip", "flip_flat"]),
            st.sampled_from(names),
            st.integers(min_value=0, max_value=2**64 - 1)), max_size=12))
        for kind, name, value in operations:
            if kind == "set":
                latches.set(name, value)
                model[name] = value & masks[name]
            elif kind == "flip":
                bit = value % registry.structure(name).width
                latches.flip_bit(name, bit)
                model[name] ^= 1 << bit
            else:
                flat = value % registry.total_flip_flops
                site = registry.site(flat)
                latches.flip_flat(flat)
                model[site.structure.name] ^= 1 << site.bit
        for name in names:
            assert latches.get(name) == model[name]
        assert latches.snapshot() == model
        assert latches.serialize() == tuple(
            model[s.name] for s in registry.structures)
        assert latches.fingerprint_key() == latches.serialize()
        # serialize -> deserialize and snapshot -> restore both round-trip
        # onto a fresh instance bit-identically.
        via_serialize = LatchState(registry)
        via_serialize.deserialize(latches.serialize())
        assert via_serialize.serialize() == latches.serialize()
        via_snapshot = LatchState(registry)
        via_snapshot.restore(latches.snapshot())
        assert via_snapshot.fingerprint_key() == latches.fingerprint_key()

    @settings(max_examples=40, deadline=None)
    @given(registry=_registries(), data=st.data())
    def test_batched_lanes_match_scalar_serialization(self, registry, data):
        """Per-lane flips on a BatchedLatchState reproduce, lane for lane,
        what the same flips produce on independent scalar LatchStates."""
        pytest.importorskip("numpy")
        from repro.microarch.state import BatchedLatchState

        base = LatchState(registry)
        for structure in registry.structures:
            base.set(structure.name,
                     data.draw(st.integers(min_value=0,
                                           max_value=(1 << structure.width) - 1),
                               label=f"base:{structure.name}"))
        lanes = data.draw(st.integers(min_value=1, max_value=5), label="lanes")
        batched = BatchedLatchState.from_serialized(registry, base.serialize(),
                                                    lanes)
        scalars = []
        for lane in range(lanes):
            scalar = LatchState(registry)
            scalar.deserialize(base.serialize())
            flips = data.draw(st.lists(
                st.integers(min_value=0,
                            max_value=registry.total_flip_flops - 1),
                max_size=4), label=f"flips:{lane}")
            for flat in flips:
                scalar.flip_flat(flat)
                batched.flip_flat(lane, flat)
            scalars.append(scalar)
        for lane, scalar in enumerate(scalars):
            assert batched.lane_serialized(lane) == scalar.serialize()
        equal = batched.rows_equal()
        for lane, scalar in enumerate(scalars):
            assert bool(equal[lane]) == (scalar.serialize()
                                         == scalars[0].serialize())


class TestBatchedReplayProperties:
    """Whole-campaign property: any seed, width and convergence setting must
    leave outcome counts and per-site tallies bit-identical to scalar replay
    (the wavefront is a pure performance transform)."""

    @settings(max_examples=3, deadline=None)
    @given(data=st.data())
    def test_batched_campaign_equals_scalar_campaign(self, data):
        from repro.engine import EngineConfig, GoldenRunCache, InjectionEngine
        from repro.microarch import InOrderCore, OutOfOrderCore
        from repro.workloads import workload_by_name

        core_cls = data.draw(st.sampled_from([InOrderCore, OutOfOrderCore]),
                             label="core")
        seed = data.draw(st.integers(min_value=0, max_value=2**16),
                         label="seed")
        width = data.draw(st.sampled_from([3, 8]), label="batch_width")
        convergence = data.draw(st.booleans(), label="convergence")
        program = workload_by_name("vpr").program()
        runs = []
        for batch_width in (0, width):
            engine = InjectionEngine(
                core_cls(), program, seed=seed,
                config=EngineConfig(batch_width=batch_width,
                                    convergence=convergence),
                golden_cache=GoldenRunCache())
            runs.append(engine.run(injections=8))
        scalar, batched = runs
        assert batched.outcomes == scalar.outcomes
        assert batched.per_site == scalar.per_site
