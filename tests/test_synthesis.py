"""Tests for the synthetic-workload generation subsystem."""

from __future__ import annotations

import pytest

from repro.engine import EngineConfig, GoldenRunCache, ParallelExecutor
from repro.isa import encode_instruction
from repro.microarch import CoreClass, InOrderCore, TerminationReason
from repro.workloads import (
    WorkloadClass,
    build_family,
    family_names,
    full_suite,
    register_family,
    register_suite,
    suite_for_core,
    synthetic_suite,
    workload_by_name,
)
from repro.workloads.synthesis import (
    BUILTIN_PROFILES,
    InstructionMix,
    ProgramSynthesizer,
    WorkloadProfile,
    run_synthetic_sweep,
    synthesize_workload,
)

QUICK = {"target_cycles": 1000, "data_words": 32}
"""Profile overrides keeping generated programs small for fast tests."""


def quick_profile(name: str = "mixed", **overrides) -> WorkloadProfile:
    return BUILTIN_PROFILES[name].evolve(**{**QUICK, **overrides})


# ---------------------------------------------------------------------- generator
class TestGeneratorDeterminism:
    def test_same_profile_and_seed_give_identical_program_bytes(self):
        profile = quick_profile()
        first = synthesize_workload(profile, seed=11)
        second = synthesize_workload(profile, seed=11)
        assert first.source == second.source
        first_bytes = [encode_instruction(i) for i in first.program().instructions]
        second_bytes = [encode_instruction(i) for i in second.program().instructions]
        assert first_bytes == second_bytes
        assert first.program().data.words == second.program().data.words
        assert first.expected_output() == second.expected_output()

    def test_different_seeds_give_different_programs(self):
        profile = quick_profile()
        assert (synthesize_workload(profile, seed=11).source
                != synthesize_workload(profile, seed=12).source)

    def test_distinct_families_draw_independent_streams(self):
        # Same seed, same-length family names: the data sections must not be
        # prefixes of one another (the RNG mixes the full name, not len()).
        streaming = synthesize_workload(
            BUILTIN_PROFILES["memory_streaming"].evolve(target_cycles=1000),
            seed=11).program().data.words
        dense = synthesize_workload(
            BUILTIN_PROFILES["arithmetic_dense"].evolve(target_cycles=1000),
            seed=11).program().data.words
        assert streaming[:len(dense)] != dense

    @pytest.mark.parametrize("family", sorted(BUILTIN_PROFILES))
    def test_generation_is_stable_per_family(self, family):
        profile = quick_profile(family)
        one = ProgramSynthesizer(profile, seed=5).generate()
        two = ProgramSynthesizer(profile, seed=5).generate()
        assert one == two
        assert one.loop_trips and all(t >= 1 for t in one.loop_trips)

    def test_cycle_budget_is_approximately_honoured(self, ino_core):
        profile = BUILTIN_PROFILES["mixed"].evolve(target_cycles=8000)
        workload = synthesize_workload(profile, seed=3)
        result = ino_core.run(workload.program(), max_cycles=200_000)
        assert result.reason is TerminationReason.HALTED
        assert 0.2 * profile.target_cycles < result.cycles < 5 * profile.target_cycles

    def test_floor_cycles_bounds_small_budgets(self, ino_core):
        # A budget far below the data-reduction floor yields a floor-sized
        # program, and floor_cycles predicts that within the CPI slack.
        profile = BUILTIN_PROFILES["memory_streaming"].evolve(target_cycles=1000)
        assert profile.floor_cycles > profile.target_cycles
        workload = synthesize_workload(profile, seed=3)
        result = ino_core.run(workload.program(), max_cycles=200_000)
        assert result.reason is TerminationReason.HALTED
        assert result.cycles >= 0.5 * profile.floor_cycles


class TestOracleAgreement:
    @pytest.mark.parametrize("family", sorted(BUILTIN_PROFILES))
    def test_simulator_golden_matches_inorder_core(self, ino_core, family):
        workload = synthesize_workload(quick_profile(family), seed=21)
        result = ino_core.run(workload.program(), max_cycles=200_000)
        assert result.reason is TerminationReason.HALTED
        assert result.output == workload.expected_output()
        assert len(workload.expected_output()) >= 4

    def test_simulator_golden_matches_ooo_core(self, ooo_core):
        workload = synthesize_workload(quick_profile("mixed"), seed=21)
        result = ooo_core.run(workload.program(), max_cycles=200_000)
        assert result.reason is TerminationReason.HALTED
        assert result.output == workload.expected_output()


class TestProfileValidation:
    def test_rejects_bad_loop_depth(self):
        with pytest.raises(ValueError):
            WorkloadProfile(name="x", loop_depth=4)

    def test_rejects_non_power_of_two_data(self):
        with pytest.raises(ValueError):
            WorkloadProfile(name="x", data_words=48)

    def test_rejects_empty_mix(self):
        with pytest.raises(ValueError):
            InstructionMix(0, 0, 0, 0)

    def test_rejects_budget_beyond_engine_watchdog(self):
        with pytest.raises(ValueError):
            WorkloadProfile(name="x", target_cycles=50_000_000)

    def test_evolve_revalidates(self):
        with pytest.raises(ValueError):
            BUILTIN_PROFILES["mixed"].evolve(target_cycles=1)


# ---------------------------------------------------------------------- registry
class TestRegistry:
    def test_builtin_families_registered(self):
        assert set(BUILTIN_PROFILES) <= set(family_names())

    def test_build_family_by_name(self):
        workloads = build_family("mixed", seed=9, count=2, **QUICK)
        assert len(workloads) == 2
        assert all(w.suite is WorkloadClass.SYNTHETIC for w in workloads)
        assert workloads[0].name != workloads[1].name

    def test_synthetic_suite_single_seeded_call(self):
        suite = synthetic_suite(seed=9, per_family=4, **QUICK)
        assert len(suite) >= 20
        names = [w.name for w in suite]
        assert len(names) == len(set(names))

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError):
            register_suite("spec", list)
        with pytest.raises(ValueError):
            register_family("mixed", list)

    def test_registration_before_builtin_load_is_safe(self):
        # In a fresh process, a user registration must load the built-in
        # families first: collisions surface immediately and family order
        # (which derives sweep campaign seeds) stays stable.
        import os
        import subprocess
        import sys
        from pathlib import Path

        import repro

        # repro is a namespace package (no __init__.py), so locate it via
        # __path__ rather than __file__.
        src_dir = Path(next(iter(repro.__path__))).resolve().parent
        script = (
            "from repro.workloads import register_family, family_names\n"
            "try:\n"
            "    register_family('mixed', list)\n"
            "except ValueError:\n"
            "    pass\n"
            "else:\n"
            "    raise SystemExit('collision with builtin not detected')\n"
            "register_family('user_family', list)\n"
            "names = family_names()\n"
            "assert names[-1] == 'user_family', names\n"
            "assert 'control_heavy' in names and 'mixed' in names, names\n"
        )
        subprocess.run([sys.executable, "-c", script], check=True,
                       env={**os.environ, "PYTHONPATH": str(src_dir)})

    def test_unknown_family_raises(self):
        with pytest.raises(KeyError):
            build_family("does-not-exist")

    def test_workload_by_name_cached_lookup(self):
        assert workload_by_name("bzip2") is workload_by_name("bzip2")
        with pytest.raises(KeyError):
            workload_by_name("does-not-exist")


class TestSuiteForCore:
    def test_accepts_core_objects(self, ino_core, ooo_core):
        assert len(suite_for_core(ino_core)) == 18
        assert len(suite_for_core(ooo_core)) == 11

    def test_accepts_core_class(self):
        assert len(suite_for_core(CoreClass.IN_ORDER)) == 18
        assert len(suite_for_core(CoreClass.OUT_OF_ORDER)) == 11

    def test_renamed_core_keeps_its_suite(self):
        assert len(suite_for_core(InOrderCore(name="my-ino"))) == 18

    def test_unknown_name_string_raises(self):
        with pytest.raises(KeyError):
            suite_for_core("mystery-core")


# ---------------------------------------------------------------------- sweep
def _assert_sweeps_identical(serial, other, total_flip_flops):
    assert [p.family for p in other.profiles] == \
           [p.family for p in serial.profiles]
    for mine, theirs in zip(serial.profiles, other.profiles):
        assert mine.outcomes.as_dict() == theirs.outcomes.as_dict()
        assert mine.workload_names == theirs.workload_names
        assert mine.golden_cycles == theirs.golden_cycles
    names = serial.workload_names
    for flat_index in range(0, total_flip_flops, 37):
        assert serial.vulnerability.sdc_probability(flat_index, names) == \
               other.vulnerability.sdc_probability(flat_index, names)
        assert serial.vulnerability.due_probability(flat_index, names) == \
               other.vulnerability.due_probability(flat_index, names)


class TestSyntheticSweep:
    def test_seeded_sweep_is_reproducible_and_executor_independent(self, ino_core):
        """The acceptance path: one seeded call generates a >=20-workload
        suite, campaigns it through the engine, and tabulates per-profile
        vulnerability -- bit-identically across executors and repeats."""
        cache = GoldenRunCache()
        kwargs = dict(seed=5, per_family=4, injections_per_workload=3,
                      golden_cache=cache, **QUICK)
        serial = run_synthetic_sweep(ino_core, **kwargs)
        repeat = run_synthetic_sweep(ino_core, **kwargs)
        pooled = run_synthetic_sweep(
            ino_core, config=EngineConfig(workers=2, chunk_size=5), **kwargs)

        assert len(serial.workload_names) >= 20
        assert serial.table().count("\n") >= len(serial.profiles)
        for other in (repeat, pooled):
            _assert_sweeps_identical(serial, other, ino_core.flip_flop_count)

    def test_workload_sharded_sweep_matches_serial_loop(self, ino_core):
        """Sharding whole campaigns over the executor layer is bit-exact."""
        kwargs = dict(seed=11, per_family=2, injections_per_workload=3, **QUICK)
        serial = run_synthetic_sweep(ino_core, workers=1, **kwargs)
        sharded = run_synthetic_sweep(ino_core, workers=2, **kwargs)
        odd_chunks = run_synthetic_sweep(ino_core, workers=3, chunk_size=3,
                                         **kwargs)
        _assert_sweeps_identical(serial, sharded, ino_core.flip_flop_count)
        _assert_sweeps_identical(serial, odd_chunks, ino_core.flip_flop_count)

    def test_workload_sharded_sweep_matches_serial_loop_ooo(self, ooo_core):
        kwargs = dict(seed=11, per_family=1, injections_per_workload=2,
                      families=["mixed", "arithmetic_dense"], **QUICK)
        serial = run_synthetic_sweep(ooo_core, workers=1, **kwargs)
        sharded = run_synthetic_sweep(ooo_core, workers=2, chunk_size=1,
                                      **kwargs)
        _assert_sweeps_identical(serial, sharded, ooo_core.flip_flop_count)

    def test_sharded_sweep_leaves_caller_cache_untouched(self, ino_core):
        # Worker processes build private golden-run caches; the caller's
        # cache must never be consulted (or mutated) on the sharded path.
        cache = GoldenRunCache()
        run_synthetic_sweep(ino_core, seed=3, per_family=1,
                            injections_per_workload=2, workers=2,
                            families=["mixed", "control_heavy"],
                            golden_cache=cache, **QUICK)
        assert len(cache) == 0 and cache.misses == 0

    def test_max_cache_entries_sizes_private_caches(self, ino_core):
        kwargs = dict(seed=3, per_family=2, injections_per_workload=2,
                      families=["mixed", "control_heavy"], **QUICK)
        sized = run_synthetic_sweep(ino_core, max_cache_entries=4, **kwargs)
        default = run_synthetic_sweep(ino_core, **kwargs)
        _assert_sweeps_identical(sized, default, ino_core.flip_flop_count)
        # Sharded workers honour the knob too (bit-exact either way).
        sharded = run_synthetic_sweep(ino_core, max_cache_entries=4,
                                      workers=2, **kwargs)
        _assert_sweeps_identical(sized, sharded, ino_core.flip_flop_count)
        with pytest.raises(ValueError, match="not both"):
            run_synthetic_sweep(ino_core, golden_cache=GoldenRunCache(),
                                max_cache_entries=4, **kwargs)

    def test_seed_block_collisions_rejected(self, ino_core):
        from repro.workloads.synthesis.sweep import _FAMILY_SEED_STRIDE

        with pytest.raises(ValueError, match="family seed stride"):
            run_synthetic_sweep(ino_core, per_family=_FAMILY_SEED_STRIDE)
        with pytest.raises(ValueError, match="non-negative"):
            run_synthetic_sweep(ino_core, seed=-1)
        with pytest.raises(ValueError, match="64-bit"):
            run_synthetic_sweep(ino_core, seed=2 ** 62)
        with pytest.raises(ValueError, match="per_family"):
            run_synthetic_sweep(ino_core, per_family=0)
        with pytest.raises(ValueError, match="injections_per_workload"):
            run_synthetic_sweep(ino_core, injections_per_workload=0)

    def test_sweep_builds_vulnerability_map_for_dependence_analysis(self, ino_core):
        sweep = run_synthetic_sweep(ino_core, seed=5, per_family=1,
                                    injections_per_workload=4,
                                    families=["mixed", "branch_chaotic"],
                                    **QUICK)
        assert sweep.vulnerability.core_name == ino_core.name
        assert set(sweep.workload_names) == {
            name for profile in sweep.profiles for name in profile.workload_names}
        assert sum(p.injections for p in sweep.profiles) == 8

    def test_engine_config_selects_executor_by_worker_count(self, ino_core):
        from repro.engine import InjectionEngine, SerialExecutor

        program = synthesize_workload(quick_profile(), seed=2).program()
        serial = InjectionEngine(ino_core, program, config=EngineConfig())
        pooled = InjectionEngine(ino_core, program,
                                 config=EngineConfig(workers=2))
        assert isinstance(serial._executor, SerialExecutor)
        assert isinstance(pooled._executor, ParallelExecutor)
        assert pooled._executor.workers == 2
