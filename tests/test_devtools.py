"""The determinism/state-coverage auditor: rules, suppressions, CLI.

This tier is the enforcement point of the bit-exactness contract:
``test_full_tree_audit_is_clean`` asserts zero findings over
``src tests benchmarks``, so any new code that trips a rule fails the
suite exactly like CI's ``audit`` job.
"""

from __future__ import annotations

import textwrap
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.devtools import RULES, audit_paths, audit_source, rule_ids
from repro.devtools.audit import collect_files, load_modules, main, rule_table
from repro.devtools.findings import scan_comments

REPO_ROOT = Path(__file__).resolve().parents[1]
FIXTURES = REPO_ROOT / "tests" / "devtools_fixtures"
AUDITED_PATHS = [REPO_ROOT / "src", REPO_ROOT / "tests", REPO_ROOT / "benchmarks"]

# One known-bad fixture per rule; each must fire its rule exactly once and
# nothing else.
RULE_FIXTURES = {
    "builtin-hash": "bad_builtin_hash.py",
    "completion-order-fold": "bad_completion_order_fold.py",
    "module-mutable-state": "engine/bad_module_state.py",
    "mutable-default": "bad_mutable_default.py",
    "state-coverage": "bad_state_coverage.py",
    "unpicklable-dispatch": "bad_unpicklable_dispatch.py",
    "unseeded-random": "bad_unseeded_random.py",
    "unsorted-iteration": "bad_unsorted_iteration.py",
    "wall-clock": "bad_wall_clock.py",
}


def audit_fixture(name: str, **kwargs):
    return audit_paths([FIXTURES / name], root=REPO_ROOT,
                       include_fixtures=True, **kwargs)


class TestTreeIsClean:
    def test_full_tree_audit_is_clean(self):
        findings = audit_paths(AUDITED_PATHS, root=REPO_ROOT)
        assert findings == [], "\n".join(f.format() for f in findings)

    def test_fixtures_are_skipped_by_directory_walks(self):
        # The known-bad fixtures live inside tests/ and would otherwise make
        # the tree audit fail; the '# audit: fixture' marker excludes them.
        assert audit_paths([FIXTURES], root=REPO_ROOT) == []

    def test_fixtures_are_audited_when_asked(self):
        findings = audit_paths([FIXTURES], root=REPO_ROOT,
                               include_fixtures=True)
        assert len(findings) >= len(RULE_FIXTURES)


class TestRuleFixtures:
    def test_every_rule_has_a_fixture(self):
        assert set(RULE_FIXTURES) == set(rule_ids())

    @pytest.mark.parametrize("rule_id,fixture", sorted(RULE_FIXTURES.items()))
    def test_fixture_fires_exactly_once(self, rule_id, fixture):
        findings = audit_fixture(fixture)
        assert len(findings) == 1, "\n".join(f.format() for f in findings)
        finding = findings[0]
        assert finding.rule_id == rule_id
        assert finding.line > 1  # past the fixture marker
        assert fixture == Path(finding.path).relative_to(
            "tests/devtools_fixtures").as_posix()
        formatted = finding.format()
        assert rule_id in formatted
        assert f":{finding.line}:" in formatted

    @pytest.mark.parametrize("rule_id,fixture", sorted(RULE_FIXTURES.items()))
    def test_select_isolates_one_rule(self, rule_id, fixture):
        assert len(audit_fixture(fixture, select=[rule_id])) == 1
        others = [other for other in rule_ids() if other != rule_id]
        assert audit_fixture(fixture, select=others) == []


class TestSuppressions:
    def test_reasoned_suppressions_silence_findings(self):
        assert audit_fixture("suppressed.py") == []

    def test_reasonless_and_unknown_suppressions_are_findings(self):
        findings = audit_fixture("bad_suppression.py")
        by_rule: dict[str, int] = {}
        for finding in findings:
            by_rule[finding.rule_id] = by_rule.get(finding.rule_id, 0) + 1
        # Both malformed comments are reported, and neither silences the
        # wall-clock finding it decorates.
        assert by_rule == {"bad-suppression": 2, "wall-clock": 2}

    def test_clean_fixture_has_no_findings(self):
        assert audit_fixture("clean.py") == []

    def test_suppression_comment_in_string_literal_is_ignored(self):
        source = 'TEXT = "# audit: allow[wall-clock] not a comment"\n'
        suppressions, is_fixture = scan_comments(source)
        assert suppressions == [] and not is_fixture


class TestCli:
    def test_cli_exits_zero_on_clean_tree(self, capsys):
        status = main([str(path) for path in AUDITED_PATHS])
        captured = capsys.readouterr()
        assert status == 0
        assert "clean" in captured.err

    def test_cli_exits_nonzero_on_fixture_with_location(self, capsys):
        fixture = FIXTURES / "bad_builtin_hash.py"
        status = main([str(fixture), "--include-fixtures"])
        captured = capsys.readouterr()
        assert status == 1
        assert "builtin-hash" in captured.out
        assert "bad_builtin_hash.py" in captured.out
        # path:line:col prefix
        first = captured.out.splitlines()[0]
        assert first.count(":") >= 3

    def test_cli_explicit_fixture_path_needs_no_flag(self):
        # Naming a fixture file directly audits it even without
        # --include-fixtures; only directory walks skip fixtures.
        assert main([str(FIXTURES / "bad_wall_clock.py")]) == 1

    def test_cli_select_and_list_rules(self, capsys):
        assert main(["--list-rules"]) == 0
        listed = capsys.readouterr().out
        for rule in RULES:
            assert rule.rule_id in listed
        fixture = str(FIXTURES / "bad_wall_clock.py")
        assert main([fixture, "--select", "builtin-hash"]) == 0
        assert main([fixture, "--select", "wall-clock"]) == 1

    def test_cli_skips_missing_paths(self, capsys):
        status = main([str(FIXTURES / "clean.py"), "no-such-dir"])
        captured = capsys.readouterr()
        assert status == 0
        assert "skipping missing path" in captured.err

    def test_collect_files_is_sorted_and_deduplicated(self):
        once = collect_files([FIXTURES, FIXTURES / "clean.py"])
        assert [str(p) for p in once] == sorted(str(p) for p in once)
        assert len(once) == len({p.resolve() for p in once})


def synthetic_core(attr: str, capture: bool, restore: bool,
                   fingerprint: bool) -> str:
    """A BaseCore subclass whose ``attr`` coverage is parameterised."""
    return textwrap.dedent(f"""
        class SyntheticCore(BaseCore):
            def __init__(self):
                super().__init__()
                self.{attr} = []

            def advance(self):
                self.{attr}.append(1)

            def snapshot(self):
                return {f'(list(self.{attr}),)' if capture else '()'}

            def restore(self, state):
                {f'self.{attr} = list(state[0])' if restore else 'pass'}

            def state_fingerprint(self):
                return {f'tuple(self.{attr})' if fingerprint else '()'}
        """)


def rolling_core(rolling_covers: bool, suppressed: bool = False) -> str:
    """A BaseCore subclass defining both micro-key sides in its own body."""
    comment = ("# audit: allow[state-coverage] rolling side reads a cache\n"
               "                " if suppressed else "")
    return textwrap.dedent(f"""
        class RollingCore(BaseCore):
            def __init__(self):
                super().__init__()
                {comment}self._buffer = []

            def advance(self):
                self._buffer.append(1)

            def snapshot(self):
                return (list(self._buffer),)

            def restore(self, state):
                self._buffer = list(state[0])

            def _fingerprint_microarchitecture(self):
                return tuple(self._buffer)

            def _rolling_microarchitecture(self):
                return {'tuple(self._buffer)' if rolling_covers else '()'}
        """)


class TestStateCoverage:
    def test_flags_unfingerprinted_mutable_attribute(self):
        findings = audit_source(synthetic_core("_scratch", True, True, False))
        assert [f.rule_id for f in findings] == ["state-coverage"]
        assert "_scratch" in findings[0].message
        assert "fingerprint" in findings[0].message

    def test_fully_covered_attribute_is_clean(self):
        assert audit_source(synthetic_core("_scratch", True, True, True)) == []

    def test_init_only_configuration_is_not_state(self):
        source = textwrap.dedent("""
            class ConfigCore(BaseCore):
                def __init__(self):
                    super().__init__()
                    self._widths = [8, 16]

                def snapshot(self):
                    return ()

                def restore(self, state):
                    pass

                def state_fingerprint(self):
                    return ()
            """)
        assert audit_source(source) == []

    @settings(max_examples=40, deadline=None)
    @given(attr=st.from_regex(r"\A_[a-z]{1,8}\Z"),
           capture=st.booleans(), restore=st.booleans(),
           fingerprint=st.booleans())
    def test_any_coverage_gap_is_flagged(self, attr, capture, restore,
                                         fingerprint):
        findings = audit_source(
            synthetic_core(attr, capture, restore, fingerprint),
            select=["state-coverage"])
        if capture and restore and fingerprint:
            assert findings == []
        else:
            assert len(findings) == 1
            assert findings[0].rule_id == "state-coverage"
            assert f".{attr} " in findings[0].message

    def test_rolling_gap_is_flagged_at_the_declaration(self):
        findings = audit_source(rolling_core(rolling_covers=False),
                                select=["state-coverage"])
        assert [f.rule_id for f in findings] == ["state-coverage"]
        assert "_buffer" in findings[0].message
        assert "rolling" in findings[0].message
        # Anchored at the __init__ declaration so a reasoned suppression
        # there adjudicates the attribute once, for both contract checks.
        assert findings[0].line == 5

    def test_symmetric_rolling_path_is_clean(self):
        assert audit_source(rolling_core(rolling_covers=True),
                            select=["state-coverage"]) == []

    def test_rolling_gap_suppression_at_declaration(self):
        assert audit_source(rolling_core(rolling_covers=False,
                                         suppressed=True),
                            select=["state-coverage"]) == []

    def test_inherited_rolling_side_is_not_held_to_symmetry(self):
        # Only classes defining BOTH sides in their own body can introduce
        # an asymmetry; a plain core inheriting the delegating default
        # (rolling == full by construction) must not flag.
        assert audit_source(synthetic_core("_scratch", True, True, True),
                            select=["state-coverage"]) == []

    @pytest.fixture(scope="class")
    def real_core_modules(self):
        microarch = REPO_ROOT / "src" / "repro" / "microarch"
        files = [microarch / name for name in
                 ("core.py", "state.py", "memory.py", "inorder.py", "ooo.py")]
        modules, errors = load_modules(files, root=REPO_ROOT)
        assert not errors
        return modules

    def test_both_real_cores_stay_green(self, real_core_modules):
        from repro.devtools.audit import audit_modules

        findings = audit_modules(real_core_modules,
                                 select=["state-coverage"])
        assert findings == [], "\n".join(f.format() for f in findings)

    @settings(max_examples=20, deadline=None)
    @given(suffix=st.from_regex(r"\A[a-z]{1,6}\Z"), covered=st.booleans())
    def test_subclass_of_real_core_inherits_contract(self, suffix, covered,
                                                     real_core_modules):
        # Cross-module resolution: the synthetic subclass has no trio of its
        # own unless `covered`; the contract is found on InOrderCore/BaseCore
        # through the companion modules, so an uncovered attribute is the
        # PR 7 bug class and must flag.
        attr = f"_probe_{suffix}"
        trio = textwrap.dedent(f"""
            def _snapshot_microarchitecture(self):
                return {{"probe": list(self.{attr})}}

            def _restore_microarchitecture(self, micro):
                self.{attr} = list(micro["probe"])

            def _fingerprint_microarchitecture(self):
                return tuple(self.{attr})
            """)
        source = textwrap.dedent(f"""
            class ProbeCore(InOrderCore):
                def __init__(self):
                    super().__init__()
                    self.{attr} = []

                def _step_cycle(self):
                    self.{attr}.append(1)
            """)
        if covered:
            source += textwrap.indent(trio, "    ")
        findings = audit_source(source, select=["state-coverage"],
                                companions=real_core_modules)
        if covered:
            assert findings == []
        else:
            assert [f.rule_id for f in findings] == ["state-coverage"]
            assert attr in findings[0].message


class TestRegressions:
    """Pin the behaviour corrected while bringing the tree to zero findings."""

    def test_artifact_store_census_counts_every_entry(self, tmp_path):
        # engine/artifacts.py stats() now iterates sorted(root.glob(...));
        # the census must still see every artifact regardless of creation
        # order.
        from repro.engine.artifacts import ARTIFACT_SUFFIX, GoldenArtifactStore

        store = GoldenArtifactStore(tmp_path)
        for name in ("zz", "aa", "mm"):
            (tmp_path / f"{name}{ARTIFACT_SUFFIX}").write_bytes(b"x" * 10)
        stats = store.stats()
        assert stats.entries == 3
        assert stats.size_bytes == 30

    def test_artifacts_module_is_audit_clean(self):
        findings = audit_paths(
            [REPO_ROOT / "src" / "repro" / "engine" / "artifacts.py"],
            root=REPO_ROOT, select=["unsorted-iteration"])
        assert findings == []


class TestManifestDrift:
    def test_same_environment_has_no_drift(self):
        from repro.obs import manifest_dict, manifest_drift

        assert manifest_drift(manifest_dict(seed=1)) == []
        assert manifest_drift(None) == []

    def test_package_and_git_drift_are_described(self):
        from repro.obs import manifest_dict, manifest_drift

        manifest = manifest_dict(seed=1)
        manifest["packages"] = dict(manifest["packages"], python="0.0.0")
        manifest["git"] = "0" * 40
        drift = manifest_drift(manifest)
        assert any(entry.startswith("python 0.0.0 -> ") for entry in drift)
        if manifest_dict()["git"]:
            assert any(entry.startswith("git 000000000000 -> ")
                       for entry in drift)

    def test_load_frontier_warns_on_drifted_manifest(self, tmp_path):
        import warnings

        from repro.analysis.pareto import ParetoFrontier, ParetoPoint
        from repro.analysis.store import load_frontier, save_frontier
        from repro.obs import manifest_dict

        frontier = ParetoFrontier()
        frontier.update([ParetoPoint(improvement=2.0, energy_pct=10.0,
                                     area_pct=5.0, exec_time_pct=1.0,
                                     label="p")])
        manifest = manifest_dict(seed=3)
        manifest["packages"] = dict(manifest["packages"], python="0.0.0")
        path = save_frontier(tmp_path / "f.json", frontier, manifest=manifest)
        with pytest.warns(RuntimeWarning, match="different .*environment"):
            store = load_frontier(path)
        assert len(store.frontier) == 1

        fresh = save_frontier(tmp_path / "g.json", frontier)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            load_frontier(fresh)

    def test_store_stats_table_surfaces_drift(self, tmp_path):
        from repro.engine.artifacts import GoldenArtifactStore
        from repro.obs import manifest_dict
        from repro.reporting.tables import format_artifact_store_stats

        store = GoldenArtifactStore(tmp_path)
        manifest = manifest_dict()
        assert "provenance: matches this environment" in \
            format_artifact_store_stats(store, manifest=manifest)
        manifest["packages"] = dict(manifest["packages"], python="0.0.0")
        drifted = format_artifact_store_stats(store, manifest=manifest)
        assert "provenance DRIFT" in drifted
        assert "python 0.0.0 ->" in drifted
        assert "provenance" not in format_artifact_store_stats(store)


class TestRuleMetadata:
    def test_rule_table_covers_every_rule(self):
        table = dict(rule_table())
        assert set(table) == set(rule_ids())
        assert all(summary for summary in table.values())

    def test_rule_ids_are_well_formed(self):
        for rule in RULES:
            assert rule.rule_id == rule.rule_id.lower()
            assert " " not in rule.rule_id
