"""End-to-end integration tests: injection campaigns against protected designs."""

from __future__ import annotations

import pytest

from repro.core import ResilienceTarget, SelectiveHardeningPlanner, sdc_improvement
from repro.faultinjection import (
    FlipFlopInjector,
    InjectionCampaign,
    OutcomeCategory,
    uniform_injection_plan,
)
from repro.microarch import InOrderCore, TerminationReason
from repro.physical import RecoveryKind
from repro.resilience import harden_top_flip_flops, ProtectedDesign
from repro.workloads import workload_by_name


@pytest.fixture(scope="module")
def baseline_campaign(small_workload):
    """A small measured campaign on the unprotected in-order core."""
    core = InOrderCore()
    campaign = InjectionCampaign(core, small_workload.program(), seed=42)
    return campaign.run(injections=120)


def test_baseline_campaign_has_all_outcome_classes(baseline_campaign):
    counts = baseline_campaign.outcomes
    assert counts.total == 120
    assert counts.vanished_count > 0
    assert counts.sdc_count + counts.due_count > 0


def test_full_hardening_eliminates_measured_errors(small_workload, baseline_campaign):
    core = InOrderCore()
    plan = harden_top_flip_flops(list(range(core.flip_flop_count)),
                                 core.flip_flop_count)
    design = ProtectedDesign(registry=core.registry, hardening=plan)
    campaign = InjectionCampaign(core, small_workload.program(), protection=design,
                                 seed=42)
    protected = campaign.run(injections=120)
    assert protected.outcomes.sdc_count == 0
    assert protected.outcomes.due_count == 0
    improvement = sdc_improvement(baseline_campaign.outcomes, protected.outcomes,
                                  design.gamma())
    assert improvement > 1.0


def test_parity_with_flush_recovery_removes_most_sdc(small_workload, baseline_campaign):
    core = InOrderCore()
    framework_registry = core.registry
    # Protect everything with parity + flush recovery; unflushable stages with
    # LEAP-DICE, as Heuristic 1 prescribes.
    from repro.core import SelectionPolicy
    from repro.physical import TimingModel
    from repro.faultinjection import CalibratedVulnerabilityModel

    vulnerability = CalibratedVulnerabilityModel(
        framework_registry, [small_workload.name], seed=1).build_map()
    planner = SelectiveHardeningPlanner(framework_registry, vulnerability,
                                        TimingModel(framework_registry, seed=1),
                                        benchmarks=[small_workload.name])
    result = planner.plan(ResilienceTarget(sdc=float("inf")),
                          recovery=RecoveryKind.FLUSH, policy=SelectionPolicy())
    campaign = InjectionCampaign(core, small_workload.program(),
                                 protection=result.design, seed=42)
    protected = campaign.run(injections=120)
    assert protected.outcomes.sdc_count <= max(1, baseline_campaign.outcomes.sdc_count // 5)


def test_abft_protected_workload_detects_injected_corruption(small_workload):
    """Injections into the ABFT-protected matrix kernel either vanish, are
    detected by the checksum, or corrupt state the checksum cannot see --
    but the detection path is exercised."""
    workload = workload_by_name("inner_product")
    core = InOrderCore()
    injector = FlipFlopInjector(core, seed=9)
    program = workload.abft_program()
    golden = injector.golden_run(program)
    assert golden.reason is TerminationReason.HALTED
    outcomes = []
    plan = uniform_injection_plan(core.flip_flop_count, golden.cycles, 60, seed=9)
    for injection in plan:
        _, outcome = injector.run_with_injection(program, injection, golden)
        outcomes.append(outcome)
    assert OutcomeCategory.VANISHED in outcomes
    assert len([o for o in outcomes if o is not OutcomeCategory.VANISHED]) >= 1
