"""Flip-flop-level soft-error injection.

An :class:`Injection` names a flip-flop (by flat index) and a cycle.  The
:class:`FlipFlopInjector` runs a program on a core with that single bit flip
applied at the chosen cycle and classifies the outcome against a golden run.

The injector is also where low-level protection semantics are honoured.  A
*protection provider* (normally a
:class:`repro.resilience.design.ProtectedDesign`) can describe, per flip-flop:

* **hardening** -- the flip is suppressed with the hardened cell's soft error
  rate ratio (LEAP-DICE suppresses virtually every upset, LHL three out of
  four, ...);
* **detection** (logic parity / EDS) -- the flip is detected one cycle after
  it is latched; with a hardware recovery mechanism that can reach the
  affected flip-flop the error is corrected (the pipeline is rolled back and
  charged the recovery latency), otherwise the run terminates as a detected
  but uncorrected error.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterable, Protocol

from repro.microarch.core import BaseCore, CycleHook
from repro.microarch.events import DetectionEvent, RunResult, TerminationReason
from repro.faultinjection.outcomes import OutcomeCategory, classify_outcome
from repro.isa.program import Program

HANG_FACTOR = 2.0
"""Watchdog multiplier: a run is a Hang past 2x the nominal execution time."""


@dataclass(frozen=True)
class Injection:
    """A single soft-error injection target."""

    flat_index: int
    cycle: int


@dataclass(frozen=True)
class SiteProtection:
    """Low-level protection attributes of one flip-flop.

    Attributes:
        technique: short name of the protecting technique ("leap-dice",
            "lhl", "parity", "eds", ...), empty when unprotected.
        suppression: probability that an upset is masked outright (hardened
            cells).  1.0 means the cell never upsets in practice.
        detects: True when the flip is detected (parity / EDS).
        recoverable: True when an attached hardware recovery mechanism can
            recover errors in this flip-flop.
        recovery_latency: cycles charged for a recovery.
    """

    technique: str = ""
    suppression: float = 0.0
    detects: bool = False
    recoverable: bool = False
    recovery_latency: int = 0


class ProtectionProvider(Protocol):
    """Anything that can describe per-flip-flop low-level protection."""

    def site_protection(self, flat_index: int) -> SiteProtection:
        """Return the protection attributes of one flip-flop."""
        ...  # pragma: no cover - protocol definition


def injection_watchdog(golden: RunResult) -> int:
    """Cycle limit for an injected run (Hang classification threshold)."""
    return max(int(golden.cycles * HANG_FACTOR), golden.cycles + 64)


def build_injection_hook(injection: Injection, protection: SiteProtection,
                         suppressed: bool) -> CycleHook:
    """Build the per-cycle hook that applies one injection to a core.

    ``suppressed`` is the (already-drawn) outcome of the hardened cell's
    suppression lottery; resolving it up-front keeps the hook deterministic,
    which lets the injection engine pre-plan suppression decisions centrally
    and replay injections in any order (or any process) without disturbing
    the random stream.
    """

    def hook(core: BaseCore, cycle: int) -> None:
        if cycle != injection.cycle:
            return
        if suppressed:
            # The hardened cell absorbed the strike: no state change.
            return
        if protection.detects and protection.recoverable:
            # Detection one cycle after the upset followed by hardware
            # recovery: architecturally equivalent to absorbing the
            # upset, at the cost of the recovery latency.
            core.signal_detection(DetectionEvent(
                technique=protection.technique, cycle=cycle + 1,
                detail=f"ff={injection.flat_index}", recovered=True))
            core.schedule_recovery(protection.recovery_latency)
            return
        structure = core.latches.flip_flat(injection.flat_index)
        if protection.detects:
            core.signal_detection(DetectionEvent(
                technique=protection.technique, cycle=cycle + 1,
                detail=f"ff={injection.flat_index} structure={structure}",
                recovered=False))
            core.force_termination(TerminationReason.DETECTED)

    return hook


class FlipFlopInjector:
    """Runs single-bit flip-flop injections on a core."""

    def __init__(self, core: BaseCore, protection: ProtectionProvider | None = None,
                 seed: int = 0):
        self.core = core
        self.protection = protection
        self._rng = random.Random(seed)

    # ------------------------------------------------------------------ golden
    def golden_run(self, program: Program, max_cycles: int | None = None) -> RunResult:
        """Run the program without injections (the reference run)."""
        from repro.microarch.core import DEFAULT_MAX_CYCLES

        return self.core.run(program, max_cycles=max_cycles or DEFAULT_MAX_CYCLES)

    # ------------------------------------------------------------------ injected
    def run_with_injection(self, program: Program, injection: Injection,
                           golden: RunResult) -> tuple[RunResult, OutcomeCategory]:
        """Run one injection and classify its outcome against ``golden``."""
        watchdog = injection_watchdog(golden)
        hook = self._build_hook(injection)
        injected = self.core.run(program, max_cycles=watchdog, cycle_hook=hook)
        return injected, classify_outcome(golden, injected)

    def _build_hook(self, injection: Injection) -> CycleHook:
        protection = (self.protection.site_protection(injection.flat_index)
                      if self.protection is not None else SiteProtection())
        # One suppression draw per injection, in call order -- the injection
        # engine reproduces this exact stream when it pre-plans campaigns.
        suppressed = (protection.suppression > 0.0
                      and self._rng.random() < protection.suppression)
        return build_injection_hook(injection, protection, suppressed)


def _sampled_plan(sites: Iterable[int], golden_cycles: int,
                  rng: random.Random) -> list[Injection]:
    """Pair every site in ``sites`` with a uniformly-sampled golden-run cycle.

    The ``max(1, golden_cycles)`` guard keeps the cycle draw well-defined for
    degenerate zero-cycle golden runs (e.g. an empty program that faults on
    its first fetch): the injection then targets cycle 0, which the watchdog
    still executes.  ``sites`` may itself draw from ``rng``; it is consumed
    lazily so site and cycle draws interleave one injection at a time.
    """
    cycle_span = max(1, golden_cycles)
    return [Injection(flat_index=site, cycle=rng.randrange(cycle_span))
            for site in sites]


def uniform_injection_plan(total_flip_flops: int, golden_cycles: int, count: int,
                           seed: int = 0) -> list[Injection]:
    """Sample ``count`` (flip-flop, cycle) pairs uniformly, as in the paper.

    Errors are injected uniformly into all flip-flops and all application
    regions (cycles of the golden run), mimicking real-world strikes.
    """
    rng = random.Random(seed)
    sites = (rng.randrange(total_flip_flops) for _ in range(count))
    return _sampled_plan(sites, golden_cycles, rng)


def exhaustive_site_plan(total_flip_flops: int, golden_cycles: int,
                         samples_per_flip_flop: int, seed: int = 0) -> list[Injection]:
    """Sample a fixed number of cycles for every flip-flop.

    Used when per-flip-flop vulnerability estimates are needed (selective
    hardening), where uniform sampling would leave most flip-flops with too
    few samples.
    """
    rng = random.Random(seed)
    sites = (flat_index
             for flat_index in range(total_flip_flops)
             for _ in range(samples_per_flip_flop))
    return _sampled_plan(sites, golden_cycles, rng)
