"""Alternative (higher-level) injection models.

Tables 11 and 14 of the paper compare resilience improvements evaluated with
accurate flip-flop-level injection against four naive higher-level injection
models: uniform architectural-register injection (regU), register-write
injection (regW), uniform program-variable injection (varU) and
program-variable-write injection (varW).  This module implements those four
models on top of the cycle-level cores so the same comparison can be made.

Campaigns route through the injection engine's checkpointed golden runs: the
golden run comes from the shared :data:`~repro.engine.GOLDEN_RUN_CACHE` (so
flip-flop and high-level campaigns on the same workload share it), and every
injected run fast-forwards from the nearest snapshot at or below its
injection cycle.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from enum import Enum, unique

from repro.engine.checkpoint import GOLDEN_RUN_CACHE, CheckpointedGoldenRun
from repro.faultinjection.outcomes import OutcomeCategory, OutcomeCounts, classify_outcome
from repro.isa.program import Program
from repro.isa.simulator import FunctionalSimulator
from repro.microarch.core import BaseCore
from repro.microarch.events import RunResult
from repro.isa.registers import NUM_REGISTERS


@unique
class InjectionLevel(Enum):
    """Where an error is injected."""

    FLIP_FLOP = "flip-flop"
    REGISTER_UNIFORM = "regU"
    REGISTER_WRITE = "regW"
    VARIABLE_UNIFORM = "varU"
    VARIABLE_WRITE = "varW"


@dataclass(frozen=True)
class HighLevelInjection:
    """A single architectural-level injection."""

    level: InjectionLevel
    cycle: int
    register: int | None = None
    address: int | None = None
    bit: int = 0


class HighLevelInjector:
    """Injects errors into architectural registers or program variables."""

    def __init__(self, core: BaseCore, seed: int = 0):
        self.core = core
        self._rng = random.Random(seed)
        self._functional = FunctionalSimulator()

    # ------------------------------------------------------------------ planning
    def plan(self, level: InjectionLevel, program: Program, golden: RunResult,
             count: int) -> list[HighLevelInjection]:
        """Sample ``count`` injections for the given injection level."""
        if level is InjectionLevel.REGISTER_UNIFORM:
            return [HighLevelInjection(level, cycle=self._rng.randrange(max(1, golden.cycles)),
                                       register=self._rng.randrange(1, NUM_REGISTERS),
                                       bit=self._rng.randrange(32))
                    for _ in range(count)]
        if level is InjectionLevel.VARIABLE_UNIFORM:
            addresses = sorted(program.data.as_memory_image()) or [program.data.base]
            return [HighLevelInjection(level, cycle=self._rng.randrange(max(1, golden.cycles)),
                                       address=self._rng.choice(addresses),
                                       bit=self._rng.randrange(32))
                    for _ in range(count)]
        trace = self._functional.run(program, collect_trace=True)
        if level is InjectionLevel.REGISTER_WRITE:
            events = trace.register_writes
            plan = []
            for _ in range(count):
                entry = self._rng.choice(events)
                cycle = self._scale_cycle(entry.index, trace.result.instructions,
                                          golden.cycles)
                plan.append(HighLevelInjection(level, cycle=cycle, register=entry.rd,
                                               bit=self._rng.randrange(32)))
            return plan
        if level is InjectionLevel.VARIABLE_WRITE:
            events = trace.memory_writes or trace.register_writes
            plan = []
            for _ in range(count):
                entry = self._rng.choice(events)
                cycle = self._scale_cycle(entry.index, trace.result.instructions,
                                          golden.cycles)
                plan.append(HighLevelInjection(level, cycle=cycle,
                                               address=entry.store_address,
                                               register=entry.rd,
                                               bit=self._rng.randrange(32)))
            return plan
        raise ValueError(f"plan() does not handle {level}")

    @staticmethod
    def _scale_cycle(instruction_index: int, total_instructions: int,
                     golden_cycles: int) -> int:
        """Map an instruction index onto an approximate commit cycle."""
        if total_instructions <= 0:
            return 0
        fraction = instruction_index / total_instructions
        return min(golden_cycles - 1, max(0, int(fraction * golden_cycles)))

    # ------------------------------------------------------------------ execution
    def run_with_injection(self, program: Program, injection: HighLevelInjection,
                           golden: RunResult,
                           checkpointed: CheckpointedGoldenRun | None = None,
                           ) -> tuple[RunResult, OutcomeCategory]:
        watchdog = max(int(golden.cycles * 2.0), golden.cycles + 64)

        def hook(core: BaseCore, cycle: int) -> None:
            if cycle != injection.cycle:
                return
            if injection.register is not None and injection.address is None:
                index = injection.register & 0x1F
                if index != 0:
                    core.registers[index] ^= 1 << injection.bit
            elif injection.address is not None:
                memory = core.memory
                if memory.is_mapped(injection.address):
                    value = memory.load_word(injection.address)
                    memory.store_word(injection.address, value ^ (1 << injection.bit))

        snapshot = (checkpointed.nearest(injection.cycle)
                    if checkpointed is not None else None)
        if snapshot is None:
            injected = self.core.run(program, max_cycles=watchdog, cycle_hook=hook)
        else:
            injected = self.core.resume(program, snapshot, max_cycles=watchdog,
                                        cycle_hook=hook)
        return injected, classify_outcome(golden, injected)

    def campaign(self, level: InjectionLevel, program: Program,
                 count: int = 100) -> OutcomeCounts:
        """Run a campaign at one injection level and return outcome counts."""
        checkpointed = GOLDEN_RUN_CACHE.get(self.core, program)
        golden = checkpointed.golden
        counts = OutcomeCounts()
        for injection in self.plan(level, program, golden, count):
            _, outcome = self.run_with_injection(program, injection, golden,
                                                 checkpointed=checkpointed)
            counts.record(outcome)
        return counts
