"""Alternative (higher-level) injection models.

Tables 11 and 14 of the paper compare resilience improvements evaluated with
accurate flip-flop-level injection against four naive higher-level injection
models: uniform architectural-register injection (regU), register-write
injection (regW), uniform program-variable injection (varU) and
program-variable-write injection (varW).  This module implements those four
models on top of the cycle-level cores so the same comparison can be made.

Campaigns route through the injection engine's checkpointed golden runs: the
golden run comes from the shared :data:`~repro.engine.GOLDEN_RUN_CACHE` (so
flip-flop and high-level campaigns on the same workload share it), every
injected run fast-forwards from the nearest snapshot at or below its
injection cycle, and -- when the golden run carries a fingerprint grid --
every injected run is convergence-gated: a run whose fingerprint matches the
golden grid is bit-identical to the golden run from that cycle on, so it
stops simulating and classifies against the synthesized golden remainder.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace
from enum import Enum, unique

from repro.engine.checkpoint import GOLDEN_RUN_CACHE, CheckpointedGoldenRun
from repro.faultinjection.outcomes import OutcomeCategory, OutcomeCounts, classify_outcome
from repro.isa.program import Program
from repro.isa.simulator import FunctionalSimulator
from repro.microarch.core import BaseCore
from repro.microarch.events import RunResult, TerminationReason
from repro.isa.registers import NUM_REGISTERS


@unique
class InjectionLevel(Enum):
    """Where an error is injected."""

    FLIP_FLOP = "flip-flop"
    REGISTER_UNIFORM = "regU"
    REGISTER_WRITE = "regW"
    VARIABLE_UNIFORM = "varU"
    VARIABLE_WRITE = "varW"


@dataclass(frozen=True)
class HighLevelInjection:
    """A single architectural-level injection."""

    level: InjectionLevel
    cycle: int
    register: int | None = None
    address: int | None = None
    bit: int = 0


@dataclass(frozen=True)
class HighLevelCampaignResult:
    """One high-level campaign's outcome counts plus convergence telemetry.

    ``counts`` is the same :class:`OutcomeCounts` the campaign always
    produced (bit-identical with the gate on or off, by the fingerprint
    contract); ``converged_count`` / ``saved_cycles`` expose how much of the
    campaign the convergence gate decided early, and ``replayed_cycles``
    sums the cycles actually simulated after snapshot fast-forward.
    """

    level: InjectionLevel
    counts: OutcomeCounts
    converged_count: int = 0
    saved_cycles: int = 0
    replayed_cycles: int = 0


class HighLevelInjector:
    """Injects errors into architectural registers or program variables."""

    def __init__(self, core: BaseCore, seed: int = 0):
        self.core = core
        self._rng = random.Random(seed)
        self._functional = FunctionalSimulator()

    # ------------------------------------------------------------------ planning
    def plan(self, level: InjectionLevel, program: Program, golden: RunResult,
             count: int) -> list[HighLevelInjection]:
        """Sample ``count`` injections for the given injection level."""
        if level is InjectionLevel.REGISTER_UNIFORM:
            return [HighLevelInjection(level, cycle=self._rng.randrange(max(1, golden.cycles)),
                                       register=self._rng.randrange(1, NUM_REGISTERS),
                                       bit=self._rng.randrange(32))
                    for _ in range(count)]
        if level is InjectionLevel.VARIABLE_UNIFORM:
            addresses = sorted(program.data.as_memory_image()) or [program.data.base]
            return [HighLevelInjection(level, cycle=self._rng.randrange(max(1, golden.cycles)),
                                       address=self._rng.choice(addresses),
                                       bit=self._rng.randrange(32))
                    for _ in range(count)]
        trace = self._functional.run(program, collect_trace=True)
        if level is InjectionLevel.REGISTER_WRITE:
            events = trace.register_writes
            plan = []
            for _ in range(count):
                entry = self._rng.choice(events)
                cycle = self._scale_cycle(entry.index, trace.result.instructions,
                                          golden.cycles)
                plan.append(HighLevelInjection(level, cycle=cycle, register=entry.rd,
                                               bit=self._rng.randrange(32)))
            return plan
        if level is InjectionLevel.VARIABLE_WRITE:
            events = trace.memory_writes or trace.register_writes
            plan = []
            for _ in range(count):
                entry = self._rng.choice(events)
                cycle = self._scale_cycle(entry.index, trace.result.instructions,
                                          golden.cycles)
                plan.append(HighLevelInjection(level, cycle=cycle,
                                               address=entry.store_address,
                                               register=entry.rd,
                                               bit=self._rng.randrange(32)))
            return plan
        raise ValueError(f"plan() does not handle {level}")

    @staticmethod
    def _scale_cycle(instruction_index: int, total_instructions: int,
                     golden_cycles: int) -> int:
        """Map an instruction index onto an approximate commit cycle."""
        if total_instructions <= 0:
            return 0
        fraction = instruction_index / total_instructions
        return min(golden_cycles - 1, max(0, int(fraction * golden_cycles)))

    # ------------------------------------------------------------------ execution
    def run_with_injection(self, program: Program, injection: HighLevelInjection,
                           golden: RunResult,
                           checkpointed: CheckpointedGoldenRun | None = None,
                           convergence: bool = True, rolling: bool = False,
                           ) -> tuple[RunResult, OutcomeCategory]:
        """Run one injected replay; returns ``(result, outcome)``.

        A convergence-gated replay that matches the golden fingerprint grid
        returns a synthesized golden-remainder result -- bit-identical to
        what simulating to termination would have produced.
        """
        injected, outcome, _, _ = self._gated_replay(
            program, injection, golden, checkpointed,
            convergence=convergence, rolling=rolling)
        return injected, outcome

    def _gated_replay(self, program: Program, injection: HighLevelInjection,
                      golden: RunResult,
                      checkpointed: CheckpointedGoldenRun | None,
                      convergence: bool, rolling: bool,
                      ) -> tuple[RunResult, OutcomeCategory, int | None, int]:
        """One replay plus its convergence telemetry:
        ``(result, outcome, converged_at, simulated_cycles)``."""
        # Deferred: executors imports this package's injector module, so a
        # module-level import here would be circular.
        from repro.engine.executors import _ConvergedEarly, _convergence_hook

        watchdog = max(int(golden.cycles * 2.0), golden.cycles + 64)

        def hook(core: BaseCore, cycle: int) -> None:
            if cycle != injection.cycle:
                return
            if injection.register is not None and injection.address is None:
                index = injection.register & 0x1F
                if index != 0:
                    core.registers[index] ^= 1 << injection.bit
            elif injection.address is not None:
                memory = core.memory
                if memory.is_mapped(injection.address):
                    value = memory.load_word(injection.address)
                    memory.store_word(injection.address, value ^ (1 << injection.bit))

        # Same gate condition as the engine's scalar replay path: a
        # fingerprint match proves the remainder is bit-identical to the
        # golden run, so classification cannot change -- only the cycles
        # spent reaching it.
        run_hook = hook
        if (convergence and checkpointed is not None
                and checkpointed.fingerprint_interval > 0
                and checkpointed.fingerprints
                and golden.reason is not TerminationReason.HANG):
            run_hook = _convergence_hook(hook, injection.cycle, checkpointed,
                                         rolling=rolling)
        snapshot = (checkpointed.nearest(injection.cycle)
                    if checkpointed is not None else None)
        resumed_from = snapshot.cycle if snapshot is not None else 0
        try:
            if snapshot is None:
                injected = self.core.run(program, max_cycles=watchdog,
                                         cycle_hook=run_hook)
            else:
                injected = self.core.resume(program, snapshot,
                                            max_cycles=watchdog,
                                            cycle_hook=run_hook)
        except _ConvergedEarly as converged:
            synthesized = replace(golden, output=list(golden.output),
                                  detections=list(golden.detections))
            return (synthesized, classify_outcome(golden, synthesized),
                    converged.cycle, converged.cycle - resumed_from)
        return (injected, classify_outcome(golden, injected), None,
                injected.cycles - resumed_from)

    def campaign(self, level: InjectionLevel, program: Program,
                 count: int = 100, convergence: bool = True,
                 rolling: bool = False) -> HighLevelCampaignResult:
        """Run a campaign at one injection level.

        Returns a :class:`HighLevelCampaignResult`; its ``counts`` are
        bit-identical whatever ``convergence``/``rolling`` are set to.
        """
        checkpointed = GOLDEN_RUN_CACHE.get(self.core, program)
        golden = checkpointed.golden
        counts = OutcomeCounts()
        converged_count = 0
        saved_cycles = 0
        replayed_cycles = 0
        for injection in self.plan(level, program, golden, count):
            _, outcome, converged_at, simulated = self._gated_replay(
                program, injection, golden, checkpointed,
                convergence=convergence, rolling=rolling)
            counts.record(outcome)
            replayed_cycles += simulated
            if converged_at is not None:
                converged_count += 1
                saved_cycles += max(0, golden.cycles - converged_at)
        return HighLevelCampaignResult(level=level, counts=counts,
                                       converged_count=converged_count,
                                       saved_cycles=saved_cycles,
                                       replayed_cycles=replayed_cycles)
