"""Calibrated vulnerability model.

The paper's per-flip-flop vulnerability data comes from ~9 million flip-flop
injections on FPGA emulators and a supercomputer.  Re-running campaigns of
that size is not feasible inside this reproduction's test/benchmark budget,
so table-scale experiments can use a *calibrated* vulnerability model instead
of (or in addition to) measured campaigns.

The model synthesises a per-flip-flop, per-benchmark vulnerability
distribution with the distributional properties the paper's conclusions rest
on, each of which is an explicit, documented parameter:

* the fraction of flip-flops with SDC-causing, DUE-causing, or any errors
  (Table 2: 60.1% / 78.3% / 81.2% for the InO-core, 35.7% / 52.1% / 61% for
  the OoO-core);
* a heavy-tailed cumulative vulnerability curve (protecting the top ~10% of
  flip-flops removes ~90% of SDCs, saturating around a third of the
  flip-flops -- consistent with Table 17's cost-vs-improvement points);
* benchmark dependence: the top vulnerability decile is largely common
  across benchmarks while the middle deciles are benchmark-specific
  (Table 27: similarity 0.83 for the first decile, ~0 for deciles 3-8).

Hint/bookkeeping structures (branch predictors, performance counters, cache
interface registers) are preferentially placed in the always-vanish set,
matching Appendix A.
"""

from __future__ import annotations

import math
import random
import zlib
from dataclasses import dataclass, field

from repro.faultinjection.vulnerability import VulnerabilityMap
from repro.microarch.flipflop import FlipFlopRegistry

_SEED_STRIDE = 1_000_003


def _stream_seed(seed: int, benchmark: str, purpose: str = "") -> int:
    """Deterministic per-benchmark RNG seed.

    crc32, not ``hash()``: string hashing is randomized per process, which
    would make the "calibrated" map -- and every table built on it -- differ
    from run to run.  (Same idiom as the workload synthesizer.)
    """
    return (seed * _SEED_STRIDE) ^ zlib.crc32(f"{purpose}:{benchmark}".encode())

# Cumulative share of SDCs/DUEs covered when protecting the most vulnerable
# fraction of flip-flops (piecewise-linear, derived from Table 17's
# cost-vs-improvement points).
DEFAULT_CUMULATIVE_CURVE = (
    (0.00, 0.00),
    (0.105, 0.52),
    (0.19, 0.80),
    (0.33, 0.98),
    (0.37, 0.998),
    (1.00, 1.00),
)


@dataclass(frozen=True)
class CalibrationProfile:
    """Distributional targets for one core."""

    fraction_sdc_ffs: float
    fraction_due_ffs: float
    fraction_any_ffs: float
    mean_sdc_probability: float = 0.040
    mean_due_probability: float = 0.075
    top_decile_similarity: float = 0.83
    cumulative_curve: tuple[tuple[float, float], ...] = DEFAULT_CUMULATIVE_CURVE


INO_PROFILE = CalibrationProfile(fraction_sdc_ffs=0.601, fraction_due_ffs=0.783,
                                 fraction_any_ffs=0.812)
OOO_PROFILE = CalibrationProfile(fraction_sdc_ffs=0.357, fraction_due_ffs=0.521,
                                 fraction_any_ffs=0.610,
                                 mean_sdc_probability=0.025,
                                 mean_due_probability=0.045)


def profile_for_core(core_name: str) -> CalibrationProfile:
    """Default calibration profile for one of the two studied cores."""
    if "ooo" in core_name.lower() or "out" in core_name.lower():
        return OOO_PROFILE
    return INO_PROFILE


def _interpolate_curve(curve: tuple[tuple[float, float], ...], x: float) -> float:
    """Piecewise-linear interpolation of the cumulative vulnerability curve."""
    previous_x, previous_y = curve[0]
    for point_x, point_y in curve[1:]:
        if x <= point_x:
            if point_x == previous_x:
                return point_y
            t = (x - previous_x) / (point_x - previous_x)
            return previous_y + t * (point_y - previous_y)
        previous_x, previous_y = point_x, point_y
    return curve[-1][1]


@dataclass
class CalibratedVulnerabilityModel:
    """Synthesises per-flip-flop vulnerability for a core and benchmark list.

    Attributes:
        registry: the core's flip-flop registry.
        benchmarks: benchmark names the model generates data for.
        profile: distributional targets (defaults chosen per core).
        seed: RNG seed; the model is fully deterministic given the seed.
        samples_per_site: synthetic sample count recorded per flip-flop,
            which downstream consumers treat exactly like measured samples.
    """

    registry: FlipFlopRegistry
    benchmarks: list[str]
    profile: CalibrationProfile | None = None
    seed: int = 2016
    samples_per_site: int = 10_000
    _base_ranking: list[int] = field(default_factory=list, repr=False)

    def __post_init__(self) -> None:
        if self.profile is None:
            self.profile = profile_for_core(self.registry.core_name)
        self._rng = random.Random(self.seed)
        self._build_population()

    # ------------------------------------------------------------------ population
    def _build_population(self) -> None:
        total = self.registry.total_flip_flops
        profile = self.profile
        vanish_target = round((1.0 - profile.fraction_any_ffs) * total)

        hint_sites = [index for structure in self.registry.structures
                      if not structure.architectural
                      for index in structure.bit_indices()]
        architectural_sites = [index for structure in self.registry.structures
                               if structure.architectural
                               for index in structure.bit_indices()]
        self._rng.shuffle(hint_sites)
        self._rng.shuffle(architectural_sites)

        vanish: list[int] = hint_sites[:vanish_target]
        if len(vanish) < vanish_target:
            vanish.extend(architectural_sites[:vanish_target - len(vanish)])
        vanish_set = set(vanish)
        vulnerable = [index for index in range(total) if index not in vanish_set]
        self._rng.shuffle(vulnerable)

        sdc_count = round(profile.fraction_sdc_ffs * total)
        due_count = round(profile.fraction_due_ffs * total)
        overlap = max(0, sdc_count + due_count - len(vulnerable))
        # The first `overlap` vulnerable flip-flops have both SDC- and
        # DUE-causing errors; the rest are split between SDC-only and
        # DUE-only so the union matches fraction_any_ffs.
        self._sdc_sites = set(vulnerable[:sdc_count])
        due_sites = set(vulnerable[:overlap])
        due_sites.update(vulnerable[sdc_count:sdc_count + (due_count - overlap)])
        self._due_sites = due_sites
        self._vanish_sites = vanish_set

        # Global vulnerability ranking (most vulnerable first): SDC/DUE sites
        # first in shuffled order, then the rest.
        ranked = [i for i in vulnerable if i in self._sdc_sites or i in self._due_sites]
        ranked.extend(i for i in vulnerable
                      if i not in self._sdc_sites and i not in self._due_sites)
        ranked.extend(vanish)
        self._base_ranking = ranked
        self._base_weights = self._weights_from_curve(len(ranked))

    def _weights_from_curve(self, count: int) -> list[float]:
        """Per-rank weights obtained by differencing the cumulative curve.

        A mild exponential tilt keeps the weights strictly decreasing inside
        each linear segment of the curve, so per-benchmark jitter produces
        only local rank churn (which is what keeps the top-decile membership
        stable across benchmarks, Table 27).
        """
        curve = self.profile.cumulative_curve
        weights = []
        previous = 0.0
        for rank in range(count):
            fraction = (rank + 1) / count
            cumulative = _interpolate_curve(curve, fraction)
            tilt = math.exp(-1.5 * rank / count)
            weights.append(max(cumulative - previous, 0.0) * tilt)
            previous = cumulative
        return weights

    # ------------------------------------------------------------------ per-benchmark
    def _benchmark_ranking(self, benchmark: str) -> list[int]:
        """Benchmark-specific ranking: stable head/tail, locally-permuted middle.

        The top decile stays largely common across benchmarks (Table 27
        similarity 0.83) and the always-vanish tail is identical; the middle
        of the ranking is permuted within a window of about an eighth of the
        design, which churns decile membership (similarity near zero for the
        middle deciles) while preserving the overall concentration of
        vulnerability that selective hardening exploits.
        """
        rng = random.Random(_stream_seed(self.seed, benchmark))
        ranking = list(self._base_ranking)
        total = len(ranking)
        top = max(1, total // 10)
        # Swap a small fraction of the top decile out, so cross-benchmark
        # similarity of the top decile is high but below 1 (Table 27: 0.83).
        swap_count = 1 if rng.random() < 0.4 else 0
        vulnerable_end = total - len(self._vanish_sites)
        for _ in range(swap_count):
            a = rng.randrange(0, top)
            b = rng.randrange(top, max(top + 1, vulnerable_end))
            ranking[a], ranking[b] = ranking[b], ranking[a]
        # Windowed permutation of the middle (benchmark-specific vulnerability).
        window = max(4, total // 8)
        for position in range(top, vulnerable_end):
            partner = rng.randrange(max(top, position - window),
                                    min(vulnerable_end, position + window))
            ranking[position], ranking[partner] = ranking[partner], ranking[position]
        return ranking

    def build_map(self) -> VulnerabilityMap:
        """Generate the vulnerability map for all configured benchmarks."""
        total = self.registry.total_flip_flops
        vulnerability = VulnerabilityMap(self.registry.core_name, total)
        profile = self.profile
        weight_sum = sum(self._base_weights) or 1.0
        sdc_scale = profile.mean_sdc_probability * total / weight_sum
        due_scale = profile.mean_due_probability * total / weight_sum
        for benchmark in self.benchmarks:
            ranking = self._benchmark_ranking(benchmark)
            rng = random.Random(_stream_seed(self.seed, benchmark, "jitter"))
            for rank, flat_index in enumerate(ranking):
                weight = self._base_weights[rank]
                jitter = 0.96 + 0.08 * rng.random()
                p_sdc = min(0.95, weight * sdc_scale * jitter) \
                    if flat_index in self._sdc_sites else 0.0
                p_due = min(0.95, weight * due_scale * jitter) \
                    if flat_index in self._due_sites else 0.0
                samples = self.samples_per_site
                vulnerability.record(benchmark, flat_index, samples=samples,
                                     sdc=round(p_sdc * samples),
                                     due=round(p_due * samples))
        return vulnerability
