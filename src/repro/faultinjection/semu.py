"""Single-event multiple-upset (SEMU) modelling.

A single particle strike can upset several adjacent flip-flops when they are
placed closer than roughly one flip-flop length apart (Sec. 2.4,
[Amusan 09]).  The paper's layouts enforce a minimum spacing between
flip-flops checked by the same parity group so that a single strike never
flips two bits of one group (which parity could not detect).

This module models that interaction on top of the synthetic placement from
:mod:`repro.physical.placement`: a strike at one flip-flop also upsets every
neighbour within the SEMU radius.  The parity-layout check verifies that no
two members of a parity group are within that radius of each other.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

SEMU_RADIUS_FF_LENGTHS = 1.0
"""Strike radius in units of one flip-flop length (28 nm, terrestrial)."""


@dataclass(frozen=True)
class SemuEvent:
    """A multi-bit upset: the struck flip-flop plus its upset neighbours."""

    primary: int
    upset_indices: tuple[int, ...]

    @property
    def multiplicity(self) -> int:
        return len(self.upset_indices)


class SemuModel:
    """Expands single strikes into (possibly) multi-bit upsets."""

    def __init__(self, placement, radius_ff_lengths: float = SEMU_RADIUS_FF_LENGTHS,
                 seed: int = 0):
        """``placement`` is a :class:`repro.physical.placement.Placement`."""
        self._placement = placement
        self._radius = radius_ff_lengths
        self._rng = random.Random(seed)

    def upset_set(self, flat_index: int) -> SemuEvent:
        """All flip-flops upset by a strike centred on ``flat_index``."""
        neighbours = self._placement.neighbours_within(flat_index, self._radius)
        return SemuEvent(primary=flat_index,
                         upset_indices=tuple(sorted({flat_index, *neighbours})))

    def multiplicity_distribution(self, sample_size: int = 1000) -> dict[int, float]:
        """Distribution of upset multiplicities over random strike locations."""
        total = self._placement.flip_flop_count
        counts: dict[int, int] = {}
        for _ in range(sample_size):
            event = self.upset_set(self._rng.randrange(total))
            counts[event.multiplicity] = counts.get(event.multiplicity, 0) + 1
        return {multiplicity: count / sample_size
                for multiplicity, count in sorted(counts.items())}

    def violates_parity_group(self, group: list[int]) -> bool:
        """True when a single strike could upset two members of ``group``."""
        members = set(group)
        for flat_index in group:
            event = self.upset_set(flat_index)
            if len(members.intersection(event.upset_indices)) > 1:
                return True
        return False
