"""Error-outcome classification.

The paper classifies each injected run (relative to the error-free golden
run) into: Vanished, Output Mismatch (OMM), Unexpected Termination (UT),
Hang, or Error Detection (ED).  OMM-causing errors are SDC; UT-, Hang- and
ED-causing errors are DUE (Sec. 2.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum, unique

from repro.microarch.events import RunResult, TerminationReason, TrapKind


@unique
class OutcomeCategory(Enum):
    """Outcome of a single error injection (paper Sec. 2.1)."""

    VANISHED = "vanished"
    OMM = "output_mismatch"
    UT = "unexpected_termination"
    HANG = "hang"
    ED = "error_detected"

    @property
    def is_sdc(self) -> bool:
        """True when the outcome is a silent data corruption."""
        return self is OutcomeCategory.OMM

    @property
    def is_due(self) -> bool:
        """True when the outcome is a detected-but-uncorrected error."""
        return self in (OutcomeCategory.UT, OutcomeCategory.HANG, OutcomeCategory.ED)


def classify_outcome(golden: RunResult, injected: RunResult) -> OutcomeCategory:
    """Classify an injected run against the golden (error-free) run.

    Classification rules, in priority order:

    1. an unrecovered detection from any resilience technique -> ED;
    2. a software-assertion trap (ABFT / assertion checks) -> ED;
    3. any other trap -> UT;
    4. exceeding the watchdog (2x nominal execution time) -> Hang;
    5. normal termination with differing output -> OMM;
    6. normal termination with matching output -> Vanished.
    """
    if injected.unrecovered_detections():
        return OutcomeCategory.ED
    if injected.reason is TerminationReason.DETECTED:
        return OutcomeCategory.ED
    if injected.reason is TerminationReason.TRAP:
        if injected.trap is TrapKind.SOFTWARE_ASSERTION:
            return OutcomeCategory.ED
        return OutcomeCategory.UT
    if injected.reason is TerminationReason.HANG:
        return OutcomeCategory.HANG
    if injected.output != golden.output:
        return OutcomeCategory.OMM
    return OutcomeCategory.VANISHED


@dataclass
class OutcomeCounts:
    """Aggregated outcome counts for a set of injections."""

    counts: dict[OutcomeCategory, int] = field(
        default_factory=lambda: {category: 0 for category in OutcomeCategory})

    def record(self, outcome: OutcomeCategory, count: int = 1) -> None:
        self.counts[outcome] = self.counts.get(outcome, 0) + count

    @property
    def total(self) -> int:
        return sum(self.counts.values())

    @property
    def sdc_count(self) -> int:
        """Number of SDC-causing injections (OMM outcomes)."""
        return self.counts.get(OutcomeCategory.OMM, 0)

    @property
    def due_count(self) -> int:
        """Number of DUE-causing injections (UT + Hang + ED outcomes)."""
        return (self.counts.get(OutcomeCategory.UT, 0)
                + self.counts.get(OutcomeCategory.HANG, 0)
                + self.counts.get(OutcomeCategory.ED, 0))

    @property
    def vanished_count(self) -> int:
        return self.counts.get(OutcomeCategory.VANISHED, 0)

    def rate(self, category: OutcomeCategory) -> float:
        """Fraction of injections with the given outcome."""
        if self.total == 0:
            return 0.0
        return self.counts.get(category, 0) / self.total

    def merged_with(self, other: "OutcomeCounts") -> "OutcomeCounts":
        merged = OutcomeCounts()
        for category in OutcomeCategory:
            merged.counts[category] = (self.counts.get(category, 0)
                                       + other.counts.get(category, 0))
        return merged

    def as_dict(self) -> dict[str, int]:
        return {category.value: self.counts.get(category, 0)
                for category in OutcomeCategory}


def margin_of_error(sample_size: int, proportion: float = 0.5,
                    z_score: float = 1.96) -> float:
    """Margin of error of an outcome-rate estimate at 95% confidence.

    The paper reports <0.1% margin of error with 95% confidence for its
    multi-million-injection campaigns; our campaign runner reports the
    achieved margin so the precision/time trade-off is explicit.
    """
    if sample_size <= 0:
        return 1.0
    proportion = min(max(proportion, 0.0), 1.0)
    return z_score * (proportion * (1.0 - proportion) / sample_size) ** 0.5
