"""Statistical injection campaigns.

A campaign runs many single-bit injections of a workload on a core
(optionally with a protection configuration) and aggregates outcomes into an
:class:`~repro.faultinjection.outcomes.OutcomeCounts` plus a per-flip-flop
:class:`~repro.faultinjection.vulnerability.VulnerabilityMap` contribution.

The paper's campaigns are 9-million-injection FPGA/supercomputer runs; here
the sample count is a parameter and the achieved margin of error is reported
so callers can trade precision for time.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.faultinjection.injector import (
    FlipFlopInjector,
    Injection,
    ProtectionProvider,
    uniform_injection_plan,
)
from repro.faultinjection.outcomes import (
    OutcomeCategory,
    OutcomeCounts,
    margin_of_error,
)
from repro.faultinjection.vulnerability import VulnerabilityMap
from repro.microarch.core import BaseCore
from repro.microarch.events import RunResult
from repro.isa.program import Program


@dataclass
class CampaignResult:
    """Aggregated results of one injection campaign."""

    core_name: str
    program_name: str
    golden: RunResult
    outcomes: OutcomeCounts
    per_site: dict[int, OutcomeCounts] = field(default_factory=dict)

    @property
    def injections(self) -> int:
        return self.outcomes.total

    @property
    def sdc_count(self) -> int:
        return self.outcomes.sdc_count

    @property
    def due_count(self) -> int:
        return self.outcomes.due_count

    @property
    def achieved_margin_of_error(self) -> float:
        """95%-confidence margin of error on the SDC rate estimate."""
        rate = (self.sdc_count / self.injections) if self.injections else 0.0
        return margin_of_error(self.injections, rate)

    def contribute_to(self, vulnerability: VulnerabilityMap) -> None:
        """Fold per-site outcome counts into a vulnerability map."""
        for flat_index, counts in self.per_site.items():
            vulnerability.record(self.program_name, flat_index,
                                 samples=counts.total, sdc=counts.sdc_count,
                                 due=counts.due_count)


class InjectionCampaign:
    """Runs a statistical flip-flop injection campaign for one workload."""

    def __init__(self, core: BaseCore, program: Program,
                 protection: ProtectionProvider | None = None, seed: int = 0):
        self.core = core
        self.program = program
        self.protection = protection
        self.seed = seed
        self._injector = FlipFlopInjector(core, protection=protection, seed=seed)

    def run(self, injections: int = 200,
            plan: list[Injection] | None = None) -> CampaignResult:
        """Run the campaign with ``injections`` uniformly-sampled injections.

        A pre-computed ``plan`` (e.g. from
        :func:`~repro.faultinjection.injector.exhaustive_site_plan`) overrides
        the uniform sampling.
        """
        golden = self._injector.golden_run(self.program)
        if plan is None:
            plan = uniform_injection_plan(self.core.flip_flop_count, golden.cycles,
                                          injections, seed=self.seed)
        outcomes = OutcomeCounts()
        per_site: dict[int, OutcomeCounts] = {}
        for injection in plan:
            _, outcome = self._injector.run_with_injection(self.program, injection,
                                                           golden)
            outcomes.record(outcome)
            per_site.setdefault(injection.flat_index, OutcomeCounts()).record(outcome)
        return CampaignResult(core_name=self.core.name,
                              program_name=self.program.name,
                              golden=golden, outcomes=outcomes, per_site=per_site)


def run_suite_campaign(core: BaseCore, workloads, injections_per_workload: int = 100,
                       protection: ProtectionProvider | None = None,
                       seed: int = 0) -> tuple[VulnerabilityMap, list[CampaignResult]]:
    """Run campaigns over a list of workloads and build a vulnerability map."""
    vulnerability = VulnerabilityMap(core.name, core.flip_flop_count)
    results = []
    for offset, workload in enumerate(workloads):
        campaign = InjectionCampaign(core, workload.program(),
                                     protection=protection, seed=seed + offset)
        result = campaign.run(injections=injections_per_workload)
        result.contribute_to(vulnerability)
        results.append(result)
    return vulnerability, results
