"""Statistical injection campaigns (engine-backed).

A campaign runs many single-bit injections of a workload on a core
(optionally with a protection configuration) and aggregates outcomes into an
:class:`~repro.faultinjection.outcomes.OutcomeCounts` plus a per-flip-flop
:class:`~repro.faultinjection.vulnerability.VulnerabilityMap` contribution.

The paper's campaigns are 9-million-injection FPGA/supercomputer runs; here
the sample count is a parameter and the achieved margin of error is reported
so callers can trade precision for time.

Campaign execution lives in :mod:`repro.engine`: golden runs are recorded
with periodic core snapshots (and cached across protection configurations),
every injected run fast-forwards from the nearest snapshot, and plans can be
sharded over worker processes.  :class:`InjectionCampaign` is kept as a thin
shim with the historical constructor and :meth:`~InjectionCampaign.run`
signature; with the same seed it reports bit-identical statistics.  The
engine is imported lazily so that :mod:`repro.engine` and
:mod:`repro.faultinjection` can be imported in either order.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.faultinjection.injector import Injection, ProtectionProvider
from repro.faultinjection.outcomes import OutcomeCounts, margin_of_error
from repro.isa.program import Program
from repro.microarch.core import BaseCore
from repro.microarch.events import RunResult

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine.checkpoint import GoldenRunCache
    from repro.engine.engine import EngineConfig
    from repro.faultinjection.vulnerability import VulnerabilityMap


@dataclass
class CampaignResult:
    """Aggregated results of one injection campaign.

    Beyond the outcome tallies, the result carries the engine's replay
    telemetry so the cost of the campaign -- and the cycles the
    convergence-gated early termination saved -- is measurable per campaign:

    Attributes:
        replayed_cycles: cycles actually simulated across all injected runs
            (after checkpoint fast-forward and convergence early-outs).
        converged_count: injected runs terminated early because their state
            fingerprint re-converged with the golden run's grid.
        saved_cycles: simulated cycles those early-outs skipped.
        evicted_count: runs that diverged out of a batched lockstep
            wavefront and finished on the scalar path (0 when batching is
            off).
        lockstep_cycles: per-run cycles advanced inside batched wavefronts
            (a subset of ``replayed_cycles``; 0 when batching is off).
        metrics: the campaign's merged metric registry as a
            :meth:`~repro.obs.MetricsRegistry.to_dict` document (phase cycle
            counters always; wall-clock timers/histograms under
            ``EngineConfig(metrics=True)``).  ``None`` for results built
            outside the engine.  The per-phase cycle counters partition
            ``replayed_cycles`` exactly (see :mod:`repro.obs.phases`).
        trace_events: Chrome trace-event list recorded under
            ``EngineConfig(trace=...)``; ``None`` when tracing was off.
    """

    core_name: str
    program_name: str
    golden: RunResult
    outcomes: OutcomeCounts
    per_site: dict[int, OutcomeCounts] = field(default_factory=dict)
    replayed_cycles: int = 0
    converged_count: int = 0
    saved_cycles: int = 0
    evicted_count: int = 0
    lockstep_cycles: int = 0
    metrics: dict | None = None
    trace_events: list | None = None

    @property
    def injections(self) -> int:
        return self.outcomes.total

    @property
    def converged_fraction(self) -> float:
        """Fraction of injected runs that early-terminated on convergence."""
        return self.converged_count / self.injections if self.injections else 0.0

    @property
    def saved_cycle_fraction(self) -> float:
        """Fraction of would-be replay cycles skipped by convergence gating.

        The denominator is what full replay would have simulated
        (``replayed + saved``), so 0.6 means convergence gating removed 60%
        of the injected-run simulation work.
        """
        would_be = self.replayed_cycles + self.saved_cycles
        return self.saved_cycles / would_be if would_be else 0.0

    @property
    def evicted_fraction(self) -> float:
        """Fraction of injected runs evicted from a wavefront to scalar replay."""
        return self.evicted_count / self.injections if self.injections else 0.0

    @property
    def lockstep_cycle_fraction(self) -> float:
        """Fraction of simulated replay cycles spent inside lockstep wavefronts."""
        return (self.lockstep_cycles / self.replayed_cycles
                if self.replayed_cycles else 0.0)

    @property
    def sdc_count(self) -> int:
        return self.outcomes.sdc_count

    @property
    def due_count(self) -> int:
        return self.outcomes.due_count

    @property
    def achieved_margin_of_error(self) -> float:
        """95%-confidence margin of error on the SDC rate estimate."""
        rate = (self.sdc_count / self.injections) if self.injections else 0.0
        return margin_of_error(self.injections, rate)

    def contribute_to(self, vulnerability: VulnerabilityMap) -> None:
        """Fold per-site outcome counts into a vulnerability map."""
        for flat_index, counts in self.per_site.items():
            vulnerability.record(self.program_name, flat_index,
                                 samples=counts.total, sdc=counts.sdc_count,
                                 due=counts.due_count)


class InjectionCampaign:
    """Runs a statistical flip-flop injection campaign for one workload.

    Thin shim over :class:`repro.engine.InjectionEngine`; pass ``config``
    (an :class:`~repro.engine.EngineConfig`) to enable parallel workers or
    tune checkpointing.
    """

    def __init__(self, core: BaseCore, program: Program,
                 protection: ProtectionProvider | None = None, seed: int = 0,
                 config: EngineConfig | None = None):
        from repro.engine.engine import InjectionEngine

        self.core = core
        self.program = program
        self.protection = protection
        self.seed = seed
        self._engine = InjectionEngine(core, program, protection=protection,
                                       seed=seed, config=config)

    def run(self, injections: int = 200,
            plan: list[Injection] | None = None) -> CampaignResult:
        """Run the campaign with ``injections`` uniformly-sampled injections.

        A pre-computed ``plan`` (e.g. from
        :func:`~repro.faultinjection.injector.exhaustive_site_plan`) overrides
        the uniform sampling.

        Note: ``run()`` is idempotent -- the suppression lottery is re-drawn
        from the campaign seed on every call, so repeated runs return
        identical statistics.  (The legacy injector kept one RNG across
        calls, so a *second* ``run()`` on the same object drew fresh
        samples; use distinct seeds to collect independent repetitions.)
        """
        return self._engine.run(injections=injections, plan=plan)


def run_suite_campaign(core: BaseCore, workloads,
                       injections_per_workload: int = 100,
                       protection: ProtectionProvider | None = None,
                       seed: int = 0,
                       config: EngineConfig | None = None,
                       golden_cache: GoldenRunCache | None = None,
                       max_cache_entries: int | None = None,
                       ) -> tuple[VulnerabilityMap, list[CampaignResult]]:
    """Run campaigns over a list of workloads and build a vulnerability map."""
    from repro.engine.engine import run_suite_campaign as engine_suite

    return engine_suite(core, workloads,
                        injections_per_workload=injections_per_workload,
                        protection=protection, seed=seed, config=config,
                        golden_cache=golden_cache,
                        max_cache_entries=max_cache_entries)
