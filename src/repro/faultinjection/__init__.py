"""Reliability analysis: flip-flop-level soft-error injection.

Implements the paper's reliability-analysis component: single-bit flip-flop
injection with outcome classification (Vanished / OMM / UT / Hang / ED),
statistical campaigns with margin-of-error reporting, per-flip-flop
vulnerability maps, a calibrated vulnerability model for table-scale
experiments, SEMU modelling and the naive higher-level injection models of
Tables 11/14.
"""

from repro.faultinjection.calibrated import (
    CalibratedVulnerabilityModel,
    CalibrationProfile,
    INO_PROFILE,
    OOO_PROFILE,
    profile_for_core,
)
from repro.faultinjection.campaign import (
    CampaignResult,
    InjectionCampaign,
    run_suite_campaign,
)
from repro.faultinjection.injector import (
    FlipFlopInjector,
    Injection,
    SiteProtection,
    exhaustive_site_plan,
    uniform_injection_plan,
)
from repro.faultinjection.levels import (
    HighLevelCampaignResult,
    HighLevelInjection,
    HighLevelInjector,
    InjectionLevel,
)
from repro.faultinjection.outcomes import (
    OutcomeCategory,
    OutcomeCounts,
    classify_outcome,
    margin_of_error,
)
from repro.faultinjection.semu import SemuEvent, SemuModel
from repro.faultinjection.vulnerability import SiteVulnerability, VulnerabilityMap

__all__ = [
    "CalibratedVulnerabilityModel",
    "CalibrationProfile",
    "INO_PROFILE",
    "OOO_PROFILE",
    "profile_for_core",
    "CampaignResult",
    "InjectionCampaign",
    "run_suite_campaign",
    "FlipFlopInjector",
    "Injection",
    "SiteProtection",
    "exhaustive_site_plan",
    "uniform_injection_plan",
    "HighLevelCampaignResult",
    "HighLevelInjection",
    "HighLevelInjector",
    "InjectionLevel",
    "OutcomeCategory",
    "OutcomeCounts",
    "classify_outcome",
    "margin_of_error",
    "SemuEvent",
    "SemuModel",
    "SiteVulnerability",
    "VulnerabilityMap",
]
