"""Standard-cell and hardened flip-flop characteristics (28 nm calibrated).

Reproduces Table 4 (resilient flip-flops) and Table 15 (hardware error
recovery costs) as data, plus the logic-gate primitives the parity cost model
is built from.  All values are *relative* to the baseline flip-flop of the
same library, exactly as the paper reports them.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum, unique


@unique
class CellType(Enum):
    """Sequential cell variants available to the circuit-level techniques."""

    BASELINE = "baseline"
    LHL = "light-hardened-leap"
    LEAP_DICE = "leap-dice"
    LEAP_CTRL_ECONOMY = "leap-ctrl-economy"
    LEAP_CTRL_RESILIENT = "leap-ctrl-resilient"
    EDS = "eds"


@dataclass(frozen=True)
class FlipFlopCell:
    """Relative characteristics of one sequential cell (Table 4).

    ``soft_error_rate`` is relative to the baseline cell (1.0); the
    suppression probability used by the fault injector is ``1 - SER``.
    ``detects`` marks error-detecting sequentials (EDS) rather than hardened
    ones.
    """

    cell_type: CellType
    soft_error_rate: float
    area: float
    power: float
    delay: float
    energy: float
    detects: bool = False

    @property
    def suppression(self) -> float:
        """Probability that an upset is masked by the cell."""
        if self.detects:
            return 0.0
        return max(0.0, 1.0 - self.soft_error_rate)


CELL_LIBRARY: dict[CellType, FlipFlopCell] = {
    CellType.BASELINE: FlipFlopCell(CellType.BASELINE, 1.0, 1.0, 1.0, 1.0, 1.0),
    CellType.LHL: FlipFlopCell(CellType.LHL, 2.5e-1, 1.2, 1.1, 1.2, 1.3),
    CellType.LEAP_DICE: FlipFlopCell(CellType.LEAP_DICE, 2.0e-4, 2.0, 1.8, 1.0, 1.8),
    CellType.LEAP_CTRL_ECONOMY: FlipFlopCell(CellType.LEAP_CTRL_ECONOMY, 1.0, 3.1, 1.2, 1.0, 1.2),
    CellType.LEAP_CTRL_RESILIENT: FlipFlopCell(CellType.LEAP_CTRL_RESILIENT, 2.0e-4, 3.1, 2.2, 1.0, 2.2),
    CellType.EDS: FlipFlopCell(CellType.EDS, 0.0, 1.5, 1.4, 1.0, 1.4, detects=True),
}


@dataclass(frozen=True)
class LogicPrimitives:
    """Relative cost of combinational primitives, in baseline-flip-flop units."""

    xor_gate_area: float = 0.25
    xor_gate_power: float = 0.15
    pipeline_ff_area: float = 1.0
    pipeline_ff_power: float = 1.0
    delay_buffer_area: float = 0.20
    delay_buffer_power: float = 0.12
    wire_overhead_local: float = 1.00
    wire_overhead_global: float = 1.35
    """Wiring multiplier when grouped flip-flops are not co-located."""


PRIMITIVES = LogicPrimitives()


@unique
class RecoveryKind(Enum):
    """Hardware error-recovery mechanisms (Sec. 2.4)."""

    NONE = "none"
    FLUSH = "flush"
    ROB = "reorder-buffer"
    IR = "instruction-replay"
    EIR = "extended-instruction-replay"


@dataclass(frozen=True)
class RecoveryCost:
    """Costs of one recovery mechanism on one core (Table 15)."""

    kind: RecoveryKind
    area_pct: float
    power_pct: float
    energy_pct: float
    latency_cycles: int
    recovers_all_stages: bool
    unrecoverable_units: tuple[str, ...] = ()


RECOVERY_COSTS: dict[str, dict[RecoveryKind, RecoveryCost]] = {
    "InO": {
        RecoveryKind.NONE: RecoveryCost(RecoveryKind.NONE, 0.0, 0.0, 0.0, 0, False,
                                        unrecoverable_units=("fetch", "decode", "regaccess",
                                                             "execute", "memory", "exception",
                                                             "writeback", "icache", "dcache",
                                                             "peripherals")),
        RecoveryKind.IR: RecoveryCost(RecoveryKind.IR, 16.0, 21.0, 21.0, 47, True),
        RecoveryKind.EIR: RecoveryCost(RecoveryKind.EIR, 34.0, 32.0, 32.0, 47, True),
        RecoveryKind.FLUSH: RecoveryCost(RecoveryKind.FLUSH, 0.6, 0.9, 1.8, 7, False,
                                         unrecoverable_units=("memory", "exception",
                                                              "writeback")),
    },
    "OoO": {
        RecoveryKind.NONE: RecoveryCost(RecoveryKind.NONE, 0.0, 0.0, 0.0, 0, False,
                                        unrecoverable_units=("fetch", "rename", "rob", "issue",
                                                             "lsu", "execute", "dcache",
                                                             "branchpred", "debug",
                                                             "peripherals")),
        RecoveryKind.IR: RecoveryCost(RecoveryKind.IR, 0.1, 0.1, 0.1, 104, True),
        RecoveryKind.EIR: RecoveryCost(RecoveryKind.EIR, 0.2, 0.1, 0.1, 104, True),
        RecoveryKind.ROB: RecoveryCost(RecoveryKind.ROB, 0.01, 0.01, 0.01, 64, False,
                                       unrecoverable_units=("lsu",)),
    },
}


def recovery_cost(core_name: str, kind: RecoveryKind) -> RecoveryCost:
    """Recovery costs for a core ("InO"/"OoO" resolved from the core name).

    Raises:
        KeyError: when the recovery mechanism is not available on the core
            (e.g. RoB recovery on the in-order core).
    """
    family = "OoO" if ("ooo" in core_name.lower() or "out" in core_name.lower()) else "InO"
    return RECOVERY_COSTS[family][kind]


def available_recoveries(core_name: str) -> list[RecoveryKind]:
    """Recovery mechanisms implementable on the given core."""
    family = "OoO" if ("ooo" in core_name.lower() or "out" in core_name.lower()) else "InO"
    return list(RECOVERY_COSTS[family])
