"""Timing-slack model.

Logic parity adds an XOR predictor tree in front of each protected flip-flop;
whether that tree fits in the existing clock period depends on the timing
slack of the flip-flop's path.  The paper's heuristics (Fig. 3, Heuristic 1)
therefore ask, per flip-flop, whether there is "enough timing slack for a
32-bit predictor tree"; when there is not, the parity tree must be pipelined
(extra flip-flops) to keep the clock period unchanged.

Path slack is a place-and-route output; here it is modelled as a per-flip-
flop number of available XOR levels, drawn deterministically per structure
from a unit-dependent distribution (datapath-heavy execute/memory stages have
the least slack, front-end and bookkeeping structures the most).
"""

from __future__ import annotations

import math
import random

from repro.microarch.flipflop import FlipFlopRegistry

# Mean available XOR levels per functional-unit family.
_UNIT_MEAN_LEVELS = {
    "execute": 3.6,
    "memory": 4.0,
    "lsu": 4.0,
    "regaccess": 4.4,
    "issue": 4.2,
    "rob": 4.6,
    "rename": 4.6,
    "exception": 4.8,
    "writeback": 5.0,
    "decode": 5.2,
    "fetch": 5.4,
    "branchpred": 6.0,
    "icache": 5.6,
    "dcache": 5.6,
    "debug": 6.0,
    "peripherals": 6.0,
}
_DEFAULT_MEAN_LEVELS = 4.8


def levels_for_group_size(group_size: int) -> int:
    """XOR-tree depth required to predict parity over ``group_size`` bits."""
    return max(1, math.ceil(math.log2(max(2, group_size))))


class TimingModel:
    """Per-flip-flop timing slack expressed in available XOR-tree levels."""

    def __init__(self, registry: FlipFlopRegistry, seed: int = 2016):
        self.registry = registry
        self._levels: dict[int, int] = {}
        rng = random.Random(seed)
        for structure in registry.structures:
            mean = _UNIT_MEAN_LEVELS.get(structure.unit, _DEFAULT_MEAN_LEVELS)
            for flat_index in structure.bit_indices():
                level = round(rng.gauss(mean, 1.0))
                self._levels[flat_index] = max(1, min(8, level))

    def slack_levels(self, flat_index: int) -> int:
        """Available XOR levels at this flip-flop without touching the clock."""
        return self._levels[flat_index]

    def supports_unpipelined(self, flat_index: int, group_size: int = 32) -> bool:
        """True when a ``group_size``-bit predictor tree fits in the slack."""
        return self.slack_levels(flat_index) >= levels_for_group_size(group_size)

    def group_supports_unpipelined(self, group: list[int], group_size: int | None = None) -> bool:
        """True when every member of the group has enough slack."""
        size = group_size if group_size is not None else len(group)
        return all(self.supports_unpipelined(member, size) for member in group)

    def fraction_with_slack(self, group_size: int = 32) -> float:
        """Fraction of flip-flops that can take an unpipelined tree."""
        total = self.registry.total_flip_flops
        if total == 0:
            return 0.0
        good = sum(1 for i in range(total) if self.supports_unpipelined(i, group_size))
        return good / total

    def ranked_by_slack(self) -> list[int]:
        """Flip-flops sorted by decreasing slack (timing parity heuristic)."""
        indices = list(range(self.registry.total_flip_flops))
        indices.sort(key=lambda i: (-self._levels[i], i))
        return indices
