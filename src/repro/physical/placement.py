"""Synthetic layout / placement model.

The paper uses full place-and-route in a 28 nm flow; the exploration engine,
however, only consumes three layout-derived quantities:

* nearest-neighbour spacing between flip-flops (Table 5), which determines
  SEMU susceptibility;
* spacing between flip-flops of the same parity group after applying the
  minimum-spacing layout constraint (Table 6);
* locality (which functional unit a flip-flop sits in), which drives the
  wiring cost of parity grouping.

This module synthesises a deterministic placement with those properties:
flip-flops are packed into per-unit regions at a configurable density
(calibrated so the fraction of adjacent flip-flops matches the paper's
baseline distributions), and a constraint solver re-spaces parity groups so
no two members are within the SEMU radius.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass

from repro.microarch.flipflop import FlipFlopRegistry

# Fraction of flip-flops whose nearest neighbour is less than one flip-flop
# length away in the unconstrained baseline placement (Table 5).
DEFAULT_ADJACENT_FRACTION = {"InO": 0.652, "OoO": 0.422}


@dataclass(frozen=True)
class SpacingDistribution:
    """Histogram of nearest-neighbour distances in flip-flop lengths."""

    bins: tuple[float, ...]          # upper edges: (1, 2, 3, 4, inf)
    fractions: tuple[float, ...]
    average: float

    def as_rows(self) -> list[tuple[str, float]]:
        labels = ["< 1 flip-flop length", "1 - 2 lengths", "2 - 3 lengths",
                  "3 - 4 lengths", "> 4 lengths"]
        return list(zip(labels, self.fractions))


class Placement:
    """Deterministic synthetic placement of every flip-flop of a core."""

    def __init__(self, registry: FlipFlopRegistry, seed: int = 2016,
                 adjacent_fraction: float | None = None):
        self.registry = registry
        family = "OoO" if registry.total_flip_flops > 4000 else "InO"
        self._target_adjacent = (adjacent_fraction if adjacent_fraction is not None
                                 else DEFAULT_ADJACENT_FRACTION[family])
        self._rng = random.Random(seed)
        self._positions: dict[int, tuple[float, float]] = {}
        self._build()

    # ------------------------------------------------------------------ construction
    def _build(self) -> None:
        """Place units on a block grid and flip-flops on a jittered sub-grid.

        The sub-grid pitch is chosen so that roughly ``target_adjacent`` of
        flip-flops end up with a nearest neighbour closer than one flip-flop
        length, as observed in the paper's baseline layouts.
        """
        units = self.registry.units()
        blocks_per_row = max(1, math.ceil(math.sqrt(len(units))))
        # Pitch below 1.0 packs flip-flops closer than one length; mix two
        # pitches to hit the target adjacent fraction.
        tight_pitch, loose_pitch = 0.82, 1.55
        flat = 0
        for unit_index, unit in enumerate(units):
            block_x = (unit_index % blocks_per_row) * 120.0
            block_y = (unit_index // blocks_per_row) * 120.0
            sites = [index for structure in self.registry.structures_in_unit(unit)
                     for index in structure.bit_indices()]
            columns = max(1, math.ceil(math.sqrt(len(sites))))
            for local_index, flat_index in enumerate(sites):
                use_tight = self._rng.random() < self._target_adjacent + 0.08
                pitch = tight_pitch if use_tight else loose_pitch
                column = local_index % columns
                row = local_index // columns
                jitter_x = self._rng.uniform(-0.08, 0.08)
                jitter_y = self._rng.uniform(-0.08, 0.08)
                self._positions[flat_index] = (block_x + column * pitch + jitter_x,
                                               block_y + row * pitch + jitter_y)
                flat += 1

    # ------------------------------------------------------------------ queries
    @property
    def flip_flop_count(self) -> int:
        return self.registry.total_flip_flops

    def position(self, flat_index: int) -> tuple[float, float]:
        return self._positions[flat_index]

    def distance(self, a: int, b: int) -> float:
        ax, ay = self._positions[a]
        bx, by = self._positions[b]
        return math.hypot(ax - bx, ay - by)

    def neighbours_within(self, flat_index: int, radius: float) -> list[int]:
        """All flip-flops within ``radius`` flip-flop lengths (excluding self)."""
        ax, ay = self._positions[flat_index]
        neighbours = []
        for other, (bx, by) in self._positions.items():
            if other == flat_index:
                continue
            if abs(ax - bx) <= radius and abs(ay - by) <= radius:
                if math.hypot(ax - bx, ay - by) <= radius:
                    neighbours.append(other)
        return neighbours

    def nearest_neighbour_distance(self, flat_index: int,
                                   candidates: list[int] | None = None) -> float:
        """Distance to the nearest other flip-flop (or nearest of ``candidates``)."""
        ax, ay = self._positions[flat_index]
        best = math.inf
        pool = candidates if candidates is not None else self._positions.keys()
        for other in pool:
            if other == flat_index:
                continue
            bx, by = self._positions[other]
            if abs(ax - bx) >= best or abs(ay - by) >= best:
                continue
            best = min(best, math.hypot(ax - bx, ay - by))
        return best

    # ------------------------------------------------------------------ distributions
    def _distribution(self, distances: list[float]) -> SpacingDistribution:
        edges = (1.0, 2.0, 3.0, 4.0, math.inf)
        counts = [0] * len(edges)
        for distance in distances:
            for bin_index, edge in enumerate(edges):
                if distance < edge:
                    counts[bin_index] += 1
                    break
        total = max(1, len(distances))
        finite = [d for d in distances if math.isfinite(d)]
        average = sum(finite) / len(finite) if finite else 0.0
        return SpacingDistribution(bins=edges,
                                   fractions=tuple(c / total for c in counts),
                                   average=average)

    def baseline_spacing_distribution(self, sample: int | None = 2000,
                                      seed: int = 1) -> SpacingDistribution:
        """Nearest-neighbour spacing of the unconstrained placement (Table 5)."""
        indices = list(self._positions)
        if sample is not None and len(indices) > sample:
            indices = random.Random(seed).sample(indices, sample)
        distances = [self.nearest_neighbour_distance(i) for i in indices]
        return self._distribution(distances)

    def parity_spacing_distribution(self, groups: list[list[int]]) -> SpacingDistribution:
        """Spacing between same-parity-group flip-flops after re-spacing (Table 6).

        Parity members are logically re-spaced by interleaving: member ``k``
        of a group is treated as being at least ``k`` slots away from member
        ``k-1`` in the constrained layout, reflecting the minimum-spacing
        design constraint applied during place-and-route.
        """
        distances = []
        for group in groups:
            if len(group) < 2:
                continue
            spaced = self.respace_group(group)
            for flat_index in group:
                others = [g for g in group if g != flat_index]
                best = min(math.hypot(spaced[flat_index][0] - spaced[o][0],
                                      spaced[flat_index][1] - spaced[o][1])
                           for o in others)
                distances.append(best)
        return self._distribution(distances)

    def respace_group(self, group: list[int]) -> dict[int, tuple[float, float]]:
        """Positions of a parity group after the minimum-spacing constraint.

        Members are spread over the bounding region of the group on a grid
        with pitch > 1 flip-flop length, which is how the layout constraint
        manifests physically (members of one group are interleaved with
        members of other groups).
        """
        xs = [self._positions[i][0] for i in group]
        ys = [self._positions[i][1] for i in group]
        base_x, base_y = min(xs), min(ys)
        columns = max(1, math.ceil(math.sqrt(len(group))))
        pitch = max(1.6, (max(xs) - base_x + 1.6) / columns)
        spaced = {}
        for order, flat_index in enumerate(sorted(group)):
            column = order % columns
            row = order // columns
            spaced[flat_index] = (base_x + column * pitch, base_y + row * pitch)
        return spaced
