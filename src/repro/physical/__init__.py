"""Physical-design evaluation substrate (28 nm-calibrated analytic models).

Provides the cell library (Table 4), recovery-hardware costs (Table 15), a
synthetic placement model for flip-flop spacing (Tables 5/6), a timing-slack
model for parity feasibility, and the design-level cost model used by the
cross-layer exploration engine.
"""

from repro.physical.cells import (
    CELL_LIBRARY,
    CellType,
    FlipFlopCell,
    LogicPrimitives,
    PRIMITIVES,
    RecoveryCost,
    RecoveryKind,
    available_recoveries,
    recovery_cost,
)
from repro.physical.costmodel import (
    CoreBudget,
    CostReport,
    DesignCostModel,
    INO_BUDGET,
    OOO_BUDGET,
    ParityGroupPlan,
    budget_for_core,
)
from repro.physical.placement import Placement, SpacingDistribution
from repro.physical.timing import TimingModel, levels_for_group_size

__all__ = [
    "CELL_LIBRARY",
    "CellType",
    "FlipFlopCell",
    "LogicPrimitives",
    "PRIMITIVES",
    "RecoveryCost",
    "RecoveryKind",
    "available_recoveries",
    "recovery_cost",
    "CoreBudget",
    "CostReport",
    "DesignCostModel",
    "INO_BUDGET",
    "OOO_BUDGET",
    "ParityGroupPlan",
    "budget_for_core",
    "Placement",
    "SpacingDistribution",
    "TimingModel",
    "levels_for_group_size",
]
