"""Design-level cost evaluation (synthesis / place-and-route substitute).

The paper evaluates every resilient design with a full Synopsys 28 nm flow.
The exploration engine only consumes the resulting relative overheads (area,
power, energy, execution time), so this module provides an analytic cost
model with two ingredients:

* a per-core *budget* describing what fraction of the baseline core's area
  and power the flip-flops account for -- calibrated so that hardening every
  flip-flop with LEAP-DICE reproduces the paper's measured worst-case
  overheads (Table 3: 9.3% area / 22.4% energy on the InO-core, 6.5% / 9.4%
  on the OoO-core);
* gate-level composition of the added logic (XOR predictor/checker trees,
  pipeline flip-flops, delay buffers, recovery hardware), scaled once per
  technique against the paper's all-flip-flop anchor points so that relative
  comparisons between configurations come out of the model rather than out
  of a lookup table.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.physical.cells import (
    CELL_LIBRARY,
    CellType,
    PRIMITIVES,
    RecoveryKind,
    recovery_cost,
)


@dataclass(frozen=True)
class CostReport:
    """Relative overheads of a resilient design over the baseline design."""

    area_pct: float = 0.0
    power_pct: float = 0.0
    energy_pct: float = 0.0
    exec_time_pct: float = 0.0
    clock_period_pct: float = 0.0

    def combined_with(self, other: "CostReport") -> "CostReport":
        """Combine two independent additions to the same design.

        Area and power overheads add; execution-time impacts compound; energy
        is recomputed as (1 + power) * (1 + time) - 1.
        """
        area = self.area_pct + other.area_pct
        power = self.power_pct + other.power_pct
        exec_time = ((1 + self.exec_time_pct / 100) * (1 + other.exec_time_pct / 100)
                     - 1) * 100
        energy = ((1 + power / 100) * (1 + exec_time / 100) - 1) * 100
        clock = max(self.clock_period_pct, other.clock_period_pct)
        return CostReport(area_pct=area, power_pct=power, energy_pct=energy,
                          exec_time_pct=exec_time, clock_period_pct=clock)

    @staticmethod
    def from_power_and_time(area_pct: float, power_pct: float,
                            exec_time_pct: float) -> "CostReport":
        energy = ((1 + power_pct / 100) * (1 + exec_time_pct / 100) - 1) * 100
        return CostReport(area_pct=area_pct, power_pct=power_pct, energy_pct=energy,
                          exec_time_pct=exec_time_pct)


@dataclass(frozen=True)
class CoreBudget:
    """Baseline-core calibration constants."""

    family: str
    flip_flop_area_fraction: float
    flip_flop_power_fraction: float
    # All-flip-flop anchor points from Table 3 (percent of the whole core).
    parity_all_area_pct: float
    parity_all_power_pct: float
    eds_all_area_pct: float
    eds_all_power_pct: float


INO_BUDGET = CoreBudget(family="InO", flip_flop_area_fraction=0.093,
                        flip_flop_power_fraction=0.280,
                        parity_all_area_pct=10.9, parity_all_power_pct=23.1,
                        eds_all_area_pct=10.7, eds_all_power_pct=22.9)
OOO_BUDGET = CoreBudget(family="OoO", flip_flop_area_fraction=0.065,
                        flip_flop_power_fraction=0.1175,
                        parity_all_area_pct=14.1, parity_all_power_pct=13.6,
                        eds_all_area_pct=12.2, eds_all_power_pct=11.5)


def budget_for_core(core_name: str) -> CoreBudget:
    if "ooo" in core_name.lower() or "out" in core_name.lower():
        return OOO_BUDGET
    return INO_BUDGET


@dataclass(frozen=True)
class ParityGroupPlan:
    """One parity group as seen by the cost model."""

    members: tuple[int, ...]
    pipelined: bool
    local: bool
    """True when all members sit in the same functional unit (short wires)."""


class DesignCostModel:
    """Computes relative overheads of protection configurations for one core."""

    def __init__(self, core_name: str, flip_flop_count: int):
        self.core_name = core_name
        self.flip_flop_count = flip_flop_count
        self.budget = budget_for_core(core_name)
        self._parity_area_scale, self._parity_power_scale = self._calibrate_parity_scales()
        self._eds_area_scale, self._eds_power_scale = self._calibrate_eds_scales()

    # ------------------------------------------------------------------ per-FF unit helpers
    @property
    def _ff_area_unit_pct(self) -> float:
        """Core-area percentage of one baseline flip-flop."""
        return 100.0 * self.budget.flip_flop_area_fraction / self.flip_flop_count

    @property
    def _ff_power_unit_pct(self) -> float:
        """Core-power percentage of one baseline flip-flop."""
        return 100.0 * self.budget.flip_flop_power_fraction / self.flip_flop_count

    # ------------------------------------------------------------------ hardened cells
    def hardened_cells_cost(self, cell_counts: dict[CellType, int]) -> CostReport:
        """Cost of swapping baseline flip-flops for hardened variants."""
        extra_area_units = 0.0
        extra_power_units = 0.0
        for cell_type, count in cell_counts.items():
            cell = CELL_LIBRARY[cell_type]
            extra_area_units += count * (cell.area - 1.0)
            extra_power_units += count * (cell.power - 1.0)
        area = extra_area_units * self._ff_area_unit_pct
        power = extra_power_units * self._ff_power_unit_pct
        return CostReport.from_power_and_time(area, power, 0.0)

    # ------------------------------------------------------------------ parity
    def _parity_group_units(self, size: int, pipelined: bool, local: bool) -> tuple[float, float]:
        """Raw (area, power) units of one parity group, in baseline-FF units."""
        xor_count = 2 * max(1, size - 1)        # predictor + checker trees
        area = xor_count * PRIMITIVES.xor_gate_area + 1.0   # +1 parity flip-flop
        power = xor_count * PRIMITIVES.xor_gate_power + 1.0
        if pipelined:
            pipeline_ffs = max(1, size // 8)
            area += pipeline_ffs * PRIMITIVES.pipeline_ff_area
            power += pipeline_ffs * PRIMITIVES.pipeline_ff_power
        wire = PRIMITIVES.wire_overhead_local if local else PRIMITIVES.wire_overhead_global
        return area * wire, power * wire

    def _calibrate_parity_scales(self) -> tuple[float, float]:
        """Scale raw parity units so the all-FF optimized plan hits Table 3.

        Area and power are calibrated independently against the paper's
        all-flip-flop anchor point; relative differences between parity plans
        (group sizes, pipelining, locality) still come out of the gate-level
        composition.  The anchor configuration is the Fig. 3 "optimized" mix:
        roughly half the flip-flops take 32-bit unpipelined groups and half
        take 16-bit pipelined groups, which is what the paper's all-flip-flop
        overhead numbers correspond to.  Pure unpipelined parity on
        high-slack flip-flops is therefore cheaper per flip-flop than the
        anchor, which is what makes the LEAP-DICE + parity combination beat
        LEAP-DICE alone (Table 19 vs Table 17).
        """
        unpipelined_share = 0.5
        unpip_groups = max(1, round(self.flip_flop_count * unpipelined_share / 32))
        pip_groups = max(1, round(self.flip_flop_count * (1 - unpipelined_share) / 16))
        unpip_area, unpip_power = self._parity_group_units(32, pipelined=False, local=True)
        pip_area, pip_power = self._parity_group_units(16, pipelined=True, local=True)
        raw_total_area_pct = (unpip_groups * unpip_area + pip_groups * pip_area) \
            * self._ff_area_unit_pct
        raw_total_power_pct = (unpip_groups * unpip_power + pip_groups * pip_power) \
            * self._ff_power_unit_pct
        area_scale = (self.budget.parity_all_area_pct / raw_total_area_pct
                      if raw_total_area_pct > 0 else 1.0)
        power_scale = (self.budget.parity_all_power_pct / raw_total_power_pct
                       if raw_total_power_pct > 0 else 1.0)
        return area_scale, power_scale

    def parity_cost(self, groups: list[ParityGroupPlan]) -> CostReport:
        """Cost of a set of parity groups (predictors, checkers, pipelining)."""
        area_units = 0.0
        power_units = 0.0
        for group in groups:
            area, power = self._parity_group_units(len(group.members), group.pipelined,
                                                   group.local)
            area_units += area
            power_units += power
        area = area_units * self._ff_area_unit_pct * self._parity_area_scale
        power = power_units * self._ff_power_unit_pct * self._parity_power_scale
        return CostReport.from_power_and_time(area, power, 0.0)

    # ------------------------------------------------------------------ EDS
    def _calibrate_eds_scales(self) -> tuple[float, float]:
        cell = CELL_LIBRARY[CellType.EDS]
        raw_area = ((cell.area - 1.0) + PRIMITIVES.delay_buffer_area) * self.flip_flop_count
        raw_power = ((cell.power - 1.0) + PRIMITIVES.delay_buffer_power) * self.flip_flop_count
        raw_total_area_pct = raw_area * self._ff_area_unit_pct
        raw_total_power_pct = raw_power * self._ff_power_unit_pct
        area_scale = (self.budget.eds_all_area_pct / raw_total_area_pct
                      if raw_total_area_pct > 0 else 1.0)
        power_scale = (self.budget.eds_all_power_pct / raw_total_power_pct
                       if raw_total_power_pct > 0 else 1.0)
        return area_scale, power_scale

    def eds_cost(self, protected_count: int) -> CostReport:
        """Cost of EDS cells, delay buffers and error-signal aggregation."""
        cell = CELL_LIBRARY[CellType.EDS]
        area_units = protected_count * ((cell.area - 1.0) + PRIMITIVES.delay_buffer_area)
        power_units = protected_count * ((cell.power - 1.0) + PRIMITIVES.delay_buffer_power)
        area = area_units * self._ff_area_unit_pct * self._eds_area_scale
        power = power_units * self._ff_power_unit_pct * self._eds_power_scale
        return CostReport.from_power_and_time(area, power, 0.0)

    # ------------------------------------------------------------------ recovery & fixed adders
    def recovery_report(self, kind: RecoveryKind) -> CostReport:
        """Recovery-hardware cost (Table 15)."""
        cost = recovery_cost(self.core_name, kind)
        return CostReport(area_pct=cost.area_pct, power_pct=cost.power_pct,
                          energy_pct=cost.energy_pct, exec_time_pct=0.0)

    def fixed_overhead(self, area_pct: float, power_pct: float,
                       exec_time_pct: float) -> CostReport:
        """Fixed overheads of architecture/software/algorithm techniques."""
        return CostReport.from_power_and_time(area_pct, power_pct, exec_time_pct)
