"""Assembled program images.

A :class:`Program` is what a core executes: a list of decoded instructions
(the text segment), an initial data segment and the symbol table produced by
the assembler.  Programs are value objects -- running one never mutates it --
so a single assembled benchmark can be reused across millions of injection
runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.isa.instructions import Instruction

WORD_BYTES = 4

# The memory map is kept below 2**28 so that ``li``/``la`` pseudo-instruction
# expansions (LUI of the upper 14 bits + ORI of the lower 14 bits) always fit
# the 15-bit signed immediate field of the binary encoding.
DEFAULT_DATA_BASE = 0x0010_0000
DEFAULT_STACK_TOP = 0x0020_0000
DEFAULT_OUTPUT_BASE = 0x0030_0000


@dataclass
class DataSegment:
    """Initial memory contents of a program.

    Attributes:
        base: byte address the segment is loaded at.
        words: initial 32-bit word values, laid out contiguously from ``base``.
    """

    base: int = DEFAULT_DATA_BASE
    words: list[int] = field(default_factory=list)

    def word_address(self, index: int) -> int:
        """Byte address of the ``index``-th word in the segment."""
        return self.base + WORD_BYTES * index

    def as_memory_image(self) -> dict[int, int]:
        """Return a ``{byte_address: word_value}`` map for loading memory."""
        return {self.word_address(i): value & 0xFFFFFFFF
                for i, value in enumerate(self.words)}


@dataclass
class Program:
    """An assembled program ready for execution on a simulated core.

    Attributes:
        name: human-readable benchmark name.
        instructions: the text segment, indexed by word (PC = index * 4).
        data: initial data segment.
        symbols: label -> byte-address map produced by the assembler.
        entry_point: byte address of the first instruction to execute.
        expected_output: optional golden output stream; populated by workload
            definitions that know their correct answer a priori.
    """

    name: str
    instructions: list[Instruction]
    data: DataSegment = field(default_factory=DataSegment)
    symbols: dict[str, int] = field(default_factory=dict)
    entry_point: int = 0
    expected_output: list[int] | None = None

    def __len__(self) -> int:
        return len(self.instructions)

    @property
    def text_size_bytes(self) -> int:
        """Size of the text segment in bytes."""
        return len(self.instructions) * WORD_BYTES

    def instruction_at(self, pc: int) -> Instruction | None:
        """Return the instruction at byte address ``pc``.

        Returns ``None`` when ``pc`` falls outside the text segment or is not
        word aligned, which the cores treat as an instruction-fetch fault.
        """
        if pc % WORD_BYTES != 0 or pc < 0:
            return None
        index = pc // WORD_BYTES
        if index >= len(self.instructions):
            return None
        return self.instructions[index]

    def address_of(self, label: str) -> int:
        """Return the byte address of a label.

        Raises:
            KeyError: if the label is not defined.
        """
        return self.symbols[label]
