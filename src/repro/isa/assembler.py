"""A two-pass assembler for the reproduction ISA.

The assembler turns readable assembly text into a :class:`~repro.isa.program.Program`.
It supports:

* labels (``loop:``), usable as branch/jump targets and as data addresses,
* the directives ``.data``, ``.text``, ``.word``, ``.space`` and ``.align``,
* pseudo-instructions ``li``, ``la``, ``mv``, ``j``, ``ret``, ``call``,
  ``bgt``, ``ble``, ``not``, ``neg`` and ``inc``/``dec``,
* ``#`` and ``;`` line comments.

Branch immediates are encoded as instruction-count offsets relative to the
*next* instruction, matching how the cores' execute stage redirects fetch.
Jump (``jal``) immediates are absolute instruction indices.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.isa.instructions import Instruction, MNEMONIC_TO_OPCODE, Opcode, OPCODE_INFO, InstructionFormat
from repro.isa.program import DataSegment, Program, DEFAULT_DATA_BASE, WORD_BYTES
from repro.isa.registers import register_index


class AssemblerError(ValueError):
    """Raised for malformed assembly input."""

    def __init__(self, message: str, line_number: int | None = None):
        prefix = f"line {line_number}: " if line_number is not None else ""
        super().__init__(prefix + message)
        self.line_number = line_number


_MEM_OPERAND = re.compile(r"^(?P<offset>-?\w+)\((?P<base>\w+)\)$")


@dataclass
class _SourceLine:
    number: int
    label: str | None
    mnemonic: str | None
    operands: list[str]
    directive: str | None


class Assembler:
    """Two-pass assembler producing :class:`Program` objects."""

    def __init__(self, data_base: int = DEFAULT_DATA_BASE):
        self._data_base = data_base

    def assemble(self, source: str, name: str = "program") -> Program:
        """Assemble ``source`` text into a program named ``name``."""
        lines = self._tokenize(source)
        symbols, data_words, instruction_lines = self._first_pass(lines)
        instructions = self._second_pass(instruction_lines, symbols)
        data = DataSegment(base=self._data_base, words=data_words)
        return Program(name=name, instructions=instructions, data=data,
                       symbols=symbols)

    # ------------------------------------------------------------------ pass 0
    def _tokenize(self, source: str) -> list[_SourceLine]:
        lines: list[_SourceLine] = []
        for number, raw in enumerate(source.splitlines(), start=1):
            text = raw.split("#", 1)[0].split(";", 1)[0].strip()
            if not text:
                continue
            label = None
            if ":" in text:
                label_part, text = text.split(":", 1)
                label = label_part.strip()
                if not label or not re.fullmatch(r"[A-Za-z_.][\w.]*", label):
                    raise AssemblerError(f"invalid label {label_part!r}", number)
                text = text.strip()
            directive = None
            mnemonic = None
            operands: list[str] = []
            if text:
                head, _, rest = text.partition(" ")
                head = head.lower()
                operands = [op.strip() for op in rest.split(",") if op.strip()]
                if head.startswith("."):
                    directive = head
                else:
                    mnemonic = head
            lines.append(_SourceLine(number, label, mnemonic, operands, directive))
        return lines

    # ------------------------------------------------------------------ pass 1
    def _first_pass(self, lines: list[_SourceLine]):
        symbols: dict[str, int] = {}
        data_words: list[int] = []
        instruction_lines: list[_SourceLine] = []
        in_data = False
        for line in lines:
            if line.directive == ".data":
                in_data = True
                continue
            if line.directive == ".text":
                in_data = False
                continue
            if line.label is not None:
                if line.label in symbols:
                    raise AssemblerError(f"duplicate label {line.label!r}", line.number)
                if in_data:
                    symbols[line.label] = self._data_base + WORD_BYTES * len(data_words)
                else:
                    pending = sum(self._expansion_size(entry) for entry in instruction_lines)
                    symbols[line.label] = WORD_BYTES * pending
            if in_data:
                if line.directive == ".word":
                    for operand in line.operands:
                        data_words.append(self._parse_int(operand, line.number) & 0xFFFFFFFF)
                elif line.directive == ".space":
                    count = self._parse_int(line.operands[0], line.number)
                    data_words.extend([0] * count)
                elif line.directive == ".align" or line.directive is None:
                    continue
                elif line.mnemonic is not None:
                    raise AssemblerError("instructions are not allowed in .data", line.number)
                continue
            if line.directive in (".align", None) and line.mnemonic is None:
                continue
            if line.directive is not None:
                raise AssemblerError(f"unknown directive {line.directive!r}", line.number)
            instruction_lines.append(line)
        return symbols, data_words, instruction_lines

    def _expansion_size(self, line: _SourceLine) -> int:
        """Number of machine instructions a source line expands to."""
        if line.mnemonic in ("li", "la"):
            return 2
        return 1

    # ------------------------------------------------------------------ pass 2
    def _second_pass(self, lines: list[_SourceLine], symbols: dict[str, int]) -> list[Instruction]:
        instructions: list[Instruction] = []
        for line in lines:
            expanded = self._expand(line, symbols, current_index=len(instructions))
            instructions.extend(expanded)
        return instructions

    def _expand(self, line: _SourceLine, symbols: dict[str, int], current_index: int) -> list[Instruction]:
        mnemonic = line.mnemonic or ""
        ops = line.operands
        number = line.number
        try:
            if mnemonic in ("li", "la"):
                rd = register_index(ops[0])
                value = self._resolve_value(ops[1], symbols, number)
                upper = (value >> 14) & 0x3FFFF
                lower = value & 0x3FFF
                return [
                    Instruction(Opcode.LUI, rd=rd, imm=upper),
                    Instruction(Opcode.ORI, rd=rd, rs1=rd, imm=lower),
                ]
            if mnemonic == "mv":
                return [Instruction(Opcode.ADDI, rd=register_index(ops[0]),
                                    rs1=register_index(ops[1]), imm=0)]
            if mnemonic == "not":
                return [Instruction(Opcode.XORI, rd=register_index(ops[0]),
                                    rs1=register_index(ops[1]), imm=-1)]
            if mnemonic == "neg":
                return [Instruction(Opcode.SUB, rd=register_index(ops[0]),
                                    rs1=0, rs2=register_index(ops[1]))]
            if mnemonic == "inc":
                rd = register_index(ops[0])
                return [Instruction(Opcode.ADDI, rd=rd, rs1=rd, imm=1)]
            if mnemonic == "dec":
                rd = register_index(ops[0])
                return [Instruction(Opcode.ADDI, rd=rd, rs1=rd, imm=-1)]
            if mnemonic == "j":
                target = self._resolve_jump_target(ops[0], symbols, number)
                return [Instruction(Opcode.JAL, rd=0, imm=target, label=ops[0])]
            if mnemonic == "call":
                target = self._resolve_jump_target(ops[0], symbols, number)
                return [Instruction(Opcode.JAL, rd=1, imm=target, label=ops[0])]
            if mnemonic == "ret":
                return [Instruction(Opcode.JALR, rd=0, rs1=1, imm=0)]
            if mnemonic == "bgt":
                return [self._branch(Opcode.BLT, ops[1], ops[0], ops[2], symbols,
                                     current_index, number)]
            if mnemonic == "ble":
                return [self._branch(Opcode.BGE, ops[1], ops[0], ops[2], symbols,
                                     current_index, number)]
            if mnemonic == "nop":
                return [Instruction(Opcode.NOP)]
            if mnemonic == "halt":
                return [Instruction(Opcode.HALT)]

            opcode = MNEMONIC_TO_OPCODE.get(mnemonic)
            if opcode is None:
                raise AssemblerError(f"unknown mnemonic {mnemonic!r}", number)
            info = OPCODE_INFO[opcode]
            if info.fmt is InstructionFormat.R:
                return [Instruction(opcode, rd=register_index(ops[0]),
                                    rs1=register_index(ops[1]),
                                    rs2=register_index(ops[2]))]
            if info.is_load:
                offset, base = self._parse_memory_operand(ops[1], symbols, number)
                return [Instruction(opcode, rd=register_index(ops[0]), rs1=base, imm=offset)]
            if info.is_store:
                offset, base = self._parse_memory_operand(ops[1], symbols, number)
                return [Instruction(opcode, rs2=register_index(ops[0]), rs1=base, imm=offset)]
            if info.is_branch:
                return [self._branch(opcode, ops[0], ops[1], ops[2], symbols,
                                     current_index, number)]
            if opcode is Opcode.JAL:
                target = self._resolve_jump_target(ops[1], symbols, number)
                return [Instruction(opcode, rd=register_index(ops[0]), imm=target, label=ops[1])]
            if opcode is Opcode.JALR:
                rd = register_index(ops[0])
                rs1 = register_index(ops[1])
                imm = self._parse_int(ops[2], number) if len(ops) > 2 else 0
                return [Instruction(opcode, rd=rd, rs1=rs1, imm=imm)]
            if opcode is Opcode.OUT:
                return [Instruction(opcode, rs1=register_index(ops[0]))]
            if opcode in (Opcode.HALT, Opcode.NOP):
                return [Instruction(opcode)]
            if opcode is Opcode.LUI:
                return [Instruction(opcode, rd=register_index(ops[0]),
                                    imm=self._resolve_value(ops[1], symbols, number))]
            if opcode in (Opcode.ASSERT_EQ, Opcode.ASSERT_RANGE):
                return [Instruction(opcode, rs1=register_index(ops[0]),
                                    rs2=register_index(ops[1]))]
            # Remaining I-format ALU operations.
            return [Instruction(opcode, rd=register_index(ops[0]),
                                rs1=register_index(ops[1]),
                                imm=self._resolve_value(ops[2], symbols, number))]
        except AssemblerError:
            raise
        except (IndexError, ValueError) as exc:
            raise AssemblerError(f"bad operands for {mnemonic!r}: {exc}", number) from exc

    # ------------------------------------------------------------------ helpers
    def _branch(self, opcode: Opcode, rs1: str, rs2: str, target: str,
                symbols: dict[str, int], current_index: int, number: int) -> Instruction:
        if target in symbols:
            target_index = symbols[target] // WORD_BYTES
            offset = target_index - (current_index + 1)
        else:
            offset = self._parse_int(target, number)
        return Instruction(opcode, rs1=register_index(rs1), rs2=register_index(rs2),
                           imm=offset, label=target)

    def _resolve_jump_target(self, token: str, symbols: dict[str, int], number: int) -> int:
        if token in symbols:
            return symbols[token] // WORD_BYTES
        return self._parse_int(token, number)

    def _resolve_value(self, token: str, symbols: dict[str, int], number: int) -> int:
        if token in symbols:
            return symbols[token]
        return self._parse_int(token, number)

    def _parse_memory_operand(self, token: str, symbols: dict[str, int], number: int) -> tuple[int, int]:
        match = _MEM_OPERAND.match(token.replace(" ", ""))
        if not match:
            raise AssemblerError(f"bad memory operand {token!r}", number)
        offset_token = match.group("offset")
        offset = (symbols[offset_token] if offset_token in symbols
                  else self._parse_int(offset_token, number))
        return offset, register_index(match.group("base"))

    @staticmethod
    def _parse_int(token: str, number: int) -> int:
        try:
            return int(token, 0)
        except ValueError as exc:
            raise AssemblerError(f"expected integer, got {token!r}", number) from exc


def assemble(source: str, name: str = "program") -> Program:
    """Assemble ``source`` with default settings (convenience wrapper)."""
    return Assembler().assemble(source, name=name)
