"""Instruction-set architecture substrate for the CLEAR reproduction.

The paper's reliability analysis runs SPEC/PERFECT binaries on SPARC (Leon3)
and Alpha (IVM) RTL.  Our reproduction replaces those proprietary tool flows
with a small, self-contained 32-bit RISC ISA that both simulated cores
(:mod:`repro.microarch`) execute.  The package provides:

* :mod:`repro.isa.registers` -- architectural register file description.
* :mod:`repro.isa.instructions` -- opcodes, instruction metadata and the
  :class:`~repro.isa.instructions.Instruction` container.
* :mod:`repro.isa.encoding` -- 32-bit binary encoding/decoding, which is what
  gives flip-flop-level bit flips in instruction latches a concrete meaning.
* :mod:`repro.isa.assembler` -- a two-pass assembler with labels, data
  directives and pseudo-instructions, used by :mod:`repro.workloads`.
* :mod:`repro.isa.program` -- the assembled program image handed to a core.
"""

from repro.isa.instructions import (
    Instruction,
    InstructionFormat,
    Opcode,
    OPCODE_INFO,
    is_branch,
    is_load,
    is_store,
    is_arithmetic,
)
from repro.isa.registers import (
    NUM_REGISTERS,
    REGISTER_ALIASES,
    register_index,
    register_name,
)
from repro.isa.encoding import encode_instruction, decode_instruction, EncodingError
from repro.isa.assembler import Assembler, AssemblerError, assemble
from repro.isa.program import Program, DataSegment

__all__ = [
    "Instruction",
    "InstructionFormat",
    "Opcode",
    "OPCODE_INFO",
    "is_branch",
    "is_load",
    "is_store",
    "is_arithmetic",
    "NUM_REGISTERS",
    "REGISTER_ALIASES",
    "register_index",
    "register_name",
    "encode_instruction",
    "decode_instruction",
    "EncodingError",
    "Assembler",
    "AssemblerError",
    "assemble",
    "Program",
    "DataSegment",
]
