"""Architectural register file description.

The ISA exposes 32 general-purpose 32-bit registers.  Register 0 is hardwired
to zero (as in SPARC ``%g0`` and MIPS ``$zero``), which the cores enforce on
every write.  A conventional ABI naming scheme is provided so workload
assembly stays readable.
"""

from __future__ import annotations

NUM_REGISTERS = 32
"""Number of architectural general-purpose registers."""

REGISTER_BITS = 32
"""Width of each architectural register in bits."""

# ABI aliases (loosely modelled on RISC-V to keep workloads readable).
REGISTER_ALIASES = {
    "zero": 0,
    "ra": 1,    # return address
    "sp": 2,    # stack pointer
    "gp": 3,    # global pointer
    "tp": 4,    # thread pointer
    "t0": 5, "t1": 6, "t2": 7,
    "s0": 8, "fp": 8, "s1": 9,
    "a0": 10, "a1": 11, "a2": 12, "a3": 13,
    "a4": 14, "a5": 15, "a6": 16, "a7": 17,
    "s2": 18, "s3": 19, "s4": 20, "s5": 21,
    "s6": 22, "s7": 23, "s8": 24, "s9": 25,
    "s10": 26, "s11": 27,
    "t3": 28, "t4": 29, "t5": 30, "t6": 31,
}
"""Mapping from ABI register alias to architectural register index."""

_CANONICAL_NAMES = {index: alias for alias, index in REGISTER_ALIASES.items()}
# ``fp`` duplicates ``s0``; prefer the saved-register name when printing.
_CANONICAL_NAMES[8] = "s0"


def register_index(name: str) -> int:
    """Return the architectural index for a register name.

    Accepts raw names (``r7``, ``x7``), ABI aliases (``t2``) and plain
    integers rendered as strings (``"7"``).

    Raises:
        ValueError: if the name does not denote a valid register.
    """
    token = name.strip().lower()
    if token in REGISTER_ALIASES:
        return REGISTER_ALIASES[token]
    if token and token[0] in ("r", "x") and token[1:].isdigit():
        index = int(token[1:])
    elif token.isdigit():
        index = int(token)
    else:
        raise ValueError(f"unknown register name: {name!r}")
    if not 0 <= index < NUM_REGISTERS:
        raise ValueError(f"register index out of range: {name!r}")
    return index


def register_name(index: int) -> str:
    """Return the canonical ABI alias for an architectural register index."""
    if not 0 <= index < NUM_REGISTERS:
        raise ValueError(f"register index out of range: {index}")
    return _CANONICAL_NAMES.get(index, f"r{index}")
