"""Functional (architecture-level) reference simulator.

Executes a program at one-instruction-per-step without modelling any
micro-architecture.  It serves three purposes:

* a correctness oracle for the cycle-level cores (both must produce the same
  output stream);
* the source of architectural traces used by the alternative injection
  models of Tables 11/14 (register-write and program-variable injection);
* a fast execution-time-independent way to compute dynamic instruction
  counts for workloads.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.isa.instructions import Opcode, OPCODE_INFO
from repro.isa.program import DEFAULT_STACK_TOP, Program, WORD_BYTES
from repro.isa.registers import NUM_REGISTERS
from repro.microarch.events import TrapKind
from repro.microarch.execute import ExecuteTrap, execute_operation


@dataclass
class FunctionalResult:
    """Result of a functional simulation run."""

    output: list[int]
    instructions: int
    halted: bool
    trap: TrapKind | None = None


@dataclass
class TraceEntry:
    """One architectural event in a functional trace."""

    index: int
    pc: int
    opcode: Opcode
    rd: int | None = None
    value: int | None = None
    store_address: int | None = None


@dataclass
class FunctionalTrace:
    """Architectural trace of a full functional run."""

    result: FunctionalResult
    register_writes: list[TraceEntry] = field(default_factory=list)
    memory_writes: list[TraceEntry] = field(default_factory=list)


class FunctionalSimulator:
    """Straight-line interpreter for assembled programs."""

    def __init__(self, max_instructions: int = 2_000_000):
        self.max_instructions = max_instructions

    def run(self, program: Program, collect_trace: bool = False) -> FunctionalTrace:
        """Execute ``program`` to completion and optionally collect a trace."""
        registers = [0] * NUM_REGISTERS
        registers[2] = DEFAULT_STACK_TOP - WORD_BYTES
        memory = dict(program.data.as_memory_image())
        output: list[int] = []
        register_writes: list[TraceEntry] = []
        memory_writes: list[TraceEntry] = []
        pc = program.entry_point
        executed = 0
        halted = False
        trap: TrapKind | None = None

        while executed < self.max_instructions:
            instruction = program.instruction_at(pc)
            if instruction is None:
                trap = TrapKind.FETCH_FAULT
                break
            info = OPCODE_INFO[instruction.opcode]
            try:
                result = execute_operation(instruction.opcode,
                                           registers[instruction.rs1],
                                           registers[instruction.rs2],
                                           instruction.imm, pc)
            except ExecuteTrap as exc:
                trap = exc.kind
                break
            executed += 1
            next_pc = pc + WORD_BYTES
            value = result.value
            if info.is_load:
                value = memory.get(result.memory_address, 0)
            if info.is_store:
                memory[result.memory_address] = result.store_value & 0xFFFFFFFF
                if collect_trace:
                    memory_writes.append(TraceEntry(
                        index=executed, pc=pc, opcode=instruction.opcode,
                        value=result.store_value,
                        store_address=result.memory_address))
            if result.output_value is not None:
                output.append(result.output_value & 0xFFFFFFFF)
            if result.branch_taken:
                next_pc = result.branch_target
            if info.writes_rd and instruction.rd != 0:
                registers[instruction.rd] = value & 0xFFFFFFFF
                if collect_trace:
                    register_writes.append(TraceEntry(
                        index=executed, pc=pc, opcode=instruction.opcode,
                        rd=instruction.rd, value=value & 0xFFFFFFFF))
            if instruction.opcode is Opcode.HALT:
                halted = True
                break
            pc = next_pc

        functional = FunctionalResult(output=output, instructions=executed,
                                      halted=halted, trap=trap)
        return FunctionalTrace(result=functional, register_writes=register_writes,
                               memory_writes=memory_writes)

    def run_output(self, program: Program) -> list[int]:
        """Convenience: run and return only the output stream."""
        return self.run(program).result.output
