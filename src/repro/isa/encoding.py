"""Binary encoding of instructions.

Flip-flop-level fault injection flips single bits in pipeline latches.  For
latches that hold *instructions* (fetch/decode registers), the flipped bit
must map onto a concrete instruction word so that the corrupted value decodes
to a different -- possibly illegal -- instruction, exactly as it would in
RTL.  This module defines that 32-bit word layout:

========  =====================================
bits      field
========  =====================================
[31:25]   opcode (7 bits)
[24:20]   rd
[19:15]   rs1
[14:10]   rs2
[9:0]     unused for R-format
[14:0]    immediate (I/B-format, signed 15 bit)
========  =====================================

For I/B formats the ``rs2``/``rd`` field overlaps the immediate high bits are
avoided by giving the immediate its own low 15 bits, so every field remains
independently addressable by a bit flip.
"""

from __future__ import annotations

from repro.isa.instructions import Instruction, InstructionFormat, Opcode, OPCODE_INFO

INSTRUCTION_BITS = 32
IMMEDIATE_BITS = 15
_IMM_MASK = (1 << IMMEDIATE_BITS) - 1
_IMM_SIGN = 1 << (IMMEDIATE_BITS - 1)
_IMM_MIN = -(1 << (IMMEDIATE_BITS - 1))
_IMM_MAX = (1 << (IMMEDIATE_BITS - 1)) - 1


class EncodingError(ValueError):
    """Raised when an instruction cannot be encoded or decoded."""


def _check_register(value: int, field_name: str) -> None:
    if not 0 <= value < 32:
        raise EncodingError(f"{field_name} out of range: {value}")


def encode_instruction(instruction: Instruction) -> int:
    """Encode an :class:`Instruction` into its 32-bit binary word."""
    info = OPCODE_INFO[instruction.opcode]
    _check_register(instruction.rd, "rd")
    _check_register(instruction.rs1, "rs1")
    _check_register(instruction.rs2, "rs2")

    word = int(instruction.opcode) << 25
    word |= instruction.rd << 20
    word |= instruction.rs1 << 15
    if info.fmt is InstructionFormat.R:
        word |= instruction.rs2 << 10
    else:
        imm = instruction.imm
        if not _IMM_MIN <= imm <= _IMM_MAX:
            raise EncodingError(
                f"immediate {imm} out of range for {info.mnemonic} "
                f"({_IMM_MIN}..{_IMM_MAX})")
        if info.fmt is InstructionFormat.B:
            # B-format carries rs2 in the rd slot so stores/branches keep both
            # source registers addressable; rd is never written.
            word &= ~(0x1F << 20)
            word |= instruction.rs2 << 20
        word |= imm & _IMM_MASK
    return word


def decode_instruction(word: int) -> Instruction:
    """Decode a 32-bit word back into an :class:`Instruction`.

    Raises:
        EncodingError: if the opcode field does not name a valid opcode.  The
            cores convert this into an illegal-instruction trap, which the
            outcome classifier records as an Unexpected Termination.
    """
    if not 0 <= word < (1 << INSTRUCTION_BITS):
        raise EncodingError(f"instruction word out of range: {word:#x}")
    opcode_value = (word >> 25) & 0x7F
    try:
        opcode = Opcode(opcode_value)
    except ValueError as exc:
        raise EncodingError(f"illegal opcode field: {opcode_value:#x}") from exc

    info = OPCODE_INFO[opcode]
    rd = (word >> 20) & 0x1F
    rs1 = (word >> 15) & 0x1F
    if info.fmt is InstructionFormat.R:
        rs2 = (word >> 10) & 0x1F
        return Instruction(opcode, rd=rd, rs1=rs1, rs2=rs2)
    imm = word & _IMM_MASK
    if imm & _IMM_SIGN:
        imm -= 1 << IMMEDIATE_BITS
    if info.fmt is InstructionFormat.B:
        return Instruction(opcode, rs1=rs1, rs2=rd, imm=imm)
    return Instruction(opcode, rd=rd, rs1=rs1, imm=imm)
