"""Opcode definitions and the in-memory instruction representation.

The ISA is a compact 32-bit RISC machine with three instruction formats:

* **R-format** -- register/register ALU operations (``add rd, rs1, rs2``).
* **I-format** -- register/immediate ALU operations, loads, jumps and the
  I/O instructions (``addi rd, rs1, imm``; ``lw rd, imm(rs1)``).
* **B-format** -- conditional branches and stores, which carry two source
  registers and an immediate (``beq rs1, rs2, offset``;
  ``sw rs2, imm(rs1)``).

Instruction semantics are implemented by the cores in
:mod:`repro.microarch.execute`; this module only defines the static metadata
(formats, operand usage, latencies) both cores and the fault-injection
tooling rely on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum, IntEnum, unique


@unique
class InstructionFormat(Enum):
    """Static instruction format, which determines operand fields used."""

    R = "R"
    I = "I"
    B = "B"


@unique
class Opcode(IntEnum):
    """All opcodes in the reproduction ISA.

    The numeric values double as the 7-bit opcode field of the binary
    encoding (:mod:`repro.isa.encoding`).
    """

    # R-format ALU
    ADD = 0x01
    SUB = 0x02
    MUL = 0x03
    DIV = 0x04
    REM = 0x05
    AND = 0x06
    OR = 0x07
    XOR = 0x08
    SLL = 0x09
    SRL = 0x0A
    SRA = 0x0B
    SLT = 0x0C
    SLTU = 0x0D

    # I-format ALU / upper immediate
    ADDI = 0x11
    ANDI = 0x12
    ORI = 0x13
    XORI = 0x14
    SLTI = 0x15
    SLLI = 0x16
    SRLI = 0x17
    SRAI = 0x18
    LUI = 0x19

    # Memory
    LW = 0x21
    LB = 0x22
    SW = 0x23
    SB = 0x24

    # Control flow
    BEQ = 0x31
    BNE = 0x32
    BLT = 0x33
    BGE = 0x34
    BLTU = 0x35
    BGEU = 0x36
    JAL = 0x37
    JALR = 0x38

    # System / I/O
    OUT = 0x41      # append register value to the program output stream
    HALT = 0x42     # normal program termination
    NOP = 0x43
    ASSERT_EQ = 0x44  # software-check helper: trap if rs1 != rs2
    ASSERT_RANGE = 0x45  # software-check helper: trap if rs1 > rs2 (unsigned)


@dataclass(frozen=True)
class OpcodeInfo:
    """Static metadata attached to each opcode."""

    mnemonic: str
    fmt: InstructionFormat
    reads_rs1: bool = False
    reads_rs2: bool = False
    writes_rd: bool = False
    is_branch: bool = False
    is_jump: bool = False
    is_load: bool = False
    is_store: bool = False
    is_output: bool = False
    is_halt: bool = False
    execute_latency: int = 1
    """Execute-stage latency in cycles (used by the out-of-order core)."""


OPCODE_INFO: dict[Opcode, OpcodeInfo] = {
    Opcode.ADD: OpcodeInfo("add", InstructionFormat.R, True, True, True),
    Opcode.SUB: OpcodeInfo("sub", InstructionFormat.R, True, True, True),
    Opcode.MUL: OpcodeInfo("mul", InstructionFormat.R, True, True, True, execute_latency=3),
    Opcode.DIV: OpcodeInfo("div", InstructionFormat.R, True, True, True, execute_latency=10),
    Opcode.REM: OpcodeInfo("rem", InstructionFormat.R, True, True, True, execute_latency=10),
    Opcode.AND: OpcodeInfo("and", InstructionFormat.R, True, True, True),
    Opcode.OR: OpcodeInfo("or", InstructionFormat.R, True, True, True),
    Opcode.XOR: OpcodeInfo("xor", InstructionFormat.R, True, True, True),
    Opcode.SLL: OpcodeInfo("sll", InstructionFormat.R, True, True, True),
    Opcode.SRL: OpcodeInfo("srl", InstructionFormat.R, True, True, True),
    Opcode.SRA: OpcodeInfo("sra", InstructionFormat.R, True, True, True),
    Opcode.SLT: OpcodeInfo("slt", InstructionFormat.R, True, True, True),
    Opcode.SLTU: OpcodeInfo("sltu", InstructionFormat.R, True, True, True),
    Opcode.ADDI: OpcodeInfo("addi", InstructionFormat.I, True, False, True),
    Opcode.ANDI: OpcodeInfo("andi", InstructionFormat.I, True, False, True),
    Opcode.ORI: OpcodeInfo("ori", InstructionFormat.I, True, False, True),
    Opcode.XORI: OpcodeInfo("xori", InstructionFormat.I, True, False, True),
    Opcode.SLTI: OpcodeInfo("slti", InstructionFormat.I, True, False, True),
    Opcode.SLLI: OpcodeInfo("slli", InstructionFormat.I, True, False, True),
    Opcode.SRLI: OpcodeInfo("srli", InstructionFormat.I, True, False, True),
    Opcode.SRAI: OpcodeInfo("srai", InstructionFormat.I, True, False, True),
    Opcode.LUI: OpcodeInfo("lui", InstructionFormat.I, False, False, True),
    Opcode.LW: OpcodeInfo("lw", InstructionFormat.I, True, False, True, is_load=True, execute_latency=2),
    Opcode.LB: OpcodeInfo("lb", InstructionFormat.I, True, False, True, is_load=True, execute_latency=2),
    Opcode.SW: OpcodeInfo("sw", InstructionFormat.B, True, True, False, is_store=True, execute_latency=1),
    Opcode.SB: OpcodeInfo("sb", InstructionFormat.B, True, True, False, is_store=True, execute_latency=1),
    Opcode.BEQ: OpcodeInfo("beq", InstructionFormat.B, True, True, False, is_branch=True),
    Opcode.BNE: OpcodeInfo("bne", InstructionFormat.B, True, True, False, is_branch=True),
    Opcode.BLT: OpcodeInfo("blt", InstructionFormat.B, True, True, False, is_branch=True),
    Opcode.BGE: OpcodeInfo("bge", InstructionFormat.B, True, True, False, is_branch=True),
    Opcode.BLTU: OpcodeInfo("bltu", InstructionFormat.B, True, True, False, is_branch=True),
    Opcode.BGEU: OpcodeInfo("bgeu", InstructionFormat.B, True, True, False, is_branch=True),
    Opcode.JAL: OpcodeInfo("jal", InstructionFormat.I, False, False, True, is_jump=True),
    Opcode.JALR: OpcodeInfo("jalr", InstructionFormat.I, True, False, True, is_jump=True),
    Opcode.OUT: OpcodeInfo("out", InstructionFormat.I, True, False, False, is_output=True),
    Opcode.HALT: OpcodeInfo("halt", InstructionFormat.I, False, False, False, is_halt=True),
    Opcode.NOP: OpcodeInfo("nop", InstructionFormat.I, False, False, False),
    Opcode.ASSERT_EQ: OpcodeInfo("assert_eq", InstructionFormat.B, True, True, False),
    Opcode.ASSERT_RANGE: OpcodeInfo("assert_range", InstructionFormat.B, True, True, False),
}

MNEMONIC_TO_OPCODE = {info.mnemonic: op for op, info in OPCODE_INFO.items()}

LUI_SHIFT = 14
"""Left shift applied to the LUI immediate.

Chosen to equal the unsigned portion of the 15-bit immediate field so that a
``lui``/``ori`` pair can materialise any constant below 2**29, which covers
the whole simulated memory map.
"""


@dataclass(frozen=True)
class Instruction:
    """A single decoded instruction.

    Attributes:
        opcode: the operation to perform.
        rd: destination register index (0 when unused).
        rs1: first source register index (0 when unused).
        rs2: second source register index (0 when unused).
        imm: signed immediate operand (0 when unused).
        label: optional symbolic annotation kept for diagnostics.
    """

    opcode: Opcode
    rd: int = 0
    rs1: int = 0
    rs2: int = 0
    imm: int = 0
    label: str = field(default="", compare=False)

    @property
    def info(self) -> OpcodeInfo:
        """Static metadata for this instruction's opcode."""
        return OPCODE_INFO[self.opcode]

    def destination(self) -> int | None:
        """Return the written register index, or ``None`` if none is written."""
        if self.info.writes_rd and self.rd != 0:
            return self.rd
        return None

    def sources(self) -> tuple[int, ...]:
        """Return the register indices read by this instruction."""
        sources: list[int] = []
        if self.info.reads_rs1:
            sources.append(self.rs1)
        if self.info.reads_rs2:
            sources.append(self.rs2)
        return tuple(sources)

    def __str__(self) -> str:  # pragma: no cover - repr convenience
        from repro.isa.registers import register_name

        info = self.info
        if info.fmt is InstructionFormat.R:
            return (f"{info.mnemonic} {register_name(self.rd)}, "
                    f"{register_name(self.rs1)}, {register_name(self.rs2)}")
        if info.is_load:
            return (f"{info.mnemonic} {register_name(self.rd)}, "
                    f"{self.imm}({register_name(self.rs1)})")
        if info.is_store:
            return (f"{info.mnemonic} {register_name(self.rs2)}, "
                    f"{self.imm}({register_name(self.rs1)})")
        if info.is_branch:
            return (f"{info.mnemonic} {register_name(self.rs1)}, "
                    f"{register_name(self.rs2)}, {self.imm}")
        return f"{info.mnemonic} rd={self.rd} rs1={self.rs1} imm={self.imm}"


def is_branch(instruction: Instruction) -> bool:
    """Return True for conditional branches."""
    return instruction.info.is_branch


def is_load(instruction: Instruction) -> bool:
    """Return True for memory loads."""
    return instruction.info.is_load


def is_store(instruction: Instruction) -> bool:
    """Return True for memory stores."""
    return instruction.info.is_store


def is_arithmetic(instruction: Instruction) -> bool:
    """Return True for register-writing ALU operations (R- or I-format)."""
    info = instruction.info
    return info.writes_rd and not (info.is_load or info.is_jump)
