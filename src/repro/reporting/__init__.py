"""Reporting helpers used by the benchmark harness."""

from repro.reporting.tables import (
    format_artifact_store_stats,
    format_convergence_summary,
    format_frontier,
    format_frontier_comparison,
    format_golden_cache_stats,
    format_phase_breakdown,
    format_replay_telemetry,
    format_series,
    format_table,
)

__all__ = ["format_artifact_store_stats", "format_convergence_summary",
           "format_frontier", "format_frontier_comparison",
           "format_golden_cache_stats", "format_phase_breakdown",
           "format_replay_telemetry", "format_series", "format_table"]
