"""Reporting helpers used by the benchmark harness."""

from repro.reporting.tables import format_series, format_table

__all__ = ["format_series", "format_table"]
