"""Plain-text table rendering for the benchmark harness.

Every benchmark target under ``benchmarks/`` regenerates one of the paper's
tables or figures and prints it with these helpers, so the harness output can
be compared side-by-side with the paper (see EXPERIMENTS.md).
"""

from __future__ import annotations

from typing import Iterable, Sequence


def format_table(title: str, headers: Sequence[str],
                 rows: Iterable[Sequence[object]]) -> str:
    """Render a simple aligned text table with a title line."""
    materialised = [[_format_cell(cell) for cell in row] for row in rows]
    widths = [len(str(header)) for header in headers]
    for row in materialised:
        for index, cell in enumerate(row):
            if index < len(widths):
                widths[index] = max(widths[index], len(cell))
            else:
                widths.append(len(cell))
    lines = [title, "-" * len(title)]
    # rstrip: the last column's ljust padding would otherwise leave trailing
    # whitespace on every line.
    lines.append("  ".join(str(header).ljust(widths[i])
                           for i, header in enumerate(headers)).rstrip())
    for row in materialised:
        lines.append("  ".join(cell.ljust(widths[i])
                               for i, cell in enumerate(row)).rstrip())
    return "\n".join(lines)


def _format_cell(cell: object) -> str:
    if isinstance(cell, float):
        if cell >= 1000:
            return f"{cell:,.0f}"
        return f"{cell:.2f}"
    return str(cell)


def format_series(title: str, points: Iterable[tuple[object, object]],
                  x_label: str = "x", y_label: str = "y") -> str:
    """Render an (x, y) data series as the two columns of a figure."""
    return format_table(title, [x_label, y_label], [list(point) for point in points])


def format_frontier(title: str, frontier) -> str:
    """Render a :class:`repro.analysis.pareto.ParetoFrontier` as a table.

    One row per non-dominated point, sorted by energy; the header notes how
    many swept points the frontier condensed.
    """
    rows = [[point.label, round(point.improvement, 1), round(point.energy_pct, 1),
             round(point.area_pct, 1), round(point.exec_time_pct, 1)]
            for point in frontier.points()]
    return format_table(
        f"{title} ({len(frontier)} non-dominated of {frontier.seen} swept)",
        ["combination", "improvement", "energy %", "area %", "exec time %"], rows)


def format_frontier_comparison(title: str, named_frontiers,
                               thresholds: Sequence[float] = (10.0, 50.0)) -> str:
    """Compare frontiers across runs (e.g. loaded from the frontier store).

    ``named_frontiers`` is an iterable of ``(name, ParetoFrontier)`` pairs --
    typically each persisted run plus their merge.  Per frontier the table
    reports coverage, the best achieved improvement, and the cheapest energy
    buying each improvement threshold (``-`` when the threshold is out of
    reach).
    """
    rows = []
    for name, frontier in named_frontiers:
        best = max((p.improvement for p in frontier.points()), default=0.0)
        row = [name, len(frontier), frontier.seen, round(best, 1)]
        for threshold in thresholds:
            cheapest = frontier.cheapest_at_least(threshold)
            row.append("-" if cheapest is None
                       else f"{cheapest.energy_pct:.1f}%")
        rows.append(row)
    headers = ["run", "points", "swept", "best improvement"]
    headers.extend(f"energy @ >={threshold:g}x" for threshold in thresholds)
    return format_table(title, headers, rows)


def format_replay_telemetry(named_results,
                            title: str = "Replay telemetry") -> str:
    """Render per-campaign replay cost telemetry as a table.

    ``named_results`` is an iterable of ``(name, CampaignResult)`` pairs.
    Per campaign the table reports the simulated replay cycles, how much of
    that work ran inside batched lockstep wavefronts, how many runs the
    wavefronts evicted to the scalar path, and what convergence gating
    saved.  All-zero lockstep/evicted columns simply mean the campaign ran
    with ``batch_width`` off.
    """
    rows = []
    for name, result in named_results:
        rows.append([
            name,
            result.injections,
            result.replayed_cycles,
            f"{100 * result.lockstep_cycle_fraction:.0f}%",
            f"{100 * result.evicted_fraction:.0f}%",
            f"{100 * result.converged_fraction:.0f}%",
            f"{100 * result.saved_cycle_fraction:.0f}%",
        ])
    return format_table(
        title,
        ["campaign", "injections", "replayed cycles", "lockstep",
         "evicted", "converged", "cycles saved"],
        rows)


def format_convergence_summary(named_profiles,
                               title: str = "Convergence gate") -> str:
    """Render per-group convergence-gate telemetry as a table.

    ``named_profiles`` is an iterable of ``(name, profile)`` pairs where each
    profile exposes ``injections``, ``converged_count``, ``saved_cycles`` and
    ``replayed_cycles`` (e.g. a sweep's
    :class:`~repro.workloads.synthesis.sweep.ProfileVulnerability` entries or
    campaign results).  One row per group plus a total row: how many replays
    the fingerprint gate decided early, the converged fraction, and the
    cycles that early-outs skipped versus the cycles actually simulated.
    """
    rows = []
    total = [0, 0, 0, 0]
    for name, profile in named_profiles:
        injections = profile.injections
        converged = profile.converged_count
        fraction = converged / injections if injections else 0.0
        rows.append([name, injections, converged, f"{100 * fraction:.1f}%",
                     profile.saved_cycles, profile.replayed_cycles])
        total[0] += injections
        total[1] += converged
        total[2] += profile.saved_cycles
        total[3] += profile.replayed_cycles
    share = total[1] / total[0] if total[0] else 0.0
    rows.append(["total", total[0], total[1], f"{100 * share:.1f}%",
                 total[2], total[3]])
    return format_table(
        title,
        ["group", "injections", "converged", "fraction", "saved cycles",
         "replayed cycles"],
        rows)


def format_phase_breakdown(result_or_metrics,
                           title: str = "Phase breakdown") -> str:
    """Render the per-phase replay cost of one campaign as a table.

    Accepts a :class:`~repro.faultinjection.campaign.CampaignResult` (uses
    its ``metrics`` document), a :class:`~repro.obs.MetricsRegistry`, or a
    ``to_dict`` metrics document.  One row per phase of
    :data:`repro.obs.phases.PHASE_TABLE`: cycles attributed to the phase,
    its share of the replayed-cycle total (``-`` for skipped-work rows,
    which are not part of that total), and accumulated wall-clock seconds
    when the campaign ran with ``EngineConfig(metrics=True)``.  The final
    row restates the replayed-cycle total, which reconciles exactly with
    ``CampaignResult.replayed_cycles``.
    """
    from repro.obs.phases import (PHASE_TABLE, REPLAY_CYCLE_COUNTERS,
                                  counters_of, replayed_cycle_total)

    metrics = getattr(result_or_metrics, "metrics", result_or_metrics)
    if metrics is None:
        metrics = {}
    counters = counters_of(metrics)
    timers = getattr(metrics, "timers", None)
    if timers is None and isinstance(metrics, dict):
        timers = metrics.get("timers", {})
    timers = timers or {}
    replayed = replayed_cycle_total(metrics)
    timed = bool(timers)

    def seconds_of(name):
        entry = timers.get(name)
        if entry is None:
            return None
        return entry[0] if isinstance(entry, list) else entry["seconds"]

    rows = []
    for label, counter, timer_name in PHASE_TABLE:
        cycles = counters.get(counter, 0)
        in_total = counter in REPLAY_CYCLE_COUNTERS
        share = (f"{100 * cycles / replayed:.1f}%"
                 if in_total and replayed else "-")
        row = [label, cycles, share]
        if timed:
            seconds = seconds_of(timer_name) if timer_name else None
            row.append("-" if seconds is None else f"{seconds:.3f}s")
        rows.append(row)
    total_row = ["replayed total", replayed, "100.0%" if replayed else "-"]
    if timed:
        total_row.append("-")
    rows.append(total_row)
    headers = ["phase", "cycles", "share"]
    if timed:
        headers.append("wall")
    return format_table(title, headers, rows)


def format_golden_cache_stats(cache, title: str = "Golden-run cache") -> str:
    """Render a :class:`repro.engine.GoldenRunCache` health readout.

    Accepts a cache or an already-captured
    :class:`~repro.engine.GoldenCacheStats` (the sweep runners aggregate the
    latter across workers).  A hit rate near zero on a repeated-workload run
    means the cache is thrashing -- raise ``max_entries`` (suite and sweep
    runners expose it as ``max_cache_entries``) so golden runs stop being
    re-recorded.  ``loaded`` vs ``recorded`` splits the misses: loaded
    golden runs came from the persistent artifact store
    (``EngineConfig(artifact_dir=...)``), recorded ones were simulated from
    cycle 0.
    """
    stats = cache.stats() if hasattr(cache, "stats") else cache
    return format_table(title,
                        ["hits", "misses", "hit rate", "loaded", "recorded",
                         "entries", "capacity"],
                        [[stats.hits, stats.misses,
                          f"{100 * stats.hit_rate:.0f}%",
                          stats.artifacts_loaded, stats.recorded,
                          stats.entries, stats.max_entries]])


def format_artifact_store_stats(store,
                                title: str = "Golden-artifact store",
                                manifest=None) -> str:
    """Render a :class:`repro.engine.GoldenArtifactStore` health readout.

    Accepts a store or an already-captured
    :class:`~repro.engine.ArtifactStoreStats`.  ``loaded`` / ``saved`` /
    ``errors`` count this process's traffic; ``entries`` / ``on disk``
    census the directory, which other processes share.  A non-zero error
    count means defective blobs were encountered (and transparently
    re-recorded) or the filesystem refused writes.

    Pass the manifest recorded alongside the artefacts (a
    :class:`~repro.obs.RunManifest` or its dict) to append a provenance
    line: artefacts written by a different package version or git revision
    are flagged, since they are not bit-exact replay targets for this
    build.
    """
    stats = store.stats() if hasattr(store, "stats") else store
    kib = stats.size_bytes / 1024
    table = format_table(title,
                         ["loaded", "saved", "errors", "entries", "on disk"],
                         [[stats.loaded, stats.saved, stats.errors,
                           stats.entries, f"{kib:.0f} KiB"]])
    if manifest is not None:
        from repro.obs import manifest_drift

        drift = manifest_drift(manifest)
        note = ("provenance: matches this environment" if not drift
                else "provenance DRIFT: " + "; ".join(drift))
        table = f"{table}\n{note}"
    return table
