"""Plain-text table rendering for the benchmark harness.

Every benchmark target under ``benchmarks/`` regenerates one of the paper's
tables or figures and prints it with these helpers, so the harness output can
be compared side-by-side with the paper (see EXPERIMENTS.md).
"""

from __future__ import annotations

from typing import Iterable, Sequence


def format_table(title: str, headers: Sequence[str],
                 rows: Iterable[Sequence[object]]) -> str:
    """Render a simple aligned text table with a title line."""
    materialised = [[_format_cell(cell) for cell in row] for row in rows]
    widths = [len(str(header)) for header in headers]
    for row in materialised:
        for index, cell in enumerate(row):
            if index < len(widths):
                widths[index] = max(widths[index], len(cell))
            else:
                widths.append(len(cell))
    lines = [title, "-" * len(title)]
    lines.append("  ".join(str(header).ljust(widths[i]) for i, header in enumerate(headers)))
    for row in materialised:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def _format_cell(cell: object) -> str:
    if isinstance(cell, float):
        if cell >= 1000:
            return f"{cell:,.0f}"
        return f"{cell:.2f}"
    return str(cell)


def format_series(title: str, points: Iterable[tuple[object, object]],
                  x_label: str = "x", y_label: str = "y") -> str:
    """Render an (x, y) data series as the two columns of a figure."""
    return format_table(title, [x_label, y_label], [list(point) for point in points])


def format_frontier(title: str, frontier) -> str:
    """Render a :class:`repro.analysis.pareto.ParetoFrontier` as a table.

    One row per non-dominated point, sorted by energy; the header notes how
    many swept points the frontier condensed.
    """
    rows = [[point.label, round(point.improvement, 1), round(point.energy_pct, 1),
             round(point.area_pct, 1), round(point.exec_time_pct, 1)]
            for point in frontier.points()]
    return format_table(
        f"{title} ({len(frontier)} non-dominated of {frontier.seen} swept)",
        ["combination", "improvement", "energy %", "area %", "exec time %"], rows)
