"""Flip-flop backed latch state.

:class:`LatchState` stores the value of every registered flip-flop structure
of a core and is the only place where bit flips are applied.  Cores read and
write fields through it every cycle, which guarantees that an injected flip
is observed by whatever logic consumes the latch next -- the property that
makes flip-flop-level injection meaningful.

Storage is a flat integer array indexed by the frozen
:class:`~repro.microarch.flipflop.FlipFlopRegistry` order; the name-keyed
API is a thin view over it (one ``name -> position`` lookup per access, with
per-structure width masks precomputed at construction).  The flat layout is
what makes :class:`BatchedLatchState` -- the same state for N cores at once,
as one ``(lanes, n_structures)`` matrix -- a natural extension, which the
batched lockstep replay engine (:mod:`repro.engine.batch`) builds on.
"""

from __future__ import annotations

import pickle

from repro.microarch.flipflop import FlipFlopRegistry, FlipFlopStructure

try:  # numpy backs only the batched state; the scalar path never needs it.
    import numpy as _np
except ImportError:  # pragma: no cover - exercised on numpy-free installs
    _np = None

_BANK_SIZE = 32
"""Structure slots per fingerprint bank.

The latch contribution to a state fingerprint is the concatenation of one
pickled tuple per bank of ``_BANK_SIZE`` consecutive ``_data`` slots, in
bank order.  Banking bounds the cost of a rolling re-hash to the banks a
write touched; the full and rolling digest paths byte-compare equal because
they serialise the exact same per-bank payloads.
"""


class LatchState:
    """Mutable value store for every flip-flop structure of one core."""

    def __init__(self, registry: FlipFlopRegistry):
        self._registry = registry
        structures = registry.structures
        self._index: dict[str, int] = {s.name: i for i, s in enumerate(structures)}
        self._widths: list[int] = [s.width for s in structures]
        self._masks: list[int] = [(1 << s.width) - 1 for s in structures]
        self._data: list[int] = [0] * len(structures)
        # audit: allow[state-coverage] lazily-built index over the frozen registry layout; derived from structure, not run state
        self._unit_indices: dict[str, list[int]] | None = None
        # audit: allow[state-coverage] memoised per-bank pickle payloads of _data; rebuilt from _data whenever a bank is dirty, carries no state of its own
        self._bank_cache: list[bytes | None] | None = None
        # audit: allow[state-coverage] write journal over _data banks; consumed (and cleared) by fingerprint_digest, carries no state of its own
        self._dirty_banks: list[bool] | None = None
        self.rehashed_banks = 0

    @property
    def registry(self) -> FlipFlopRegistry:
        return self._registry

    # ------------------------------------------------------------------ access
    def get(self, name: str) -> int:
        """Current value of structure ``name`` (unsigned, ``width`` bits)."""
        return self._data[self._index[name]]

    def get_signed(self, name: str) -> int:
        """Current value of structure ``name`` interpreted as two's complement."""
        position = self._index[name]
        value = self._data[position]
        sign_bit = 1 << (self._widths[position] - 1)
        if value & sign_bit:
            return value - (1 << self._widths[position])
        return value

    def set(self, name: str, value: int) -> None:
        """Set structure ``name`` to ``value`` (masked to its width)."""
        position = self._index[name]
        self._data[position] = value & self._masks[position]

    def set_signed(self, name: str, value: int) -> None:
        """Set a structure from a signed Python int (two's complement wrap)."""
        self.set(name, value)

    def get_bit(self, name: str, bit: int) -> int:
        return (self._data[self._index[name]] >> bit) & 1

    def flip_bit(self, name: str, bit: int) -> None:
        """Flip a single bit of a structure (the soft-error primitive)."""
        position = self._index[name]
        if not 0 <= bit < self._widths[position]:
            raise IndexError(
                f"bit {bit} out of range for {name} (width {self._widths[position]})")
        self._data[position] ^= 1 << bit

    def flip_flat(self, flat_index: int) -> str:
        """Flip the flip-flop with global index ``flat_index``.

        Returns the name of the affected structure, for diagnostics.
        """
        site = self._registry.site(flat_index)
        self.flip_bit(site.structure.name, site.bit)
        return site.structure.name

    # ------------------------------------------------------------------ bulk
    def clear(self) -> None:
        """Reset every structure to zero (power-on state)."""
        self._data = [0] * len(self._data)
        self._mark_all_banks_dirty()

    def clear_unit(self, unit: str) -> None:
        """Reset every structure belonging to ``unit`` (used by pipeline flushes)."""
        if self._unit_indices is None:
            self._unit_indices = {}
            for position, structure in enumerate(self._registry.structures):
                self._unit_indices.setdefault(structure.unit, []).append(position)
        dirty = self._dirty_banks
        for position in self._unit_indices.get(unit, ()):
            self._data[position] = 0
            if dirty is not None:
                dirty[position // _BANK_SIZE] = True

    def snapshot(self) -> dict[str, int]:
        """Copy of all structure values (used by recovery checkpoints)."""
        return dict(zip(self._index, self._data))

    def restore(self, snapshot: dict[str, int]) -> None:
        """Restore values captured by :meth:`snapshot`.

        Raises:
            ValueError: if ``snapshot`` names a structure this registry does
                not contain.  A snapshot from a differently-built core would
                otherwise half-restore silently, leaving the core in a state
                neither run ever had.
        """
        index = self._index
        for name in snapshot:
            if name not in index:
                raise ValueError(
                    f"snapshot names unknown flip-flop structure {name!r} "
                    f"(registry {self._registry.core_name!r})")
        for name, value in snapshot.items():
            self._data[index[name]] = value
        self._mark_all_banks_dirty()

    # ------------------------------------------------------------------ serialization
    def serialize(self) -> tuple[int, ...]:
        """All structure values in registry order (compact, picklable).

        The registry is frozen when the core is built, so the ordering is
        stable for the lifetime of the core and across identically-built
        cores -- which lets checkpoints travel to worker processes without
        carrying structure names.
        """
        return tuple(self._data)

    def fingerprint_key(self) -> tuple[int, ...]:
        """Canonical hashable key over every latch value (registry order).

        Two cores with equal keys hold bit-identical flip-flop state, because
        the frozen registry fixes both the structure set and its order.
        """
        return tuple(self._data)

    # ------------------------------------------------------------------ digests
    def _bank_count(self) -> int:
        return (len(self._data) + _BANK_SIZE - 1) // _BANK_SIZE

    def _bank_payload(self, bank: int) -> bytes:
        """Canonical byte payload of one bank of latch values."""
        start = bank * _BANK_SIZE
        return pickle.dumps(tuple(self._data[start:start + _BANK_SIZE]),
                            protocol=4)

    def fingerprint_digest_full(self) -> bytes:
        """Concatenated bank payloads, recomputed from scratch.

        This is the latch contribution to
        :meth:`BaseCore.state_fingerprint`.  The rolling variant
        (:meth:`fingerprint_digest`) produces byte-identical output because
        both serialise the same per-bank payloads in the same order.
        """
        return b"".join(self._bank_payload(bank)
                        for bank in range(self._bank_count()))

    def fingerprint_digest(self) -> bytes:
        """Concatenated bank payloads, reusing cached banks where clean.

        Only meaningful after :meth:`enable_write_tracking`; without the
        write journal every bank is conservatively treated as dirty and this
        degrades to :meth:`fingerprint_digest_full`.
        """
        cache = self._bank_cache
        if cache is None:
            return self.fingerprint_digest_full()
        dirty = self._dirty_banks
        for bank, payload in enumerate(cache):
            if payload is None or dirty[bank]:
                cache[bank] = self._bank_payload(bank)
                dirty[bank] = False
                self.rehashed_banks += 1
        return b"".join(cache)

    # ------------------------------------------------------------------ tracking
    @property
    def write_tracking(self) -> bool:
        """Whether per-bank write tracking is active on this instance."""
        return self._bank_cache is not None

    def enable_write_tracking(self) -> None:
        """Switch on per-bank dirty tracking for rolling fingerprints.

        Swaps the instance onto :class:`TrackedLatchState`, whose ``set`` /
        ``flip_bit`` overrides journal the touched bank.  The hot write path
        pays for the journal (one extra list store per write), so tracking
        is strictly opt-in -- values and digests are unaffected either way.
        """
        if self.write_tracking:
            return
        banks = self._bank_count()
        self._bank_cache = [None] * banks
        self._dirty_banks = [True] * banks
        # audit: allow[state-coverage] class swap toggles write instrumentation only; latch values and digests are unchanged
        self.__class__ = TrackedLatchState

    def disable_write_tracking(self) -> None:
        """Undo :meth:`enable_write_tracking` (drops the journal and cache)."""
        if not self.write_tracking:
            return
        self._bank_cache = None
        self._dirty_banks = None
        # audit: allow[state-coverage] class swap toggles write instrumentation only; latch values and digests are unchanged
        self.__class__ = LatchState

    def _mark_all_banks_dirty(self) -> None:
        if self._dirty_banks is not None:
            self._dirty_banks = [True] * self._bank_count()

    def deserialize(self, values: "tuple[int, ...] | list[int]") -> None:
        """Restore values captured by :meth:`serialize`.

        Raises:
            ValueError: if ``values`` does not match the registry layout.
        """
        if len(values) != len(self._data):
            raise ValueError(
                f"serialized latch state has {len(values)} values, registry "
                f"expects {len(self._data)}")
        self._data = list(values)
        self._mark_all_banks_dirty()

    def structures(self) -> tuple[FlipFlopStructure, ...]:
        return self._registry.structures


class TrackedLatchState(LatchState):
    """A :class:`LatchState` whose writes journal the touched digest bank.

    Instances are produced exclusively by
    :meth:`LatchState.enable_write_tracking` swapping ``__class__``; the
    subclass only re-routes the two hot single-slot writes, so values and
    serialisation behave exactly like the base class.
    """

    def set(self, name: str, value: int) -> None:
        position = self._index[name]
        self._data[position] = value & self._masks[position]
        self._dirty_banks[position // _BANK_SIZE] = True

    def flip_bit(self, name: str, bit: int) -> None:
        LatchState.flip_bit(self, name, bit)
        self._dirty_banks[self._index[name] // _BANK_SIZE] = True


class BatchedLatchState:
    """Latch state for ``lanes`` identically-built cores as one matrix.

    Row ``lane`` holds one core's flat latch array (the exact values
    :meth:`LatchState.serialize` would produce for that core), so N replays
    of the same golden run can advance as numpy-vectorised wavefronts: a
    column slice is "this structure across every replay", an XOR into one
    element is a soft-error injection, and a row compare against a reference
    lane is a whole-state convergence check.

    Values are stored as ``uint64``, which covers every structure the cores
    register (widths are bounded by 64); construction rejects wider ones.
    """

    def __init__(self, registry: FlipFlopRegistry, lanes: int):
        if _np is None:  # pragma: no cover - exercised on numpy-free installs
            raise RuntimeError("BatchedLatchState requires numpy")
        if lanes < 1:
            raise ValueError(f"lanes must be >= 1, got {lanes}")
        structures = registry.structures
        too_wide = [s.name for s in structures if s.width > 64]
        if too_wide:
            raise ValueError(f"structures wider than 64 bits cannot be "
                             f"batched: {too_wide}")
        self._registry = registry
        self.lanes = lanes
        self._index = {s.name: i for i, s in enumerate(structures)}
        self._widths = [s.width for s in structures]
        self._masks = _np.array([(1 << s.width) - 1 for s in structures],
                                dtype=_np.uint64)
        self.array = _np.zeros((lanes, len(structures)), dtype=_np.uint64)

    @classmethod
    def from_serialized(cls, registry: FlipFlopRegistry,
                        values: "tuple[int, ...] | list[int]",
                        lanes: int) -> "BatchedLatchState":
        """Broadcast one core's serialized latch values to every lane."""
        state = cls(registry, lanes)
        if len(values) != state.array.shape[1]:
            raise ValueError(
                f"serialized latch state has {len(values)} values, registry "
                f"expects {state.array.shape[1]}")
        state.array[:] = _np.array(values, dtype=_np.uint64)
        return state

    @property
    def registry(self) -> FlipFlopRegistry:
        return self._registry

    def position(self, name: str) -> int:
        """Column index of structure ``name`` (registry order)."""
        return self._index[name]

    # ------------------------------------------------------------------ access
    def col(self, name: str):
        """Writable ``(lanes,)`` view of one structure across every lane."""
        return self.array[:, self._index[name]]

    def set_col(self, name: str, values) -> None:
        """Set a structure on every lane (masked to the structure width)."""
        position = self._index[name]
        self.array[:, position] = _np.asarray(values).astype(
            _np.uint64, copy=False) & self._masks[position]

    def get(self, lane: int, name: str) -> int:
        return int(self.array[lane, self._index[name]])

    def set(self, lane: int, name: str, value: int) -> None:
        position = self._index[name]
        self.array[lane, position] = _np.uint64(value) & self._masks[position]

    def flip_flat(self, lane: int, flat_index: int) -> str:
        """Flip one flip-flop of one lane; returns the structure name."""
        site = self._registry.site(flat_index)
        position = self._index[site.structure.name]
        self.array[lane, position] ^= _np.uint64(1 << site.bit)
        return site.structure.name

    # ------------------------------------------------------------------ bulk
    def lane_serialized(self, lane: int) -> tuple[int, ...]:
        """One lane's values in registry order (``LatchState.serialize`` form)."""
        return tuple(int(value) for value in self.array[lane])

    def rows_equal(self, reference_lane: int = 0, columns=None):
        """Per-lane equality with ``reference_lane`` (over ``columns``, or all).

        Returns a ``(lanes,)`` boolean array; the reference lane compares
        True to itself.
        """
        view = self.array if columns is None else self.array[:, columns]
        return (view == view[reference_lane]).all(axis=1)
