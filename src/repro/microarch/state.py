"""Flip-flop backed latch state.

:class:`LatchState` stores the value of every registered flip-flop structure
of a core and is the only place where bit flips are applied.  Cores read and
write fields through it every cycle, which guarantees that an injected flip
is observed by whatever logic consumes the latch next -- the property that
makes flip-flop-level injection meaningful.
"""

from __future__ import annotations

from repro.microarch.flipflop import FlipFlopRegistry, FlipFlopStructure


class LatchState:
    """Mutable value store for every flip-flop structure of one core."""

    def __init__(self, registry: FlipFlopRegistry):
        self._registry = registry
        self._values: dict[str, int] = {s.name: 0 for s in registry.structures}

    @property
    def registry(self) -> FlipFlopRegistry:
        return self._registry

    # ------------------------------------------------------------------ access
    def get(self, name: str) -> int:
        """Current value of structure ``name`` (unsigned, ``width`` bits)."""
        return self._values[name]

    def get_signed(self, name: str) -> int:
        """Current value of structure ``name`` interpreted as two's complement."""
        structure = self._registry.structure(name)
        value = self._values[name]
        sign_bit = 1 << (structure.width - 1)
        if value & sign_bit:
            return value - (1 << structure.width)
        return value

    def set(self, name: str, value: int) -> None:
        """Set structure ``name`` to ``value`` (masked to its width)."""
        structure = self._registry.structure(name)
        mask = (1 << structure.width) - 1
        self._values[name] = value & mask

    def set_signed(self, name: str, value: int) -> None:
        """Set a structure from a signed Python int (two's complement wrap)."""
        self.set(name, value)

    def get_bit(self, name: str, bit: int) -> int:
        return (self._values[name] >> bit) & 1

    def flip_bit(self, name: str, bit: int) -> None:
        """Flip a single bit of a structure (the soft-error primitive)."""
        structure = self._registry.structure(name)
        if not 0 <= bit < structure.width:
            raise IndexError(f"bit {bit} out of range for {name} (width {structure.width})")
        self._values[name] ^= 1 << bit

    def flip_flat(self, flat_index: int) -> str:
        """Flip the flip-flop with global index ``flat_index``.

        Returns the name of the affected structure, for diagnostics.
        """
        site = self._registry.site(flat_index)
        self.flip_bit(site.structure.name, site.bit)
        return site.structure.name

    # ------------------------------------------------------------------ bulk
    def clear(self) -> None:
        """Reset every structure to zero (power-on state)."""
        for name in self._values:
            self._values[name] = 0

    def clear_unit(self, unit: str) -> None:
        """Reset every structure belonging to ``unit`` (used by pipeline flushes)."""
        for structure in self._registry.structures_in_unit(unit):
            self._values[structure.name] = 0

    def snapshot(self) -> dict[str, int]:
        """Copy of all structure values (used by recovery checkpoints)."""
        return dict(self._values)

    def restore(self, snapshot: dict[str, int]) -> None:
        """Restore values captured by :meth:`snapshot`."""
        for name, value in snapshot.items():
            if name in self._values:
                self._values[name] = value

    # ------------------------------------------------------------------ serialization
    def serialize(self) -> tuple[int, ...]:
        """All structure values in registry order (compact, picklable).

        The registry is frozen when the core is built, so the ordering is
        stable for the lifetime of the core and across identically-built
        cores -- which lets checkpoints travel to worker processes without
        carrying structure names.
        """
        return tuple(self._values[s.name] for s in self._registry.structures)

    def fingerprint_key(self) -> tuple[int, ...]:
        """Canonical hashable key over every latch value (registry order).

        This is the latch contribution to :meth:`BaseCore.state_fingerprint`:
        two cores with equal keys hold bit-identical flip-flop state, because
        the frozen registry fixes both the structure set and its order.
        """
        return self.serialize()

    def deserialize(self, values: "tuple[int, ...] | list[int]") -> None:
        """Restore values captured by :meth:`serialize`.

        Raises:
            ValueError: if ``values`` does not match the registry layout.
        """
        structures = self._registry.structures
        if len(values) != len(structures):
            raise ValueError(
                f"serialized latch state has {len(values)} values, registry "
                f"expects {len(structures)}")
        for structure, value in zip(structures, values):
            self._values[structure.name] = value

    def structures(self) -> tuple[FlipFlopStructure, ...]:
        return self._registry.structures
