"""Flip-flop backed latch state.

:class:`LatchState` stores the value of every registered flip-flop structure
of a core and is the only place where bit flips are applied.  Cores read and
write fields through it every cycle, which guarantees that an injected flip
is observed by whatever logic consumes the latch next -- the property that
makes flip-flop-level injection meaningful.

Storage is a flat integer array indexed by the frozen
:class:`~repro.microarch.flipflop.FlipFlopRegistry` order; the name-keyed
API is a thin view over it (one ``name -> position`` lookup per access, with
per-structure width masks precomputed at construction).  The flat layout is
what makes :class:`BatchedLatchState` -- the same state for N cores at once,
as one ``(lanes, n_structures)`` matrix -- a natural extension, which the
batched lockstep replay engine (:mod:`repro.engine.batch`) builds on.
"""

from __future__ import annotations

from repro.microarch.flipflop import FlipFlopRegistry, FlipFlopStructure

try:  # numpy backs only the batched state; the scalar path never needs it.
    import numpy as _np
except ImportError:  # pragma: no cover - exercised on numpy-free installs
    _np = None


class LatchState:
    """Mutable value store for every flip-flop structure of one core."""

    def __init__(self, registry: FlipFlopRegistry):
        self._registry = registry
        structures = registry.structures
        self._index: dict[str, int] = {s.name: i for i, s in enumerate(structures)}
        self._widths: list[int] = [s.width for s in structures]
        self._masks: list[int] = [(1 << s.width) - 1 for s in structures]
        self._data: list[int] = [0] * len(structures)
        # audit: allow[state-coverage] lazily-built index over the frozen registry layout; derived from structure, not run state
        self._unit_indices: dict[str, list[int]] | None = None

    @property
    def registry(self) -> FlipFlopRegistry:
        return self._registry

    # ------------------------------------------------------------------ access
    def get(self, name: str) -> int:
        """Current value of structure ``name`` (unsigned, ``width`` bits)."""
        return self._data[self._index[name]]

    def get_signed(self, name: str) -> int:
        """Current value of structure ``name`` interpreted as two's complement."""
        position = self._index[name]
        value = self._data[position]
        sign_bit = 1 << (self._widths[position] - 1)
        if value & sign_bit:
            return value - (1 << self._widths[position])
        return value

    def set(self, name: str, value: int) -> None:
        """Set structure ``name`` to ``value`` (masked to its width)."""
        position = self._index[name]
        self._data[position] = value & self._masks[position]

    def set_signed(self, name: str, value: int) -> None:
        """Set a structure from a signed Python int (two's complement wrap)."""
        self.set(name, value)

    def get_bit(self, name: str, bit: int) -> int:
        return (self._data[self._index[name]] >> bit) & 1

    def flip_bit(self, name: str, bit: int) -> None:
        """Flip a single bit of a structure (the soft-error primitive)."""
        position = self._index[name]
        if not 0 <= bit < self._widths[position]:
            raise IndexError(
                f"bit {bit} out of range for {name} (width {self._widths[position]})")
        self._data[position] ^= 1 << bit

    def flip_flat(self, flat_index: int) -> str:
        """Flip the flip-flop with global index ``flat_index``.

        Returns the name of the affected structure, for diagnostics.
        """
        site = self._registry.site(flat_index)
        self.flip_bit(site.structure.name, site.bit)
        return site.structure.name

    # ------------------------------------------------------------------ bulk
    def clear(self) -> None:
        """Reset every structure to zero (power-on state)."""
        self._data = [0] * len(self._data)

    def clear_unit(self, unit: str) -> None:
        """Reset every structure belonging to ``unit`` (used by pipeline flushes)."""
        if self._unit_indices is None:
            self._unit_indices = {}
            for position, structure in enumerate(self._registry.structures):
                self._unit_indices.setdefault(structure.unit, []).append(position)
        for position in self._unit_indices.get(unit, ()):
            self._data[position] = 0

    def snapshot(self) -> dict[str, int]:
        """Copy of all structure values (used by recovery checkpoints)."""
        return dict(zip(self._index, self._data))

    def restore(self, snapshot: dict[str, int]) -> None:
        """Restore values captured by :meth:`snapshot`.

        Raises:
            ValueError: if ``snapshot`` names a structure this registry does
                not contain.  A snapshot from a differently-built core would
                otherwise half-restore silently, leaving the core in a state
                neither run ever had.
        """
        index = self._index
        for name in snapshot:
            if name not in index:
                raise ValueError(
                    f"snapshot names unknown flip-flop structure {name!r} "
                    f"(registry {self._registry.core_name!r})")
        for name, value in snapshot.items():
            self._data[index[name]] = value

    # ------------------------------------------------------------------ serialization
    def serialize(self) -> tuple[int, ...]:
        """All structure values in registry order (compact, picklable).

        The registry is frozen when the core is built, so the ordering is
        stable for the lifetime of the core and across identically-built
        cores -- which lets checkpoints travel to worker processes without
        carrying structure names.
        """
        return tuple(self._data)

    def fingerprint_key(self) -> tuple[int, ...]:
        """Canonical hashable key over every latch value (registry order).

        This is the latch contribution to :meth:`BaseCore.state_fingerprint`:
        two cores with equal keys hold bit-identical flip-flop state, because
        the frozen registry fixes both the structure set and its order.
        """
        return tuple(self._data)

    def deserialize(self, values: "tuple[int, ...] | list[int]") -> None:
        """Restore values captured by :meth:`serialize`.

        Raises:
            ValueError: if ``values`` does not match the registry layout.
        """
        if len(values) != len(self._data):
            raise ValueError(
                f"serialized latch state has {len(values)} values, registry "
                f"expects {len(self._data)}")
        self._data = list(values)

    def structures(self) -> tuple[FlipFlopStructure, ...]:
        return self._registry.structures


class BatchedLatchState:
    """Latch state for ``lanes`` identically-built cores as one matrix.

    Row ``lane`` holds one core's flat latch array (the exact values
    :meth:`LatchState.serialize` would produce for that core), so N replays
    of the same golden run can advance as numpy-vectorised wavefronts: a
    column slice is "this structure across every replay", an XOR into one
    element is a soft-error injection, and a row compare against a reference
    lane is a whole-state convergence check.

    Values are stored as ``uint64``, which covers every structure the cores
    register (widths are bounded by 64); construction rejects wider ones.
    """

    def __init__(self, registry: FlipFlopRegistry, lanes: int):
        if _np is None:  # pragma: no cover - exercised on numpy-free installs
            raise RuntimeError("BatchedLatchState requires numpy")
        if lanes < 1:
            raise ValueError(f"lanes must be >= 1, got {lanes}")
        structures = registry.structures
        too_wide = [s.name for s in structures if s.width > 64]
        if too_wide:
            raise ValueError(f"structures wider than 64 bits cannot be "
                             f"batched: {too_wide}")
        self._registry = registry
        self.lanes = lanes
        self._index = {s.name: i for i, s in enumerate(structures)}
        self._widths = [s.width for s in structures]
        self._masks = _np.array([(1 << s.width) - 1 for s in structures],
                                dtype=_np.uint64)
        self.array = _np.zeros((lanes, len(structures)), dtype=_np.uint64)

    @classmethod
    def from_serialized(cls, registry: FlipFlopRegistry,
                        values: "tuple[int, ...] | list[int]",
                        lanes: int) -> "BatchedLatchState":
        """Broadcast one core's serialized latch values to every lane."""
        state = cls(registry, lanes)
        if len(values) != state.array.shape[1]:
            raise ValueError(
                f"serialized latch state has {len(values)} values, registry "
                f"expects {state.array.shape[1]}")
        state.array[:] = _np.array(values, dtype=_np.uint64)
        return state

    @property
    def registry(self) -> FlipFlopRegistry:
        return self._registry

    def position(self, name: str) -> int:
        """Column index of structure ``name`` (registry order)."""
        return self._index[name]

    # ------------------------------------------------------------------ access
    def col(self, name: str):
        """Writable ``(lanes,)`` view of one structure across every lane."""
        return self.array[:, self._index[name]]

    def set_col(self, name: str, values) -> None:
        """Set a structure on every lane (masked to the structure width)."""
        position = self._index[name]
        self.array[:, position] = _np.asarray(values).astype(
            _np.uint64, copy=False) & self._masks[position]

    def get(self, lane: int, name: str) -> int:
        return int(self.array[lane, self._index[name]])

    def set(self, lane: int, name: str, value: int) -> None:
        position = self._index[name]
        self.array[lane, position] = _np.uint64(value) & self._masks[position]

    def flip_flat(self, lane: int, flat_index: int) -> str:
        """Flip one flip-flop of one lane; returns the structure name."""
        site = self._registry.site(flat_index)
        position = self._index[site.structure.name]
        self.array[lane, position] ^= _np.uint64(1 << site.bit)
        return site.structure.name

    # ------------------------------------------------------------------ bulk
    def lane_serialized(self, lane: int) -> tuple[int, ...]:
        """One lane's values in registry order (``LatchState.serialize`` form)."""
        return tuple(int(value) for value in self.array[lane])

    def rows_equal(self, reference_lane: int = 0, columns=None):
        """Per-lane equality with ``reference_lane`` (over ``columns``, or all).

        Returns a ``(lanes,)`` boolean array; the reference lane compares
        True to itself.
        """
        view = self.array if columns is None else self.array[:, columns]
        return (view == view[reference_lane]).all(axis=1)
