"""Out-of-order core model (the paper's "OoO-core", an Alpha IVM-class design).

A two-wide superscalar, out-of-order machine:

``fetch -> decode/rename -> dispatch (ROB + issue queue) -> issue -> execute
-> writeback -> commit``

with a reorder buffer, a store queue that drains at commit, branch
checkpointing for mispredict recovery, and per-entry flip-flop structures for
every queue.  The design reproduces the properties the paper's OoO results
rest on:

* roughly an order of magnitude more flip-flops than the in-order core
  (about 13.8k, Table 1), dominated by the ROB, issue queue and load/store
  machinery;
* a substantially larger fraction of flip-flops whose errors always vanish
  (branch predictor, L1 d-cache interface registers, load-queue bookkeeping,
  performance counters -- the Appendix-A structures);
* an IPC above 1 on compute-dense workloads (the paper reports 1.3);
* a reorder-buffer boundary past which detected errors can no longer be
  recovered by RoB recovery (architecturally committed state).

The memory arrays (caches, physical register file contents) are RAM and are
not injection targets, as in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.isa.encoding import EncodingError, decode_instruction, encode_instruction
from repro.isa.instructions import Opcode, OPCODE_INFO
from repro.isa.program import Program, WORD_BYTES
from repro.isa.registers import NUM_REGISTERS
from repro.microarch.core import BaseCore, CoreClass
from repro.microarch.events import TerminationReason, TrapKind
from repro.microarch.execute import ExecuteTrap, execute_operation
from repro.microarch.memory import MemoryFault, MemorySystem

OOO_CLOCK_MHZ = 600.0
"""Nominal clock of the OoO-core (600 MHz, Table 1)."""

ROB_ENTRIES = 40
IQ_ENTRIES = 16
STQ_ENTRIES = 8
LDQ_ENTRIES = 8
FETCH_BUFFER_ENTRIES = 6
CHECKPOINTS = 4
FETCH_WIDTH = 2
RENAME_WIDTH = 2
ISSUE_WIDTH = 2
COMMIT_WIDTH = 2

_TRAP_CODES = {
    TrapKind.ILLEGAL_INSTRUCTION: 1,
    TrapKind.MEMORY_FAULT: 2,
    TrapKind.FETCH_FAULT: 3,
    TrapKind.DIVIDE_BY_ZERO: 4,
    TrapKind.SOFTWARE_ASSERTION: 5,
}
_TRAP_FROM_CODE = {code: kind for kind, code in _TRAP_CODES.items()}


@dataclass
class _InFlightOp:
    """Execution-unit bookkeeping for an issued, not-yet-written-back op."""

    rob_index: int
    opcode: Opcode
    rs1_value: int
    rs2_value: int
    imm: int
    pc: int
    remaining_cycles: int
    is_load: bool = False
    load_address: int | None = None


class OutOfOrderCore(BaseCore):
    """Cycle-level model of the complex out-of-order core."""

    def __init__(self, name: str = "OoO-core"):
        super().__init__(name=name, clock_mhz=OOO_CLOCK_MHZ,
                         core_class=CoreClass.OUT_OF_ORDER)
        self._declare_state()
        self._finalize_state()
        self.memory = MemorySystem()
        self.registers: list[int] = [0] * NUM_REGISTERS
        self._in_flight: list[_InFlightOp] = []
        self._fetch_stalled = False

    # ------------------------------------------------------------------ state declaration
    def _declare_state(self) -> None:
        reg = self.registry.register

        # Front end.
        reg("fetch.pc", 32, "fetch")
        reg("fetch.valid", 1, "fetch")
        reg("fetch.stall", 1, "fetch")
        for i in range(FETCH_BUFFER_ENTRIES):
            prefix = f"fb.e{i}"
            reg(f"{prefix}.valid", 1, "fetch")
            reg(f"{prefix}.inst", 32, "fetch")
            reg(f"{prefix}.pc", 32, "fetch")
            reg(f"{prefix}.fault", 1, "fetch")
        reg("fb.head", 3, "fetch")
        reg("fb.tail", 3, "fetch")
        reg("fb.count", 4, "fetch")

        # Branch predictor (hint-only: the front end fetches not-taken paths
        # and recovers at execute, so predictor corruption never changes
        # architectural results).
        reg("bp.gshare.table", 2048, "branchpred", architectural=False)
        reg("bp.gshare.history", 12, "branchpred", architectural=False)
        reg("bp.ras", 128, "branchpred", architectural=False)
        reg("bp.btb.tags", 512, "branchpred", architectural=False)

        # Rename map (architectural register -> ROB entry).
        for i in range(NUM_REGISTERS):
            reg(f"rat.r{i:02d}.busy", 1, "rename")
            reg(f"rat.r{i:02d}.rob", 6, "rename")
        for i in range(CHECKPOINTS):
            reg(f"ckpt.c{i}.map", 7 * NUM_REGISTERS, "rename")
            reg(f"ckpt.c{i}.valid", 1, "rename")

        # Reorder buffer.
        for i in range(ROB_ENTRIES):
            prefix = f"rob.e{i:02d}"
            reg(f"{prefix}.valid", 1, "rob")
            reg(f"{prefix}.op", 7, "rob")
            reg(f"{prefix}.rd", 5, "rob")
            reg(f"{prefix}.result", 32, "rob")
            reg(f"{prefix}.ready", 1, "rob")
            reg(f"{prefix}.exception", 1, "rob")
            reg(f"{prefix}.expkind", 3, "rob")
            reg(f"{prefix}.is_store", 1, "rob")
            reg(f"{prefix}.is_out", 1, "rob")
            reg(f"{prefix}.is_branch", 1, "rob")
            reg(f"{prefix}.ckpt", 3, "rob")
            reg(f"{prefix}.pc", 32, "rob")
        reg("rob.head", 6, "rob")
        reg("rob.tail", 6, "rob")
        reg("rob.count", 7, "rob")

        # Issue queue (reservation stations).
        for i in range(IQ_ENTRIES):
            prefix = f"iq.e{i:02d}"
            reg(f"{prefix}.valid", 1, "issue")
            reg(f"{prefix}.op", 7, "issue")
            reg(f"{prefix}.rob", 6, "issue")
            reg(f"{prefix}.imm", 15, "issue")
            reg(f"{prefix}.pc", 32, "issue")
            reg(f"{prefix}.s1ready", 1, "issue")
            reg(f"{prefix}.s1tag", 6, "issue")
            reg(f"{prefix}.s1val", 32, "issue")
            reg(f"{prefix}.s2ready", 1, "issue")
            reg(f"{prefix}.s2tag", 6, "issue")
            reg(f"{prefix}.s2val", 32, "issue")
            reg(f"{prefix}.issued", 1, "issue")

        # Store queue (drains at commit).
        for i in range(STQ_ENTRIES):
            prefix = f"stq.e{i}"
            reg(f"{prefix}.valid", 1, "lsu")
            reg(f"{prefix}.rob", 6, "lsu")
            reg(f"{prefix}.addr", 32, "lsu")
            reg(f"{prefix}.addrvalid", 1, "lsu")
            reg(f"{prefix}.data", 32, "lsu")
            reg(f"{prefix}.byte", 1, "lsu")
        reg("stq.head", 3, "lsu")
        reg("stq.tail", 3, "lsu")
        reg("stq.count", 4, "lsu")

        # Load queue: ordering bookkeeping only (the conservative scheduler
        # never violates memory ordering, so, as in the paper's Appendix A,
        # errors here vanish).
        for i in range(LDQ_ENTRIES):
            prefix = f"ldq.e{i}"
            reg(f"{prefix}.valid", 1, "lsu", architectural=False)
            reg(f"{prefix}.addr", 32, "lsu", architectural=False)
            reg(f"{prefix}.rob", 6, "lsu", architectural=False)
        reg("ldq.numentries", 4, "lsu", architectural=False)

        # Execution-unit bookkeeping registers (multiplier accumulators,
        # carry chains, ... -- Appendix-A style vanish structures).
        for unit, width in (("exec.mu0.a01", 32), ("exec.mu0.a12", 32),
                            ("exec.mu0.a23", 32), ("exec.mu0.a34", 32),
                            ("exec.mu0.b01", 32), ("exec.mu0.b12", 32),
                            ("exec.mu0.b23", 32), ("exec.mu0.b34", 32),
                            ("exec.ca0.p0", 32), ("exec.ca0.p1", 32),
                            ("exec.ca0.p2", 32), ("exec.ca0.br", 8),
                            ("exec.cb0.buffer.valid", 8), ("exec.cb0.queue.head", 4),
                            ("exec.cb0.queue.tail", 4)):
            reg(unit, width, "execute", architectural=False)

        # L1 data-cache interface registers (the cache arrays are SRAM; these
        # staging registers are flip-flops whose errors vanish because the
        # conservative LSU re-reads memory authoritatively).
        for i in range(8):
            reg(f"mem.l1dcache.addr.in{i}", 32, "dcache", architectural=False)
            reg(f"mem.l1dcache.data.in{i}", 32, "dcache", architectural=False)
            reg(f"mem.l1dcache.write.in{i}", 32, "dcache", architectural=False)
        for name, width in (("mem.l1dcache.accessaddr0", 32),
                            ("mem.l1dcache.accessaddr1", 32),
                            ("mem.l1dcache.accessfulldata0", 32),
                            ("mem.l1dcache.accessfulldata1", 32),
                            ("mem.l1dcache.accesshit0", 1),
                            ("mem.l1dcache.addr1.out", 32),
                            ("mem.l1dcache.addr2.out", 32),
                            ("mem.l1dcache.data2.out", 32),
                            ("mem.l1dcache.missqueue.returnedaddr1", 32),
                            ("mem.l1dcache.missqueue.returnedaddr2", 32),
                            ("mem.l1dcache.missqueue.done", 8),
                            ("mem.l1dcache.missqueue.type", 8),
                            ("mem.l1dcache.mobid2.out", 8),
                            ("mem.l1dcache.size1.out", 4),
                            ("mem.l1dcache.size2.out", 4),
                            ("mem.stb.forward.data1", 32),
                            ("mem.stb.forward.data2", 32),
                            ("mem.stb.forward.stid1", 8),
                            ("mem.stb.forward.stid2", 8),
                            ("mem.returned.hintvalid1", 1),
                            ("mem.finished.st2", 8)):
            reg(name, width, "dcache", architectural=False)

        # L2 interface / miss-status-holding registers (vanish: the simple
        # memory model services every access synchronously, so these staging
        # registers never feed architectural results).
        for i in range(4):
            reg(f"mem.mshr{i}.addr", 32, "dcache", architectural=False)
            reg(f"mem.mshr{i}.data", 64, "dcache", architectural=False)
            reg(f"mem.mshr{i}.state", 4, "dcache", architectural=False)
        for i in range(4):
            reg(f"mem.l2q.e{i}.addr", 32, "dcache", architectural=False)
            reg(f"mem.l2q.e{i}.data", 64, "dcache", architectural=False)
            reg(f"mem.l2q.e{i}.valid", 1, "dcache", architectural=False)

        # Performance counters and debug support (vanish).
        for i in range(6):
            reg(f"perf.counter{i}", 48, "debug", architectural=False)
        reg("debug.breakpoint.addr", 32, "debug", architectural=False)
        reg("debug.ctrl", 16, "debug", architectural=False)
        reg("irq.pending", 16, "peripherals", architectural=False)
        reg("irq.mask", 16, "peripherals", architectural=False)

    # ------------------------------------------------------------------ small helpers
    # Pointer latches are wider than their structures need (rob.head/tail are
    # 6-bit for 40 entries, fb.head/tail 3-bit for 6), so an injected flip
    # can leave a pointer past the last entry.  Real hardware would address
    # whatever the extra bits select; the model wraps the index so corrupted
    # pointers keep simulating (and get classified by outcome) instead of
    # raising KeyError on a nonexistent latch.
    def _rob_field(self, index: int, fieldname: str) -> str:
        return f"rob.e{index % ROB_ENTRIES:02d}.{fieldname}"

    def _fb_field(self, index: int, fieldname: str) -> str:
        return f"fb.e{index % FETCH_BUFFER_ENTRIES}.{fieldname}"

    def _iq_field(self, index: int, fieldname: str) -> str:
        return f"iq.e{index:02d}.{fieldname}"

    def _stq_field(self, index: int, fieldname: str) -> str:
        return f"stq.e{index}.{fieldname}"

    def _rob_age(self, index: int) -> int:
        """Age of a ROB entry relative to the head (0 = oldest)."""
        head = self.latches.get("rob.head")
        return (index - head) % ROB_ENTRIES

    def _read_register(self, index: int) -> int:
        return self.registers[index & 0x1F]

    def _write_register(self, index: int, value: int) -> None:
        index &= 0x1F
        if index != 0:
            self.registers[index] = value & 0xFFFFFFFF

    # ------------------------------------------------------------------ reset
    def _reset_microarchitecture(self, program: Program) -> None:
        self.memory.reset(program)
        self.registers = [0] * NUM_REGISTERS
        from repro.isa.program import DEFAULT_STACK_TOP

        self.registers[2] = DEFAULT_STACK_TOP - WORD_BYTES
        self._in_flight = []
        self._fetch_stalled = False
        self.latches.set("fetch.pc", program.entry_point)
        self.latches.set("fetch.valid", 1)

    # ------------------------------------------------------------------ checkpointing
    def _snapshot_microarchitecture(self) -> dict:
        # _InFlightOp.remaining_cycles is decremented in place every cycle,
        # so the ops must be copied in both directions.
        return {
            "registers": list(self.registers),
            "memory": self.memory.snapshot_words(),
            "in_flight": [replace(op) for op in self._in_flight],
            "fetch_stalled": self._fetch_stalled,
        }

    def _restore_microarchitecture(self, micro: dict) -> None:
        self.registers = list(micro["registers"])
        self.memory.restore_words(micro["memory"])
        self._in_flight = [replace(op) for op in micro["in_flight"]]
        self._fetch_stalled = micro["fetch_stalled"]

    def _fingerprint_microarchitecture(self) -> tuple:
        return (tuple(self.registers), self.memory.fingerprint_digest_full(),
                tuple((op.rob_index, int(op.opcode), op.rs1_value,
                       op.rs2_value, op.imm, op.pc, op.remaining_cycles,
                       op.is_load, op.load_address)
                      for op in self._in_flight),
                self._fetch_stalled)

    def _rolling_microarchitecture(self) -> tuple:
        # Must stay field-for-field parallel with the full key above; memory
        # is the only component with a rolling cache (the in-flight window
        # churns every cycle, so caching its tuple would never hit).
        return (tuple(self.registers), self.memory.fingerprint_digest(),
                tuple((op.rob_index, int(op.opcode), op.rs1_value,
                       op.rs2_value, op.imm, op.pc, op.remaining_cycles,
                       op.is_load, op.load_address)
                      for op in self._in_flight),
                self._fetch_stalled)

    def fingerprint_rehash_count(self) -> int:
        return super().fingerprint_rehash_count() + self.memory.rehashed_pages

    # ------------------------------------------------------------------ cycle
    def _step_cycle(self) -> None:
        self._commit()
        if self.terminated:
            return
        self._writeback()
        self._execute_memory_ops()
        self._issue()
        self._rename_dispatch()
        self._fetch()
        self._touch_background_state()

    # ------------------------------------------------------------------ commit
    def _commit(self) -> None:
        latches = self.latches
        for _ in range(COMMIT_WIDTH):
            if latches.get("rob.count") == 0:
                return
            head = latches.get("rob.head")
            if not latches.get(self._rob_field(head, "valid")):
                # Head bookkeeping corrupted; treat as a pipeline hang source.
                return
            if not latches.get(self._rob_field(head, "ready")):
                return
            if latches.get(self._rob_field(head, "exception")):
                kind = _TRAP_FROM_CODE.get(
                    latches.get(self._rob_field(head, "expkind")),
                    TrapKind.ILLEGAL_INSTRUCTION)
                reason = (TerminationReason.DETECTED
                          if kind is TrapKind.SOFTWARE_ASSERTION
                          else TerminationReason.TRAP)
                self.force_termination(reason, kind)
                return
            op_value = latches.get(self._rob_field(head, "op"))
            try:
                opcode = Opcode(op_value)
                info = OPCODE_INFO[opcode]
            except ValueError:
                opcode = None
                info = None
            if latches.get(self._rob_field(head, "is_store")):
                if not self._commit_store(head):
                    return
            if latches.get(self._rob_field(head, "is_out")):
                self.emit_output(latches.get(self._rob_field(head, "result")))
            if info is not None and info.writes_rd:
                rd = latches.get(self._rob_field(head, "rd"))
                self._write_register(rd, latches.get(self._rob_field(head, "result")))
                if (latches.get(f"rat.r{rd:02d}.busy")
                        and latches.get(f"rat.r{rd:02d}.rob") == head):
                    latches.set(f"rat.r{rd:02d}.busy", 0)
                # Keep live checkpoints consistent: once this producer has
                # committed, a later recovery must map its destination to the
                # architectural register file, not to the freed ROB entry.
                self._patch_checkpoints_for_commit(rd, head)
            if latches.get(self._rob_field(head, "is_branch")):
                ckpt = latches.get(self._rob_field(head, "ckpt"))
                if ckpt < CHECKPOINTS:
                    latches.set(f"ckpt.c{ckpt}.valid", 0)
            self.note_retired()
            latches.set(self._rob_field(head, "valid"), 0)
            latches.set("rob.head", (head + 1) % ROB_ENTRIES)
            latches.set("rob.count", latches.get("rob.count") - 1)
            if opcode is Opcode.HALT:
                self.force_termination(TerminationReason.HALTED)
                return

    def _patch_checkpoints_for_commit(self, rd: int, rob_index: int) -> None:
        """Clear ``rd -> rob_index`` mappings inside every live checkpoint."""
        latches = self.latches
        shift = 7 * rd
        for i in range(CHECKPOINTS):
            if not latches.get(f"ckpt.c{i}.valid"):
                continue
            packed = latches.get(f"ckpt.c{i}.map")
            entry = (packed >> shift) & 0x7F
            if (entry & 1) and ((entry >> 1) & 0x3F) == rob_index:
                latches.set(f"ckpt.c{i}.map", packed & ~(0x7F << shift))

    def _commit_store(self, rob_index: int) -> bool:
        """Drain the store-queue head for the committing store.

        Returns False (and terminates the run) on a memory fault.
        """
        latches = self.latches
        head = latches.get("stq.head")
        if latches.get("stq.count") == 0 or not latches.get(self._stq_field(head, "valid")):
            # Store queue out of sync with the ROB (only possible under
            # injection): raise a machine trap.
            self.force_termination(TerminationReason.TRAP, TrapKind.MEMORY_FAULT)
            return False
        address = latches.get(self._stq_field(head, "addr"))
        data = latches.get(self._stq_field(head, "data"))
        is_byte = latches.get(self._stq_field(head, "byte"))
        try:
            if is_byte:
                self.memory.store_byte(address, data)
            else:
                self.memory.store_word(address, data)
        except MemoryFault:
            self.force_termination(TerminationReason.TRAP, TrapKind.MEMORY_FAULT)
            return False
        latches.set(self._stq_field(head, "valid"), 0)
        latches.set("stq.head", (head + 1) % STQ_ENTRIES)
        latches.set("stq.count", latches.get("stq.count") - 1)
        latches.set("mem.l1dcache.addr1.out", address)
        return True

    # ------------------------------------------------------------------ writeback
    def _writeback(self) -> None:
        latches = self.latches
        still_in_flight: list[_InFlightOp] = []
        for op in self._in_flight:
            op.remaining_cycles -= 1
            if op.remaining_cycles > 0:
                still_in_flight.append(op)
                continue
            if op.is_load:
                completed = self._complete_load(op)
                if not completed:
                    op.remaining_cycles = 1
                    still_in_flight.append(op)
                continue
            self._complete_op(op)
        self._in_flight = still_in_flight

    def _complete_op(self, op: _InFlightOp) -> None:
        latches = self.latches
        rob_index = op.rob_index
        if not latches.get(self._rob_field(rob_index, "valid")):
            return  # squashed while executing
        try:
            result = execute_operation(op.opcode, op.rs1_value, op.rs2_value,
                                       op.imm, op.pc)
        except ExecuteTrap as trap:
            latches.set(self._rob_field(rob_index, "exception"), 1)
            latches.set(self._rob_field(rob_index, "expkind"), _TRAP_CODES[trap.kind])
            latches.set(self._rob_field(rob_index, "ready"), 1)
            return
        info = OPCODE_INFO.get(op.opcode)
        if op.opcode in (Opcode.SW, Opcode.SB):
            self._fill_store_queue(rob_index, result.memory_address, result.store_value,
                                   is_byte=op.opcode is Opcode.SB)
        if op.opcode is Opcode.OUT:
            latches.set(self._rob_field(rob_index, "result"), result.output_value or 0)
        elif info is not None and info.writes_rd:
            latches.set(self._rob_field(rob_index, "result"), result.value)
            self._broadcast(rob_index, result.value)
        latches.set(self._rob_field(rob_index, "ready"), 1)
        if latches.get(self._rob_field(rob_index, "is_branch")) or op.opcode in (
                Opcode.JAL, Opcode.JALR):
            self._resolve_branch(op, result.branch_taken, result.branch_target)

    def _fill_store_queue(self, rob_index: int, address: int | None, data: int | None,
                          is_byte: bool) -> None:
        latches = self.latches
        for i in range(STQ_ENTRIES):
            if (latches.get(self._stq_field(i, "valid"))
                    and latches.get(self._stq_field(i, "rob")) == rob_index):
                latches.set(self._stq_field(i, "addr"), address or 0)
                latches.set(self._stq_field(i, "addrvalid"), 1)
                latches.set(self._stq_field(i, "data"), data or 0)
                latches.set(self._stq_field(i, "byte"), 1 if is_byte else 0)
                return

    def _broadcast(self, rob_index: int, value: int) -> None:
        """Wake issue-queue consumers waiting on a ROB tag."""
        latches = self.latches
        for i in range(IQ_ENTRIES):
            if not latches.get(self._iq_field(i, "valid")):
                continue
            if (not latches.get(self._iq_field(i, "s1ready"))
                    and latches.get(self._iq_field(i, "s1tag")) == rob_index):
                latches.set(self._iq_field(i, "s1val"), value)
                latches.set(self._iq_field(i, "s1ready"), 1)
            if (not latches.get(self._iq_field(i, "s2ready"))
                    and latches.get(self._iq_field(i, "s2tag")) == rob_index):
                latches.set(self._iq_field(i, "s2val"), value)
                latches.set(self._iq_field(i, "s2ready"), 1)

    # ------------------------------------------------------------------ branch recovery
    def _resolve_branch(self, op: _InFlightOp, taken: bool, target: int) -> None:
        latches = self.latches
        rob_index = op.rob_index
        predicted_next = (op.pc + WORD_BYTES) & 0xFFFFFFFF
        actual_next = target if taken else predicted_next
        self._train_predictor(op.pc, taken)
        if actual_next == predicted_next:
            return  # fall-through prediction was correct
        # Mispredict: squash everything younger than the branch.
        branch_age = self._rob_age(rob_index)
        ckpt = latches.get(self._rob_field(rob_index, "ckpt"))
        if ckpt < CHECKPOINTS and latches.get(f"ckpt.c{ckpt}.valid"):
            self._restore_checkpoint(ckpt)
        # The checkpoint slot is consumed here; clear the ROB's reference so
        # the slot is not freed a second time at commit after another branch
        # has re-allocated it.
        latches.set(self._rob_field(rob_index, "ckpt"), CHECKPOINTS)
        self._squash_younger_than(branch_age)
        latches.set("rob.tail", (rob_index + 1) % ROB_ENTRIES)
        latches.set("rob.count", branch_age + 1)
        latches.set("fetch.pc", actual_next)
        latches.set("fetch.stall", 0)
        self._fetch_stalled = False
        self._clear_fetch_buffer()

    def _restore_checkpoint(self, ckpt: int) -> None:
        latches = self.latches
        packed = latches.get(f"ckpt.c{ckpt}.map")
        for r in range(NUM_REGISTERS):
            fieldvalue = (packed >> (7 * r)) & 0x7F
            latches.set(f"rat.r{r:02d}.busy", fieldvalue & 1)
            latches.set(f"rat.r{r:02d}.rob", (fieldvalue >> 1) & 0x3F)
        latches.set(f"ckpt.c{ckpt}.valid", 0)

    def _squash_younger_than(self, age_limit: int) -> None:
        """Invalidate every in-flight instruction younger than ``age_limit``."""
        latches = self.latches
        for i in range(ROB_ENTRIES):
            if latches.get(self._rob_field(i, "valid")) and self._rob_age(i) > age_limit:
                if latches.get(self._rob_field(i, "is_branch")):
                    ckpt = latches.get(self._rob_field(i, "ckpt"))
                    if ckpt < CHECKPOINTS:
                        latches.set(f"ckpt.c{ckpt}.valid", 0)
                latches.set(self._rob_field(i, "valid"), 0)
        for i in range(IQ_ENTRIES):
            if latches.get(self._iq_field(i, "valid")):
                rob_index = latches.get(self._iq_field(i, "rob"))
                if self._rob_age(rob_index) > age_limit:
                    latches.set(self._iq_field(i, "valid"), 0)
        # Store queue entries of squashed stores are removed by rebuilding the
        # queue in order.
        surviving: list[dict[str, int]] = []
        head = latches.get("stq.head")
        count = latches.get("stq.count")
        for offset in range(count):
            index = (head + offset) % STQ_ENTRIES
            entry = {name: latches.get(self._stq_field(index, name))
                     for name in ("valid", "rob", "addr", "addrvalid", "data", "byte")}
            if entry["valid"] and self._rob_age(entry["rob"]) <= age_limit:
                surviving.append(entry)
            latches.set(self._stq_field(index, "valid"), 0)
        for offset, entry in enumerate(surviving):
            index = (head + offset) % STQ_ENTRIES
            for name, value in entry.items():
                latches.set(self._stq_field(index, name), value)
        latches.set("stq.tail", (head + len(surviving)) % STQ_ENTRIES)
        latches.set("stq.count", len(surviving))
        # Drop squashed ops from the execution units.
        self._in_flight = [op for op in self._in_flight
                           if self._rob_age(op.rob_index) <= age_limit]

    def _clear_fetch_buffer(self) -> None:
        latches = self.latches
        for i in range(FETCH_BUFFER_ENTRIES):
            latches.set(f"fb.e{i}.valid", 0)
        latches.set("fb.head", 0)
        latches.set("fb.tail", 0)
        latches.set("fb.count", 0)

    def _train_predictor(self, pc: int, taken: bool) -> None:
        """Update gshare hint state (never consulted for correctness)."""
        latches = self.latches
        history = latches.get("bp.gshare.history")
        index = ((pc >> 2) ^ history) % 1024
        table = latches.get("bp.gshare.table")
        counter = (table >> (2 * index)) & 0x3
        counter = min(3, counter + 1) if taken else max(0, counter - 1)
        table &= ~(0x3 << (2 * index))
        table |= counter << (2 * index)
        latches.set("bp.gshare.table", table)
        latches.set("bp.gshare.history", ((history << 1) | int(taken)) & 0xFFF)

    # ------------------------------------------------------------------ memory ops
    def _execute_memory_ops(self) -> None:
        """Advance loads waiting on store-address resolution (handled in
        :meth:`_complete_load`); nothing additional to do per cycle."""

    def _complete_load(self, op: _InFlightOp) -> bool:
        """Try to complete a load; returns False if it must retry next cycle."""
        latches = self.latches
        rob_index = op.rob_index
        if not latches.get(self._rob_field(rob_index, "valid")):
            return True  # squashed
        address = op.load_address
        if address is None:
            result = execute_operation(op.opcode, op.rs1_value, op.rs2_value,
                                       op.imm, op.pc)
            address = result.memory_address or 0
            op.load_address = address
        load_age = self._rob_age(rob_index)
        forwarded: int | None = None
        head = latches.get("stq.head")
        count = latches.get("stq.count")
        for offset in range(count):
            index = (head + offset) % STQ_ENTRIES
            if not latches.get(self._stq_field(index, "valid")):
                continue
            store_rob = latches.get(self._stq_field(index, "rob"))
            if self._rob_age(store_rob) >= load_age:
                continue  # younger than or same as the load
            if not latches.get(self._stq_field(index, "addrvalid")):
                return False  # older store with unknown address: wait
            if latches.get(self._stq_field(index, "addr")) == address:
                forwarded = latches.get(self._stq_field(index, "data"))
        if forwarded is not None:
            value = forwarded
        else:
            try:
                if op.opcode is Opcode.LB:
                    value = self.memory.load_byte(address)
                else:
                    value = self.memory.load_word(address)
            except MemoryFault:
                latches.set(self._rob_field(rob_index, "exception"), 1)
                latches.set(self._rob_field(rob_index, "expkind"),
                            _TRAP_CODES[TrapKind.MEMORY_FAULT])
                latches.set(self._rob_field(rob_index, "ready"), 1)
                return True
        latches.set(self._rob_field(rob_index, "result"), value)
        latches.set(self._rob_field(rob_index, "ready"), 1)
        self._broadcast(rob_index, value)
        latches.set("mem.l1dcache.accessaddr0", address)
        latches.set("mem.l1dcache.accessfulldata0", value)
        return True

    # ------------------------------------------------------------------ issue
    def _issue(self) -> None:
        latches = self.latches
        candidates: list[tuple[int, int]] = []
        for i in range(IQ_ENTRIES):
            if (latches.get(self._iq_field(i, "valid"))
                    and not latches.get(self._iq_field(i, "issued"))
                    and latches.get(self._iq_field(i, "s1ready"))
                    and latches.get(self._iq_field(i, "s2ready"))):
                rob_index = latches.get(self._iq_field(i, "rob"))
                candidates.append((self._rob_age(rob_index), i))
        candidates.sort()
        for _, iq_index in candidates[:ISSUE_WIDTH]:
            rob_index = latches.get(self._iq_field(iq_index, "rob"))
            if not latches.get(self._rob_field(rob_index, "valid")):
                latches.set(self._iq_field(iq_index, "valid"), 0)
                continue
            op_value = latches.get(self._iq_field(iq_index, "op"))
            try:
                opcode = Opcode(op_value)
                info = OPCODE_INFO[opcode]
            except ValueError:
                latches.set(self._rob_field(rob_index, "exception"), 1)
                latches.set(self._rob_field(rob_index, "expkind"),
                            _TRAP_CODES[TrapKind.ILLEGAL_INSTRUCTION])
                latches.set(self._rob_field(rob_index, "ready"), 1)
                latches.set(self._iq_field(iq_index, "valid"), 0)
                continue
            in_flight = _InFlightOp(
                rob_index=rob_index,
                opcode=opcode,
                rs1_value=latches.get(self._iq_field(iq_index, "s1val")),
                rs2_value=latches.get(self._iq_field(iq_index, "s2val")),
                imm=latches.get_signed(self._iq_field(iq_index, "imm")),
                pc=latches.get(self._iq_field(iq_index, "pc")),
                remaining_cycles=max(1, info.execute_latency),
                is_load=info.is_load,
            )
            self._in_flight.append(in_flight)
            latches.set(self._iq_field(iq_index, "issued"), 1)
            latches.set(self._iq_field(iq_index, "valid"), 0)

    # ------------------------------------------------------------------ rename / dispatch
    def _rename_dispatch(self) -> None:
        latches = self.latches
        for _ in range(RENAME_WIDTH):
            if latches.get("fb.count") == 0:
                return
            if latches.get("rob.count") >= ROB_ENTRIES:
                return
            free_iq = self._find_free_iq_entry()
            if free_iq is None:
                return
            fb_head = latches.get("fb.head")
            fault = latches.get(self._fb_field(fb_head, "fault"))
            word = latches.get(self._fb_field(fb_head, "inst"))
            pc = latches.get(self._fb_field(fb_head, "pc"))
            instruction = None
            trap_kind: TrapKind | None = None
            if fault:
                trap_kind = TrapKind.FETCH_FAULT
            else:
                try:
                    instruction = decode_instruction(word)
                except EncodingError:
                    trap_kind = TrapKind.ILLEGAL_INSTRUCTION
            if instruction is not None:
                info = OPCODE_INFO[instruction.opcode]
                if info.is_store and latches.get("stq.count") >= STQ_ENTRIES:
                    return
                if ((info.is_branch or info.is_jump)
                        and self._find_free_checkpoint() is None):
                    return
            # Consume the fetch-buffer entry.
            latches.set(self._fb_field(fb_head, "valid"), 0)
            latches.set("fb.head", (fb_head + 1) % FETCH_BUFFER_ENTRIES)
            latches.set("fb.count", latches.get("fb.count") - 1)
            # Allocate the ROB entry.
            tail = latches.get("rob.tail")
            latches.set(self._rob_field(tail, "valid"), 1)
            latches.set(self._rob_field(tail, "ready"), 0)
            latches.set(self._rob_field(tail, "exception"), 0)
            latches.set(self._rob_field(tail, "expkind"), 0)
            latches.set(self._rob_field(tail, "is_store"), 0)
            latches.set(self._rob_field(tail, "is_out"), 0)
            latches.set(self._rob_field(tail, "is_branch"), 0)
            latches.set(self._rob_field(tail, "ckpt"), CHECKPOINTS)
            latches.set(self._rob_field(tail, "pc"), pc)
            latches.set("rob.tail", (tail + 1) % ROB_ENTRIES)
            latches.set("rob.count", latches.get("rob.count") + 1)
            if trap_kind is not None:
                latches.set(self._rob_field(tail, "op"), 0)
                latches.set(self._rob_field(tail, "rd"), 0)
                latches.set(self._rob_field(tail, "exception"), 1)
                latches.set(self._rob_field(tail, "expkind"), _TRAP_CODES[trap_kind])
                latches.set(self._rob_field(tail, "ready"), 1)
                continue
            info = OPCODE_INFO[instruction.opcode]
            needs_checkpoint = info.is_branch or info.is_jump
            latches.set(self._rob_field(tail, "op"), int(instruction.opcode))
            latches.set(self._rob_field(tail, "rd"), instruction.rd)
            latches.set(self._rob_field(tail, "is_store"), 1 if info.is_store else 0)
            latches.set(self._rob_field(tail, "is_out"), 1 if info.is_output else 0)
            latches.set(self._rob_field(tail, "is_branch"), 1 if needs_checkpoint else 0)
            if info.is_store:
                stq_tail = latches.get("stq.tail")
                latches.set(self._stq_field(stq_tail, "valid"), 1)
                latches.set(self._stq_field(stq_tail, "rob"), tail)
                latches.set(self._stq_field(stq_tail, "addrvalid"), 0)
                latches.set("stq.tail", (stq_tail + 1) % STQ_ENTRIES)
                latches.set("stq.count", latches.get("stq.count") + 1)
            # Fill the issue-queue entry with renamed operands.
            self._fill_iq_entry(free_iq, instruction, tail, pc, info)
            # Update the rename map for the destination.
            if info.writes_rd and instruction.rd != 0:
                latches.set(f"rat.r{instruction.rd:02d}.busy", 1)
                latches.set(f"rat.r{instruction.rd:02d}.rob", tail)
            # Checkpoint the rename map *after* the control instruction's own
            # destination rename, so recovery restores the map younger
            # instructions must observe on the correct path.
            if needs_checkpoint:
                ckpt = self._find_free_checkpoint()
                latches.set(self._rob_field(tail, "ckpt"), ckpt)
                self._save_checkpoint(ckpt)
            # HALT and NOP need no execution: mark ready immediately.
            if instruction.opcode in (Opcode.HALT, Opcode.NOP):
                latches.set(self._rob_field(tail, "ready"), 1)
                latches.set(self._iq_field(free_iq, "valid"), 0)

    def _fill_iq_entry(self, iq_index: int, instruction, rob_index: int, pc: int,
                       info) -> None:
        latches = self.latches
        latches.set(self._iq_field(iq_index, "valid"), 1)
        latches.set(self._iq_field(iq_index, "issued"), 0)
        latches.set(self._iq_field(iq_index, "op"), int(instruction.opcode))
        latches.set(self._iq_field(iq_index, "rob"), rob_index)
        latches.set(self._iq_field(iq_index, "imm"), instruction.imm)
        latches.set(self._iq_field(iq_index, "pc"), pc)
        ready1, tag1, value1 = self._rename_source(instruction.rs1, info.reads_rs1)
        ready2, tag2, value2 = self._rename_source(instruction.rs2, info.reads_rs2)
        latches.set(self._iq_field(iq_index, "s1ready"), ready1)
        latches.set(self._iq_field(iq_index, "s1tag"), tag1)
        latches.set(self._iq_field(iq_index, "s1val"), value1)
        latches.set(self._iq_field(iq_index, "s2ready"), ready2)
        latches.set(self._iq_field(iq_index, "s2tag"), tag2)
        latches.set(self._iq_field(iq_index, "s2val"), value2)

    def _rename_source(self, arch_reg: int, is_read: bool) -> tuple[int, int, int]:
        """Return (ready, tag, value) for one source operand."""
        latches = self.latches
        if not is_read or arch_reg == 0:
            return 1, 0, self._read_register(arch_reg) if is_read else 0
        if latches.get(f"rat.r{arch_reg:02d}.busy"):
            producer = latches.get(f"rat.r{arch_reg:02d}.rob")
            if not latches.get(self._rob_field(producer, "valid")):
                # Stale mapping (possible transiently under fault injection):
                # fall back to the architectural value.
                return 1, 0, self._read_register(arch_reg)
            if (latches.get(self._rob_field(producer, "ready"))
                    and not latches.get(self._rob_field(producer, "exception"))):
                return 1, 0, latches.get(self._rob_field(producer, "result"))
            return 0, producer, 0
        return 1, 0, self._read_register(arch_reg)

    def _find_free_iq_entry(self) -> int | None:
        latches = self.latches
        for i in range(IQ_ENTRIES):
            if not latches.get(self._iq_field(i, "valid")):
                return i
        return None

    def _find_free_checkpoint(self) -> int | None:
        latches = self.latches
        for i in range(CHECKPOINTS):
            if not latches.get(f"ckpt.c{i}.valid"):
                return i
        return None

    def _save_checkpoint(self, ckpt: int) -> None:
        latches = self.latches
        packed = 0
        for r in range(NUM_REGISTERS):
            fieldvalue = (latches.get(f"rat.r{r:02d}.busy")
                          | (latches.get(f"rat.r{r:02d}.rob") << 1))
            packed |= fieldvalue << (7 * r)
        latches.set(f"ckpt.c{ckpt}.map", packed)
        latches.set(f"ckpt.c{ckpt}.valid", 1)

    # ------------------------------------------------------------------ fetch
    def _fetch(self) -> None:
        latches = self.latches
        if self._fetch_stalled or latches.get("fetch.stall"):
            return
        for _ in range(FETCH_WIDTH):
            if latches.get("fb.count") >= FETCH_BUFFER_ENTRIES:
                return
            pc = latches.get("fetch.pc")
            instruction = self._program.instruction_at(pc) if self._program else None
            tail = latches.get("fb.tail")
            latches.set(self._fb_field(tail, "pc"), pc)
            latches.set(self._fb_field(tail, "valid"), 1)
            if instruction is None:
                latches.set(self._fb_field(tail, "inst"), 0)
                latches.set(self._fb_field(tail, "fault"), 1)
                latches.set("fb.tail", (tail + 1) % FETCH_BUFFER_ENTRIES)
                latches.set("fb.count", latches.get("fb.count") + 1)
                latches.set("fetch.stall", 1)
                self._fetch_stalled = True
                return
            latches.set(self._fb_field(tail, "inst"), encode_instruction(instruction))
            latches.set(self._fb_field(tail, "fault"), 0)
            latches.set("fb.tail", (tail + 1) % FETCH_BUFFER_ENTRIES)
            latches.set("fb.count", latches.get("fb.count") + 1)
            latches.set("fetch.pc", (pc + WORD_BYTES) & 0xFFFFFFFF)

    def _touch_background_state(self) -> None:
        """Advance vanish-class bookkeeping so those flip-flops really toggle."""
        latches = self.latches
        latches.set("perf.counter0", (latches.get("perf.counter0") + 1) & (2**48 - 1))
        latches.set("perf.counter1",
                    (latches.get("perf.counter1") + len(self._in_flight)) & (2**48 - 1))
        latches.set("ldq.numentries", len(self._in_flight) & 0xF)
