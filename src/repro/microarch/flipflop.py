"""Flip-flop level description of a simulated core.

The paper performs *flip-flop-level* soft error injection: every injection
targets a specific bit of a specific sequential element (pipeline latch,
control register, queue entry, ...) at a specific cycle.  To reproduce that,
each simulated core declares every sequential structure it contains in a
:class:`FlipFlopRegistry`.  A structure is a named, fixed-width field (for
example ``e.result`` -- the 32-bit execute-stage result latch).  Each bit of
each structure is one flip-flop and receives a global *flat index*, which is
the unit of injection, selective hardening and parity grouping throughout the
framework.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class FlipFlopStructure:
    """A named group of flip-flops (one RTL register / latch field).

    Attributes:
        name: hierarchical name, e.g. ``"e.ctrl.inst"``; mirrors the paper's
            Appendix A naming style (``<stage>.<unit>.<field>``).
        width: number of flip-flops (bits) in the structure.
        unit: functional unit the structure belongs to (``"fetch"``,
            ``"execute"``, ``"rob"``, ...).  Used by the locality parity
            grouping heuristic and by the placement model.
        first_index: flat index of bit 0 of this structure.
        architectural: True when the structure holds program-visible data
            whose corruption can directly change program results; False for
            hint/bookkeeping state (branch predictor, performance counters,
            debug registers).  This flag is *descriptive only* -- outcome
            classification always comes from actually running the program.
    """

    name: str
    width: int
    unit: str
    first_index: int
    architectural: bool = True

    @property
    def last_index(self) -> int:
        """Flat index of the highest bit of this structure."""
        return self.first_index + self.width - 1

    def bit_indices(self) -> range:
        """Flat indices covered by this structure."""
        return range(self.first_index, self.first_index + self.width)


@dataclass(frozen=True)
class FaultSite:
    """A single injectable flip-flop: (structure, bit) with its flat index."""

    structure: FlipFlopStructure
    bit: int

    @property
    def flat_index(self) -> int:
        return self.structure.first_index + self.bit

    @property
    def name(self) -> str:
        return f"{self.structure.name}[{self.bit}]"


class FlipFlopRegistry:
    """Registry of all sequential state in one core.

    Cores build their registry at construction time; the registry is then
    immutable for the lifetime of the core and shared with the fault
    injector, the resilience techniques and the physical-design model.
    """

    def __init__(self, core_name: str):
        self.core_name = core_name
        self._structures: list[FlipFlopStructure] = []
        self._by_name: dict[str, FlipFlopStructure] = {}
        self._total_bits = 0
        self._frozen = False

    # ------------------------------------------------------------------ build
    def register(self, name: str, width: int, unit: str,
                 architectural: bool = True) -> FlipFlopStructure:
        """Register a new structure and return its descriptor.

        Raises:
            ValueError: for duplicate names, non-positive widths, or when the
                registry has been frozen.
        """
        if self._frozen:
            raise ValueError("registry is frozen; cores may not add state after construction")
        if width <= 0:
            raise ValueError(f"structure {name!r} must have positive width, got {width}")
        if name in self._by_name:
            raise ValueError(f"duplicate flip-flop structure name: {name!r}")
        structure = FlipFlopStructure(name=name, width=width, unit=unit,
                                      first_index=self._total_bits,
                                      architectural=architectural)
        self._structures.append(structure)
        self._by_name[name] = structure
        self._total_bits += width
        self.__dict__.pop("_units_by_index", None)  # invalidate unit_of table
        return structure

    def freeze(self) -> None:
        """Prevent further registration (called once core construction ends)."""
        self._frozen = True

    # ------------------------------------------------------------------ query
    @property
    def structures(self) -> tuple[FlipFlopStructure, ...]:
        return tuple(self._structures)

    @property
    def total_flip_flops(self) -> int:
        """Total number of flip-flops (bits) in the core."""
        return self._total_bits

    def structure(self, name: str) -> FlipFlopStructure:
        """Look a structure up by name (KeyError if absent)."""
        return self._by_name[name]

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    def structure_names(self) -> list[str]:
        return [s.name for s in self._structures]

    def units(self) -> list[str]:
        """Distinct functional units, in registration order."""
        seen: dict[str, None] = {}
        for structure in self._structures:
            seen.setdefault(structure.unit, None)
        return list(seen)

    def structures_in_unit(self, unit: str) -> list[FlipFlopStructure]:
        return [s for s in self._structures if s.unit == unit]

    def site(self, flat_index: int) -> FaultSite:
        """Map a flat flip-flop index back to its (structure, bit) fault site."""
        if not 0 <= flat_index < self._total_bits:
            raise IndexError(f"flip-flop index out of range: {flat_index}")
        # Binary search over the structure start offsets.
        low, high = 0, len(self._structures) - 1
        while low <= high:
            mid = (low + high) // 2
            structure = self._structures[mid]
            if flat_index < structure.first_index:
                high = mid - 1
            elif flat_index > structure.last_index:
                low = mid + 1
            else:
                return FaultSite(structure=structure, bit=flat_index - structure.first_index)
        raise IndexError(f"flip-flop index not found: {flat_index}")  # pragma: no cover

    def unit_of(self, flat_index: int) -> str:
        """Functional unit of one flip-flop, via a lazily built flat table.

        The exploration engine asks this once per flip-flop per schedule
        (tens of millions of times over a 586-combination sweep), so the
        per-call binary search of :meth:`site` is replaced by one shared
        O(total) table; :meth:`register` invalidates it.
        """
        units = self.__dict__.get("_units_by_index")
        if units is None:
            units = [structure.unit for structure in self._structures
                     for _ in range(structure.width)]
            self._units_by_index = units
        return units[flat_index]

    def all_sites(self) -> list[FaultSite]:
        """Every injectable fault site in the core (one per flip-flop)."""
        return [FaultSite(structure=s, bit=b)
                for s in self._structures for b in range(s.width)]

    def non_architectural_fraction(self) -> float:
        """Fraction of flip-flops in hint/bookkeeping structures."""
        if self._total_bits == 0:
            return 0.0
        inert = sum(s.width for s in self._structures if not s.architectural)
        return inert / self._total_bits
