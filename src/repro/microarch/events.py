"""Simulation events, termination reasons and run results.

A single program run on a simulated core ends in exactly one of the
termination reasons below.  The fault-injection outcome classifier
(:mod:`repro.faultinjection.outcomes`) maps a *pair* of runs (golden,
injected) onto the paper's outcome categories (Vanished / OMM / UT / Hang /
ED).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum, unique


@unique
class TerminationReason(Enum):
    """Why a simulated run stopped."""

    HALTED = "halted"              # program executed HALT normally
    TRAP = "trap"                  # illegal instruction, memory fault, ...
    HANG = "hang"                  # exceeded the watchdog cycle limit
    DETECTED = "detected"          # a resilience technique flagged an error


@unique
class TrapKind(Enum):
    """Specific trap causes (recorded for diagnostics and DUE analysis)."""

    ILLEGAL_INSTRUCTION = "illegal_instruction"
    MEMORY_FAULT = "memory_fault"
    FETCH_FAULT = "fetch_fault"
    DIVIDE_BY_ZERO = "divide_by_zero"
    SOFTWARE_ASSERTION = "software_assertion"


@dataclass
class DetectionEvent:
    """An error detection raised by a resilience technique during a run.

    Attributes:
        technique: short technique name (``"parity"``, ``"eddi"``, ...).
        cycle: cycle at which the detection fired.
        detail: free-form description (structure name, check id, ...).
        recovered: True when an attached hardware recovery mechanism
            recovered the error in-run (the run then continues).
    """

    technique: str
    cycle: int
    detail: str = ""
    recovered: bool = False


@dataclass
class RunResult:
    """Outcome of running one program once on one core configuration.

    Attributes:
        program_name: name of the executed program.
        core_name: name of the core model.
        reason: how the run terminated.
        trap: trap cause when ``reason`` is TRAP, else None.
        cycles: cycles elapsed until termination.
        instructions_retired: committed instruction count.
        output: the program output stream (values emitted by ``out``).
        detections: resilience-technique detections raised during the run.
        recovery_cycles: extra cycles spent in hardware recovery.
    """

    program_name: str
    core_name: str
    reason: TerminationReason
    trap: TrapKind | None = None
    cycles: int = 0
    instructions_retired: int = 0
    output: list[int] = field(default_factory=list)
    detections: list[DetectionEvent] = field(default_factory=list)
    recovery_cycles: int = 0

    @property
    def ipc(self) -> float:
        """Instructions per cycle for the run (0 when no cycles elapsed)."""
        if self.cycles == 0:
            return 0.0
        return self.instructions_retired / self.cycles

    @property
    def normal_termination(self) -> bool:
        """True when the program ran to completion (HALT committed)."""
        return self.reason is TerminationReason.HALTED

    def unrecovered_detections(self) -> list[DetectionEvent]:
        """Detections that were not recovered by hardware recovery."""
        return [d for d in self.detections if not d.recovered]

    def first_detection_cycle(self) -> int | None:
        """Cycle of the first unrecovered detection, if any."""
        unrecovered = self.unrecovered_detections()
        if not unrecovered:
            return None
        return min(d.cycle for d in unrecovered)
