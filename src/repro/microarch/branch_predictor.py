"""A small bimodal branch predictor.

The predictor exists for micro-architectural fidelity: it contributes
flip-flops whose corruption never changes program correctness (only which
path is speculatively fetched), reproducing the paper's observation that a
substantial fraction of flip-flops -- branch predictor state among them --
only produce errors that vanish (Appendix A).
"""

from __future__ import annotations

from repro.microarch.state import LatchState


class BimodalPredictor:
    """2-bit saturating-counter bimodal predictor backed by latch state.

    The counter table and the global history register are registered as
    flip-flop structures by the owning core; this class only manipulates
    them through :class:`LatchState` so injected flips are honoured.
    """

    def __init__(self, latches: LatchState, table_structure: str,
                 history_structure: str, entries: int):
        self._latches = latches
        self._table_structure = table_structure
        self._history_structure = history_structure
        self._entries = entries

    def _counter(self, index: int) -> int:
        table = self._latches.get(self._table_structure)
        return (table >> (2 * index)) & 0x3

    def _set_counter(self, index: int, value: int) -> None:
        table = self._latches.get(self._table_structure)
        table &= ~(0x3 << (2 * index))
        table |= (value & 0x3) << (2 * index)
        self._latches.set(self._table_structure, table)

    def _index(self, pc: int) -> int:
        history = self._latches.get(self._history_structure)
        return ((pc >> 2) ^ history) % self._entries

    def predict_taken(self, pc: int) -> bool:
        """Predict whether the branch at ``pc`` is taken."""
        return self._counter(self._index(pc)) >= 2

    def update(self, pc: int, taken: bool) -> None:
        """Train the predictor with the resolved outcome of the branch at ``pc``."""
        index = self._index(pc)
        counter = self._counter(index)
        if taken:
            counter = min(3, counter + 1)
        else:
            counter = max(0, counter - 1)
        self._set_counter(index, counter)
        history = self._latches.get(self._history_structure)
        width = self._latches.registry.structure(self._history_structure).width
        history = ((history << 1) | (1 if taken else 0)) & ((1 << width) - 1)
        self._latches.set(self._history_structure, history)
