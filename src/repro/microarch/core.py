"""Common simulated-core interface.

Every core model (in-order, out-of-order, monitor) implements
:class:`BaseCore`.  The fault-injection machinery and the resilience library
interact with cores *only* through this interface plus the flip-flop registry,
which keeps the cores free of any resilience-specific logic: protection
semantics are applied from the outside via per-cycle hooks.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Callable

from repro.isa.program import Program
from repro.microarch.events import DetectionEvent, RunResult, TerminationReason, TrapKind
from repro.microarch.flipflop import FlipFlopRegistry
from repro.microarch.state import LatchState

CycleHook = Callable[["BaseCore", int], None]
"""Callback invoked at the start of every cycle: ``hook(core, cycle)``."""

DEFAULT_MAX_CYCLES = 2_000_000
"""Safety watchdog for golden (error-free) runs."""


class BaseCore(ABC):
    """Abstract base class for cycle-level core models.

    Concrete cores must populate ``self.registry`` with every sequential
    structure before calling :meth:`_finalize_state`, implement
    :meth:`_reset_microarchitecture` and :meth:`_step_cycle`, and advance the
    documented counters (``_retired``) as instructions commit.
    """

    def __init__(self, name: str, clock_mhz: float):
        self.name = name
        self.clock_mhz = clock_mhz
        self.registry = FlipFlopRegistry(name)
        self.latches: LatchState | None = None
        self._program: Program | None = None
        self._cycle = 0
        self._retired = 0
        self._output: list[int] = []
        self._detections: list[DetectionEvent] = []
        self._recovery_cycles = 0
        self._pending_recovery = 0
        self._termination: TerminationReason | None = None
        self._trap: TrapKind | None = None

    # ------------------------------------------------------------------ build
    def _finalize_state(self) -> None:
        """Freeze the registry and allocate latch storage (call once)."""
        self.registry.freeze()
        self.latches = LatchState(self.registry)

    # ------------------------------------------------------------------ introspection
    @property
    def cycle(self) -> int:
        """Current cycle number."""
        return self._cycle

    @property
    def instructions_retired(self) -> int:
        return self._retired

    @property
    def output(self) -> list[int]:
        """Program output emitted so far."""
        return self._output

    @property
    def program(self) -> Program | None:
        return self._program

    @property
    def flip_flop_count(self) -> int:
        return self.registry.total_flip_flops

    @property
    def terminated(self) -> bool:
        return self._termination is not None

    # ------------------------------------------------------------------ hooks for resilience logic
    def signal_detection(self, event: DetectionEvent) -> None:
        """Record an error detection raised by a resilience technique."""
        self._detections.append(event)

    def force_termination(self, reason: TerminationReason,
                          trap: TrapKind | None = None) -> None:
        """Terminate the run at the end of the current cycle."""
        if self._termination is None:
            self._termination = reason
            self._trap = trap

    def schedule_recovery(self, cycles: int) -> None:
        """Charge ``cycles`` of hardware-recovery stall to the run."""
        self._pending_recovery += cycles
        self._recovery_cycles += cycles

    def emit_output(self, value: int) -> None:
        """Append a value to the program output stream."""
        self._output.append(value & 0xFFFFFFFF)

    def note_retired(self, count: int = 1) -> None:
        """Record committed instructions."""
        self._retired += count

    # ------------------------------------------------------------------ template methods
    @abstractmethod
    def _reset_microarchitecture(self, program: Program) -> None:
        """Reset all core-specific state for a new run of ``program``."""

    @abstractmethod
    def _step_cycle(self) -> None:
        """Advance the core by one clock cycle."""

    # ------------------------------------------------------------------ run loop
    def reset(self, program: Program) -> None:
        """Prepare the core for a fresh run of ``program``."""
        if self.latches is None:
            raise RuntimeError("core state was never finalised")
        self._program = program
        self._cycle = 0
        self._retired = 0
        self._output = []
        self._detections = []
        self._recovery_cycles = 0
        self._pending_recovery = 0
        self._termination = None
        self._trap = None
        self.latches.clear()
        self._reset_microarchitecture(program)

    def step(self) -> bool:
        """Advance one cycle.  Returns False once the run has terminated."""
        if self._termination is not None:
            return False
        if self._pending_recovery > 0:
            # Hardware recovery stalls the pipeline; no architectural progress.
            self._pending_recovery -= 1
            self._cycle += 1
            return True
        self._step_cycle()
        self._cycle += 1
        return self._termination is None

    def run(self, program: Program, max_cycles: int = DEFAULT_MAX_CYCLES,
            cycle_hook: CycleHook | None = None) -> RunResult:
        """Run ``program`` to termination (or the ``max_cycles`` watchdog).

        ``cycle_hook`` is invoked at the start of every cycle and is how the
        fault injector applies bit flips and how resilience semantics observe
        the run.
        """
        self.reset(program)
        while self._termination is None:
            if self._cycle >= max_cycles:
                self._termination = TerminationReason.HANG
                break
            if cycle_hook is not None:
                cycle_hook(self, self._cycle)
            if self._termination is not None:
                break
            self.step()
        return RunResult(
            program_name=program.name,
            core_name=self.name,
            reason=self._termination,
            trap=self._trap,
            cycles=self._cycle,
            instructions_retired=self._retired,
            output=list(self._output),
            detections=list(self._detections),
            recovery_cycles=self._recovery_cycles,
        )
