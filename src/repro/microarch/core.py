"""Common simulated-core interface.

Every core model (in-order, out-of-order, monitor) implements
:class:`BaseCore`.  The fault-injection machinery and the resilience library
interact with cores *only* through this interface plus the flip-flop registry,
which keeps the cores free of any resilience-specific logic: protection
semantics are applied from the outside via per-cycle hooks.
"""

from __future__ import annotations

import hashlib
import pickle
from abc import ABC, abstractmethod
from dataclasses import dataclass, field, replace
from enum import Enum, unique
from typing import Callable

from repro.isa.program import Program
from repro.microarch.events import DetectionEvent, RunResult, TerminationReason, TrapKind
from repro.microarch.flipflop import FlipFlopRegistry
from repro.microarch.state import LatchState

CycleHook = Callable[["BaseCore", int], None]
"""Callback invoked at the start of every cycle: ``hook(core, cycle)``."""

DEFAULT_MAX_CYCLES = 2_000_000
"""Safety watchdog for golden (error-free) runs."""


@unique
class CoreClass(Enum):
    """Microarchitectural class of a core model.

    Workload-suite selection (``repro.workloads.suite.suite_for_core``) keys
    off this attribute instead of pattern-matching core *names*, so renamed
    or subclassed cores keep the correct benchmark subset.
    """

    IN_ORDER = "in-order"
    OUT_OF_ORDER = "out-of-order"


@dataclass
class CoreSnapshot:
    """Complete mid-run state of a core, captured at a cycle boundary.

    A snapshot taken at the *start* of cycle ``cycle`` (before the cycle hook
    fires) can be restored onto any identically-constructed core;
    :meth:`BaseCore.resume` then reproduces the remainder of the run
    bit-for-bit.  Snapshots are plain data (ints, lists, dicts) so they can be
    pickled to worker processes by the parallel injection engine.

    Attributes:
        core_name: name of the core the snapshot was taken from (validated on
            restore).
        cycle: cycle number at capture time.
        retired: committed instruction count.
        output: program output emitted so far.
        detections: resilience-technique detections raised so far.
        recovery_cycles: total hardware-recovery stall cycles charged.
        pending_recovery: recovery stall cycles not yet consumed.
        latches: flip-flop values in registry order
            (:meth:`~repro.microarch.state.LatchState.serialize`).
        micro: core-specific non-latch state (architectural registers, memory
            image, execution-unit bookkeeping) as produced by the core's
            ``_snapshot_microarchitecture``.
    """

    core_name: str
    cycle: int
    retired: int
    output: list[int]
    detections: list[DetectionEvent]
    recovery_cycles: int
    pending_recovery: int
    latches: tuple[int, ...]
    micro: dict = field(default_factory=dict)


class BaseCore(ABC):
    """Abstract base class for cycle-level core models.

    Concrete cores must populate ``self.registry`` with every sequential
    structure before calling :meth:`_finalize_state`, implement
    :meth:`_reset_microarchitecture` and :meth:`_step_cycle`, and advance the
    documented counters (``_retired``) as instructions commit.
    """

    def __init__(self, name: str, clock_mhz: float, core_class: CoreClass):
        self.name = name
        self.clock_mhz = clock_mhz
        self.core_class = core_class
        self.registry = FlipFlopRegistry(name)
        self.latches: LatchState | None = None
        # audit: allow[state-coverage] snapshots deliberately omit the program; restore(snapshot, program) re-binds it explicitly
        self._program: Program | None = None
        self._cycle = 0
        self._retired = 0
        self._output: list[int] = []
        self._detections: list[DetectionEvent] = []
        self._recovery_cycles = 0
        self._pending_recovery = 0
        # audit: allow[state-coverage] snapshots are only taken at live cycle boundaries, where termination is None by construction
        self._termination: TerminationReason | None = None
        # audit: allow[state-coverage] a trap latches into _termination the same cycle; never live at a snapshot boundary
        self._trap: TrapKind | None = None

    # ------------------------------------------------------------------ build
    def _finalize_state(self) -> None:
        """Freeze the registry and allocate latch storage (call once)."""
        self.registry.freeze()
        self.latches = LatchState(self.registry)

    # ------------------------------------------------------------------ introspection
    @property
    def cycle(self) -> int:
        """Current cycle number."""
        return self._cycle

    @property
    def instructions_retired(self) -> int:
        return self._retired

    @property
    def output(self) -> list[int]:
        """Program output emitted so far."""
        return self._output

    @property
    def program(self) -> Program | None:
        return self._program

    @property
    def flip_flop_count(self) -> int:
        return self.registry.total_flip_flops

    @property
    def terminated(self) -> bool:
        return self._termination is not None

    # ------------------------------------------------------------------ hooks for resilience logic
    def signal_detection(self, event: DetectionEvent) -> None:
        """Record an error detection raised by a resilience technique."""
        self._detections.append(event)

    def force_termination(self, reason: TerminationReason,
                          trap: TrapKind | None = None) -> None:
        """Terminate the run at the end of the current cycle."""
        if self._termination is None:
            self._termination = reason
            self._trap = trap

    def schedule_recovery(self, cycles: int) -> None:
        """Charge ``cycles`` of hardware-recovery stall to the run."""
        self._pending_recovery += cycles
        self._recovery_cycles += cycles

    def emit_output(self, value: int) -> None:
        """Append a value to the program output stream."""
        self._output.append(value & 0xFFFFFFFF)

    def note_retired(self, count: int = 1) -> None:
        """Record committed instructions."""
        self._retired += count

    # ------------------------------------------------------------------ template methods
    @abstractmethod
    def _reset_microarchitecture(self, program: Program) -> None:
        """Reset all core-specific state for a new run of ``program``."""

    @abstractmethod
    def _step_cycle(self) -> None:
        """Advance the core by one clock cycle."""

    @abstractmethod
    def _snapshot_microarchitecture(self) -> dict:
        """Capture all core-specific state not held in the latch registry.

        Must return plain (picklable) data; every mutable container must be
        copied so later simulation does not alias into the snapshot.
        """

    @abstractmethod
    def _restore_microarchitecture(self, micro: dict) -> None:
        """Restore state captured by :meth:`_snapshot_microarchitecture`.

        Must copy mutable containers out of ``micro`` so that restoring the
        same snapshot twice is safe.
        """

    @abstractmethod
    def _fingerprint_microarchitecture(self) -> tuple:
        """Canonical hashable key over the state of
        :meth:`_snapshot_microarchitecture`.

        Must be a plain (picklable, deterministic) value covering every field
        the snapshot captures, so that equal keys imply the snapshots would
        restore identical microarchitectural state.  Unlike the snapshot it
        never copies containers -- it only *reads* -- which is what makes
        fingerprints cheap enough for a dense convergence grid.
        """

    # ------------------------------------------------------------------ checkpointing
    def snapshot(self) -> CoreSnapshot:
        """Capture the complete simulation state at the current cycle boundary.

        Call from a cycle hook (the start of a cycle) or after termination;
        the snapshot can later be handed to :meth:`restore`/:meth:`resume` on
        this core or any identically-constructed one.

        **Coverage contract.**  Every run-varying attribute a subclass adds
        must be captured here (via :meth:`_snapshot_microarchitecture`),
        re-adopted by :meth:`restore` (via
        :meth:`_restore_microarchitecture`), *and* hashed by
        :meth:`state_fingerprint` (via
        :meth:`_fingerprint_microarchitecture`) -- state that escapes any
        leg of the trio survives restore silently corrupted, and the
        convergence gate will declare divergent runs converged.  The
        ``state-coverage`` audit rule (``python -m repro.devtools.audit``)
        enforces this statically: attributes mutated outside ``__init__``
        and the trio must appear in all three, or carry a reasoned
        ``# audit: allow[state-coverage]`` suppression at their declaration
        (as ``_program``, ``_termination`` and ``_trap`` do above).
        """
        if self.latches is None:
            raise RuntimeError("core state was never finalised")
        return CoreSnapshot(
            core_name=self.name,
            cycle=self._cycle,
            retired=self._retired,
            output=list(self._output),
            detections=[replace(d) for d in self._detections],
            recovery_cycles=self._recovery_cycles,
            pending_recovery=self._pending_recovery,
            latches=self.latches.serialize(),
            micro=self._snapshot_microarchitecture(),
        )

    def state_fingerprint(self) -> bytes:
        """Stable 128-bit digest of the complete simulation state.

        The fingerprint hashes exactly the state :meth:`snapshot` captures
        (and :meth:`restore` round-trips): cycle, retired count, emitted
        output prefix, detection log, recovery bookkeeping, every latch value
        and the core-specific microarchitectural key -- so two cores running
        the same program with equal fingerprints at the same cycle provably
        continue bit-identically from that cycle onwards.  That implication
        is what lets the injection engine terminate an injected run the
        moment its fingerprint re-converges with the golden run's.

        Digests are deterministic across processes (no ``hash()``-style
        per-process randomisation), so a grid recorded in the parent can be
        compared against in pool workers.

        The snapshot/fingerprint agreement is a checked invariant: the
        ``state-coverage`` rule of :mod:`repro.devtools` fails the audit
        when a subclass grows run-varying state that this digest (or the
        snapshot/restore pair) does not cover.
        """
        if self.latches is None:
            raise RuntimeError("core state was never finalised")
        digest = hashlib.blake2b(digest_size=16)
        digest.update(self._fingerprint_header())
        digest.update(self.latches.fingerprint_digest_full())
        digest.update(pickle.dumps(self._fingerprint_microarchitecture(),
                                   protocol=4))
        return digest.digest()

    def rolling_fingerprint(self) -> bytes:
        """Incremental variant of :meth:`state_fingerprint`.

        Byte-identical to the full digest at every cycle -- both hash the
        same header / latch-bank / microarchitecture component payloads in
        the same order -- but the latch and memory components come from
        write-invalidated caches, so a probe costs O(state touched since the
        previous probe) instead of O(total state).  Subclasses opt
        components in via :meth:`_rolling_microarchitecture`; the base
        implementation simply delegates to the full key, which keeps the
        equality guarantee for cores that never specialise it.

        The engine cross-checks this equality at a sparse audit cadence
        (``EngineConfig(fingerprint_audit_interval=...)``) and the test
        suite property-tests it at every grid cycle.
        """
        if self.latches is None:
            raise RuntimeError("core state was never finalised")
        digest = hashlib.blake2b(digest_size=16)
        digest.update(self._fingerprint_header())
        digest.update(self.latches.fingerprint_digest())
        digest.update(pickle.dumps(self._rolling_microarchitecture(),
                                   protocol=4))
        return digest.digest()

    def _fingerprint_header(self) -> bytes:
        """Shared architectural header of both fingerprint variants.

        Cycle, retired count, output prefix, detection log and recovery
        bookkeeping are a handful of scalars plus short tuples -- always
        serialised fresh; caching would cost more than it saves.
        """
        payload = (
            self._cycle, self._retired, self._recovery_cycles,
            self._pending_recovery, tuple(self._output),
            tuple((d.technique, d.cycle, d.detail, d.recovered)
                  for d in self._detections),
        )
        return pickle.dumps(payload, protocol=4)

    def _rolling_microarchitecture(self) -> tuple:
        """Core-specific component of :meth:`rolling_fingerprint`.

        Must equal :meth:`_fingerprint_microarchitecture` value-for-value at
        every cycle, sourcing whatever components support it from their
        rolling caches (e.g. ``MemorySystem.fingerprint_digest``).  The
        default delegates to the full key, trading the speedup for
        unconditional correctness.
        """
        return self._fingerprint_microarchitecture()

    def fingerprint_rehash_count(self) -> int:
        """Cumulative component re-serialisations by the rolling digest path.

        Subclasses add their extra rolling components (e.g. memory pages);
        the engine differences this around a probe to report
        ``count.fingerprint.components_rehashed``.
        """
        if self.latches is None:
            return 0
        return self.latches.rehashed_banks

    def restore(self, program: Program, snapshot: CoreSnapshot) -> None:
        """Adopt the state captured in ``snapshot`` for a run of ``program``.

        ``program`` must be the program that was running when the snapshot
        was taken (snapshots do not embed the program so that one pickled
        program instance can be shared across many checkpoints).
        """
        if self.latches is None:
            raise RuntimeError("core state was never finalised")
        if snapshot.core_name != self.name:
            raise ValueError(f"snapshot from core {snapshot.core_name!r} cannot "
                             f"be restored onto core {self.name!r}")
        self._program = program
        self._cycle = snapshot.cycle
        self._retired = snapshot.retired
        self._output = list(snapshot.output)
        self._detections = [replace(d) for d in snapshot.detections]
        self._recovery_cycles = snapshot.recovery_cycles
        self._pending_recovery = snapshot.pending_recovery
        self._termination = None
        self._trap = None
        self.latches.deserialize(snapshot.latches)
        self._restore_microarchitecture(snapshot.micro)

    # ------------------------------------------------------------------ run loop
    def reset(self, program: Program) -> None:
        """Prepare the core for a fresh run of ``program``."""
        if self.latches is None:
            raise RuntimeError("core state was never finalised")
        self._program = program
        self._cycle = 0
        self._retired = 0
        self._output = []
        self._detections = []
        self._recovery_cycles = 0
        self._pending_recovery = 0
        self._termination = None
        self._trap = None
        self.latches.clear()
        self._reset_microarchitecture(program)

    def step(self) -> bool:
        """Advance one cycle.  Returns False once the run has terminated."""
        if self._termination is not None:
            return False
        if self._pending_recovery > 0:
            # Hardware recovery stalls the pipeline; no architectural progress.
            self._pending_recovery -= 1
            self._cycle += 1
            return True
        self._step_cycle()
        self._cycle += 1
        return self._termination is None

    def run(self, program: Program, max_cycles: int = DEFAULT_MAX_CYCLES,
            cycle_hook: CycleHook | None = None) -> RunResult:
        """Run ``program`` to termination (or the ``max_cycles`` watchdog).

        ``cycle_hook`` is invoked at the start of every cycle and is how the
        fault injector applies bit flips and how resilience semantics observe
        the run.
        """
        self.reset(program)
        return self._run_loop(max_cycles, cycle_hook)

    def resume(self, program: Program, snapshot: CoreSnapshot,
               max_cycles: int = DEFAULT_MAX_CYCLES,
               cycle_hook: CycleHook | None = None) -> RunResult:
        """Continue a run of ``program`` from ``snapshot`` to termination.

        Behaves exactly like :meth:`run` from the snapshot's cycle onwards:
        the cycle hook first fires at the snapshot cycle (the point at which
        the snapshot was captured), and ``max_cycles`` counts absolute cycles
        from cycle 0, so a resumed run reproduces an unresumed one
        bit-for-bit.
        """
        self.restore(program, snapshot)
        return self._run_loop(max_cycles, cycle_hook)

    def _run_loop(self, max_cycles: int, cycle_hook: CycleHook | None) -> RunResult:
        while self._termination is None:
            if self._cycle >= max_cycles:
                self._termination = TerminationReason.HANG
                break
            if cycle_hook is not None:
                cycle_hook(self, self._cycle)
            if self._termination is not None:
                break
            self.step()
        return RunResult(
            program_name=self._program.name if self._program else "",
            core_name=self.name,
            reason=self._termination,
            trap=self._trap,
            cycles=self._cycle,
            instructions_retired=self._retired,
            output=list(self._output),
            detections=list(self._detections),
            recovery_cycles=self._recovery_cycles,
        )
