"""Simulated data memory.

Both cores share a simple word-addressable memory with three regions (data,
stack, output scratch).  Accesses outside those regions or misaligned
accesses raise :class:`MemoryFault`, which the cores turn into a trap; the
outcome classifier then records the run as an Unexpected Termination --
exactly the symptom a wild pointer produces on the paper's RTL platforms.

The memory array itself models SRAM, which the paper assumes is protected by
ECC; it is therefore *not* part of the flip-flop registry and never receives
injections.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass

from repro.isa.program import (
    DEFAULT_DATA_BASE,
    DEFAULT_OUTPUT_BASE,
    DEFAULT_STACK_TOP,
    Program,
    WORD_BYTES,
)

try:  # numpy backs only the batched store; the scalar path never needs it.
    import numpy as _np
except ImportError:  # pragma: no cover - exercised on numpy-free installs
    _np = None


class MemoryFault(Exception):
    """Raised for accesses outside the legal memory map or misaligned words."""

    def __init__(self, address: int, reason: str):
        super().__init__(f"memory fault at {address:#x}: {reason}")
        self.address = address
        self.reason = reason


@dataclass(frozen=True)
class MemoryRegion:
    """A legal address range ``[base, base + size)``."""

    name: str
    base: int
    size: int

    def contains(self, address: int) -> bool:
        return self.base <= address < self.base + self.size


DEFAULT_REGIONS = (
    MemoryRegion("data", DEFAULT_DATA_BASE, 0x4_0000),
    MemoryRegion("stack", DEFAULT_STACK_TOP - 0x1_0000, 0x1_0000),
    MemoryRegion("output", DEFAULT_OUTPUT_BASE, 0x1_0000),
)

_PAGE_SHIFT = 10
"""Fingerprint page granularity: byte address >> 10, i.e. 1 KiB pages.

The memory contribution to a state fingerprint is, per non-empty page, an
8-byte little-endian page id followed by the pickled sorted nonzero
``(address, word)`` items of that page, pages in ascending id order.  Pages
bound the cost of a rolling re-hash to the pages a write touched; the full
and rolling digest paths byte-compare equal because they serialise the
exact same per-page payloads.
"""


class MemorySystem:
    """Word-addressable simulated memory with region checking."""

    def __init__(self, regions: tuple[MemoryRegion, ...] = DEFAULT_REGIONS):
        self._regions = regions
        self._words: dict[int, int] = {}
        # audit: allow[state-coverage] memoised view of _words, invalidated on every write; carries no state of its own
        self._fingerprint_cache: tuple[tuple[int, int], ...] | None = None
        # audit: allow[state-coverage] memoised full digest of _words, invalidated on every write; carries no state of its own
        self._digest_cache: bytes | None = None
        # audit: allow[state-coverage] per-word dirty journal; consumed (and cleared) by fingerprint_digest, carries no state of its own
        self._dirty_words: set[int] = set()
        # audit: allow[state-coverage] rolling mirror of _words grouped by page; rebuilt from _words and the journal, carries no state of its own
        self._page_words: dict[int, dict[int, int]] | None = None
        # audit: allow[state-coverage] memoised per-page pickle payloads; rebuilt from _page_words whenever a page is dirty
        self._page_bytes: dict[int, bytes] = {}
        self.rehashed_pages = 0

    def reset(self, program: Program) -> None:
        """Clear memory and load the program's data segment."""
        self._words = dict(program.data.as_memory_image())
        self._drop_fingerprint_caches()

    # ------------------------------------------------------------------ checks
    def _check(self, address: int, *, aligned_to: int) -> None:
        if address % aligned_to != 0:
            raise MemoryFault(address, f"misaligned access (alignment {aligned_to})")
        if not any(region.contains(address) for region in self._regions):
            raise MemoryFault(address, "address outside mapped regions")

    def is_mapped(self, address: int) -> bool:
        """True when ``address`` falls inside a legal region."""
        return any(region.contains(address) for region in self._regions)

    # ------------------------------------------------------------------ access
    def load_word(self, address: int) -> int:
        self._check(address, aligned_to=WORD_BYTES)
        return self._words.get(address, 0)

    def store_word(self, address: int, value: int) -> None:
        self._check(address, aligned_to=WORD_BYTES)
        self._words[address] = value & 0xFFFFFFFF
        self._fingerprint_cache = None
        self._digest_cache = None
        self._dirty_words.add(address)

    def load_byte(self, address: int) -> int:
        self._check(address, aligned_to=1)
        word_address = address - (address % WORD_BYTES)
        if not self.is_mapped(word_address):
            raise MemoryFault(address, "address outside mapped regions")
        word = self._words.get(word_address, 0)
        shift = 8 * (address % WORD_BYTES)
        return (word >> shift) & 0xFF

    def store_byte(self, address: int, value: int) -> None:
        self._check(address, aligned_to=1)
        word_address = address - (address % WORD_BYTES)
        if not self.is_mapped(word_address):
            raise MemoryFault(address, "address outside mapped regions")
        shift = 8 * (address % WORD_BYTES)
        word = self._words.get(word_address, 0)
        word &= ~(0xFF << shift)
        word |= (value & 0xFF) << shift
        self._words[word_address] = word
        self._fingerprint_cache = None
        self._digest_cache = None
        self._dirty_words.add(word_address)

    # ------------------------------------------------------------------ checkpointing
    def snapshot_words(self) -> dict[int, int]:
        """Copy of the entire memory contents (used by core checkpoints)."""
        return dict(self._words)

    def restore_words(self, words: dict[int, int]) -> None:
        """Replace memory contents with a copy captured by :meth:`snapshot_words`."""
        self._words = dict(words)
        self._drop_fingerprint_caches()

    def _drop_fingerprint_caches(self) -> None:
        """Invalidate every fingerprint cache after a wholesale replacement."""
        self._fingerprint_cache = None
        self._digest_cache = None
        self._dirty_words.clear()
        self._page_words = None
        self._page_bytes.clear()

    def fingerprint_key(self) -> tuple[tuple[int, int], ...]:
        """Canonical hashable key over memory contents (sorted nonzero words).

        Zero-valued words are normalised away: an explicitly stored zero and
        a never-touched word are architecturally indistinguishable (loads of
        both return 0 and region checks ignore contents), so two memories
        with equal keys behave identically from here on.  The sorted tuple is
        cached and invalidated on writes, so back-to-back fingerprints of an
        unchanged memory cost one dict lookup.
        """
        if self._fingerprint_cache is None:
            self._fingerprint_cache = tuple(sorted(
                item for item in self._words.items() if item[1]))
        return self._fingerprint_cache

    # ------------------------------------------------------------------ digests
    @staticmethod
    def _combined_page_digest(page_bytes: dict[int, bytes]) -> bytes:
        """Concatenate per-page payloads in ascending page-id order."""
        return b"".join(page.to_bytes(8, "little") + page_bytes[page]
                        for page in sorted(page_bytes))

    def fingerprint_digest_full(self) -> bytes:
        """Canonical page-wise digest of memory contents, from scratch.

        Same zero-normalisation as :meth:`fingerprint_key` (an explicitly
        stored zero and a never-touched word are indistinguishable).  The
        result is cached and write-invalidated, so back-to-back digests of
        a quiet memory are a cache hit.
        """
        if self._digest_cache is None:
            pages: dict[int, list[tuple[int, int]]] = {}
            for address, value in self._words.items():
                if value:
                    pages.setdefault(address >> _PAGE_SHIFT, []).append(
                        (address, value))
            self._digest_cache = self._combined_page_digest(
                {page: pickle.dumps(tuple(sorted(items)), protocol=4)
                 for page, items in pages.items()})
        return self._digest_cache

    def fingerprint_digest(self) -> bytes:
        """Rolling variant of :meth:`fingerprint_digest_full`.

        Maintains a page-grouped mirror of the nonzero words plus per-page
        payload caches, consuming the per-word dirty journal so only pages
        written since the previous call are re-serialised.  Byte-identical
        to the full digest at every call, by construction.
        """
        page_words = self._page_words
        if page_words is None:
            page_words = self._page_words = {}
            for address, value in self._words.items():
                if value:
                    page_words.setdefault(address >> _PAGE_SHIFT, {})[address] = value
            dirty_pages = set(page_words)
            self._page_bytes.clear()
        else:
            dirty_pages = set()
            for address in self._dirty_words:
                page = address >> _PAGE_SHIFT
                value = self._words.get(address, 0)
                members = page_words.get(page)
                if value:
                    if members is None:
                        members = page_words[page] = {}
                    members[address] = value
                    dirty_pages.add(page)
                elif members is not None and address in members:
                    del members[address]
                    if not members:
                        del page_words[page]
                        self._page_bytes.pop(page, None)
                    dirty_pages.add(page)
        self._dirty_words.clear()
        for page in dirty_pages:
            members = page_words.get(page)
            if members is None:
                continue  # page went all-zero; payload already dropped
            self._page_bytes[page] = pickle.dumps(
                tuple(sorted(members.items())), protocol=4)
            self.rehashed_pages += 1
        return self._combined_page_digest(self._page_bytes)

    # ------------------------------------------------------------------ export
    def dump_region(self, name: str) -> dict[int, int]:
        """Return ``{address: word}`` for all touched words in region ``name``."""
        region = next(r for r in self._regions if r.name == name)
        return {addr: value for addr, value in self._words.items()
                if region.contains(addr)}

    def words_written(self) -> int:
        """Number of distinct words currently holding data."""
        return len(self._words)


class BatchedWordStore:
    """Word store for ``lanes`` lockstep replays of the same golden run.

    All lanes share one address space layout; per-address values are a
    ``(lanes,)`` vector.  Because lanes start bit-identical and the batched
    stepper keeps addresses uniform across the wavefront (divergent lanes are
    evicted), storage is a shared base image plus a copy-on-write overlay of
    per-lane vectors -- only addresses actually written during the wavefront
    cost ``lanes`` words.

    The store tracks, incrementally, how many overlay words differ from a
    reference lane (lane 0), so "is this lane's memory bit-identical to the
    golden run's" is an O(1) counter read at convergence-check time.  The
    comparison matches :meth:`MemorySystem.fingerprint_key` semantics: lanes
    share the written-address set (uniform addresses), so per-address value
    equality is exactly zero-normalised image equality.
    """

    _WORD_MASK = 0xFFFFFFFF

    def __init__(self, base_words: dict[int, int], lanes: int,
                 regions: tuple[MemoryRegion, ...] = DEFAULT_REGIONS,
                 reference_lane: int = 0):
        if _np is None:  # pragma: no cover - exercised on numpy-free installs
            raise RuntimeError("BatchedWordStore requires numpy")
        self._regions = regions
        self.lanes = lanes
        self._reference = reference_lane
        self._base = dict(base_words)
        self._overlay: dict[int, "_np.ndarray"] = {}
        self._diverged = _np.zeros(lanes, dtype=_np.int64)

    # ------------------------------------------------------------------ checks
    def _check(self, address: int, *, aligned_to: int) -> None:
        if address % aligned_to != 0:
            raise MemoryFault(address, f"misaligned access (alignment {aligned_to})")
        if not any(region.contains(address) for region in self._regions):
            raise MemoryFault(address, "address outside mapped regions")

    def is_mapped(self, address: int) -> bool:
        return any(region.contains(address) for region in self._regions)

    # ------------------------------------------------------------------ access
    def load_word(self, address: int):
        """Load one address on every lane; returns a ``(lanes,)`` uint64 array."""
        self._check(address, aligned_to=WORD_BYTES)
        values = self._overlay.get(address)
        if values is not None:
            return values
        return _np.full(self.lanes, self._base.get(address, 0), dtype=_np.uint64)

    def store_word(self, address: int, values) -> None:
        """Store per-lane ``values`` (masked to 32 bits) at one address."""
        self._check(address, aligned_to=WORD_BYTES)
        self._store(address, values)

    def _store(self, address: int, values) -> None:
        new = _np.asarray(values).astype(_np.uint64, copy=False) \
            & _np.uint64(self._WORD_MASK)
        previous = self._overlay.get(address)
        if previous is None:
            previous_diff = 0
        else:
            previous_diff = (previous != previous[self._reference]).astype(_np.int64)
        self._diverged += (new != new[self._reference]).astype(_np.int64)
        self._diverged -= previous_diff
        self._overlay[address] = new

    def load_byte(self, address: int):
        self._check(address, aligned_to=1)
        word_address = address - (address % WORD_BYTES)
        if not self.is_mapped(word_address):
            raise MemoryFault(address, "address outside mapped regions")
        shift = 8 * (address % WORD_BYTES)
        word = self._overlay.get(word_address)
        if word is None:
            word = _np.full(self.lanes, self._base.get(word_address, 0),
                            dtype=_np.uint64)
        return (word >> _np.uint64(shift)) & _np.uint64(0xFF)

    def store_byte(self, address: int, values) -> None:
        self._check(address, aligned_to=1)
        word_address = address - (address % WORD_BYTES)
        if not self.is_mapped(word_address):
            raise MemoryFault(address, "address outside mapped regions")
        shift = 8 * (address % WORD_BYTES)
        word = self._overlay.get(word_address)
        if word is None:
            word = _np.full(self.lanes, self._base.get(word_address, 0),
                            dtype=_np.uint64)
        masked = word & _np.uint64(self._WORD_MASK ^ (0xFF << shift))
        merged = masked | ((_np.asarray(values).astype(_np.uint64, copy=False)
                            & _np.uint64(0xFF)) << _np.uint64(shift))
        self._store(word_address, merged)

    # ------------------------------------------------------------------ lane lifecycle
    def reset_lane(self, lane: int) -> None:
        """Make ``lane``'s memory bit-identical to the reference lane.

        Used when a streaming wavefront recycles a freed lane slot for a new
        injection joining at the current cycle: the joining replay's memory
        is, by construction, the reference (golden) image.
        """
        reference = self._reference
        for values in self._overlay.values():
            values[lane] = values[reference]
        self._diverged[lane] = 0

    def set_lane_words(self, lane: int, words: dict[int, int]) -> None:
        """Adopt a full scalar memory image for one lane (a wavefront rejoin).

        ``words`` is a :meth:`MemorySystem.snapshot_words` image.  Addresses
        it diverges on that the wavefront never wrote get overlay rows on
        demand (all other lanes keep the base value); overlay addresses the
        image never stored are architecturally zero on this lane (word
        stores never delete, so an address missing from a scalar image was
        never written there).
        """
        reference = self._reference
        overlay = self._overlay
        base = self._base
        for address, value in words.items():
            value &= self._WORD_MASK
            values = overlay.get(address)
            if values is None:
                base_value = base.get(address, 0)
                if value == base_value:
                    continue
                values = _np.full(self.lanes, base_value, dtype=_np.uint64)
                overlay[address] = values
            values[lane] = value
        diverged = 0
        for address, values in overlay.items():
            if address not in words:
                values[lane] = 0
            if values[lane] != values[reference]:
                diverged += 1
        self._diverged[lane] = diverged

    # ------------------------------------------------------------------ equality / export
    def lanes_match_reference(self):
        """Per-lane boolean: memory bit-identical to the reference lane."""
        return self._diverged == 0

    def lane_words(self, lane: int) -> dict[int, int]:
        """One lane's full memory image (``MemorySystem.snapshot_words`` form)."""
        words = dict(self._base)
        for address, values in self._overlay.items():
            words[address] = int(values[lane])
        return words
