"""Simulated data memory.

Both cores share a simple word-addressable memory with three regions (data,
stack, output scratch).  Accesses outside those regions or misaligned
accesses raise :class:`MemoryFault`, which the cores turn into a trap; the
outcome classifier then records the run as an Unexpected Termination --
exactly the symptom a wild pointer produces on the paper's RTL platforms.

The memory array itself models SRAM, which the paper assumes is protected by
ECC; it is therefore *not* part of the flip-flop registry and never receives
injections.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.isa.program import (
    DEFAULT_DATA_BASE,
    DEFAULT_OUTPUT_BASE,
    DEFAULT_STACK_TOP,
    Program,
    WORD_BYTES,
)


class MemoryFault(Exception):
    """Raised for accesses outside the legal memory map or misaligned words."""

    def __init__(self, address: int, reason: str):
        super().__init__(f"memory fault at {address:#x}: {reason}")
        self.address = address
        self.reason = reason


@dataclass(frozen=True)
class MemoryRegion:
    """A legal address range ``[base, base + size)``."""

    name: str
    base: int
    size: int

    def contains(self, address: int) -> bool:
        return self.base <= address < self.base + self.size


DEFAULT_REGIONS = (
    MemoryRegion("data", DEFAULT_DATA_BASE, 0x4_0000),
    MemoryRegion("stack", DEFAULT_STACK_TOP - 0x1_0000, 0x1_0000),
    MemoryRegion("output", DEFAULT_OUTPUT_BASE, 0x1_0000),
)


class MemorySystem:
    """Word-addressable simulated memory with region checking."""

    def __init__(self, regions: tuple[MemoryRegion, ...] = DEFAULT_REGIONS):
        self._regions = regions
        self._words: dict[int, int] = {}
        self._fingerprint_cache: tuple[tuple[int, int], ...] | None = None

    def reset(self, program: Program) -> None:
        """Clear memory and load the program's data segment."""
        self._words = dict(program.data.as_memory_image())
        self._fingerprint_cache = None

    # ------------------------------------------------------------------ checks
    def _check(self, address: int, *, aligned_to: int) -> None:
        if address % aligned_to != 0:
            raise MemoryFault(address, f"misaligned access (alignment {aligned_to})")
        if not any(region.contains(address) for region in self._regions):
            raise MemoryFault(address, "address outside mapped regions")

    def is_mapped(self, address: int) -> bool:
        """True when ``address`` falls inside a legal region."""
        return any(region.contains(address) for region in self._regions)

    # ------------------------------------------------------------------ access
    def load_word(self, address: int) -> int:
        self._check(address, aligned_to=WORD_BYTES)
        return self._words.get(address, 0)

    def store_word(self, address: int, value: int) -> None:
        self._check(address, aligned_to=WORD_BYTES)
        self._words[address] = value & 0xFFFFFFFF
        self._fingerprint_cache = None

    def load_byte(self, address: int) -> int:
        self._check(address, aligned_to=1)
        word_address = address - (address % WORD_BYTES)
        if not self.is_mapped(word_address):
            raise MemoryFault(address, "address outside mapped regions")
        word = self._words.get(word_address, 0)
        shift = 8 * (address % WORD_BYTES)
        return (word >> shift) & 0xFF

    def store_byte(self, address: int, value: int) -> None:
        self._check(address, aligned_to=1)
        word_address = address - (address % WORD_BYTES)
        if not self.is_mapped(word_address):
            raise MemoryFault(address, "address outside mapped regions")
        shift = 8 * (address % WORD_BYTES)
        word = self._words.get(word_address, 0)
        word &= ~(0xFF << shift)
        word |= (value & 0xFF) << shift
        self._words[word_address] = word
        self._fingerprint_cache = None

    # ------------------------------------------------------------------ checkpointing
    def snapshot_words(self) -> dict[int, int]:
        """Copy of the entire memory contents (used by core checkpoints)."""
        return dict(self._words)

    def restore_words(self, words: dict[int, int]) -> None:
        """Replace memory contents with a copy captured by :meth:`snapshot_words`."""
        self._words = dict(words)
        self._fingerprint_cache = None

    def fingerprint_key(self) -> tuple[tuple[int, int], ...]:
        """Canonical hashable key over memory contents (sorted nonzero words).

        Zero-valued words are normalised away: an explicitly stored zero and
        a never-touched word are architecturally indistinguishable (loads of
        both return 0 and region checks ignore contents), so two memories
        with equal keys behave identically from here on.  The sorted tuple is
        cached and invalidated on writes, so back-to-back fingerprints of an
        unchanged memory cost one dict lookup.
        """
        if self._fingerprint_cache is None:
            self._fingerprint_cache = tuple(sorted(
                item for item in self._words.items() if item[1]))
        return self._fingerprint_cache

    # ------------------------------------------------------------------ export
    def dump_region(self, name: str) -> dict[int, int]:
        """Return ``{address: word}`` for all touched words in region ``name``."""
        region = next(r for r in self._regions if r.name == name)
        return {addr: value for addr, value in self._words.items()
                if region.contains(addr)}

    def words_written(self) -> int:
        """Number of distinct words currently holding data."""
        return len(self._words)
