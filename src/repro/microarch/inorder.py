"""In-order core model (the paper's "InO-core", a Leon3-class design).

A seven-stage, single-issue, in-order pipeline:

``fetch -> decode -> regaccess -> execute -> memory -> exception -> writeback``

matching the Leon3 integer unit organisation the paper injects into.  The
important properties reproduced here:

* every pipeline latch, control register and bookkeeping register is a named
  flip-flop structure (about 1.25k flip-flops, as in Table 1), so fault
  injection has the same surface as the paper's RTL campaigns;
* hazards are resolved by scoreboard stalls (no forwarding), which yields an
  IPC close to the 0.4 the paper reports for the Leon3;
* branches resolve in the execute stage with a static not-taken policy; the
  bimodal predictor state is maintained as hint-only state, mirroring the
  Appendix-A structures whose errors always vanish;
* traps (illegal instruction, memory fault, divide-by-zero, software
  assertion) propagate down the pipeline and terminate the run when the
  faulting instruction reaches the exception stage.

Register windows / the register file are modelled as RAM (not flip-flops),
as in the paper, and are therefore not injection targets.
"""

from __future__ import annotations

from repro.isa.encoding import EncodingError, decode_instruction, encode_instruction
from repro.isa.instructions import Opcode, OPCODE_INFO
from repro.isa.program import Program, WORD_BYTES
from repro.isa.registers import NUM_REGISTERS
from repro.microarch.branch_predictor import BimodalPredictor
from repro.microarch.core import BaseCore, CoreClass
from repro.microarch.events import TerminationReason, TrapKind
from repro.microarch.execute import ExecuteTrap, execute_operation
from repro.microarch.memory import MemoryFault, MemorySystem

# Trap kinds are carried down the pipeline in a 3-bit field.
_TRAP_CODES = {
    TrapKind.ILLEGAL_INSTRUCTION: 1,
    TrapKind.MEMORY_FAULT: 2,
    TrapKind.FETCH_FAULT: 3,
    TrapKind.DIVIDE_BY_ZERO: 4,
    TrapKind.SOFTWARE_ASSERTION: 5,
}
_TRAP_FROM_CODE = {code: kind for kind, code in _TRAP_CODES.items()}

INO_CLOCK_MHZ = 2000.0
"""Nominal clock of the InO-core (2.0 GHz, Table 1)."""


class InOrderCore(BaseCore):
    """Cycle-level model of the simple in-order core."""

    def __init__(self, name: str = "InO-core"):
        super().__init__(name=name, clock_mhz=INO_CLOCK_MHZ,
                         core_class=CoreClass.IN_ORDER)
        self._declare_state()
        self._finalize_state()
        self.memory = MemorySystem()
        self.registers: list[int] = [0] * NUM_REGISTERS
        # audit: allow[state-coverage] the predictor is a stateless view; its tables/history live in self.latches, which the contract covers
        self._predictor = BimodalPredictor(
            self.latches, "f.bp.table", "f.bp.history", entries=32)

    # ------------------------------------------------------------------ state declaration
    def _declare_state(self) -> None:
        reg = self.registry.register

        # Fetch unit.
        reg("f.pc", 32, "fetch")
        reg("f.npc", 32, "fetch")
        reg("f.valid", 1, "fetch")
        reg("f.bp.table", 64, "fetch", architectural=False)
        reg("f.bp.history", 8, "fetch", architectural=False)

        # Fetch -> decode latch.
        reg("d.inst", 32, "decode")
        reg("d.pc", 32, "decode")
        reg("d.valid", 1, "decode")
        reg("d.fetchfault", 1, "decode")
        reg("d.pv", 2, "decode", architectural=False)

        # Decode -> register-access latch.
        reg("a.op", 7, "regaccess")
        reg("a.rd", 5, "regaccess")
        reg("a.rs1", 5, "regaccess")
        reg("a.rs2", 5, "regaccess")
        reg("a.imm", 15, "regaccess")
        reg("a.pc", 32, "regaccess")
        reg("a.valid", 1, "regaccess")
        reg("a.trap", 1, "regaccess")
        reg("a.trapkind", 3, "regaccess")
        reg("a.ctrl.tt", 8, "regaccess", architectural=False)
        reg("a.cwp", 5, "regaccess", architectural=False)
        reg("a.rfe1", 1, "regaccess", architectural=False)
        reg("a.rfe2", 1, "regaccess", architectural=False)

        # Register-access -> execute latch.
        reg("e.op", 7, "execute")
        reg("e.rd", 5, "execute")
        reg("e.rs1val", 32, "execute")
        reg("e.rs2val", 32, "execute")
        reg("e.imm", 15, "execute")
        reg("e.pc", 32, "execute")
        reg("e.valid", 1, "execute")
        reg("e.trap", 1, "execute")
        reg("e.trapkind", 3, "execute")
        reg("e.ctrl.tt", 8, "execute", architectural=False)
        reg("e.mulstep", 6, "execute", architectural=False)
        reg("e.su", 1, "execute", architectural=False)
        reg("e.et", 1, "execute", architectural=False)

        # Execute -> memory latch.
        reg("m.op", 7, "memory")
        reg("m.rd", 5, "memory")
        reg("m.result", 32, "memory")
        reg("m.addr", 32, "memory")
        reg("m.storeval", 32, "memory")
        reg("m.valid", 1, "memory")
        reg("m.trap", 1, "memory")
        reg("m.trapkind", 3, "memory")
        reg("m.branch_taken", 1, "memory")
        reg("m.ctrl.tt", 8, "memory", architectural=False)
        reg("m.dci.asi", 8, "memory", architectural=False)
        reg("m.dci.lock", 1, "memory", architectural=False)
        reg("m.dci.signed", 1, "memory", architectural=False)
        reg("m.irqen", 1, "memory", architectural=False)
        reg("m.irqen2", 1, "memory", architectural=False)

        # Memory -> exception latch.
        reg("x.op", 7, "exception")
        reg("x.rd", 5, "exception")
        reg("x.result", 32, "exception")
        reg("x.valid", 1, "exception")
        reg("x.trap", 1, "exception")
        reg("x.trapkind", 3, "exception")
        reg("x.outval", 32, "exception")
        reg("x.outpending", 1, "exception")
        reg("x.ctrl.tt", 8, "exception", architectural=False)
        reg("x.icc", 4, "exception", architectural=False)
        reg("x.ipend", 1, "exception", architectural=False)
        reg("x.intack", 1, "exception", architectural=False)

        # Exception -> writeback latch.
        reg("w.op", 7, "writeback")
        reg("w.rd", 5, "writeback")
        reg("w.result", 32, "writeback")
        reg("w.wen", 1, "writeback")
        reg("w.valid", 1, "writeback")
        reg("w.trap", 1, "writeback")
        reg("w.trapkind", 3, "writeback")
        reg("w.outval", 32, "writeback")
        reg("w.outpending", 1, "writeback")
        # Processor status register fields (mostly hint/privilege state the
        # workloads never read back; errors there vanish).
        reg("w.s.icc", 4, "writeback", architectural=False)
        reg("w.s.tt", 8, "writeback", architectural=False)
        reg("w.s.pil", 4, "writeback", architectural=False)
        reg("w.s.ec", 1, "writeback", architectural=False)
        reg("w.s.ef", 1, "writeback", architectural=False)
        reg("w.s.ps", 1, "writeback", architectural=False)
        reg("w.s.et", 1, "writeback", architectural=False)
        reg("w.s.cwp", 5, "writeback", architectural=False)
        reg("w.s.dwt", 1, "writeback", architectural=False)

        # Cache controllers (control/bookkeeping only; the cache arrays
        # themselves are SRAM).
        reg("ic.ctrl.state", 4, "icache", architectural=False)
        reg("ic.ctrl.hold", 1, "icache", architectural=False)
        reg("dc.ctrl.state", 4, "dcache", architectural=False)
        reg("dc.ctrl.hold", 1, "dcache", architectural=False)

        # Interrupt controller: toggles during execution but the workloads
        # never consume it, so its errors vanish (Appendix A analogues).
        reg("irq.pending", 16, "peripherals", architectural=False)
        reg("irq.mask", 16, "peripherals", architectural=False)

    # ------------------------------------------------------------------ reset
    def _reset_microarchitecture(self, program: Program) -> None:
        self.memory.reset(program)
        self.registers = [0] * NUM_REGISTERS
        # Stack pointer starts at the top of the stack region.
        from repro.isa.program import DEFAULT_STACK_TOP

        self.registers[2] = DEFAULT_STACK_TOP - WORD_BYTES
        latches = self.latches
        latches.set("f.pc", program.entry_point)
        latches.set("f.npc", program.entry_point + WORD_BYTES)
        latches.set("f.valid", 1)

    # ------------------------------------------------------------------ checkpointing
    def _snapshot_microarchitecture(self) -> dict:
        # The bimodal predictor lives entirely in latch state; everything
        # else the pipeline touches between cycles is captured here.
        return {
            "registers": list(self.registers),
            "memory": self.memory.snapshot_words(),
            "redirect_target": self._redirect_target,
        }

    def _restore_microarchitecture(self, micro: dict) -> None:
        self.registers = list(micro["registers"])
        self.memory.restore_words(micro["memory"])
        self._redirect_target = micro["redirect_target"]

    def _fingerprint_microarchitecture(self) -> tuple:
        return (tuple(self.registers), self.memory.fingerprint_digest_full(),
                self._redirect_target)

    def _rolling_microarchitecture(self) -> tuple:
        # Must stay field-for-field parallel with the full key above; memory
        # is the only component with a rolling cache (the register file is
        # 32 words -- re-tupling it is cheaper than journaling writes).
        return (tuple(self.registers), self.memory.fingerprint_digest(),
                self._redirect_target)

    def fingerprint_rehash_count(self) -> int:
        return super().fingerprint_rehash_count() + self.memory.rehashed_pages

    # ------------------------------------------------------------------ helpers
    def _bubble(self, prefix: str) -> None:
        """Insert a bubble into the latch group with the given stage prefix."""
        for structure in self.registry.structures:
            if structure.name.startswith(prefix):
                self.latches.set(structure.name, 0)

    def _read_register(self, index: int) -> int:
        return self.registers[index & 0x1F]

    def _write_register(self, index: int, value: int) -> None:
        index &= 0x1F
        if index != 0:
            self.registers[index] = value & 0xFFFFFFFF

    def _hazard_destinations(self) -> set[int]:
        """Destination registers of in-flight, not-yet-committed instructions.

        Called after the downstream latch moves of the current cycle, so older
        instructions live in the memory, exception and writeback latches.
        """
        destinations: set[int] = set()
        latches = self.latches
        for prefix in ("m", "x", "w"):
            if latches.get(f"{prefix}.valid") and not latches.get(f"{prefix}.trap"):
                op_value = latches.get(f"{prefix}.op")
                try:
                    info = OPCODE_INFO[Opcode(op_value)]
                except ValueError:
                    continue
                if info.writes_rd:
                    rd = latches.get(f"{prefix}.rd")
                    if rd != 0:
                        destinations.add(rd)
        return destinations

    # ------------------------------------------------------------------ pipeline stages
    def _step_cycle(self) -> None:
        self._commit_writeback()
        if self.terminated:
            return
        self._stage_exception_to_writeback()
        self._stage_memory_to_exception()
        redirect = self._stage_execute_to_memory()
        stalled = self._stage_regaccess_to_execute(redirect)
        self._stage_decode_to_regaccess(redirect, stalled)
        self._stage_fetch_to_decode(redirect, stalled)
        self._touch_background_state()

    # WB: commit results, outputs, halts and traps.
    def _commit_writeback(self) -> None:
        latches = self.latches
        if not latches.get("w.valid"):
            return
        if latches.get("w.trap"):
            kind = _TRAP_FROM_CODE.get(latches.get("w.trapkind"),
                                       TrapKind.ILLEGAL_INSTRUCTION)
            reason = (TerminationReason.DETECTED
                      if kind is TrapKind.SOFTWARE_ASSERTION
                      else TerminationReason.TRAP)
            self.force_termination(reason, kind)
            latches.set("w.valid", 0)
            return
        op_value = latches.get("w.op")
        if latches.get("w.wen"):
            self._write_register(latches.get("w.rd"), latches.get("w.result"))
        if latches.get("w.outpending"):
            self.emit_output(latches.get("w.outval"))
        self.note_retired()
        try:
            opcode = Opcode(op_value)
        except ValueError:
            opcode = None
        if opcode is Opcode.HALT:
            self.force_termination(TerminationReason.HALTED)
        latches.set("w.valid", 0)
        latches.set("w.wen", 0)
        latches.set("w.outpending", 0)

    # XC -> WB
    def _stage_exception_to_writeback(self) -> None:
        latches = self.latches
        if not latches.get("x.valid"):
            latches.set("w.valid", 0)
            latches.set("w.wen", 0)
            latches.set("w.outpending", 0)
            return
        latches.set("w.op", latches.get("x.op"))
        latches.set("w.rd", latches.get("x.rd"))
        latches.set("w.result", latches.get("x.result"))
        latches.set("w.trap", latches.get("x.trap"))
        latches.set("w.trapkind", latches.get("x.trapkind"))
        latches.set("w.outval", latches.get("x.outval"))
        latches.set("w.outpending", latches.get("x.outpending"))
        latches.set("w.valid", 1)
        wen = 0
        if not latches.get("x.trap"):
            try:
                info = OPCODE_INFO[Opcode(latches.get("x.op"))]
                wen = 1 if (info.writes_rd and latches.get("x.rd") != 0) else 0
            except ValueError:
                wen = 0
        latches.set("w.wen", wen)
        # Status-register bookkeeping (hint-only state).
        latches.set("w.s.icc", latches.get("x.icc"))
        latches.set("x.valid", 0)

    # ME -> XC: data memory access.
    def _stage_memory_to_exception(self) -> None:
        latches = self.latches
        if not latches.get("m.valid"):
            latches.set("x.valid", 0)
            latches.set("x.outpending", 0)
            return
        latches.set("x.op", latches.get("m.op"))
        latches.set("x.rd", latches.get("m.rd"))
        latches.set("x.trap", latches.get("m.trap"))
        latches.set("x.trapkind", latches.get("m.trapkind"))
        latches.set("x.valid", 1)
        latches.set("x.outpending", 0)
        result = latches.get("m.result")
        if not latches.get("m.trap"):
            try:
                opcode = Opcode(latches.get("m.op"))
            except ValueError:
                opcode = None
            address = latches.get("m.addr")
            try:
                if opcode is Opcode.LW:
                    result = self.memory.load_word(address)
                elif opcode is Opcode.LB:
                    result = self.memory.load_byte(address)
                elif opcode is Opcode.SW:
                    self.memory.store_word(address, latches.get("m.storeval"))
                elif opcode is Opcode.SB:
                    self.memory.store_byte(address, latches.get("m.storeval"))
                elif opcode is Opcode.OUT:
                    latches.set("x.outval", latches.get("m.storeval"))
                    latches.set("x.outpending", 1)
            except MemoryFault:
                latches.set("x.trap", 1)
                latches.set("x.trapkind", _TRAP_CODES[TrapKind.MEMORY_FAULT])
            # Track data-cache controller hint state.
            latches.set("dc.ctrl.state", (latches.get("dc.ctrl.state") + 1) & 0xF)
        latches.set("x.result", result)
        latches.set("m.valid", 0)

    # EX -> ME: ALU, branch resolution.
    def _stage_execute_to_memory(self) -> bool:
        latches = self.latches
        if not latches.get("e.valid"):
            latches.set("m.valid", 0)
            return False
        latches.set("m.op", latches.get("e.op"))
        latches.set("m.rd", latches.get("e.rd"))
        latches.set("m.trap", latches.get("e.trap"))
        latches.set("m.trapkind", latches.get("e.trapkind"))
        latches.set("m.valid", 1)
        latches.set("m.branch_taken", 0)
        redirect = False
        if not latches.get("e.trap"):
            pc = latches.get("e.pc")
            imm = latches.get_signed("e.imm")
            rs1_value = latches.get("e.rs1val")
            rs2_value = latches.get("e.rs2val")
            try:
                opcode = Opcode(latches.get("e.op"))
            except ValueError:
                opcode = None
            if opcode is None:
                latches.set("m.trap", 1)
                latches.set("m.trapkind", _TRAP_CODES[TrapKind.ILLEGAL_INSTRUCTION])
            else:
                try:
                    result = execute_operation(opcode, rs1_value, rs2_value, imm, pc)
                except ExecuteTrap as trap:
                    latches.set("m.trap", 1)
                    latches.set("m.trapkind", _TRAP_CODES[trap.kind])
                else:
                    latches.set("m.result", result.value)
                    if result.memory_address is not None:
                        latches.set("m.addr", result.memory_address)
                    if result.store_value is not None:
                        latches.set("m.storeval", result.store_value)
                    if result.output_value is not None:
                        # Reuse the store-value path to carry the OUT payload.
                        latches.set("m.storeval", result.output_value)
                    if opcode.name in ("BEQ", "BNE", "BLT", "BGE", "BLTU", "BGEU"):
                        self._predictor.update(pc, result.branch_taken)
                    if result.branch_taken:
                        redirect = True
                        latches.set("m.branch_taken", 1)
                        self._redirect_target = result.branch_target
        latches.set("e.valid", 0)
        return redirect

    # RA -> EX: register read with scoreboard stall.
    def _stage_regaccess_to_execute(self, redirect: bool) -> bool:
        latches = self.latches
        if redirect or not latches.get("a.valid"):
            latches.set("e.valid", 0)
            if redirect:
                latches.set("a.valid", 0)
            return False
        try:
            opcode = Opcode(latches.get("a.op"))
            info = OPCODE_INFO[opcode]
        except ValueError:
            opcode = None
            info = None
        if info is not None and not latches.get("a.trap"):
            hazards = self._hazard_destinations()
            sources = []
            if info.reads_rs1:
                sources.append(latches.get("a.rs1"))
            if info.reads_rs2:
                sources.append(latches.get("a.rs2"))
            if any(source in hazards for source in sources):
                # Stall: keep the regaccess latch, feed a bubble to execute.
                latches.set("e.valid", 0)
                return True
        latches.set("e.op", latches.get("a.op"))
        latches.set("e.rd", latches.get("a.rd"))
        latches.set("e.imm", latches.get("a.imm"))
        latches.set("e.pc", latches.get("a.pc"))
        latches.set("e.trap", latches.get("a.trap"))
        latches.set("e.trapkind", latches.get("a.trapkind"))
        latches.set("e.rs1val", self._read_register(latches.get("a.rs1")))
        latches.set("e.rs2val", self._read_register(latches.get("a.rs2")))
        latches.set("e.valid", 1)
        latches.set("a.valid", 0)
        return False

    # DE -> RA: decode.
    def _stage_decode_to_regaccess(self, redirect: bool, stalled: bool) -> None:
        latches = self.latches
        if stalled:
            return
        if redirect or not latches.get("d.valid"):
            latches.set("a.valid", 0)
            if redirect:
                latches.set("d.valid", 0)
            return
        word = latches.get("d.inst")
        pc = latches.get("d.pc")
        latches.set("a.pc", pc)
        latches.set("a.valid", 1)
        latches.set("a.trap", 0)
        latches.set("a.trapkind", 0)
        if latches.get("d.fetchfault"):
            latches.set("a.trap", 1)
            latches.set("a.trapkind", _TRAP_CODES[TrapKind.FETCH_FAULT])
            latches.set("a.op", 0)
            latches.set("a.rd", 0)
            latches.set("a.rs1", 0)
            latches.set("a.rs2", 0)
            latches.set("a.imm", 0)
            latches.set("d.valid", 0)
            return
        try:
            instruction = decode_instruction(word)
        except EncodingError:
            latches.set("a.trap", 1)
            latches.set("a.trapkind", _TRAP_CODES[TrapKind.ILLEGAL_INSTRUCTION])
            latches.set("a.op", 0)
            latches.set("a.rd", 0)
            latches.set("a.rs1", 0)
            latches.set("a.rs2", 0)
            latches.set("a.imm", 0)
        else:
            latches.set("a.op", int(instruction.opcode))
            latches.set("a.rd", instruction.rd)
            latches.set("a.rs1", instruction.rs1)
            latches.set("a.rs2", instruction.rs2)
            latches.set("a.imm", instruction.imm)
        latches.set("d.valid", 0)

    # FE -> DE: instruction fetch.
    def _stage_fetch_to_decode(self, redirect: bool, stalled: bool) -> None:
        latches = self.latches
        if stalled:
            return
        if redirect:
            latches.set("d.valid", 0)
            latches.set("f.pc", self._redirect_target)
            latches.set("f.npc", self._redirect_target + WORD_BYTES)
            return
        pc = latches.get("f.pc")
        instruction = self._program.instruction_at(pc) if self._program else None
        if instruction is None:
            # Fetch fault: send a trap-carrying bubble down the pipeline.  It
            # only terminates the run if an older instruction (for example a
            # HALT already in flight) does not commit or redirect first.
            latches.set("d.inst", 0)
            latches.set("d.pc", pc)
            latches.set("d.fetchfault", 1)
            latches.set("d.valid", 1)
            return
        latches.set("d.fetchfault", 0)
        latches.set("d.inst", encode_instruction(instruction))
        latches.set("d.pc", pc)
        latches.set("d.valid", 1)
        latches.set("f.pc", pc + WORD_BYTES)
        latches.set("f.npc", pc + 2 * WORD_BYTES)
        latches.set("ic.ctrl.state", (latches.get("ic.ctrl.state") + 1) & 0xF)
        # Hint-only branch prediction bookkeeping.
        if OPCODE_INFO[instruction.opcode].is_branch:
            self._predictor.predict_taken(pc)

    def _touch_background_state(self) -> None:
        """Advance peripheral hint state so vanish-class flip-flops toggle."""
        latches = self.latches
        latches.set("irq.pending", (latches.get("irq.pending") + 1) & 0xFFFF)

    # ------------------------------------------------------------------ attributes
    _redirect_target: int = 0
