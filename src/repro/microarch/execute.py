"""Shared execute-stage semantics.

Both cores perform the same 32-bit ALU/branch arithmetic; only the pipeline
organisation around it differs.  Keeping the semantics in one module means an
injected bit flip that reaches an operand latch produces identical functional
behaviour on either core.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.isa.instructions import LUI_SHIFT, Opcode
from repro.microarch.events import TrapKind

WORD_MASK = 0xFFFFFFFF


def to_signed(value: int) -> int:
    """Interpret a 32-bit unsigned value as two's-complement signed."""
    value &= WORD_MASK
    if value & 0x8000_0000:
        return value - (1 << 32)
    return value


def to_unsigned(value: int) -> int:
    """Wrap a Python int into 32-bit unsigned representation."""
    return value & WORD_MASK


class ExecuteTrap(Exception):
    """Raised when the execute stage encounters a trap condition."""

    def __init__(self, kind: TrapKind, detail: str = ""):
        super().__init__(f"{kind.value}: {detail}")
        self.kind = kind
        self.detail = detail


@dataclass(frozen=True)
class ExecuteResult:
    """Outcome of executing one instruction's compute portion.

    Attributes:
        value: ALU result / link value / effective address payload.
        branch_taken: True when a conditional branch or jump redirects fetch.
        branch_target: byte address fetch should redirect to when taken.
        memory_address: effective address for loads/stores (None otherwise).
        store_value: value to be written for stores (None otherwise).
        output_value: value emitted by ``out`` (None otherwise).
        is_halt: True when the instruction is HALT.
    """

    value: int = 0
    branch_taken: bool = False
    branch_target: int = 0
    memory_address: int | None = None
    store_value: int | None = None
    output_value: int | None = None
    is_halt: bool = False


_BRANCH_PREDICATES = {
    Opcode.BEQ: lambda a, b: a == b,
    Opcode.BNE: lambda a, b: a != b,
    Opcode.BLT: lambda a, b: to_signed(a) < to_signed(b),
    Opcode.BGE: lambda a, b: to_signed(a) >= to_signed(b),
    Opcode.BLTU: lambda a, b: a < b,
    Opcode.BGEU: lambda a, b: a >= b,
}


def execute_operation(opcode: Opcode, rs1_value: int, rs2_value: int, imm: int,
                      pc: int) -> ExecuteResult:
    """Execute the compute portion of one instruction.

    ``rs1_value`` and ``rs2_value`` are 32-bit unsigned register contents,
    ``imm`` is the signed immediate and ``pc`` the byte address of the
    instruction.  Memory is *not* accessed here; loads and stores only have
    their effective address computed.

    Raises:
        ExecuteTrap: for divide-by-zero and software assertion failures.
    """
    a = rs1_value & WORD_MASK
    b = rs2_value & WORD_MASK

    if opcode is Opcode.ADD:
        return ExecuteResult(value=to_unsigned(a + b))
    if opcode is Opcode.SUB:
        return ExecuteResult(value=to_unsigned(a - b))
    if opcode is Opcode.MUL:
        return ExecuteResult(value=to_unsigned(to_signed(a) * to_signed(b)))
    if opcode is Opcode.DIV:
        if b == 0:
            raise ExecuteTrap(TrapKind.DIVIDE_BY_ZERO, f"pc={pc:#x}")
        return ExecuteResult(value=to_unsigned(int(to_signed(a) / to_signed(b))
                                               if to_signed(b) != 0 else 0))
    if opcode is Opcode.REM:
        if b == 0:
            raise ExecuteTrap(TrapKind.DIVIDE_BY_ZERO, f"pc={pc:#x}")
        quotient = int(to_signed(a) / to_signed(b))
        return ExecuteResult(value=to_unsigned(to_signed(a) - quotient * to_signed(b)))
    if opcode is Opcode.AND:
        return ExecuteResult(value=a & b)
    if opcode is Opcode.OR:
        return ExecuteResult(value=a | b)
    if opcode is Opcode.XOR:
        return ExecuteResult(value=a ^ b)
    if opcode is Opcode.SLL:
        return ExecuteResult(value=to_unsigned(a << (b & 31)))
    if opcode is Opcode.SRL:
        return ExecuteResult(value=a >> (b & 31))
    if opcode is Opcode.SRA:
        return ExecuteResult(value=to_unsigned(to_signed(a) >> (b & 31)))
    if opcode is Opcode.SLT:
        return ExecuteResult(value=1 if to_signed(a) < to_signed(b) else 0)
    if opcode is Opcode.SLTU:
        return ExecuteResult(value=1 if a < b else 0)

    if opcode is Opcode.ADDI:
        return ExecuteResult(value=to_unsigned(a + imm))
    if opcode is Opcode.ANDI:
        return ExecuteResult(value=a & to_unsigned(imm))
    if opcode is Opcode.ORI:
        return ExecuteResult(value=a | to_unsigned(imm))
    if opcode is Opcode.XORI:
        return ExecuteResult(value=a ^ to_unsigned(imm))
    if opcode is Opcode.SLTI:
        return ExecuteResult(value=1 if to_signed(a) < imm else 0)
    if opcode is Opcode.SLLI:
        return ExecuteResult(value=to_unsigned(a << (imm & 31)))
    if opcode is Opcode.SRLI:
        return ExecuteResult(value=a >> (imm & 31))
    if opcode is Opcode.SRAI:
        return ExecuteResult(value=to_unsigned(to_signed(a) >> (imm & 31)))
    if opcode is Opcode.LUI:
        return ExecuteResult(value=to_unsigned(imm << LUI_SHIFT))

    if opcode in (Opcode.LW, Opcode.LB):
        return ExecuteResult(memory_address=to_unsigned(a + imm))
    if opcode in (Opcode.SW, Opcode.SB):
        return ExecuteResult(memory_address=to_unsigned(a + imm), store_value=b)

    if opcode in _BRANCH_PREDICATES:
        taken = _BRANCH_PREDICATES[opcode](a, b)
        target = to_unsigned(pc + 4 + 4 * imm)
        return ExecuteResult(branch_taken=taken, branch_target=target)
    if opcode is Opcode.JAL:
        return ExecuteResult(value=to_unsigned(pc + 4), branch_taken=True,
                             branch_target=to_unsigned(4 * imm))
    if opcode is Opcode.JALR:
        return ExecuteResult(value=to_unsigned(pc + 4), branch_taken=True,
                             branch_target=to_unsigned(a + imm) & ~0x3)

    if opcode is Opcode.OUT:
        return ExecuteResult(output_value=a)
    if opcode is Opcode.HALT:
        return ExecuteResult(is_halt=True)
    if opcode is Opcode.NOP:
        return ExecuteResult()
    if opcode is Opcode.ASSERT_EQ:
        if a != b:
            raise ExecuteTrap(TrapKind.SOFTWARE_ASSERTION,
                              f"assert_eq failed at pc={pc:#x}: {a} != {b}")
        return ExecuteResult()
    if opcode is Opcode.ASSERT_RANGE:
        if a > b:
            raise ExecuteTrap(TrapKind.SOFTWARE_ASSERTION,
                              f"assert_range failed at pc={pc:#x}: {a} > {b}")
        return ExecuteResult()

    raise ExecuteTrap(TrapKind.ILLEGAL_INSTRUCTION, f"unhandled opcode {opcode!r}")
