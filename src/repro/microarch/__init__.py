"""Micro-architectural substrate: flip-flop-accurate core models.

This package provides the two processor models the paper studies --
:class:`~repro.microarch.inorder.InOrderCore` (Leon3-class, "InO-core") and
:class:`~repro.microarch.ooo.OutOfOrderCore` (IVM-class, "OoO-core") -- plus
the flip-flop registry and latch-state machinery that makes flip-flop-level
fault injection possible.
"""

from repro.microarch.core import BaseCore, CoreClass, CoreSnapshot, DEFAULT_MAX_CYCLES
from repro.microarch.events import (
    DetectionEvent,
    RunResult,
    TerminationReason,
    TrapKind,
)
from repro.microarch.flipflop import FaultSite, FlipFlopRegistry, FlipFlopStructure
from repro.microarch.inorder import InOrderCore, INO_CLOCK_MHZ
from repro.microarch.memory import (
    BatchedWordStore,
    MemoryFault,
    MemoryRegion,
    MemorySystem,
)
from repro.microarch.ooo import OutOfOrderCore, OOO_CLOCK_MHZ
from repro.microarch.state import BatchedLatchState, LatchState

__all__ = [
    "BaseCore",
    "CoreClass",
    "CoreSnapshot",
    "DEFAULT_MAX_CYCLES",
    "DetectionEvent",
    "RunResult",
    "TerminationReason",
    "TrapKind",
    "FaultSite",
    "FlipFlopRegistry",
    "FlipFlopStructure",
    "InOrderCore",
    "INO_CLOCK_MHZ",
    "BatchedWordStore",
    "MemoryFault",
    "MemoryRegion",
    "MemorySystem",
    "OutOfOrderCore",
    "OOO_CLOCK_MHZ",
    "BatchedLatchState",
    "LatchState",
]
