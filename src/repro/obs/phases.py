"""The shared phase vocabulary of the replay engine's instrumentation.

Every layer of the engine -- golden recording, snapshot fast-forward,
scalar replay, lockstep wavefronts, tandem co-simulation, scalar fallback,
convergence checks -- records against the names defined here, so trace
spans, metric counters and the reporting layer's phase-breakdown table all
agree on what a "phase" is.

Two reconciliation identities hold by construction and are what the
phase-breakdown table (and the observability tests) verify:

* ``CampaignResult.replayed_cycles`` equals the sum of the five *replayed*
  cycle counters (:data:`REPLAY_CYCLE_COUNTERS`);
* ``CampaignResult.lockstep_cycles`` equals :data:`CYCLES_LOCKSTEP` and
  ``CampaignResult.saved_cycles`` equals :data:`CYCLES_SAVED` exactly.
"""

from __future__ import annotations

# ---------------------------------------------------------------------- spans
SPAN_CAMPAIGN = "campaign"
"""Root span of one :meth:`InjectionEngine.run` call."""

SPAN_PLAN = "plan.resolve"
"""Resolving protection semantics + the suppression lottery for the plan."""

SPAN_CHUNK = "chunk"
"""One executed shard of the plan (serial or in a worker process)."""

PHASE_GOLDEN_RECORD = "golden.record"
"""Recording the checkpointed golden run (snapshots + fingerprint grid)."""

PHASE_FASTFORWARD = "snapshot.fastforward"
"""Restoring the nearest golden snapshot below the injection cycle."""

PHASE_SCALAR_REPLAY = "replay.scalar"
"""One scalar injected replay (fast-forward + simulate to decision)."""

PHASE_LOCKSTEP = "lockstep.wavefront"
"""One streaming lockstep sweep of a batched chunk."""

PHASE_TANDEM = "tandem.window"
"""A control-diverged lane co-stepping on a pooled scalar core."""

PHASE_FALLBACK = "scalar.fallback"
"""A still-diverged tandem finishing on the plain scalar path."""

PHASE_CONVERGENCE = "convergence.check"
"""Fingerprint-grid comparisons against the golden run."""

# ------------------------------------------------------------------- counters
CYCLES_GOLDEN = "cycles.golden.record"
"""Cycles simulated recording golden runs (cache misses only)."""

CYCLES_FASTFORWARD = "cycles.fastforward.skipped"
"""Cycles *skipped* by restoring golden snapshots (sum of snapshot cycles)."""

CYCLES_SCALAR = "cycles.replay.scalar"
"""Cycles simulated on the plain scalar replay path."""

CYCLES_LOCKSTEP = "cycles.lockstep.lanes"
"""Per-lane cycles advanced inside lockstep wavefronts."""

CYCLES_WAVEFRONT_SHARED = "cycles.lockstep.shared"
"""Reference-lane cycles of wavefront sweeps (shared by every lane)."""

CYCLES_TANDEM = "cycles.tandem.window"
"""Cycles tandem cores co-stepped alongside wavefronts."""

CYCLES_FALLBACK = "cycles.scalar.fallback"
"""Cycles hard-evicted tandems simulated on the scalar finish."""

CYCLES_SAVED = "cycles.saved.convergence"
"""Cycles convergence-gated early termination *skipped*."""

COUNT_REPLAYS = "count.replays"
COUNT_CONVERGED = "count.converged"
COUNT_EVICTED = "count.evicted"
COUNT_GOLDEN_RECORDS = "count.golden.records"
COUNT_GOLDEN_CACHE_HITS = "count.golden.cache_hits"
COUNT_ARTIFACTS_LOADED = "count.golden.artifacts_loaded"
COUNT_ARTIFACTS_SAVED = "count.golden.artifacts_saved"
COUNT_FINGERPRINT_CHECKS = "count.fingerprint.checks"
COUNT_SNAPSHOTS = "count.golden.snapshots"
COUNT_FINGERPRINTS = "count.golden.fingerprints"

COUNT_FINGERPRINT_FULL = "count.fingerprint.full"
"""Convergence probes that computed the full state digest (also counts the
sparse full-digest audits of the rolling path)."""

COUNT_FINGERPRINT_ROLLING = "count.fingerprint.rolling"
"""Convergence probes served by the rolling (cached-component) digest."""

COUNT_FINGERPRINT_COMPONENTS = "count.fingerprint.components_rehashed"
"""Component payloads (latch banks / memory pages) the rolling digest had
to re-serialise across all probes -- the measured "dirty state" cost."""

HISTOGRAM_REPLAY_CYCLES = "histogram.replay.cycles"
"""Distribution of per-replay simulated cycle counts (power-of-two buckets;
recorded only under ``EngineConfig(metrics=True)``)."""

HISTOGRAM_CHECK_LATENCY_US = "histogram.fingerprint.check_us"
"""Distribution of per-probe fingerprint latencies in microseconds
(power-of-two buckets; recorded only under ``EngineConfig(metrics=True)``,
into the registry's wall-clock histogram family -- latency buckets vary run
to run, so they stay outside the deterministic counter/histogram merge)."""

REPLAY_CYCLE_COUNTERS = (CYCLES_SCALAR, CYCLES_LOCKSTEP,
                         CYCLES_WAVEFRONT_SHARED, CYCLES_TANDEM,
                         CYCLES_FALLBACK)
"""The cycle counters that sum to ``CampaignResult.replayed_cycles``."""

#: (row label, cycle counter, timer/span name or None) in display order for
#: the phase-breakdown table.  The first two and the last two rows are not
#: part of the replayed-cycle total: golden recording happens once per
#: (core, program), fast-forward and convergence-saved cycles are *skipped*
#: work, and the fingerprint-probes row counts probes (its wall column is
#: the accumulated hashing time, making the fingerprint cost explicit).
PHASE_TABLE = (
    ("golden record", CYCLES_GOLDEN, PHASE_GOLDEN_RECORD),
    ("snapshot fast-forward (skipped)", CYCLES_FASTFORWARD, None),
    ("scalar replay", CYCLES_SCALAR, PHASE_SCALAR_REPLAY),
    ("lockstep wavefront (lanes)", CYCLES_LOCKSTEP, PHASE_LOCKSTEP),
    ("wavefront reference (shared)", CYCLES_WAVEFRONT_SHARED, None),
    ("tandem window", CYCLES_TANDEM, None),
    ("scalar fallback", CYCLES_FALLBACK, PHASE_FALLBACK),
    ("convergence early-out (skipped)", CYCLES_SAVED, None),
    ("fingerprint checks (probes)", COUNT_FINGERPRINT_CHECKS,
     PHASE_CONVERGENCE),
)


def counters_of(metrics) -> dict:
    """The counters mapping of a registry, a ``to_dict`` document, or a bare
    counters dict (accepted so reporting can format any of them)."""
    counters = getattr(metrics, "counters", None)
    if counters is not None:
        return counters
    if isinstance(metrics, dict) and "counters" in metrics:
        return metrics["counters"]
    return metrics if isinstance(metrics, dict) else {}


def replayed_cycle_total(metrics) -> int:
    """Sum of the replayed-cycle phase counters (== ``replayed_cycles``)."""
    counters = counters_of(metrics)
    return sum(counters.get(name, 0) for name in REPLAY_CYCLE_COUNTERS)


def phase_cycle_totals(metrics) -> dict[str, int]:
    """Per-phase cycle totals keyed by the phase-table row labels."""
    counters = counters_of(metrics)
    return {label: counters.get(counter, 0)
            for label, counter, _ in PHASE_TABLE}
