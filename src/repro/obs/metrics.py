"""Near-zero-overhead-when-disabled metrics: counters, timers, histograms.

One :class:`MetricsRegistry` holds three families of metrics:

* **counters** -- monotonically accumulated integers (cycles per replay
  phase, replays, convergence early-outs).  Counters are the substrate the
  engine's telemetry is plumbed through: every
  :class:`~repro.engine.executors.ChunkResult` carries one registry, and
  campaign aggregation is a deterministic merge of those registries in
  chunk-index order.  Counter merging is integer addition -- associative and
  commutative -- so the merged values are bit-identical for any executor,
  worker count or completion order (the same contract every engine layer
  keeps).
* **wall-clock phase timers** -- accumulated ``time.perf_counter`` seconds
  plus an invocation count per phase, behind the ``timing`` flag so the
  default campaign path never calls the clock.
* **histograms** -- power-of-two bucketed value distributions (replay
  lengths, convergence distances); bucket counts are integers and merge as
  deterministically as counters.
* **wall-clock histograms** -- the same power-of-two bucketing applied to
  wall-clock-derived values (per-probe fingerprint latency).  Gated on the
  ``timing`` flag like the phase timers and kept in a separate family,
  because which bucket a timed sample lands in varies run to run: they are
  deliberately *outside* the deterministic-merge contract the plain
  histograms keep.

The overhead contract: a *disabled* registry (``enabled=False``) reduces
every operation to one attribute check and :meth:`timer` returns a shared
no-op context manager -- no allocation, no clock read, no dict access -- so
instrumentation can stay wired through hot paths unconditionally.  An
enabled registry with ``timing=False`` (what the engine gives each chunk)
accumulates counters but skips the clock.

Workers each build an explicit private registry (a registry is plain data
and pickles, but is not shared across processes); the process-local
:data:`DEFAULT_METRICS` exists for ad-hoc, single-process use.
"""

from __future__ import annotations

import time


class _NullTimer:
    """Shared no-op context manager returned by disabled timers."""

    __slots__ = ()

    def __enter__(self) -> "_NullTimer":
        return self

    def __exit__(self, *exc) -> bool:
        return False


NULL_TIMER = _NullTimer()
"""The one no-op timer instance; identity-checkable by the fast-path tests."""


class _Timer:
    """Context manager accumulating one phase's wall-clock time."""

    __slots__ = ("_registry", "_name", "_start")

    def __init__(self, registry: "MetricsRegistry", name: str):
        self._registry = registry
        self._name = name

    def __enter__(self) -> "_Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> bool:
        self._registry.add_time(self._name, time.perf_counter() - self._start)
        return False


class MetricsRegistry:
    """Counters, wall-clock phase timers and power-of-two histograms.

    Args:
        enabled: ``False`` turns every operation into a no-op (one attribute
            check); the registry stays empty.
        timing: gates the wall-clock timers separately from the counters.
            ``None`` follows ``enabled``; the engine passes ``False`` so
            chunk counters accumulate without any clock reads unless
            ``EngineConfig(metrics=True)`` asked for them.
    """

    __slots__ = ("enabled", "timing", "counters", "timers", "histograms",
                 "wall_histograms")

    def __init__(self, enabled: bool = True, timing: bool | None = None):
        self.enabled = enabled
        self.timing = enabled and (enabled if timing is None else timing)
        self.counters: dict[str, int] = {}
        self.timers: dict[str, list] = {}
        self.histograms: dict[str, dict[int, int]] = {}
        self.wall_histograms: dict[str, dict[int, int]] = {}

    # ------------------------------------------------------------------ record
    def inc(self, name: str, value: int = 1) -> None:
        """Add ``value`` to counter ``name`` (created at 0)."""
        if not self.enabled:
            return
        self.counters[name] = self.counters.get(name, 0) + value

    def timer(self, name: str):
        """Context manager accumulating wall-clock seconds under ``name``."""
        if not self.timing:
            return NULL_TIMER
        return _Timer(self, name)

    def add_time(self, name: str, seconds: float, count: int = 1) -> None:
        """Fold pre-measured seconds into timer ``name``."""
        if not self.timing:
            return
        entry = self.timers.get(name)
        if entry is None:
            self.timers[name] = [seconds, count]
        else:
            entry[0] += seconds
            entry[1] += count

    def observe(self, name: str, value: int) -> None:
        """Record ``value`` into histogram ``name`` (power-of-two buckets).

        Bucket ``b`` holds values whose bit length is ``b`` -- i.e. the
        ``[2**(b-1), 2**b)`` range, with 0 (and negatives, clamped) in
        bucket 0.  Integer bucket counts keep the merge deterministic.
        """
        if not self.enabled:
            return
        bucket = int(value).bit_length() if value > 0 else 0
        histogram = self.histograms.setdefault(name, {})
        histogram[bucket] = histogram.get(bucket, 0) + 1

    def observe_wall(self, name: str, value: int) -> None:
        """Record a wall-clock-derived ``value`` into histogram ``name``.

        Same power-of-two bucketing as :meth:`observe`, but gated on
        ``timing`` and stored in the separate wall-clock family: timed
        samples land in different buckets run to run, so they must not
        contaminate the deterministic histogram merge.
        """
        if not self.timing:
            return
        bucket = int(value).bit_length() if value > 0 else 0
        histogram = self.wall_histograms.setdefault(name, {})
        histogram[bucket] = histogram.get(bucket, 0) + 1

    # ------------------------------------------------------------------ read
    def value(self, name: str, default: int = 0) -> int:
        """Current counter value (``default`` when never incremented)."""
        return self.counters.get(name, default)

    def seconds(self, name: str) -> float:
        """Accumulated wall-clock seconds of timer ``name`` (0.0 if unused)."""
        entry = self.timers.get(name)
        return entry[0] if entry else 0.0

    # ------------------------------------------------------------------ merge
    def merge(self, other: "MetricsRegistry") -> None:
        """Fold another registry's metrics into this one.

        Counter and histogram merging is integer addition, so any merge
        order produces bit-identical values; callers that also carry float
        timers (the engine) still merge in chunk-index order by convention.
        A disabled target registry ignores the merge (it must stay empty).
        """
        self.merge_dict(other.to_dict())

    def merge_dict(self, data: dict) -> None:
        """Fold a :meth:`to_dict` document (e.g. from a worker) into this
        registry."""
        if not self.enabled:
            return
        for name, value in data.get("counters", {}).items():
            self.counters[name] = self.counters.get(name, 0) + value
        for name, entry in data.get("timers", {}).items():
            mine = self.timers.get(name)
            if mine is None:
                self.timers[name] = [entry["seconds"], entry["count"]]
            else:
                mine[0] += entry["seconds"]
                mine[1] += entry["count"]
        for name, buckets in data.get("histograms", {}).items():
            histogram = self.histograms.setdefault(name, {})
            for bucket, count in buckets.items():
                bucket = int(bucket)
                histogram[bucket] = histogram.get(bucket, 0) + count
        for name, buckets in data.get("wall_histograms", {}).items():
            histogram = self.wall_histograms.setdefault(name, {})
            for bucket, count in buckets.items():
                bucket = int(bucket)
                histogram[bucket] = histogram.get(bucket, 0) + count

    # ------------------------------------------------------------------ (de)serialize
    def to_dict(self) -> dict:
        """JSON-ready snapshot: ``{"counters", "timers", "histograms"}``.

        Histogram bucket keys become strings (JSON objects key on strings);
        :meth:`merge_dict` converts them back.  ``wall_histograms`` rides
        along next to the timers as the second wall-clock family.
        """
        return {
            "counters": dict(self.counters),
            "timers": {name: {"seconds": entry[0], "count": entry[1]}
                       for name, entry in self.timers.items()},
            "histograms": {name: {str(bucket): count
                                  for bucket, count in sorted(buckets.items())}
                           for name, buckets in self.histograms.items()},
            "wall_histograms": {
                name: {str(bucket): count
                       for bucket, count in sorted(buckets.items())}
                for name, buckets in self.wall_histograms.items()},
        }

    @classmethod
    def from_dict(cls, data: dict) -> "MetricsRegistry":
        registry = cls(enabled=True, timing=True)
        registry.merge_dict(data)
        return registry

    def clear(self) -> None:
        self.counters.clear()
        self.timers.clear()
        self.histograms.clear()
        self.wall_histograms.clear()


NULL_METRICS = MetricsRegistry(enabled=False)
"""Shared disabled registry for default parameters on hot paths."""

DEFAULT_METRICS = MetricsRegistry()
"""Process-local default registry for ad-hoc single-process instrumentation.

Worker processes must never write here -- the engine hands every worker an
explicit per-chunk registry that serializes back through its
:class:`~repro.engine.executors.ChunkResult`.
"""


def default_metrics() -> MetricsRegistry:
    """The process-local default registry (see :data:`DEFAULT_METRICS`)."""
    return DEFAULT_METRICS
