"""Span-based tracing in Chrome trace-event format.

A :class:`TraceRecorder` collects *spans* (complete events, ``"ph": "X"``)
and *instant* events (``"ph": "i"``) for the campaign -> chunk -> replay
lifecycle and serializes them as a Chrome trace-event-format JSON document
(the ``{"traceEvents": [...]}`` object form), loadable directly in
``chrome://tracing`` or https://ui.perfetto.dev.

Timestamps come from ``time.perf_counter`` scaled to microseconds -- the
format's native unit.  Perf-counter epochs are per-process, so events
recorded in worker processes (each chunk ships its events home through its
:class:`~repro.engine.executors.ChunkResult`) share a timeline origin only
with events from the same pid; the viewer groups tracks by pid/tid, which is
exactly the right rendering for a multi-process campaign.

A disabled recorder (``enabled=False``) returns a shared no-op span from
:meth:`span` and drops :meth:`instant` after one attribute check, so tracing
can stay wired through the engine unconditionally.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path


class _NullSpan:
    """Shared no-op span returned by disabled recorders."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False

    def note(self, **args) -> None:
        return None


NULL_SPAN = _NullSpan()
"""The one no-op span instance; identity-checkable by the fast-path tests."""


def now_us() -> float:
    return time.perf_counter() * 1e6


class _Span:
    """Context manager emitting one complete (``"X"``) event on exit."""

    __slots__ = ("_recorder", "_name", "_cat", "_tid", "_args", "_start")

    def __init__(self, recorder: "TraceRecorder", name: str, cat: str,
                 tid: int, args: dict | None):
        self._recorder = recorder
        self._name = name
        self._cat = cat
        self._tid = tid
        self._args = args

    def note(self, **args) -> None:
        """Attach (or update) event args from inside the span body."""
        if self._args is None:
            self._args = {}
        self._args.update(args)

    def __enter__(self) -> "_Span":
        self._start = now_us()
        return self

    def __exit__(self, *exc) -> bool:
        self._recorder.complete(self._name, start_us=self._start,
                                dur_us=now_us() - self._start,
                                cat=self._cat, tid=self._tid, args=self._args)
        return False


class TraceRecorder:
    """Collects trace events for one campaign (or one chunk, in a worker)."""

    __slots__ = ("enabled", "events", "pid")

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self.events: list[dict] = []
        self.pid = os.getpid()

    # ------------------------------------------------------------------ record
    def span(self, name: str, cat: str = "engine", tid: int = 0,
             args: dict | None = None):
        """Context manager recording a complete event around its body."""
        if not self.enabled:
            return NULL_SPAN
        return _Span(self, name, cat, tid, args)

    def complete(self, name: str, start_us: float, dur_us: float,
                 cat: str = "engine", tid: int = 0,
                 args: dict | None = None) -> None:
        """Record a pre-measured complete event (``"ph": "X"``)."""
        if not self.enabled:
            return
        event = {"name": name, "cat": cat, "ph": "X",
                 "ts": start_us, "dur": max(0.0, dur_us),
                 "pid": self.pid, "tid": tid}
        if args:
            event["args"] = args
        self.events.append(event)

    def instant(self, name: str, cat: str = "engine", tid: int = 0,
                args: dict | None = None) -> None:
        """Record an instant event (``"ph": "i"``, thread scope)."""
        if not self.enabled:
            return
        event = {"name": name, "cat": cat, "ph": "i", "s": "t",
                 "ts": now_us(), "pid": self.pid, "tid": tid}
        if args:
            event["args"] = args
        self.events.append(event)

    def absorb(self, events: list[dict]) -> None:
        """Append events recorded elsewhere (a worker's chunk) verbatim.

        Worker events keep their own pid and perf-counter origin -- the
        trace viewer renders each pid as its own process track.
        """
        if not self.enabled or not events:
            return
        self.events.extend(events)

    # ------------------------------------------------------------------ read
    def span_names(self) -> set[str]:
        """Distinct event names recorded so far."""
        return {event["name"] for event in self.events}

    # ------------------------------------------------------------------ emit
    def to_dict(self) -> dict:
        """The Chrome trace-event JSON object form."""
        return {"traceEvents": list(self.events), "displayTimeUnit": "ms"}

    def save(self, path: str | Path) -> Path:
        """Write the trace JSON to ``path`` (parents created); returns it."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.to_dict()) + "\n")
        return path


NULL_TRACER = TraceRecorder(enabled=False)
"""Shared disabled recorder for default parameters on hot paths."""


def validate_trace_events(document: dict) -> list[dict]:
    """Check a loaded trace document's shape; returns its event list.

    Raises:
        ValueError: when the document is not the object form or an event is
            missing a required Chrome trace-event field.  Used by the CI
            smoke step to guard the emitted format.
    """
    events = document.get("traceEvents")
    if not isinstance(events, list):
        raise ValueError("not a Chrome trace-event document: no traceEvents "
                         "list")
    for event in events:
        missing = [key for key in ("name", "ph", "ts", "pid", "tid")
                   if key not in event]
        if missing:
            raise ValueError(f"trace event {event!r} missing {missing}")
        if event["ph"] == "X" and "dur" not in event:
            raise ValueError(f"complete event {event['name']!r} missing dur")
    return events
