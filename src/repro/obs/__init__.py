"""Unified instrumentation layer: metrics, trace spans, run manifests.

The observability plane of the replay engine, in three parts:

* :mod:`repro.obs.metrics` -- a near-zero-overhead-when-disabled
  :class:`MetricsRegistry` (counters, wall-clock phase timers, power-of-two
  histograms) with a process-local default and explicit per-worker
  instances that serialize through ``ChunkResult`` and merge
  deterministically in chunk-index order;
* :mod:`repro.obs.trace` -- :class:`TraceRecorder`, span-based tracing of
  the campaign -> chunk -> replay lifecycle emitting Chrome
  trace-event-format JSON (``chrome://tracing`` / Perfetto);
* :mod:`repro.obs.manifest` -- :class:`RunManifest`, the provenance record
  (seed, engine config, core class, package versions, git revision, host)
  attached to persisted frontiers and ``BENCH_*.json`` documents.

:mod:`repro.obs.phases` defines the shared phase-name vocabulary so spans,
counters and the reporting layer's phase-breakdown table agree.

:class:`Instrumentation` bundles one registry and one recorder -- the
object the engine threads through golden recording, chunk execution,
wavefront stepping and tandem co-simulation.  ``Instrumentation.off()``
hands hot paths a shared fully-disabled bundle whose operations cost one
attribute check each.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.obs import phases
from repro.obs.manifest import (
    MANIFEST_VERSION,
    RunManifest,
    build_manifest,
    git_revision,
    manifest_dict,
    manifest_drift,
)
from repro.obs.metrics import (
    DEFAULT_METRICS,
    NULL_METRICS,
    NULL_TIMER,
    MetricsRegistry,
    default_metrics,
)
from repro.obs.phases import phase_cycle_totals, replayed_cycle_total
from repro.obs.trace import (
    NULL_SPAN,
    NULL_TRACER,
    TraceRecorder,
    validate_trace_events,
)


@dataclass
class Instrumentation:
    """One metrics registry plus one trace recorder, threaded together.

    The engine builds one per campaign (process-local) and one per chunk
    (worker-local; its contents ride home inside the ``ChunkResult``).
    """

    metrics: MetricsRegistry
    tracer: TraceRecorder

    @property
    def detailed(self) -> bool:
        """True when fine-grained (per-check / per-replay-histogram)
        instrumentation is on -- follows the registry's ``timing`` flag."""
        return self.metrics.timing

    @classmethod
    def configure(cls, metrics: bool = False,
                  trace: bool = False) -> "Instrumentation":
        """The engine's bundle: counters always on (they back the campaign
        telemetry), wall-clock timers gated on ``metrics``, spans on
        ``trace``."""
        return cls(metrics=MetricsRegistry(enabled=True, timing=metrics),
                   tracer=TraceRecorder(enabled=trace))

    @classmethod
    def off(cls) -> "Instrumentation":
        """The shared fully-disabled bundle (every operation a no-op)."""
        return OBS_OFF


OBS_OFF = Instrumentation(metrics=NULL_METRICS, tracer=NULL_TRACER)
"""Module-level disabled bundle; safe to share (disabled = stateless)."""


__all__ = [
    "DEFAULT_METRICS",
    "MANIFEST_VERSION",
    "NULL_METRICS",
    "NULL_SPAN",
    "NULL_TIMER",
    "NULL_TRACER",
    "OBS_OFF",
    "Instrumentation",
    "MetricsRegistry",
    "RunManifest",
    "TraceRecorder",
    "build_manifest",
    "default_metrics",
    "git_revision",
    "manifest_dict",
    "manifest_drift",
    "phase_cycle_totals",
    "phases",
    "replayed_cycle_total",
    "validate_trace_events",
]
