"""Run manifests: the provenance record of a persisted artefact.

A :class:`RunManifest` captures everything needed to interpret (and ideally
reproduce) a persisted result months later: the seed, the engine
configuration, the core class, package versions, the git revision of the
working tree, and host context.  Persisted frontiers
(:mod:`repro.analysis.store`) and every ``BENCH_*.json`` document attach
one, so artefacts stay self-describing across PRs and hosts.

Manifests are plain JSON-ready dicts by design -- they ride inside other
documents (frontier stores, bench payloads, campaign metadata) rather than
being a file format of their own.
"""

from __future__ import annotations

import dataclasses
import os
import platform
import subprocess
from dataclasses import dataclass, field
from datetime import datetime, timezone
from functools import lru_cache

MANIFEST_VERSION = 1
"""Manifest layout version; bump on incompatible changes."""


@lru_cache(maxsize=8)
def git_revision(path: str | None = None) -> str | None:
    """The git revision of ``path`` (default: this repo), or None.

    Best-effort: returns None when git is unavailable, the directory is not
    a work tree, or the lookup fails for any other reason -- a manifest must
    never make persisting a result fail.
    """
    cwd = path or os.path.dirname(os.path.abspath(__file__))
    try:
        revision = subprocess.run(
            ["git", "rev-parse", "HEAD"], cwd=cwd, capture_output=True,
            text=True, timeout=5, check=True).stdout.strip()
    except (OSError, subprocess.SubprocessError):
        return None
    return revision or None


def _package_versions() -> dict[str, str]:
    """Versions of the packages that shape results (best-effort)."""
    from importlib import metadata

    versions = {"python": platform.python_version()}
    for package in ("clear-repro", "numpy"):
        try:
            versions[package] = metadata.version(package)
        except Exception:  # pragma: no cover - absent package / odd metadata
            continue
    return versions


def _host_context() -> dict:
    return {
        "platform": platform.platform(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count(),
    }


@dataclass(frozen=True)
class RunManifest:
    """The provenance of one run or persisted artefact.

    Attributes:
        created: UTC ISO-8601 creation timestamp.
        seed: campaign/sweep seed, when the artefact came from a seeded run.
        core: core instance name (``None`` when not core-specific).
        core_class: core class qualname -- two differently-built cores can
            share a user-supplied name, so the class is recorded too.
        engine_config: the :class:`~repro.engine.EngineConfig` as a dict.
        packages: versions of python and the packages that shape results.
        host: platform/machine/cpu context.
        git: git revision of the working tree (None outside a checkout).
        extra: caller-supplied free-form context.
    """

    created: str
    seed: int | None = None
    core: str | None = None
    core_class: str | None = None
    engine_config: dict | None = None
    packages: dict = field(default_factory=dict)
    host: dict = field(default_factory=dict)
    git: str | None = None
    extra: dict = field(default_factory=dict)
    version: int = MANIFEST_VERSION

    def to_dict(self) -> dict:
        """JSON-ready dict (the form that rides inside other documents)."""
        return dataclasses.asdict(self)


def build_manifest(seed: int | None = None, core=None, config=None,
                   **extra) -> RunManifest:
    """Assemble a manifest for the current process.

    ``core`` may be a core instance (name + class recorded) or a plain
    name string; ``config`` an :class:`~repro.engine.EngineConfig` (or any
    dataclass/dict).  Keyword arguments land in ``extra``.
    """
    core_name = None
    core_class = None
    if core is not None:
        if isinstance(core, str):
            core_name = core
        else:
            core_name = getattr(core, "name", str(core))
            core_class = type(core).__qualname__
    config_dict = None
    if config is not None:
        if dataclasses.is_dataclass(config) and not isinstance(config, type):
            config_dict = {key: (str(value) if not isinstance(
                value, (int, float, bool, str, type(None))) else value)
                for key, value in dataclasses.asdict(config).items()}
        elif isinstance(config, dict):
            config_dict = dict(config)
        else:
            config_dict = {"repr": repr(config)}
    return RunManifest(
        created=datetime.now(timezone.utc).isoformat(timespec="seconds"),
        seed=seed, core=core_name, core_class=core_class,
        engine_config=config_dict, packages=_package_versions(),
        host=_host_context(), git=git_revision(), extra=dict(extra))


def manifest_dict(seed: int | None = None, core=None, config=None,
                  **extra) -> dict:
    """:func:`build_manifest` already serialized (the common call shape)."""
    return build_manifest(seed=seed, core=core, config=config,
                          **extra).to_dict()


def manifest_drift(manifest: dict | RunManifest | None,
                   current: dict | RunManifest | None = None) -> list[str]:
    """Describe how a loaded artefact's provenance differs from this process.

    Compares the package versions (and git revision, when both sides have
    one) recorded in a loaded frontier/artifact manifest against the current
    environment.  Returns human-readable drift notes, empty when provenance
    matches -- loaders warn on a non-empty result and
    :func:`repro.reporting.format_artifact_store_stats` surfaces it, because
    results produced by a different package version are not replay targets
    for bit-exact comparison.
    """
    if manifest is None:
        return []
    loaded = manifest.to_dict() if isinstance(manifest, RunManifest) else manifest
    if current is None:
        reference = {"packages": _package_versions(), "git": git_revision()}
    else:
        reference = (current.to_dict() if isinstance(current, RunManifest)
                     else current)
    drift: list[str] = []
    loaded_packages = loaded.get("packages") or {}
    current_packages = reference.get("packages") or {}
    for package in sorted(set(loaded_packages) & set(current_packages)):
        was, now = loaded_packages[package], current_packages[package]
        if was != now:
            drift.append(f"{package} {was} -> {now}")
    loaded_git = loaded.get("git")
    current_git = reference.get("git")
    if loaded_git and current_git and loaded_git != current_git:
        drift.append(f"git {loaded_git[:12]} -> {current_git[:12]}")
    return drift
