"""Repo-specific static analysis enforcing the bit-exactness contract.

Every accelerator in this repro (checkpointing, convergence gating, batched
lockstep replay, the persistent artifact store) is only admissible because
outcomes stay bit-identical to the legacy path.  Three past PRs fixed
determinism bugs that tests caught only by luck: hash-randomized RNG seeding,
shard-completion order leaking into frontier labels, and OoO pointer latches
that escaped the snapshot/fingerprint contract.  The auditor encodes those
invariants as AST rules (stdlib ``ast`` only, no new dependencies) so they
are enforced mechanically:

* ``repro.devtools.determinism`` -- determinism lints (builtin ``hash()``,
  unsorted set/filesystem iteration, unseeded RNGs, wall-clock reads,
  mutable defaults, module-level mutable state in worker-shipped modules).
* ``repro.devtools.state_coverage`` -- every run-varying attribute of a
  ``BaseCore`` subclass or microarchitectural state class must be covered
  by the snapshot/restore/fingerprint trio.
* ``repro.devtools.concurrency`` -- payloads dispatched through the
  executor layer must be picklable by construction, and result folds must
  be indexed by shard order, not completion order.

Run it with ``python -m repro.devtools.audit src tests benchmarks`` (or the
``clear-audit`` console script); findings are suppressed per line with
``# audit: allow[rule-id] reason``.
"""

from __future__ import annotations

from repro.devtools.findings import Finding
from repro.devtools.rules import RULES, Rule, rule_ids

__all__ = [
    "Finding",
    "Rule",
    "RULES",
    "audit_paths",
    "audit_source",
    "main",
    "rule_ids",
]

_AUDIT_EXPORTS = ("audit_paths", "audit_source", "main", "rule_table")


def __getattr__(name: str):
    # Lazy: importing repro.devtools.audit here would shadow the
    # ``python -m repro.devtools.audit`` entry under runpy.
    if name in _AUDIT_EXPORTS:
        from repro.devtools import audit
        return getattr(audit, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
