"""State-coverage audit: the PR 7 bug class, caught statically.

``BaseCore.state_fingerprint()`` must hash exactly what ``snapshot()``
captures and ``restore()`` round-trips.  PR 7 fixed OoO pointer latches
that escaped this contract -- run-varying state that snapshots silently
dropped, so restored replays diverged from straight-line execution only
under fault injection.

This rule cross-references every run-varying attribute of a ``BaseCore``
subclass (or any class that defines both capture and fingerprint methods,
which covers the state classes in ``microarch/state.py`` and
``microarch/memory.py``) against the attribute names consumed by the
snapshot/restore/fingerprint method trio, merged across the class's
ancestors where those are visible in the audited project.

An attribute counts as *run-varying* when it is stored, augmented,
subscript-assigned, or hit with a known mutator method anywhere outside
``__init__``/``__post_init__`` and the trio itself: state that only
``__init__`` creates and nothing mutates is configuration, not state.
Deliberate exclusions (e.g. ``BaseCore._program``: snapshots intentionally
do not embed the program) carry a reasoned suppression at the declaration.

The rolling-fingerprint contract (``rolling_fingerprint()`` byte-identical
to ``state_fingerprint()`` at every cycle) gets its own static check: for
any class that defines both a full-digest and a rolling-digest method in
its own body, every attribute the full path reads must also be read by the
rolling path (shared helpers such as ``_fingerprint_header`` count for
both).  Attributes the full path alone consults -- typically a new state
component wired into ``_fingerprint_microarchitecture`` but forgotten in
``_rolling_microarchitecture`` -- would leave the rolling digest stale when
they change; write-invalidated caches that legitimately exist only on one
side carry a reasoned suppression at their declaration.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterable

from repro.devtools.findings import Finding, SourceModule
from repro.devtools.rules import Project, Rule, register, tail_name

CAPTURE_METHODS = frozenset({
    "snapshot", "_snapshot_microarchitecture", "serialize", "snapshot_words",
})
RESTORE_METHODS = frozenset({
    "restore", "_restore_microarchitecture", "deserialize", "restore_words",
})
FULL_FINGERPRINT_METHODS = frozenset({
    "state_fingerprint", "_fingerprint_microarchitecture", "fingerprint_key",
    "fingerprint_digest_full",
})
ROLLING_FINGERPRINT_METHODS = frozenset({
    "rolling_fingerprint", "_rolling_microarchitecture", "fingerprint_digest",
})
SHARED_FINGERPRINT_HELPERS = frozenset({
    "_fingerprint_header", "_bank_payload",
})
FINGERPRINT_METHODS = (FULL_FINGERPRINT_METHODS | ROLLING_FINGERPRINT_METHODS
                       | SHARED_FINGERPRINT_HELPERS)
_TRIO_METHODS = CAPTURE_METHODS | RESTORE_METHODS | FINGERPRINT_METHODS
_DECL_METHODS = frozenset({"__init__", "__post_init__"})
_ROOT_BASE_NAMES = frozenset({"BaseCore"})

_MUTATOR_METHODS = frozenset({
    # generic container mutators
    "append", "extend", "insert", "add", "update", "pop", "popitem",
    "clear", "remove", "discard", "setdefault", "sort", "reverse", "write",
    # repo-specific state mutators (latches, registers, memory)
    "reset", "store_word", "store_byte", "restore_words", "restore",
    "deserialize", "clear_unit", "set", "set_signed", "flip_bit",
    "flip_flat",
})


@dataclass
class _ClassInfo:
    module: SourceModule
    node: ast.ClassDef
    base_names: tuple[str, ...]
    # attr -> line of the declaration (first store in __init__/class body)
    declared: dict[str, int] = field(default_factory=dict)
    # attr -> line of the first run-varying store/mutation
    run_varying: dict[str, int] = field(default_factory=dict)
    # method name -> set of self-attributes the method touches (load or store)
    method_attrs: dict[str, set[str]] = field(default_factory=dict)
    # method name -> attr -> line of the first touch (finding anchors)
    method_attr_lines: dict[str, dict[str, int]] = field(default_factory=dict)

    @property
    def name(self) -> str:
        return self.node.name


def _self_attr_events(method: ast.AST) -> Iterable[tuple[str, bool, int]]:
    """Yield ``(attr, is_mutation, line)`` for every ``self.<attr>`` touch."""
    for node in ast.walk(method):
        if isinstance(node, ast.Attribute) \
                and isinstance(node.value, ast.Name) \
                and node.value.id == "self":
            is_store = isinstance(node.ctx, (ast.Store, ast.Del))
            yield node.attr, is_store, node.lineno
        elif isinstance(node, ast.Subscript) \
                and isinstance(node.ctx, (ast.Store, ast.Del)) \
                and isinstance(node.value, ast.Attribute) \
                and isinstance(node.value.value, ast.Name) \
                and node.value.value.id == "self":
            yield node.value.attr, True, node.lineno
        elif isinstance(node, ast.Call) \
                and isinstance(node.func, ast.Attribute) \
                and node.func.attr in _MUTATOR_METHODS \
                and isinstance(node.func.value, ast.Attribute) \
                and isinstance(node.func.value.value, ast.Name) \
                and node.func.value.value.id == "self":
            yield node.func.value.attr, True, node.lineno


def _collect_class(module: SourceModule, node: ast.ClassDef) -> _ClassInfo:
    bases = tuple(name for name in (tail_name(base) for base in node.bases)
                  if name)
    info = _ClassInfo(module=module, node=node, base_names=bases)
    for stmt in node.body:
        for target_name in _class_body_targets(stmt):
            info.declared.setdefault(target_name, stmt.lineno)
    for stmt in node.body:
        if not isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        touched = info.method_attrs.setdefault(stmt.name, set())
        lines = info.method_attr_lines.setdefault(stmt.name, {})
        for attr, is_mutation, line in _self_attr_events(stmt):
            touched.add(attr)
            lines.setdefault(attr, line)
            if not is_mutation:
                continue
            if stmt.name in _DECL_METHODS:
                info.declared.setdefault(attr, line)
            elif stmt.name not in _TRIO_METHODS:
                info.run_varying.setdefault(attr, line)
    return info


def _class_body_targets(stmt: ast.stmt) -> Iterable[str]:
    if isinstance(stmt, ast.Assign):
        for target in stmt.targets:
            if isinstance(target, ast.Name):
                yield target.id
    elif isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
        yield stmt.target.id


@register
class StateCoverageRule(Rule):
    """Run-varying core state must be snapshot, restored, and fingerprinted."""

    rule_id = "state-coverage"
    summary = ("every run-varying attribute of a BaseCore subclass or "
               "snapshot-bearing state class must appear in the "
               "snapshot/restore/fingerprint method trio")

    def check(self, project: Project) -> Iterable[Finding]:
        classes: list[_ClassInfo] = []
        for module in project:
            for node in ast.walk(module.tree):
                if isinstance(node, ast.ClassDef):
                    classes.append(_collect_class(module, node))
        # Last definition wins on a name collision, matching import shadowing
        # closely enough for ancestor lookup.
        by_name = {info.name: info for info in classes}

        core_family = set(_ROOT_BASE_NAMES)
        changed = True
        while changed:
            changed = False
            for info in classes:
                if info.name in core_family:
                    continue
                if any(base in core_family for base in info.base_names):
                    core_family.add(info.name)
                    changed = True

        for info in classes:
            if info.name in core_family and info.name not in _ROOT_BASE_NAMES:
                yield from self._check_class(info, by_name)
            elif self._defines_contract(info):
                yield from self._check_class(info, by_name)
            elif info.name in _ROOT_BASE_NAMES:
                yield from self._check_class(info, by_name)

    def _defines_contract(self, info: _ClassInfo) -> bool:
        methods = set(info.method_attrs)
        return bool(methods & FINGERPRINT_METHODS) \
            and bool(methods & CAPTURE_METHODS)

    def _check_class(self, info: _ClassInfo,
                     by_name: dict[str, _ClassInfo]) -> Iterable[Finding]:
        hierarchy = self._hierarchy(info, by_name)
        if not any(set(ancestor.method_attrs) & _TRIO_METHODS
                   for ancestor in hierarchy):
            # No contract anywhere in the visible hierarchy (e.g. a helper
            # subclass in a partial audit); nothing to cross-reference.
            return
        captured, restored, fingerprinted = self._merged_trio(hierarchy)
        for attr, line in sorted(info.run_varying.items(),
                                 key=lambda item: (item[1], item[0])):
            missing = [label for label, names in (
                ("capture", captured), ("restore", restored),
                ("fingerprint", fingerprinted)) if attr not in names]
            if not missing:
                continue
            anchor = info.declared.get(attr, line)
            yield info.module.finding(
                anchor, self.rule_id,
                f"run-varying state {info.name}.{attr} is missing from the "
                f"{'/'.join(missing)} side of the snapshot/restore/"
                "fingerprint contract; divergence will survive restore "
                "undetected (see BaseCore.snapshot docs)")
        yield from self._check_rolling(info, by_name)

    def _check_rolling(self, info: _ClassInfo,
                       by_name: dict[str, _ClassInfo]) -> Iterable[Finding]:
        """Full-digest reads must be covered by the rolling-digest path.

        Only classes that define *both* sides in their own body are held to
        this: a class inheriting one side unchanged cannot introduce an
        asymmetry of its own.  Method names are excluded from the read sets
        (``self._helper()`` parses as an attribute load of ``_helper``).
        """
        own = set(info.method_attrs)
        full_methods = own & FULL_FINGERPRINT_METHODS
        rolling_methods = own & ROLLING_FINGERPRINT_METHODS
        if not full_methods or not rolling_methods:
            return
        method_names: set[str] = set()
        for ancestor in self._hierarchy(info, by_name):
            method_names.update(ancestor.method_attrs)

        def reads(methods: set[str]) -> set[str]:
            touched: set[str] = set()
            for method in methods:
                touched.update(info.method_attrs[method])
            return touched

        shared_reads = reads(own & SHARED_FINGERPRINT_HELPERS)
        full_reads = reads(full_methods) | shared_reads
        rolling_reads = reads(rolling_methods) | shared_reads
        for attr in sorted(full_reads - rolling_reads - method_names):
            first_read = min(
                info.method_attr_lines[method][attr]
                for method in full_methods
                if attr in info.method_attr_lines.get(method, {}))
            anchor = info.declared.get(attr, first_read)
            yield info.module.finding(
                anchor, self.rule_id,
                f"{info.name}.{attr} feeds the full fingerprint path "
                f"({'/'.join(sorted(full_methods))}) but not the rolling "
                f"path ({'/'.join(sorted(rolling_methods))}); the rolling "
                "digest would go stale when it changes, breaking the "
                "rolling == full bit-identity contract")

    def _merged_trio(self, hierarchy: list[_ClassInfo]
                     ) -> tuple[set[str], set[str], set[str]]:
        captured: set[str] = set()
        restored: set[str] = set()
        fingerprinted: set[str] = set()
        for ancestor in hierarchy:
            for method, attrs in ancestor.method_attrs.items():
                if method in CAPTURE_METHODS:
                    captured.update(attrs)
                if method in RESTORE_METHODS:
                    restored.update(attrs)
                if method in FINGERPRINT_METHODS:
                    fingerprinted.update(attrs)
        return captured, restored, fingerprinted

    def _hierarchy(self, info: _ClassInfo,
                   by_name: dict[str, _ClassInfo]) -> list[_ClassInfo]:
        seen: set[str] = set()
        ordered: list[_ClassInfo] = []
        stack = [info]
        while stack:
            current = stack.pop()
            if current.name in seen:
                continue
            seen.add(current.name)
            ordered.append(current)
            for base in current.base_names:
                parent = by_name.get(base)
                if parent is not None:
                    stack.append(parent)
        return ordered
