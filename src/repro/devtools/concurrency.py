"""Concurrency-contract audit for the executor layer.

``engine/executors.py`` ships shard functions and payloads to worker
processes by pickling, and the engine's bit-exactness contract requires
every result fold to be ordered by shard index (PR 4 fixed frontier labels
that leaked shard-completion order).  Two rules keep both properties:

* ``unpicklable-dispatch`` -- arguments handed to ``.stream(...)`` /
  ``.submit(...)`` must be picklable by construction: no lambdas, no
  functions defined inside the calling function, no bound methods of
  stateful objects.  Module-level functions are the contract
  (``ShardFunction`` in ``engine/executors.py``).
* ``completion-order-fold`` -- a ``for`` loop directly over
  ``.stream(...)`` / ``.run_chunks(...)`` observes completion order; its
  body must consume ``<result>.index`` (indexed fold into a preallocated
  slot table, or an explicit sort) or carry a reasoned suppression.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.devtools.findings import Finding, SourceModule
from repro.devtools.rules import (Project, Rule, enclosing_functions,
                                  register, tail_name)

_DISPATCH_ATTRS = frozenset({"stream", "submit"})
_STREAM_ATTRS = frozenset({"stream", "run_chunks"})


@register
class UnpicklableDispatchRule(Rule):
    """Executor dispatch only takes picklable-by-construction callables."""

    rule_id = "unpicklable-dispatch"
    summary = ("lambdas, closures, and bound methods cannot be pickled to "
               "worker processes; dispatch module-level functions "
               "(ShardFunction) through the executor layer")

    def check_module(self, module: SourceModule,
                     project: Project) -> Iterable[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            if not (isinstance(node.func, ast.Attribute)
                    and node.func.attr in _DISPATCH_ATTRS):
                continue
            local_defs = self._locally_defined(module, node)
            arguments = list(node.args)
            arguments.extend(keyword.value for keyword in node.keywords)
            for argument in arguments:
                finding = self._bad_argument(module, node, argument,
                                             local_defs)
                if finding is not None:
                    yield finding

    def _bad_argument(self, module: SourceModule, call: ast.Call,
                      argument: ast.AST,
                      local_defs: set[str]) -> Finding | None:
        dispatch = call.func.attr  # type: ignore[union-attr]
        if isinstance(argument, ast.Lambda):
            return module.finding(
                argument, self.rule_id,
                f"lambda passed to .{dispatch}() cannot be pickled to "
                "worker processes; use a module-level function")
        if isinstance(argument, ast.Name) and argument.id in local_defs:
            return module.finding(
                argument, self.rule_id,
                f"{argument.id!r} is defined inside the calling function; "
                f"closures passed to .{dispatch}() cannot be pickled to "
                "worker processes -- move it to module level")
        if isinstance(argument, ast.Attribute) \
                and isinstance(argument.value, ast.Name) \
                and argument.value.id == "self":
            return module.finding(
                argument, self.rule_id,
                f"bound method self.{argument.attr} passed to .{dispatch}() "
                "drags its whole instance through pickle; use a "
                "module-level function taking the payload explicitly")
        return None

    def _locally_defined(self, module: SourceModule,
                         call: ast.Call) -> set[str]:
        names: set[str] = set()
        for func in enclosing_functions(module, call):
            for node in ast.walk(func):
                if node is func:
                    continue
                if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    names.add(node.name)
                elif isinstance(node, ast.Assign) \
                        and isinstance(node.value, ast.Lambda):
                    for target in node.targets:
                        if isinstance(target, ast.Name):
                            names.add(target.id)
        return names


@register
class CompletionOrderFoldRule(Rule):
    """Result folds must be indexed by shard order, not completion order."""

    rule_id = "completion-order-fold"
    summary = ("loops over executor .stream()/.run_chunks() observe "
               "completion order; fold by <result>.index (slot table or "
               "sort) so outcomes stay order-independent")

    def check_module(self, module: SourceModule,
                     project: Project) -> Iterable[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, (ast.For, ast.AsyncFor)):
                continue
            if not (isinstance(node.iter, ast.Call)
                    and isinstance(node.iter.func, ast.Attribute)
                    and node.iter.func.attr in _STREAM_ATTRS):
                continue
            targets = self._target_names(node.target)
            if not targets:
                continue
            if self._body_uses_index(node, targets):
                continue
            stream = node.iter.func.attr
            yield module.finding(
                node, self.rule_id,
                f"loop over .{stream}() observes shard completion order and "
                "its body never reads the result's .index; fold into an "
                "index-keyed slot table (or sort) so the outcome cannot "
                "depend on worker scheduling")

    def _target_names(self, target: ast.AST) -> set[str]:
        names: set[str] = set()
        for node in ast.walk(target):
            if isinstance(node, ast.Name):
                names.add(node.id)
        return names

    def _body_uses_index(self, loop: ast.For | ast.AsyncFor,
                         targets: set[str]) -> bool:
        for stmt in loop.body:
            for node in ast.walk(stmt):
                if isinstance(node, ast.Attribute) and node.attr == "index" \
                        and isinstance(node.value, ast.Name) \
                        and node.value.id in targets:
                    return True
        return False
