"""Audit engine and CLI.

Usage::

    python -m repro.devtools.audit src tests benchmarks
    clear-audit src tests benchmarks        # console-script form

Walks the given files/directories (``.py`` only, skipping ``__pycache__``
and hidden directories), runs every registered rule, applies per-line
``# audit: allow[rule-id] reason`` suppressions, and prints findings as
``path:line:col: rule-id: message``.  Exits 0 when the tree is clean and
1 when there is at least one finding, so both CI and
``tests/test_devtools.py`` can gate on it.

Files marked ``# audit: fixture`` in their first lines are the auditor's
own known-bad test inputs; the default walk skips them (pass
``--include-fixtures`` or name a fixture file directly on the command
line to audit one).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Iterable, Sequence

# Importing the rule modules populates the registry.
import repro.devtools.concurrency  # noqa: F401
import repro.devtools.determinism  # noqa: F401
import repro.devtools.state_coverage  # noqa: F401
from repro.devtools.findings import (Finding, SourceModule,
                                     apply_suppressions, parse_module)
from repro.devtools.rules import RULES, Project, rule_ids

_SKIP_DIR_NAMES = frozenset({"__pycache__"})


def collect_files(paths: Sequence[Path]) -> list[Path]:
    """Expand files/directories into a sorted, deduplicated .py file list."""
    seen: set[Path] = set()
    ordered: list[Path] = []
    for path in paths:
        if path.is_dir():
            candidates = sorted(child for child in path.rglob("*.py")
                                if not _skipped(child))
        else:
            candidates = [path]
        for candidate in candidates:
            resolved = candidate.resolve()
            if resolved not in seen:
                seen.add(resolved)
                ordered.append(candidate)
    return ordered


def _skipped(path: Path) -> bool:
    return any(part in _SKIP_DIR_NAMES or part.startswith(".")
               for part in path.parts)


def load_modules(files: Iterable[Path],
                 root: Path | None = None) -> tuple[list[SourceModule],
                                                    list[Finding]]:
    """Parse files into modules; unparsable files become findings."""
    root = root or Path.cwd()
    modules: list[SourceModule] = []
    errors: list[Finding] = []
    for path in files:
        try:
            relpath = str(path.resolve().relative_to(root.resolve()))
        except ValueError:
            relpath = str(path)
        try:
            source = path.read_text(encoding="utf-8")
            modules.append(parse_module(source, path, relpath))
        except SyntaxError as exc:
            errors.append(Finding(
                path=relpath, line=exc.lineno or 1, col=(exc.offset or 1),
                rule_id="syntax-error",
                message=f"file does not parse: {exc.msg}"))
        except (OSError, UnicodeDecodeError) as exc:
            errors.append(Finding(
                path=relpath, line=1, col=1, rule_id="syntax-error",
                message=f"file could not be read: {exc}"))
    return modules, errors


def audit_modules(modules: Sequence[SourceModule],
                  select: Sequence[str] | None = None) -> list[Finding]:
    """Run rules over already-parsed modules and apply suppressions."""
    project = Project(modules)
    known = rule_ids()
    active = [rule for rule in RULES
              if select is None or rule.rule_id in select]
    by_module: dict[str, list[Finding]] = {m.relpath: [] for m in modules}
    for rule in active:
        for finding in rule.check(project):
            by_module.setdefault(finding.path, []).append(finding)
    results: list[Finding] = []
    for module in modules:
        results.extend(apply_suppressions(
            module, by_module.get(module.relpath, []), known))
    return sorted(results)


def audit_paths(paths: Sequence[str | Path],
                root: Path | None = None,
                select: Sequence[str] | None = None,
                include_fixtures: bool = False) -> list[Finding]:
    """Audit files/directories; the public API used by tests and the CLI.

    Fixture-marked files are dropped unless ``include_fixtures`` is true or
    the file was named directly (not discovered through a directory walk).
    """
    explicit = {Path(p).resolve() for p in paths if Path(p).is_file()}
    files = collect_files([Path(p) for p in paths])
    modules, errors = load_modules(files, root=root)
    if not include_fixtures:
        modules = [module for module in modules
                   if not module.is_fixture
                   or module.path.resolve() in explicit]
    return sorted(audit_modules(modules, select=select) + errors)


def audit_source(source: str, relpath: str = "<memory>.py",
                 select: Sequence[str] | None = None,
                 companions: Sequence[SourceModule] = ()) -> list[Finding]:
    """Audit a source string (test helper -- no filesystem round-trip).

    ``companions`` are extra parsed modules added to the project, letting
    tests exercise cross-module resolution (e.g. a synthetic core whose
    base class lives in the real tree).
    """
    try:
        module = parse_module(source, Path(relpath), relpath)
    except SyntaxError as exc:
        return [Finding(path=relpath, line=exc.lineno or 1,
                        col=(exc.offset or 1), rule_id="syntax-error",
                        message=f"file does not parse: {exc.msg}")]
    findings = audit_modules([module, *companions], select=select)
    return [finding for finding in findings if finding.path == relpath]


def rule_table() -> list[tuple[str, str]]:
    """(rule_id, summary) pairs for docs and ``--list-rules``."""
    return sorted((rule.rule_id, rule.summary) for rule in RULES)


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.devtools.audit",
        description=("Static determinism / state-coverage / concurrency "
                     "audit for the clear-repro tree."))
    parser.add_argument("paths", nargs="*", default=None,
                        help="files or directories to audit "
                             "(default: src tests benchmarks)")
    parser.add_argument("--select", action="append", default=None,
                        metavar="RULE-ID",
                        help="run only the named rule (repeatable)")
    parser.add_argument("--include-fixtures", action="store_true",
                        help="audit files marked '# audit: fixture' too")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule table and exit")
    options = parser.parse_args(argv)

    if options.list_rules:
        for rule_id, summary in rule_table():
            print(f"{rule_id}: {summary}")
        return 0

    paths = options.paths or ["src", "tests", "benchmarks"]
    existing = [path for path in paths if Path(path).exists()]
    for missing in sorted(set(paths) - set(existing)):
        print(f"audit: skipping missing path {missing!r}", file=sys.stderr)
    if options.select:
        unknown = set(options.select) - set(rule_ids())
        if unknown:
            parser.error(f"unknown rule id(s): {', '.join(sorted(unknown))}")
    findings = audit_paths(existing, select=options.select,
                           include_fixtures=options.include_fixtures)
    for finding in findings:
        print(finding.format())
    scanned = len(collect_files([Path(p) for p in existing]))
    status = "clean" if not findings else f"{len(findings)} finding(s)"
    print(f"audit: {scanned} file(s) scanned, {status}", file=sys.stderr)
    return 1 if findings else 0


def cli() -> None:
    """Console-script entry point (``clear-audit``)."""
    raise SystemExit(main())


if __name__ == "__main__":
    raise SystemExit(main())
