"""Rule base class, registry, and shared AST helpers."""

from __future__ import annotations

import ast
from typing import Iterable, Iterator

from repro.devtools.findings import Finding, SourceModule


class Project:
    """The set of modules being audited in one run.

    Cross-module rules (state coverage resolves class hierarchies across
    files) see the whole project; per-module rules just iterate.
    """

    def __init__(self, modules: Iterable[SourceModule]):
        self.modules = list(modules)
        self.by_relpath = {module.relpath: module for module in self.modules}

    def __iter__(self) -> Iterator[SourceModule]:
        return iter(self.modules)


class Rule:
    """One named invariant checked over the project.

    Subclasses set ``rule_id`` and ``summary`` and implement either
    :meth:`check_module` (per-file rules) or :meth:`check` (cross-module
    rules such as state coverage).
    """

    rule_id: str = ""
    summary: str = ""

    def check(self, project: Project) -> Iterable[Finding]:
        for module in project:
            yield from self.check_module(module, project)

    def check_module(self, module: SourceModule,
                     project: Project) -> Iterable[Finding]:
        return ()


RULES: list[Rule] = []


def register(cls: type[Rule]) -> type[Rule]:
    """Class decorator adding an instance of ``cls`` to the registry."""
    RULES.append(cls())
    return cls


def rule_ids() -> frozenset[str]:
    # bad-suppression is emitted by the suppression machinery itself and
    # syntax-error by the loader; both are valid ids for reporting but
    # deliberately not suppressible rules.
    return frozenset(rule.rule_id for rule in RULES)


# ---------------------------------------------------------------------------
# Shared AST helpers


def dotted_name(node: ast.AST) -> str | None:
    """``a.b.c`` for Name/Attribute chains, else None."""
    parts: list[str] = []
    current = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if isinstance(current, ast.Name):
        parts.append(current.id)
        return ".".join(reversed(parts))
    return None


def call_name(node: ast.Call) -> str | None:
    """Dotted name of a call's callee, else None."""
    return dotted_name(node.func)


def tail_name(node: ast.AST) -> str | None:
    """The final identifier of a Name/Attribute (``a.b.c`` -> ``c``)."""
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


def enclosing_functions(module: SourceModule,
                        node: ast.AST) -> list[ast.FunctionDef | ast.AsyncFunctionDef]:
    """Function defs containing ``node``, innermost first."""
    return [ancestor for ancestor in module.ancestors(node)
            if isinstance(ancestor, (ast.FunctionDef, ast.AsyncFunctionDef))]


def enclosing_class(module: SourceModule,
                    node: ast.AST) -> ast.ClassDef | None:
    for ancestor in module.ancestors(node):
        if isinstance(ancestor, ast.ClassDef):
            return ancestor
    return None


def is_self_attribute(node: ast.AST) -> str | None:
    """Return the attribute name when ``node`` is ``self.<attr>``."""
    if (isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"):
        return node.attr
    return None


MUTABLE_LITERALS = (ast.List, ast.Dict, ast.Set,
                    ast.ListComp, ast.DictComp, ast.SetComp)
MUTABLE_CONSTRUCTORS = frozenset({
    "list", "dict", "set", "bytearray", "deque", "defaultdict",
    "Counter", "OrderedDict", "array",
})


def is_mutable_value(node: ast.AST) -> bool:
    """Conservative: does this expression produce an obviously mutable value?"""
    if isinstance(node, MUTABLE_LITERALS):
        return True
    if isinstance(node, ast.Call):
        name = tail_name(node.func)
        return name in MUTABLE_CONSTRUCTORS
    return False
