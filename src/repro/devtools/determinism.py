"""Determinism lints.

These rules encode the bug classes past PRs fixed by hand: builtin ``hash``
feeding seeds (hash-randomized across processes), unsorted filesystem/set
iteration leaking arbitrary order into folds or persisted output, unseeded
process-global RNGs, wall-clock reads outside the observability layer, and
Python's two classic shared-mutable-state traps in modules that are shipped
to worker processes.
"""

from __future__ import annotations

import ast
import re
from typing import Iterable

from repro.devtools.findings import Finding, SourceModule
from repro.devtools.rules import (Project, Rule, call_name, dotted_name,
                                  is_mutable_value, register, tail_name)

_SEED_CONTEXT_RE = re.compile(r"seed|key|digest|hash|fingerprint|rng|label",
                              re.IGNORECASE)


def _assigned_names(node: ast.AST) -> Iterable[str]:
    if isinstance(node, ast.Assign):
        for target in node.targets:
            name = tail_name(target)
            if name:
                yield name
    elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
        name = tail_name(node.target)
        if name:
            yield name


@register
class BuiltinHashRule(Rule):
    """Builtin ``hash()``/``id()`` must not feed seeds, keys, or digests."""

    rule_id = "builtin-hash"
    summary = ("builtin hash() is salted per process (PYTHONHASHSEED) and "
               "id() is an address; neither may feed seeds, keys, or digests")

    def check_module(self, module: SourceModule,
                     project: Project) -> Iterable[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            name = node.func.id if isinstance(node.func, ast.Name) else None
            if name == "hash":
                yield module.finding(
                    node, self.rule_id,
                    "builtin hash() is process-salted for str/bytes; derive "
                    "stable values with zlib.crc32 or hashlib.blake2b over "
                    "canonical bytes")
            elif name == "id" and self._in_seed_context(module, node):
                yield module.finding(
                    node, self.rule_id,
                    "id() is a memory address and varies run to run; use a "
                    "stable identifier instead")

    def _in_seed_context(self, module: SourceModule, node: ast.Call) -> bool:
        for ancestor in module.ancestors(node):
            for name in _assigned_names(ancestor):
                if _SEED_CONTEXT_RE.search(name):
                    return True
            if isinstance(ancestor, ast.keyword) and ancestor.arg \
                    and _SEED_CONTEXT_RE.search(ancestor.arg):
                return True
            if isinstance(ancestor, ast.Call):
                callee = call_name(ancestor)
                if callee and _SEED_CONTEXT_RE.search(callee.rsplit(".", 1)[-1]):
                    return True
        return False


_ORDER_SAFE_CALLS = frozenset({
    "sorted", "len", "sum", "min", "max", "any", "all", "set", "frozenset",
    "bool", "Counter", "dict",
})
_MATERIALIZER_CALLS = frozenset({"list", "tuple"})


@register
class UnsortedIterationRule(Rule):
    """Unordered sources must be ``sorted(...)`` before order can leak."""

    rule_id = "unsorted-iteration"
    summary = ("iteration over set/frozenset/Path.glob/Path.iterdir/"
               "os.listdir must pass through sorted(...) before the order "
               "can reach folds, labels, or persisted output")

    def check_module(self, module: SourceModule,
                     project: Project) -> Iterable[Finding]:
        for node in ast.walk(module.tree):
            source = self._unordered_source(node)
            if source is None:
                continue
            finding = self._consumed_unsorted(module, node, source)
            if finding is not None:
                yield finding

    def _unordered_source(self, node: ast.AST) -> str | None:
        if isinstance(node, ast.SetComp):
            return "set comprehension"
        if isinstance(node, ast.Set):
            return "set literal"
        if isinstance(node, ast.Call):
            name = tail_name(node.func)
            if isinstance(node.func, ast.Name) and name in ("set", "frozenset"):
                return f"{name}()"
            if isinstance(node.func, ast.Attribute):
                if name in ("glob", "rglob", "iterdir"):
                    return f".{name}()"
                if name in ("listdir", "scandir") \
                        and isinstance(node.func.value, ast.Name) \
                        and node.func.value.id == "os":
                    return f"os.{name}()"
        return None

    def _consumed_unsorted(self, module: SourceModule, node: ast.AST,
                           source: str) -> Finding | None:
        message = (f"order of {source} is unspecified; wrap in sorted(...) "
                   "before iterating, or fold order-insensitively")
        parent = module.parent(node)
        if isinstance(parent, (ast.For, ast.AsyncFor)) and parent.iter is node:
            return module.finding(node, self.rule_id, message)
        if isinstance(parent, ast.comprehension) and parent.iter is node:
            owner = module.parent(parent)
            if isinstance(owner, (ast.SetComp, ast.DictComp)):
                return None  # result is itself unordered; no order consumed
            if isinstance(owner, ast.ListComp):
                return module.finding(node, self.rule_id, message)
            if isinstance(owner, ast.GeneratorExp):
                consumer = module.parent(owner)
                if self._order_sensitive_consumer(module, owner, consumer):
                    return module.finding(node, self.rule_id, message)
            return None
        if isinstance(parent, ast.Call) and node in parent.args:
            if self._order_sensitive_consumer(module, node, parent):
                return module.finding(node, self.rule_id, message)
        return None

    def _order_sensitive_consumer(self, module: SourceModule, node: ast.AST,
                                  consumer: ast.AST | None) -> bool:
        if not isinstance(consumer, ast.Call):
            return False
        name = tail_name(consumer.func)
        if name in _ORDER_SAFE_CALLS:
            return False
        if name == "join":
            return True
        if name in _MATERIALIZER_CALLS:
            # list(...)/tuple(...) keep the arbitrary order alive -- unless
            # the materialised value is immediately collapsed to something
            # order-free (len/bool/not/membership/emptiness checks).
            outer = module.parent(consumer)
            if isinstance(outer, ast.UnaryOp) and isinstance(outer.op, ast.Not):
                return False
            if isinstance(outer, (ast.Assert, ast.If, ast.While)) \
                    and getattr(outer, "test", None) is consumer:
                return False
            if isinstance(outer, ast.Call) \
                    and tail_name(outer.func) in _ORDER_SAFE_CALLS:
                return False
            if isinstance(outer, ast.Compare):
                return False
            return True
        if name in ("enumerate", "iter", "next"):
            return True
        return False


_RANDOM_MODULE_FUNCTIONS = frozenset({
    "random", "randint", "randrange", "uniform", "choice", "choices",
    "sample", "shuffle", "seed", "getrandbits", "gauss", "normalvariate",
    "lognormvariate", "expovariate", "betavariate", "gammavariate",
    "paretovariate", "weibullvariate", "vonmisesvariate", "triangular",
    "binomialvariate", "getstate", "setstate", "randbytes",
})
_NUMPY_RANDOM_FUNCTIONS = frozenset({
    "rand", "randn", "randint", "random", "random_sample", "ranf", "sample",
    "choice", "shuffle", "permutation", "seed", "normal", "uniform",
    "standard_normal", "exponential", "poisson", "bytes", "get_state",
    "set_state",
})


@register
class UnseededRandomRule(Rule):
    """No draws from the process-global RNGs."""

    rule_id = "unseeded-random"
    summary = ("module-level random/numpy.random calls share unseeded global "
               "state; construct random.Random(seed) or "
               "numpy.random.default_rng(seed) and pass it down")

    def check_module(self, module: SourceModule,
                     project: Project) -> Iterable[Finding]:
        random_aliases: set[str] = set()
        numpy_aliases: set[str] = set()
        numpy_random_aliases: set[str] = set()
        bare_functions: dict[str, str] = {}
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    bound = alias.asname or alias.name.split(".")[0]
                    if alias.name == "random":
                        random_aliases.add(bound)
                    elif alias.name == "numpy":
                        numpy_aliases.add(bound)
                    elif alias.name == "numpy.random":
                        if alias.asname:
                            numpy_random_aliases.add(alias.asname)
                        else:
                            numpy_aliases.add("numpy")
            elif isinstance(node, ast.ImportFrom):
                if node.module == "random":
                    for alias in node.names:
                        bare_functions[alias.asname or alias.name] = alias.name
                elif node.module == "numpy":
                    for alias in node.names:
                        if alias.name == "random":
                            numpy_random_aliases.add(alias.asname or "random")

        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if isinstance(func, ast.Name):
                original = bare_functions.get(func.id)
                if original in _RANDOM_MODULE_FUNCTIONS:
                    yield self._finding(module, node, f"random.{original}")
                continue
            if not isinstance(func, ast.Attribute):
                continue
            receiver = func.value
            if isinstance(receiver, ast.Name) \
                    and receiver.id in random_aliases \
                    and func.attr in _RANDOM_MODULE_FUNCTIONS:
                yield self._finding(module, node, f"random.{func.attr}")
                continue
            is_np_random = (
                (isinstance(receiver, ast.Name)
                 and receiver.id in numpy_random_aliases)
                or (isinstance(receiver, ast.Attribute)
                    and receiver.attr == "random"
                    and isinstance(receiver.value, ast.Name)
                    and receiver.value.id in numpy_aliases))
            if is_np_random:
                if func.attr in _NUMPY_RANDOM_FUNCTIONS:
                    yield self._finding(module, node,
                                        f"numpy.random.{func.attr}")
                elif func.attr == "default_rng" and not node.args \
                        and not node.keywords:
                    yield module.finding(
                        node, self.rule_id,
                        "numpy.random.default_rng() without a seed draws "
                        "OS entropy; pass an explicit seed")

    def _finding(self, module: SourceModule, node: ast.Call,
                 name: str) -> Finding:
        return module.finding(
            node, self.rule_id,
            f"{name}() uses the unseeded process-global RNG; construct "
            "random.Random(seed) / numpy.random.default_rng(seed) instead")


_WALL_CLOCK_ATTRS = frozenset({
    "time", "time_ns", "now", "utcnow", "today", "localtime", "gmtime",
    "ctime", "asctime",
})
_WALL_CLOCK_MODULES = frozenset({"time", "datetime", "date"})


@register
class WallClockRule(Rule):
    """Wall-clock reads belong in ``obs/`` (manifests, timers) only."""

    rule_id = "wall-clock"
    summary = ("time.time()/datetime.now() make outputs run-varying; "
               "wall-clock reads live in obs/ (perf_counter for intervals "
               "is fine anywhere)")

    def check_module(self, module: SourceModule,
                     project: Project) -> Iterable[Finding]:
        if "obs" in module.parts:
            return
        bare_clocks: set[str] = set()
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ImportFrom) and node.module == "time":
                for alias in node.names:
                    if alias.name in ("time", "time_ns"):
                        bare_clocks.add(alias.asname or alias.name)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            if isinstance(node.func, ast.Name) and node.func.id in bare_clocks:
                yield self._finding(module, node, node.func.id)
                continue
            name = dotted_name(node.func)
            if name is None:
                continue
            parts = name.split(".")
            if parts[-1] in _WALL_CLOCK_ATTRS \
                    and any(part in _WALL_CLOCK_MODULES for part in parts[:-1]):
                yield self._finding(module, node, name)

    def _finding(self, module: SourceModule, node: ast.Call,
                 name: str) -> Finding:
        return module.finding(
            node, self.rule_id,
            f"{name}() reads the wall clock outside obs/; results and "
            "artifacts must not depend on when a run happens")


@register
class MutableDefaultRule(Rule):
    """No mutable default arguments, anywhere."""

    rule_id = "mutable-default"
    summary = ("mutable default arguments are shared across calls (and "
               "across shards once shipped to workers); default to None")

    def check_module(self, module: SourceModule,
                     project: Project) -> Iterable[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                     ast.Lambda)):
                continue
            defaults = list(node.args.defaults)
            defaults.extend(d for d in node.args.kw_defaults if d is not None)
            for default in defaults:
                if is_mutable_value(default):
                    owner = getattr(node, "name", "<lambda>")
                    yield module.finding(
                        default, self.rule_id,
                        f"mutable default argument on {owner!r} is evaluated "
                        "once and shared across calls; default to None and "
                        "construct inside the body")


_MUTATOR_METHODS = frozenset({
    "append", "extend", "insert", "add", "update", "pop", "popitem",
    "clear", "remove", "discard", "setdefault", "sort", "reverse",
    "__setitem__",
})
_WORKER_SHIPPED_PARTS = ("engine", "faultinjection")


@register
class ModuleMutableStateRule(Rule):
    """Worker-shipped modules must not mutate module-level state."""

    rule_id = "module-mutable-state"
    summary = ("module-level state mutated from functions in engine/ or "
               "faultinjection/ diverges between the parent process and "
               "forked/spawned workers")

    def check_module(self, module: SourceModule,
                     project: Project) -> Iterable[Finding]:
        if not any(part in _WORKER_SHIPPED_PARTS for part in module.parts):
            return
        module_names: dict[str, int] = {}
        for stmt in module.tree.body:
            for name in _assigned_names(stmt):
                module_names.setdefault(name, stmt.lineno)

        mutated: dict[str, int] = {}  # name -> anchor line
        for func in ast.walk(module.tree):
            if not isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            local_names = self._local_bindings(func)
            for node in ast.walk(func):
                if isinstance(node, ast.Global):
                    for name in node.names:
                        anchor = module_names.get(name, node.lineno)
                        mutated.setdefault(name, anchor)
                elif isinstance(node, (ast.Assign, ast.AugAssign)):
                    targets = (node.targets if isinstance(node, ast.Assign)
                               else [node.target])
                    for target in targets:
                        if isinstance(target, ast.Subscript) \
                                and isinstance(target.value, ast.Name):
                            name = target.value.id
                            if name in module_names \
                                    and name not in local_names:
                                mutated.setdefault(name, module_names[name])
                elif isinstance(node, ast.Call) \
                        and isinstance(node.func, ast.Attribute) \
                        and node.func.attr in _MUTATOR_METHODS \
                        and isinstance(node.func.value, ast.Name):
                    name = node.func.value.id
                    if name in module_names and name not in local_names:
                        mutated.setdefault(name, module_names[name])

        for name, line in sorted(mutated.items(), key=lambda item: item[1]):
            yield module.finding(
                line, self.rule_id,
                f"module-level {name!r} is mutated from function scope in a "
                "worker-shipped module; workers fork/spawn with their own "
                "copy, so this state silently diverges across processes")

    def _local_bindings(self, func: ast.AST) -> set[str]:
        names: set[str] = set()
        args = func.args
        for arg in (args.posonlyargs + args.args + args.kwonlyargs):
            names.add(arg.arg)
        if args.vararg:
            names.add(args.vararg.arg)
        if args.kwarg:
            names.add(args.kwarg.arg)
        declared_global: set[str] = set()
        for node in ast.walk(func):
            if isinstance(node, ast.Global):
                declared_global.update(node.names)
            elif isinstance(node, ast.Name) and isinstance(node.ctx, ast.Store):
                names.add(node.id)
        return names - declared_global
