"""Findings, suppression comments, and parsed source modules.

A :class:`Finding` is one rule violation at one source location.  Findings
are suppressed per line with::

    value = hash(key)  # audit: allow[builtin-hash] reason why this is safe

The comment may sit on the finding line or on the line directly above it.
The reason is mandatory -- a bare ``allow[...]`` is itself reported as a
``bad-suppression`` finding, so suppressions stay auditable.

Fixture files (known-bad inputs for the auditor's own tests) opt out of the
default tree walk by carrying ``# audit: fixture`` within their first few
lines; the test suite loads them explicitly with ``include_fixtures=True``.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path

SUPPRESSION_RE = re.compile(
    r"#\s*audit:\s*allow\[(?P<rule>[a-z0-9-]+)\]\s*(?P<reason>.*)")
FIXTURE_RE = re.compile(r"#\s*audit:\s*fixture\b")

# How many leading lines may carry the fixture marker.
_FIXTURE_SCAN_LINES = 5


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location."""

    path: str
    line: int
    col: int
    rule_id: str
    message: str

    def format(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule_id}: {self.message}"


@dataclass(frozen=True)
class Suppression:
    """A parsed ``# audit: allow[rule-id] reason`` comment."""

    line: int
    rule_id: str
    reason: str


@dataclass
class SourceModule:
    """A parsed source file plus everything rules need to inspect it."""

    path: Path
    relpath: str
    source: str
    tree: ast.Module
    suppressions: list[Suppression]
    is_fixture: bool
    _parents: dict[int, ast.AST] | None = field(default=None, repr=False)

    @property
    def parts(self) -> tuple[str, ...]:
        return Path(self.relpath).parts

    def parent_map(self) -> dict[int, ast.AST]:
        """Map ``id(node) -> parent node`` for the whole tree (built lazily)."""
        if self._parents is None:
            parents: dict[int, ast.AST] = {}
            for node in ast.walk(self.tree):
                for child in ast.iter_child_nodes(node):
                    parents[id(child)] = node
            self._parents = parents
        return self._parents

    def parent(self, node: ast.AST) -> ast.AST | None:
        return self.parent_map().get(id(node))

    def ancestors(self, node: ast.AST) -> list[ast.AST]:
        """Parents of ``node`` from the closest outward, excluding Module."""
        chain: list[ast.AST] = []
        current = self.parent(node)
        while current is not None and not isinstance(current, ast.Module):
            chain.append(current)
            current = self.parent(current)
        return chain

    def finding(self, node_or_line, rule_id: str, message: str) -> Finding:
        if isinstance(node_or_line, ast.AST):
            line = getattr(node_or_line, "lineno", 1)
            col = getattr(node_or_line, "col_offset", 0) + 1
        else:
            line, col = int(node_or_line), 1
        return Finding(path=self.relpath, line=line, col=col,
                       rule_id=rule_id, message=message)


def scan_comments(source: str) -> tuple[list[Suppression], bool]:
    """Extract suppression comments and the fixture marker from ``source``.

    Uses :mod:`tokenize` so ``#`` inside string literals never parses as a
    comment.  Returns ``(suppressions, is_fixture)``.
    """
    suppressions: list[Suppression] = []
    is_fixture = False
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for token in tokens:
            if token.type != tokenize.COMMENT:
                continue
            line = token.start[0]
            match = SUPPRESSION_RE.search(token.string)
            if match:
                suppressions.append(Suppression(
                    line=line, rule_id=match.group("rule"),
                    reason=match.group("reason").strip()))
            if line <= _FIXTURE_SCAN_LINES and FIXTURE_RE.search(token.string):
                is_fixture = True
    except tokenize.TokenError:
        # Unterminated constructs: fall back to a plain line scan so a file
        # that still parses with ast keeps its suppressions.
        for lineno, text in enumerate(source.splitlines(), start=1):
            match = SUPPRESSION_RE.search(text)
            if match:
                suppressions.append(Suppression(
                    line=lineno, rule_id=match.group("rule"),
                    reason=match.group("reason").strip()))
            if lineno <= _FIXTURE_SCAN_LINES and FIXTURE_RE.search(text):
                is_fixture = True
    return suppressions, is_fixture


def parse_module(source: str, path: Path, relpath: str) -> SourceModule:
    """Parse ``source`` into a :class:`SourceModule` (raises SyntaxError)."""
    tree = ast.parse(source, filename=relpath)
    suppressions, is_fixture = scan_comments(source)
    return SourceModule(path=path, relpath=relpath, source=source,
                        tree=tree, suppressions=suppressions,
                        is_fixture=is_fixture)


def apply_suppressions(module: SourceModule,
                       findings: list[Finding],
                       known_rule_ids: frozenset[str]) -> list[Finding]:
    """Drop suppressed findings; report malformed suppressions.

    A suppression matches a finding when its rule id agrees and it sits on
    the finding line or the line directly above.  Suppressions with a
    missing reason or an unknown rule id become ``bad-suppression``
    findings (which cannot themselves be suppressed).
    """
    by_key: dict[tuple[int, str], Suppression] = {}
    kept: list[Finding] = []
    bad: list[Finding] = []
    for suppression in module.suppressions:
        if suppression.rule_id not in known_rule_ids:
            bad.append(Finding(
                path=module.relpath, line=suppression.line, col=1,
                rule_id="bad-suppression",
                message=(f"unknown rule id {suppression.rule_id!r} in "
                         "suppression comment")))
            continue
        if not suppression.reason:
            bad.append(Finding(
                path=module.relpath, line=suppression.line, col=1,
                rule_id="bad-suppression",
                message=(f"suppression of {suppression.rule_id!r} needs a "
                         "reason: # audit: allow[rule-id] why it is safe")))
            continue
        by_key[(suppression.line, suppression.rule_id)] = suppression
    for finding in findings:
        if ((finding.line, finding.rule_id) in by_key
                or (finding.line - 1, finding.rule_id) in by_key):
            continue
        kept.append(finding)
    return kept + bad
