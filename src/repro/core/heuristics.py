"""Selective-hardening heuristics (Heuristic 1 and the Fig. 7 methodology).

The most cost-effective cross-layer combination the paper finds is built by:

1. optionally applying high-level techniques (e.g. ABFT correction) first;
2. ranking flip-flops by the percentage of injected errors that cause SDC or
   DUE (from the vulnerability map);
3. walking down that ranking and protecting each flip-flop with either
   LEAP-DICE or logic parity, chosen by Heuristic 1:

   * HARDEN(f): flip-flops whose errors cannot be recovered by the chosen
     micro-architectural recovery (memory/exception/writeback stages on the
     in-order core; post-reorder-buffer state on the out-of-order core) get
     LEAP-DICE;
   * PARITY(f): flip-flops with enough timing slack for the parity predictor
     tree get parity; everything else falls back to LEAP-DICE;

4. stopping once the estimated SDC/DUE improvement (Eq. 1, including γ)
   meets the target.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum, unique

from repro.core.improvement import ResilienceTarget
from repro.faultinjection.vulnerability import VulnerabilityMap
from repro.microarch.flipflop import FlipFlopRegistry
from repro.physical.cells import CellType, RecoveryKind, recovery_cost
from repro.physical.timing import TimingModel
from repro.resilience.base import TechniqueDescriptor, core_family
from repro.resilience.circuit import HardeningPlan
from repro.resilience.design import (
    HARDWARE_RECOVERY_LATENCY_LIMIT,
    ProtectedDesign,
    RECOVERY_GAMMA,
    RESIDUAL_FLOOR_FRACTION,
)
from repro.resilience.logic_parity import ParityHeuristic, ParityPlanner, UNPIPELINED_GROUP_SIZE


@unique
class LowLevelChoice(Enum):
    """Technique choices Heuristic 1 can make for a single flip-flop."""

    LEAP_DICE = "leap-dice"
    PARITY = "parity"
    EDS = "eds"


@dataclass
class SelectionPolicy:
    """Which tunable techniques the selective heuristic may use."""

    allow_hardening: bool = True
    allow_parity: bool = True
    allow_eds: bool = False
    hardening_cell: CellType = CellType.LEAP_DICE

    def single_technique(self) -> bool:
        return sum((self.allow_hardening, self.allow_parity, self.allow_eds)) == 1


def choose_technique(flat_index: int, registry: FlipFlopRegistry, timing: TimingModel,
                     recovery: RecoveryKind, policy: SelectionPolicy) -> LowLevelChoice:
    """Heuristic 1: choose LEAP-DICE or parity (or EDS) for one flip-flop."""
    detection_allowed = policy.allow_parity or policy.allow_eds
    detection_choice = LowLevelChoice.PARITY if policy.allow_parity else LowLevelChoice.EDS
    if not detection_allowed:
        return LowLevelChoice.LEAP_DICE
    if not policy.allow_hardening:
        return detection_choice
    unit = registry.site(flat_index).structure.unit
    unrecoverable = recovery_cost(registry.core_name, recovery).unrecoverable_units
    if recovery is not RecoveryKind.NONE and unit in unrecoverable:
        return LowLevelChoice.LEAP_DICE          # HARDEN(f)
    if timing.supports_unpipelined(flat_index, UNPIPELINED_GROUP_SIZE):
        return detection_choice                  # PARITY(f)
    return LowLevelChoice.LEAP_DICE


@dataclass
class SelectiveHardeningResult:
    """Output of the Fig. 7 selective-protection loop."""

    design: ProtectedDesign
    protected_count: int
    achieved_sdc: float
    achieved_due: float


class SelectiveHardeningPlanner:
    """Implements the Fig. 7 loop on top of a vulnerability map."""

    def __init__(self, registry: FlipFlopRegistry, vulnerability: VulnerabilityMap,
                 timing: TimingModel, benchmarks: list[str] | None = None):
        self.registry = registry
        self.vulnerability = vulnerability
        self.timing = timing
        self.benchmarks = benchmarks
        self._family = core_family(registry.core_name)

    # ------------------------------------------------------------------ main loop
    def plan(self, target: ResilienceTarget, recovery: RecoveryKind = RecoveryKind.NONE,
             policy: SelectionPolicy | None = None,
             high_level: list[TechniqueDescriptor] | None = None,
             label: str = "") -> SelectiveHardeningResult:
        """Protect flip-flops (most vulnerable first) until the target is met.

        A target of ``float('inf')`` protects every flip-flop ("max" columns).
        """
        policy = policy or SelectionPolicy()
        high_level = list(high_level or [])
        total = self.registry.total_flip_flops

        p_sdc = [self.vulnerability.sdc_probability(i, self.benchmarks) for i in range(total)]
        p_due = [self.vulnerability.due_probability(i, self.benchmarks) for i in range(total)]
        baseline_sdc = sum(p_sdc) or 1e-12
        baseline_due = sum(p_due) or 1e-12

        # Residuals after the high-level techniques (applied uniformly).
        residual_sdc = list(p_sdc)
        residual_due = list(p_due)
        for technique in high_level:
            coverage = technique.coverage
            if coverage is None:
                continue
            recovered = (coverage.corrects
                         or (recovery is not RecoveryKind.NONE
                             and coverage.detection_latency_cycles
                             <= HARDWARE_RECOVERY_LATENCY_LIMIT))
            for i in range(total):
                detected_sdc = residual_sdc[i] * coverage.overall_sdc_detection
                detected_due = residual_due[i] * coverage.overall_due_detection
                residual_sdc[i] -= detected_sdc
                if recovered:
                    residual_due[i] -= detected_due
                else:
                    residual_due[i] += detected_sdc

        gamma_fixed = 1.0
        for technique in high_level:
            gamma_fixed *= technique.gamma(self._family).factor
        gamma_fixed *= 1.0 + RECOVERY_GAMMA[self._family].get(recovery, 0.0)

        sum_sdc = sum(residual_sdc)
        sum_due = sum(residual_due)
        ranking = sorted(range(total), key=lambda i: (-(p_sdc[i] + p_due[i]), i))

        hardened: dict[int, CellType] = {}
        parity_members: list[int] = []
        eds_members: set[int] = set()
        suppression = 1.0 - 2.0e-4  # LEAP-DICE-class residual SER
        unrecoverable = set(recovery_cost(self.registry.core_name, recovery).unrecoverable_units)

        def gamma_now() -> float:
            added = len(parity_members) / UNPIPELINED_GROUP_SIZE
            return gamma_fixed * (1.0 + added / max(1, total))

        def improvements() -> tuple[float, float]:
            gamma = gamma_now()
            sdc = baseline_sdc / max(sum_sdc, baseline_sdc * RESIDUAL_FLOOR_FRACTION) / gamma
            due = baseline_due / max(sum_due, baseline_due * RESIDUAL_FLOOR_FRACTION) / gamma
            return sdc, due

        achieved_sdc, achieved_due = improvements()
        protected = 0
        for flat_index in ranking:
            if target.satisfied_by(achieved_sdc, achieved_due):
                break
            if residual_sdc[flat_index] <= 0 and residual_due[flat_index] <= 0 \
                    and (target.sdc or 0) != float("inf") and (target.due or 0) != float("inf"):
                continue
            choice = choose_technique(flat_index, self.registry, self.timing, recovery, policy)
            unit = self.registry.site(flat_index).structure.unit
            recoverable = recovery is not RecoveryKind.NONE and unit not in unrecoverable
            if choice is LowLevelChoice.LEAP_DICE:
                hardened[flat_index] = policy.hardening_cell
                sum_sdc -= residual_sdc[flat_index] * suppression
                sum_due -= residual_due[flat_index] * suppression
                residual_sdc[flat_index] *= 1.0 - suppression
                residual_due[flat_index] *= 1.0 - suppression
            else:
                if choice is LowLevelChoice.PARITY:
                    parity_members.append(flat_index)
                else:
                    eds_members.add(flat_index)
                if recoverable:
                    sum_sdc -= residual_sdc[flat_index]
                    sum_due -= residual_due[flat_index]
                    residual_sdc[flat_index] = 0.0
                    residual_due[flat_index] = 0.0
                else:
                    # Detection without recovery: SDC becomes detected (DUE).
                    sum_due += residual_sdc[flat_index]
                    sum_sdc -= residual_sdc[flat_index]
                    residual_due[flat_index] += residual_sdc[flat_index]
                    residual_sdc[flat_index] = 0.0
            protected += 1
            achieved_sdc, achieved_due = improvements()

        design = self._materialise(hardened, parity_members, eds_members, recovery,
                                   high_level, label)
        return SelectiveHardeningResult(design=design, protected_count=protected,
                                        achieved_sdc=achieved_sdc,
                                        achieved_due=achieved_due)

    # ------------------------------------------------------------------ materialisation
    def _materialise(self, hardened: dict[int, CellType], parity_members: list[int],
                     eds_members: set[int], recovery: RecoveryKind,
                     high_level: list[TechniqueDescriptor], label: str) -> ProtectedDesign:
        planner = ParityPlanner(self.registry, self.timing, self.vulnerability)
        groups = planner.build_groups(parity_members, ParityHeuristic.OPTIMIZED)
        plan = HardeningPlan(assignments=dict(hardened))
        return ProtectedDesign(registry=self.registry, hardening=plan,
                               parity_groups=groups, eds_flip_flops=set(eds_members),
                               recovery=recovery, high_level=high_level, label=label)
