"""Selective-hardening heuristics (Heuristic 1 and the Fig. 7 methodology).

The most cost-effective cross-layer combination the paper finds is built by:

1. optionally applying high-level techniques (e.g. ABFT correction) first;
2. ranking flip-flops by the percentage of injected errors that cause SDC or
   DUE (from the vulnerability map);
3. walking down that ranking and protecting each flip-flop with either
   LEAP-DICE or logic parity, chosen by Heuristic 1:

   * HARDEN(f): flip-flops whose errors cannot be recovered by the chosen
     micro-architectural recovery (memory/exception/writeback stages on the
     in-order core; post-reorder-buffer state on the out-of-order core) get
     LEAP-DICE;
   * PARITY(f): flip-flops with enough timing slack for the parity predictor
     tree get parity; everything else falls back to LEAP-DICE;

4. stopping once the estimated SDC/DUE improvement (Eq. 1, including γ)
   meets the target.

Planning is *incremental*: because the walk is independent of the target,
:class:`SelectiveHardeningPlanner` computes one
:class:`~repro.core.schedule.ProtectionSchedule` per (policy, recovery,
high-level set) and answers every target from its improvement curves.
Vulnerability profiles (per-site probabilities and the ranking) and post-
high-level residuals are cached and shared across schedules.  The legacy
per-target loop survives as :meth:`SelectiveHardeningPlanner.plan_replanning`
-- the reference that schedules are property-tested to match bit-for-bit.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.improvement import ResilienceTarget
from repro.core.schedule import (
    HARDENING_SUPPRESSION,
    LowLevelChoice,
    ProtectionSchedule,
    ScheduleStep,
    SelectiveHardeningResult,
    materialise_design,
)
from repro.faultinjection.vulnerability import VulnerabilityMap
from repro.microarch.flipflop import FlipFlopRegistry
from repro.physical.cells import CellType, RecoveryKind, recovery_cost
from repro.physical.timing import TimingModel
from repro.resilience.base import TechniqueDescriptor, core_family
from repro.resilience.design import (
    HARDWARE_RECOVERY_LATENCY_LIMIT,
    RECOVERY_GAMMA,
    RESIDUAL_FLOOR_FRACTION,
)
from repro.resilience.logic_parity import UNPIPELINED_GROUP_SIZE

__all__ = [
    "LowLevelChoice",
    "SelectionPolicy",
    "SelectiveHardeningPlanner",
    "SelectiveHardeningResult",
    "choose_technique",
    "descriptor_key",
]


@dataclass
class SelectionPolicy:
    """Which tunable techniques the selective heuristic may use."""

    allow_hardening: bool = True
    allow_parity: bool = True
    allow_eds: bool = False
    hardening_cell: CellType = CellType.LEAP_DICE

    def single_technique(self) -> bool:
        return sum((self.allow_hardening, self.allow_parity, self.allow_eds)) == 1

    def cache_key(self) -> tuple:
        return (self.allow_hardening, self.allow_parity, self.allow_eds,
                self.hardening_cell)


def _choose_in_context(flat_index: int, registry: FlipFlopRegistry,
                       timing: TimingModel, policy: SelectionPolicy,
                       has_recovery: bool,
                       unrecoverable: tuple[str, ...]) -> LowLevelChoice:
    """Heuristic 1 with the recovery context hoisted out of the per-site path."""
    detection_allowed = policy.allow_parity or policy.allow_eds
    detection_choice = LowLevelChoice.PARITY if policy.allow_parity else LowLevelChoice.EDS
    if not detection_allowed:
        return LowLevelChoice.LEAP_DICE
    if not policy.allow_hardening:
        return detection_choice
    unit = registry.unit_of(flat_index)
    if has_recovery and unit in unrecoverable:
        return LowLevelChoice.LEAP_DICE          # HARDEN(f)
    if timing.supports_unpipelined(flat_index, UNPIPELINED_GROUP_SIZE):
        return detection_choice                  # PARITY(f)
    return LowLevelChoice.LEAP_DICE


def choose_technique(flat_index: int, registry: FlipFlopRegistry, timing: TimingModel,
                     recovery: RecoveryKind, policy: SelectionPolicy) -> LowLevelChoice:
    """Heuristic 1: choose LEAP-DICE or parity (or EDS) for one flip-flop."""
    unrecoverable = recovery_cost(registry.core_name, recovery).unrecoverable_units
    return _choose_in_context(flat_index, registry, timing, policy,
                              recovery is not RecoveryKind.NONE, unrecoverable)


def descriptor_key(technique: TechniqueDescriptor) -> tuple:
    """Hashable content key of a technique descriptor (for schedule caching).

    Content-based (not identity-based) so caller-constructed descriptors that
    equal a library descriptor share its cached schedules, while modified
    copies never collide.
    """
    return (technique.name, technique.layer, technique.tunable,
            technique.detection_only, technique.coverage,
            tuple(sorted(technique.costs_by_core.items())),
            tuple(sorted(technique.gamma_by_core.items())),
            technique.requires_recovery_for_due)


class SelectiveHardeningPlanner:
    """Implements the Fig. 7 loop on top of a vulnerability map.

    One planner serves many (combination, target) queries: the vulnerability
    profile, post-high-level residuals and full protection schedules are all
    computed once and memoised on the instance.
    """

    def __init__(self, registry: FlipFlopRegistry, vulnerability: VulnerabilityMap,
                 timing: TimingModel, benchmarks: list[str] | None = None):
        self.registry = registry
        self.vulnerability = vulnerability
        self.timing = timing
        self.benchmarks = benchmarks
        self._family = core_family(registry.core_name)
        self._profile: tuple[list[float], list[float], float, float, list[int]] | None = None
        self._residual_cache: dict[tuple, tuple[tuple[float, ...], tuple[float, ...]]] = {}
        self._schedule_cache: dict[tuple, ProtectionSchedule] = {}

    # ------------------------------------------------------------------ cached inputs
    def profile(self) -> tuple[list[float], list[float], float, float, list[int]]:
        """Per-site (p_sdc, p_due), baselines and the vulnerability ranking.

        Depends only on the vulnerability map and benchmark list, both fixed
        at construction, so it is computed exactly once per planner.
        """
        if self._profile is None:
            total = self.registry.total_flip_flops
            p_sdc = [self.vulnerability.sdc_probability(i, self.benchmarks)
                     for i in range(total)]
            p_due = [self.vulnerability.due_probability(i, self.benchmarks)
                     for i in range(total)]
            baseline_sdc = sum(p_sdc) or 1e-12
            baseline_due = sum(p_due) or 1e-12
            ranking = sorted(range(total), key=lambda i: (-(p_sdc[i] + p_due[i]), i))
            self._profile = (p_sdc, p_due, baseline_sdc, baseline_due, ranking)
        return self._profile

    def _residuals(self, high_level: list[TechniqueDescriptor],
                   recovery: RecoveryKind) -> tuple[tuple[float, ...], tuple[float, ...]]:
        """Per-site residuals after the high-level techniques (cached).

        The residuals depend on the ordered technique list and on *whether*
        hardware recovery is present (its latency gate), not on which
        mechanism it is -- so IR/EIR/flush variants of one technique set
        share an entry.
        """
        key = (tuple(descriptor_key(t) for t in high_level),
               recovery is not RecoveryKind.NONE)
        cached = self._residual_cache.get(key)
        if cached is not None:
            return cached
        p_sdc, p_due, _, _, _ = self.profile()
        total = self.registry.total_flip_flops
        residual_sdc = list(p_sdc)
        residual_due = list(p_due)
        for technique in high_level:
            coverage = technique.coverage
            if coverage is None:
                continue
            recovered = (coverage.corrects
                         or (recovery is not RecoveryKind.NONE
                             and coverage.detection_latency_cycles
                             <= HARDWARE_RECOVERY_LATENCY_LIMIT))
            for i in range(total):
                detected_sdc = residual_sdc[i] * coverage.overall_sdc_detection
                detected_due = residual_due[i] * coverage.overall_due_detection
                residual_sdc[i] -= detected_sdc
                if recovered:
                    residual_due[i] -= detected_due
                else:
                    residual_due[i] += detected_sdc
        result = (tuple(residual_sdc), tuple(residual_due))
        self._residual_cache[key] = result
        return result

    def _gamma_fixed(self, high_level: list[TechniqueDescriptor],
                     recovery: RecoveryKind) -> float:
        gamma_fixed = 1.0
        for technique in high_level:
            gamma_fixed *= technique.gamma(self._family).factor
        gamma_fixed *= 1.0 + RECOVERY_GAMMA[self._family].get(recovery, 0.0)
        return gamma_fixed

    # ------------------------------------------------------------------ schedules
    def schedule_for(self, recovery: RecoveryKind = RecoveryKind.NONE,
                     policy: SelectionPolicy | None = None,
                     high_level: list[TechniqueDescriptor] | None = None,
                     ) -> ProtectionSchedule:
        """The (cached) full prefix schedule for one planning context."""
        policy = policy or SelectionPolicy()
        high_level = list(high_level or [])
        key = (policy.cache_key(), recovery,
               tuple(descriptor_key(t) for t in high_level))
        cached = self._schedule_cache.get(key)
        if cached is not None:
            return cached
        _, _, baseline_sdc, baseline_due, ranking = self.profile()
        residual_sdc, residual_due = self._residuals(high_level, recovery)
        unrecoverable = recovery_cost(self.registry.core_name, recovery).unrecoverable_units
        has_recovery = recovery is not RecoveryKind.NONE
        unrecoverable_set = set(unrecoverable)
        steps = []
        for flat_index in ranking:
            choice = _choose_in_context(flat_index, self.registry, self.timing,
                                        policy, has_recovery, unrecoverable)
            unit = self.registry.unit_of(flat_index)
            steps.append(ScheduleStep(
                flat_index=flat_index, choice=choice,
                recoverable=has_recovery and unit not in unrecoverable_set,
                zero_residual=(residual_sdc[flat_index] <= 0
                               and residual_due[flat_index] <= 0)))
        schedule = ProtectionSchedule(
            registry=self.registry, timing=self.timing,
            vulnerability=self.vulnerability, recovery=recovery,
            hardening_cell=policy.hardening_cell, high_level=high_level,
            steps=steps, residual_sdc=list(residual_sdc),
            residual_due=list(residual_due), baseline_sdc=baseline_sdc,
            baseline_due=baseline_due,
            gamma_fixed=self._gamma_fixed(high_level, recovery))
        self._schedule_cache[key] = schedule
        return schedule

    # ------------------------------------------------------------------ main entry
    def plan(self, target: ResilienceTarget, recovery: RecoveryKind = RecoveryKind.NONE,
             policy: SelectionPolicy | None = None,
             high_level: list[TechniqueDescriptor] | None = None,
             label: str = "") -> SelectiveHardeningResult:
        """Protect flip-flops (most vulnerable first) until the target is met.

        A target of ``float('inf')`` protects every flip-flop ("max" columns).
        Answered from the cached protection schedule; bit-identical to
        :meth:`plan_replanning`.
        """
        schedule = self.schedule_for(recovery=recovery, policy=policy,
                                     high_level=high_level)
        return schedule.plan(target, label=label)

    # ------------------------------------------------------------------ reference loop
    def plan_replanning(self, target: ResilienceTarget,
                        recovery: RecoveryKind = RecoveryKind.NONE,
                        policy: SelectionPolicy | None = None,
                        high_level: list[TechniqueDescriptor] | None = None,
                        label: str = "") -> SelectiveHardeningResult:
        """The legacy per-target Fig. 7 loop, kept as the equivalence baseline.

        Recomputes the vulnerability profile, residuals and the walk from
        scratch on every call; used by the property tests and the
        exploration benchmark to validate (and measure) the incremental
        schedules against the original semantics.
        """
        policy = policy or SelectionPolicy()
        high_level = list(high_level or [])
        total = self.registry.total_flip_flops

        p_sdc = [self.vulnerability.sdc_probability(i, self.benchmarks) for i in range(total)]
        p_due = [self.vulnerability.due_probability(i, self.benchmarks) for i in range(total)]
        baseline_sdc = sum(p_sdc) or 1e-12
        baseline_due = sum(p_due) or 1e-12

        # Residuals after the high-level techniques (applied uniformly).
        residual_sdc = list(p_sdc)
        residual_due = list(p_due)
        for technique in high_level:
            coverage = technique.coverage
            if coverage is None:
                continue
            recovered = (coverage.corrects
                         or (recovery is not RecoveryKind.NONE
                             and coverage.detection_latency_cycles
                             <= HARDWARE_RECOVERY_LATENCY_LIMIT))
            for i in range(total):
                detected_sdc = residual_sdc[i] * coverage.overall_sdc_detection
                detected_due = residual_due[i] * coverage.overall_due_detection
                residual_sdc[i] -= detected_sdc
                if recovered:
                    residual_due[i] -= detected_due
                else:
                    residual_due[i] += detected_sdc

        gamma_fixed = 1.0
        for technique in high_level:
            gamma_fixed *= technique.gamma(self._family).factor
        gamma_fixed *= 1.0 + RECOVERY_GAMMA[self._family].get(recovery, 0.0)

        sum_sdc = sum(residual_sdc)
        sum_due = sum(residual_due)
        ranking = sorted(range(total), key=lambda i: (-(p_sdc[i] + p_due[i]), i))

        hardened: dict[int, CellType] = {}
        parity_members: list[int] = []
        eds_members: set[int] = set()
        suppression = HARDENING_SUPPRESSION
        unrecoverable = set(recovery_cost(self.registry.core_name, recovery).unrecoverable_units)

        def gamma_now() -> float:
            added = len(parity_members) / UNPIPELINED_GROUP_SIZE
            return gamma_fixed * (1.0 + added / max(1, total))

        def improvements() -> tuple[float, float]:
            gamma = gamma_now()
            sdc = baseline_sdc / max(sum_sdc, baseline_sdc * RESIDUAL_FLOOR_FRACTION) / gamma
            due = baseline_due / max(sum_due, baseline_due * RESIDUAL_FLOOR_FRACTION) / gamma
            return sdc, due

        achieved_sdc, achieved_due = improvements()
        protected = 0
        for flat_index in ranking:
            if target.satisfied_by(achieved_sdc, achieved_due):
                break
            if residual_sdc[flat_index] <= 0 and residual_due[flat_index] <= 0 \
                    and (target.sdc or 0) != float("inf") and (target.due or 0) != float("inf"):
                continue
            choice = choose_technique(flat_index, self.registry, self.timing, recovery, policy)
            unit = self.registry.site(flat_index).structure.unit
            recoverable = recovery is not RecoveryKind.NONE and unit not in unrecoverable
            if choice is LowLevelChoice.LEAP_DICE:
                hardened[flat_index] = policy.hardening_cell
                sum_sdc -= residual_sdc[flat_index] * suppression
                sum_due -= residual_due[flat_index] * suppression
                residual_sdc[flat_index] *= 1.0 - suppression
                residual_due[flat_index] *= 1.0 - suppression
            else:
                if choice is LowLevelChoice.PARITY:
                    parity_members.append(flat_index)
                else:
                    eds_members.add(flat_index)
                if recoverable:
                    sum_sdc -= residual_sdc[flat_index]
                    sum_due -= residual_due[flat_index]
                    residual_sdc[flat_index] = 0.0
                    residual_due[flat_index] = 0.0
                else:
                    # Detection without recovery: SDC becomes detected (DUE).
                    sum_due += residual_sdc[flat_index]
                    sum_sdc -= residual_sdc[flat_index]
                    residual_due[flat_index] += residual_sdc[flat_index]
                    residual_sdc[flat_index] = 0.0
            protected += 1
            achieved_sdc, achieved_due = improvements()

        design = materialise_design(self.registry, self.timing, self.vulnerability,
                                    hardened, parity_members, eds_members, recovery,
                                    high_level, label)
        return SelectiveHardeningResult(design=design, protected_count=protected,
                                        achieved_sdc=achieved_sdc,
                                        achieved_due=achieved_due)
