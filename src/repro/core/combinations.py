"""Enumeration of the 586 cross-layer combinations (Table 18).

A *combination* is a set of detection/correction techniques plus an optional
hardware recovery mechanism.  Not every subset is valid: ABFT correction and
detection are mutually exclusive, monitor cores are not considered for the
in-order core (same order of size as the core itself), flush/RoB recovery
requires hardening of the unrecoverable stages and a low-level detection
technique, IR recovery pairs with low-level detection, and EIR exists to
give DFC a recovery path (Sec. 2.4, Sec. 3).

The enumeration below reproduces the paper's counting exactly:
417 combinations for the InO-core, 169 for the OoO-core, 586 total.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations as subsets

from repro.physical.cells import RecoveryKind

#: Technique name constants used in combination tuples.
LEAP_DICE = "leap-dice"
EDS = "eds"
PARITY = "parity"
DFC = "dfc"
ASSERTIONS = "assertions"
CFCSS = "cfcss"
EDDI = "eddi"
MONITOR = "monitor-core"
ABFT_CORRECTION = "abft-correction"
ABFT_DETECTION = "abft-detection"

INO_BASE_TECHNIQUES = (LEAP_DICE, EDS, PARITY, DFC, ASSERTIONS, CFCSS, EDDI)
OOO_BASE_TECHNIQUES = (LEAP_DICE, EDS, PARITY, DFC, MONITOR)


@dataclass(frozen=True)
class CrossLayerCombination:
    """One candidate cross-layer resilience combination."""

    core_family: str
    techniques: tuple[str, ...]
    recovery: RecoveryKind

    @property
    def label(self) -> str:
        recovery = "" if self.recovery is RecoveryKind.NONE else f" + {self.recovery.value}"
        return " + ".join(self.techniques) + recovery

    @property
    def has_tunable_technique(self) -> bool:
        return any(t in (LEAP_DICE, EDS, PARITY) for t in self.techniques)

    @property
    def uses_abft(self) -> bool:
        return ABFT_CORRECTION in self.techniques or ABFT_DETECTION in self.techniques


def _non_empty_subsets(techniques: tuple[str, ...]):
    for size in range(1, len(techniques) + 1):
        yield from subsets(techniques, size)


def _no_recovery_combinations(family: str, base: tuple[str, ...]):
    return [CrossLayerCombination(family, subset, RecoveryKind.NONE)
            for subset in _non_empty_subsets(base)]


def _flush_rob_combinations(family: str) -> list[CrossLayerCombination]:
    """Flush (InO) / RoB (OoO) recovery combinations.

    The unrecoverable pipeline stages must be hardened with LEAP-DICE, and at
    least one detection technique recoverable at that latency must be present
    (parity / EDS, plus the monitor core on the OoO-core).
    """
    if family == "InO":
        recovery = RecoveryKind.FLUSH
        detectors = (PARITY, EDS)
    else:
        recovery = RecoveryKind.ROB
        detectors = (PARITY, EDS, MONITOR)
    result = []
    for subset in _non_empty_subsets(detectors):
        result.append(CrossLayerCombination(family, (LEAP_DICE, *subset), recovery))
    return result


def _ir_eir_combinations(family: str) -> list[CrossLayerCombination]:
    """Instruction-replay (IR) and extended-IR (EIR) combinations.

    IR pairs with the low-latency detectors (parity/EDS/monitor core),
    optionally alongside selective LEAP-DICE; EIR exists to provide DFC with
    recovery and is enumerated with DFC plus any subset of the low-level
    techniques.
    """
    if family == "InO":
        detectors = (PARITY, EDS)
        eir_extras = (PARITY, EDS, LEAP_DICE)
    else:
        detectors = (PARITY, EDS, MONITOR)
        eir_extras = (PARITY, EDS, MONITOR, LEAP_DICE)
    result = []
    for subset in _non_empty_subsets(detectors):
        result.append(CrossLayerCombination(family, subset, RecoveryKind.IR))
        result.append(CrossLayerCombination(family, (LEAP_DICE, *subset), RecoveryKind.IR))
    # Drop duplicates created when LEAP_DICE is already in the subset.
    unique_ir = {c.techniques: c for c in result}
    result = list(unique_ir.values())
    for size in range(0, len(eir_extras) + 1):
        for extra in subsets(eir_extras, size):
            result.append(CrossLayerCombination(family, (DFC, *extra), RecoveryKind.EIR))
    return result


def enumerate_combinations(core_family: str) -> list[CrossLayerCombination]:
    """All valid combinations for one core family (Table 18 rows)."""
    base = INO_BASE_TECHNIQUES if core_family == "InO" else OOO_BASE_TECHNIQUES
    plain = (_no_recovery_combinations(core_family, base)
             + _flush_rob_combinations(core_family)
             + _ir_eir_combinations(core_family))
    result = list(plain)
    # ABFT correction / detection alone.
    result.append(CrossLayerCombination(core_family, (ABFT_CORRECTION,), RecoveryKind.NONE))
    result.append(CrossLayerCombination(core_family, (ABFT_DETECTION,), RecoveryKind.NONE))
    # ABFT correction combined with every previous combination.
    result.extend(CrossLayerCombination(core_family,
                                        (ABFT_CORRECTION, *combo.techniques), combo.recovery)
                  for combo in plain)
    # ABFT detection combined with the no-recovery combinations only (its
    # detection latency rules out hardware recovery).
    result.extend(CrossLayerCombination(core_family,
                                        (ABFT_DETECTION, *combo.techniques), RecoveryKind.NONE)
                  for combo in plain if combo.recovery is RecoveryKind.NONE)
    return result


def combination_counts(core_family: str) -> dict[str, int]:
    """Combination counts broken down as in Table 18."""
    base = INO_BASE_TECHNIQUES if core_family == "InO" else OOO_BASE_TECHNIQUES
    no_recovery = len(_no_recovery_combinations(core_family, base))
    flush_rob = len(_flush_rob_combinations(core_family))
    ir_eir = len(_ir_eir_combinations(core_family))
    base_total = no_recovery + flush_rob + ir_eir
    return {
        "base_no_recovery": no_recovery,
        "base_flush_rob": flush_rob,
        "base_ir_eir": ir_eir,
        "base_total": base_total,
        "abft_alone": 2,
        "abft_correction_plus": base_total,
        "abft_detection_plus": no_recovery,
        "total": base_total * 2 + 2 + no_recovery,
    }


def total_combination_count() -> int:
    """Total number of cross-layer combinations explored (586)."""
    return combination_counts("InO")["total"] + combination_counts("OoO")["total"]
