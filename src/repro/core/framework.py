"""The CLEAR framework facade.

Ties together the reliability-analysis, physical-design and resilience-library
components (Fig. 1) for one core: construct it with a core model and a
benchmark list and it wires up vulnerability data (measured injection
campaigns, the calibrated model, or a mix), the placement/timing/cost models
and the cross-layer exploration engine.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.pareto import ParetoFrontier
from repro.core.exploration import CrossLayerExplorer, EvaluatedDesign
from repro.core.improvement import ResilienceTarget
from repro.engine.engine import EngineConfig, run_suite_campaign
from repro.faultinjection.calibrated import CalibratedVulnerabilityModel
from repro.faultinjection.vulnerability import VulnerabilityMap
from repro.microarch.core import BaseCore
from repro.microarch.inorder import InOrderCore
from repro.microarch.ooo import OutOfOrderCore
from repro.physical.costmodel import DesignCostModel
from repro.physical.placement import Placement
from repro.physical.timing import TimingModel
from repro.workloads.base import Workload
from repro.workloads.suite import suite_for_core


@dataclass
class ClearFramework:
    """One CLEAR instance: a core, its workloads and all derived models.

    Attributes:
        core: the simulated core under study.
        workloads: the benchmarks used for reliability analysis.
        seed: seed for every stochastic component (placement, calibration).
        vulnerability: per-flip-flop vulnerability data.  By default it comes
            from the calibrated model; call :meth:`measure_vulnerability` to
            replace (or augment) it with measured injection campaigns.
    """

    core: BaseCore
    workloads: list[Workload] = field(default_factory=list)
    seed: int = 2016
    vulnerability: VulnerabilityMap | None = None

    def __post_init__(self) -> None:
        if not self.workloads:
            self.workloads = suite_for_core(self.core)
        self.placement = Placement(self.core.registry, seed=self.seed)
        self.timing = TimingModel(self.core.registry, seed=self.seed)
        self.cost_model = DesignCostModel(self.core.name, self.core.flip_flop_count)
        if self.vulnerability is None:
            self.vulnerability = self.calibrated_vulnerability()
        self._explorer: CrossLayerExplorer | None = None

    # ------------------------------------------------------------------ constructors
    @classmethod
    def for_inorder_core(cls, seed: int = 2016) -> "ClearFramework":
        return cls(core=InOrderCore(), seed=seed)

    @classmethod
    def for_out_of_order_core(cls, seed: int = 2016) -> "ClearFramework":
        return cls(core=OutOfOrderCore(), seed=seed)

    # ------------------------------------------------------------------ reliability analysis
    def benchmark_names(self) -> list[str]:
        return [workload.name for workload in self.workloads]

    def calibrated_vulnerability(self) -> VulnerabilityMap:
        """Vulnerability data from the calibrated model (fast, table-scale)."""
        model = CalibratedVulnerabilityModel(self.core.registry,
                                             self.benchmark_names(), seed=self.seed)
        return model.build_map()

    def measure_vulnerability(self, injections_per_workload: int = 100,
                              workloads: list[Workload] | None = None,
                              engine_config: EngineConfig | None = None,
                              ) -> VulnerabilityMap:
        """Measured vulnerability from real injection campaigns.

        Campaigns run on the checkpointed injection engine; pass
        ``engine_config`` (e.g. ``EngineConfig(workers=8)``) to fan the
        injections out over worker processes or tune the checkpoint spacing.
        """
        vulnerability, _ = run_suite_campaign(
            self.core, workloads or self.workloads,
            injections_per_workload=injections_per_workload, seed=self.seed,
            config=engine_config)
        self.vulnerability = vulnerability
        self._explorer = None
        return vulnerability

    # ------------------------------------------------------------------ exploration
    @property
    def explorer(self) -> CrossLayerExplorer:
        if self._explorer is None:
            self._explorer = CrossLayerExplorer(
                self.core.registry, self.vulnerability, timing=self.timing,
                cost_model=self.cost_model, benchmarks=self.benchmark_names())
        return self._explorer

    def evaluate_best_practice(self, target: ResilienceTarget) -> EvaluatedDesign:
        """Evaluate LEAP-DICE + parity + micro-architectural recovery at a target."""
        return self.explorer.evaluate(self.explorer.best_practice_combination(), target)

    def find_cheapest_solution(self, target: ResilienceTarget,
                               max_combinations: int | None = None,
                               prune: bool = True) -> EvaluatedDesign | None:
        """Search the combination space for the minimum-energy solution.

        Uses the incumbent/lower-bound pruned search by default; pass
        ``prune=False`` to force exhaustive evaluation (same result).
        """
        from repro.core.combinations import enumerate_combinations

        combinations = enumerate_combinations(self.explorer.family)
        if max_combinations is not None:
            combinations = combinations[:max_combinations]
        return self.explorer.cheapest_meeting_target(target, combinations, prune=prune)

    def explore_frontier(self, targets: list[ResilienceTarget] | None = None,
                         workers: int = 1, metric: str = "sdc") -> ParetoFrontier:
        """Sweep the full combination pool into a streaming Pareto frontier.

        ``workers > 1`` shards the pool over the engine's process-pool
        executor; results are identical regardless of worker count.
        """
        return self.explorer.explore_frontier(targets=targets, workers=workers,
                                              metric=metric)
