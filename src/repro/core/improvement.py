"""SDC/DUE improvement metrics (Eq. 1a/1b) and resilience targets.

SDC improvement = (original OMM count) / (new OMM count) * 1/γ
DUE improvement = (original UT+Hang count) / (new UT+Hang+ED count) * 1/γ

The γ correction accounts for the extra soft-error susceptibility introduced
by a resilience technique (additional flip-flops and/or longer execution),
following [Schirmeier 15]; see Sec. 2.1.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.faultinjection.outcomes import OutcomeCounts

#: Improvement targets explored throughout the paper's tables (the "max"
#: column corresponds to protecting every flip-flop).
STANDARD_TARGETS = (2.0, 5.0, 50.0, 500.0)
MAX_TARGET = float("inf")


def sdc_improvement(original: OutcomeCounts, protected: OutcomeCounts,
                    gamma: float = 1.0) -> float:
    """Eq. 1a computed from measured outcome counts."""
    if original.sdc_count == 0:
        return 1.0
    new_count = max(protected.sdc_count, 1e-9)
    return (original.sdc_count / new_count) / gamma


def due_improvement(original: OutcomeCounts, protected: OutcomeCounts,
                    gamma: float = 1.0) -> float:
    """Eq. 1b computed from measured outcome counts."""
    if original.due_count == 0:
        return 1.0
    new_count = max(protected.due_count, 1e-9)
    return (original.due_count / new_count) / gamma


@dataclass(frozen=True)
class ResilienceTarget:
    """A (possibly joint) SDC/DUE improvement target."""

    sdc: float | None = None
    due: float | None = None

    def satisfied_by(self, sdc_value: float, due_value: float) -> bool:
        """True when both requested improvements are met or exceeded."""
        if self.sdc is not None and sdc_value < self.sdc:
            return False
        if self.due is not None and due_value < self.due:
            return False
        return True

    @property
    def label(self) -> str:
        parts = []
        if self.sdc is not None:
            parts.append("SDC " + ("max" if self.sdc == MAX_TARGET else f"{self.sdc:g}x"))
        if self.due is not None:
            parts.append("DUE " + ("max" if self.due == MAX_TARGET else f"{self.due:g}x"))
        return " & ".join(parts) if parts else "none"


def sdc_targets() -> list[ResilienceTarget]:
    """The standard SDC-improvement sweep (2x, 5x, 50x, 500x, max)."""
    return [ResilienceTarget(sdc=value) for value in STANDARD_TARGETS] + [
        ResilienceTarget(sdc=MAX_TARGET)]


def due_targets() -> list[ResilienceTarget]:
    """The standard DUE-improvement sweep."""
    return [ResilienceTarget(due=value) for value in STANDARD_TARGETS] + [
        ResilienceTarget(due=MAX_TARGET)]


def joint_targets() -> list[ResilienceTarget]:
    """Joint SDC and DUE targets (Table 20)."""
    return [ResilienceTarget(sdc=value, due=value) for value in STANDARD_TARGETS] + [
        ResilienceTarget(sdc=MAX_TARGET, due=MAX_TARGET)]
