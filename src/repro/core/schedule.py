"""Incremental protection schedules (one-pass Fig. 7 planning).

The selective-hardening loop of Fig. 7 is deterministic given the selection
policy, the recovery mechanism and the high-level technique set: the target
only decides *where the walk down the vulnerability ranking stops*.  A
:class:`ProtectionSchedule` therefore records the whole walk once -- the
Heuristic-1 choice per flip-flop plus the cumulative SDC/DUE improvement
curves (Eq. 1, including the evolving parity-γ) -- and answers any target by
locating its first crossing on the curve: O(ffs) once per schedule plus
O(log ffs) per target, instead of O(ffs) per (combination, target) pair.

Bit-exactness with per-target replanning
(:meth:`repro.core.heuristics.SelectiveHardeningPlanner.plan_replanning`) is
guaranteed by construction and property-tested:

* the walk applies the exact arithmetic sequence of the legacy loop (zero-
  residual sites contribute bitwise no-ops, so one pass serves both the
  finite-target path, which skips them, and the protect-everything path,
  which does not);
* a target's stopping point is its *first* crossing of the improvement
  curve.  The curve need not be monotone (parity-γ and detection-to-DUE
  conversion can lower it), but any first crossing of a single-metric
  threshold is a strict running maximum, so single-metric targets bisect the
  record subsequence; joint targets scan forward from the later of their two
  single-metric crossings.
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass
from enum import Enum, unique

from repro.core.improvement import ResilienceTarget
from repro.faultinjection.vulnerability import VulnerabilityMap
from repro.microarch.flipflop import FlipFlopRegistry
from repro.physical.cells import CellType, RecoveryKind
from repro.physical.timing import TimingModel
from repro.resilience.base import TechniqueDescriptor
from repro.resilience.circuit import HardeningPlan
from repro.resilience.design import ProtectedDesign, RESIDUAL_FLOOR_FRACTION
from repro.resilience.logic_parity import ParityHeuristic, ParityPlanner, UNPIPELINED_GROUP_SIZE

#: LEAP-DICE-class residual soft-error rate (Table 4), as a suppression
#: probability.  Shared with the legacy replanning loop.
HARDENING_SUPPRESSION = 1.0 - 2.0e-4


@unique
class LowLevelChoice(Enum):
    """Technique choices Heuristic 1 can make for a single flip-flop."""

    LEAP_DICE = "leap-dice"
    PARITY = "parity"
    EDS = "eds"


@dataclass
class SelectiveHardeningResult:
    """Output of the Fig. 7 selective-protection loop."""

    design: ProtectedDesign
    protected_count: int
    achieved_sdc: float
    achieved_due: float


@dataclass(frozen=True)
class ScheduleStep:
    """One flip-flop's slot in the vulnerability-ranked protection walk.

    Attributes:
        flat_index: the flip-flop.
        choice: the Heuristic-1 technique choice (policy- and recovery-
            dependent, but target-independent).
        recoverable: whether the schedule's recovery mechanism covers this
            flip-flop's unit (decides detection semantics).
        zero_residual: True when the site's post-high-level SDC and DUE
            residuals are both zero; finite targets skip such sites, the
            protect-everything walk does not.
    """

    flat_index: int
    choice: LowLevelChoice
    recoverable: bool
    zero_residual: bool


def materialise_design(registry: FlipFlopRegistry, timing: TimingModel,
                       vulnerability: VulnerabilityMap,
                       hardened: dict[int, CellType], parity_members: list[int],
                       eds_members: set[int], recovery: RecoveryKind,
                       high_level: list[TechniqueDescriptor],
                       label: str) -> ProtectedDesign:
    """Turn selected memberships into a :class:`ProtectedDesign` (Fig. 3 parity)."""
    planner = ParityPlanner(registry, timing, vulnerability)
    groups = planner.build_groups(parity_members, ParityHeuristic.OPTIMIZED)
    plan = HardeningPlan(assignments=dict(hardened))
    return ProtectedDesign(registry=registry, hardening=plan, parity_groups=groups,
                           eds_flip_flops=set(eds_members), recovery=recovery,
                           high_level=high_level, label=label)


def _first_index_at_least(record_values: list[float], record_indices: list[int],
                          threshold: float) -> int | None:
    """First curve index whose value reaches ``threshold`` (record bisection)."""
    position = bisect_left(record_values, threshold)
    if position == len(record_values):
        return None
    return record_indices[position]


class ProtectionSchedule:
    """The full prefix schedule for one (policy, recovery, high-level) context.

    Built once by :meth:`SelectiveHardeningPlanner.schedule_for`; answers
    every resilience target through :meth:`plan` without replanning.
    """

    def __init__(self, registry: FlipFlopRegistry, timing: TimingModel,
                 vulnerability: VulnerabilityMap, recovery: RecoveryKind,
                 hardening_cell: CellType,
                 high_level: list[TechniqueDescriptor],
                 steps: list[ScheduleStep],
                 residual_sdc: list[float], residual_due: list[float],
                 baseline_sdc: float, baseline_due: float, gamma_fixed: float):
        self.registry = registry
        self.timing = timing
        self.vulnerability = vulnerability
        self.recovery = recovery
        self.hardening_cell = hardening_cell
        self.high_level = high_level
        self.steps = steps
        self._baseline_sdc = baseline_sdc
        self._baseline_due = baseline_due
        self._gamma_fixed = gamma_fixed
        self._walk(residual_sdc, residual_due)
        self._build_records()

    # ------------------------------------------------------------------ construction
    def _improvements(self, parity_count: int, sum_sdc: float,
                      sum_due: float) -> tuple[float, float]:
        """Eq. 1 improvements -- the exact arithmetic of the legacy loop."""
        added = parity_count / UNPIPELINED_GROUP_SIZE
        gamma = self._gamma_fixed * (1.0 + added / max(1, self.registry.total_flip_flops))
        sdc = self._baseline_sdc / max(sum_sdc, self._baseline_sdc
                                       * RESIDUAL_FLOOR_FRACTION) / gamma
        due = self._baseline_due / max(sum_due, self._baseline_due
                                       * RESIDUAL_FLOOR_FRACTION) / gamma
        return sdc, due

    def _walk(self, residual_sdc: list[float], residual_due: list[float]) -> None:
        """One pass down the ranking, recording both stopping-rule curves.

        Zero-residual sites change the sums by exact floating-point no-ops,
        so a single pass yields bitwise-identical curves for the finite-
        target walk (which skips them) and the protect-everything walk
        (which visits them, growing the parity count).
        """
        sum_sdc = sum(residual_sdc)
        sum_due = sum(residual_due)
        parity_finite = 0
        parity_full = 0
        effective: list[ScheduleStep] = []
        start = self._improvements(0, sum_sdc, sum_due)
        curve_sdc = [start[0]]
        curve_due = [start[1]]
        for step in self.steps:
            site_sdc = residual_sdc[step.flat_index]
            site_due = residual_due[step.flat_index]
            if step.choice is LowLevelChoice.LEAP_DICE:
                sum_sdc -= site_sdc * HARDENING_SUPPRESSION
                sum_due -= site_due * HARDENING_SUPPRESSION
            else:
                if step.choice is LowLevelChoice.PARITY:
                    parity_full += 1
                if step.recoverable:
                    sum_sdc -= site_sdc
                    sum_due -= site_due
                else:
                    # Detection without recovery: SDC becomes detected (DUE).
                    sum_due += site_sdc
                    sum_sdc -= site_sdc
            if not step.zero_residual:
                effective.append(step)
                if step.choice is LowLevelChoice.PARITY:
                    parity_finite += 1
                achieved = self._improvements(parity_finite, sum_sdc, sum_due)
                curve_sdc.append(achieved[0])
                curve_due.append(achieved[1])
        self._effective = effective
        self._curve_sdc = curve_sdc
        self._curve_due = curve_due
        self._full_achieved = self._improvements(parity_full, sum_sdc, sum_due)

    def _build_records(self) -> None:
        """Strict-running-maximum subsequences enabling first-crossing bisection."""
        self._sdc_record_values: list[float] = []
        self._sdc_record_indices: list[int] = []
        self._due_record_values: list[float] = []
        self._due_record_indices: list[int] = []
        best_sdc = best_due = float("-inf")
        for index, (sdc, due) in enumerate(zip(self._curve_sdc, self._curve_due)):
            if sdc > best_sdc:
                best_sdc = sdc
                self._sdc_record_values.append(sdc)
                self._sdc_record_indices.append(index)
            if due > best_due:
                best_due = due
                self._due_record_values.append(due)
                self._due_record_indices.append(index)

    # ------------------------------------------------------------------ queries
    @property
    def effective_length(self) -> int:
        """Number of walk steps finite targets can take (zero sites excluded)."""
        return len(self._effective)

    def improvement_curve(self) -> list[tuple[int, float, float]]:
        """The (protected count, SDC, DUE) improvement curve for finite targets."""
        return [(k, self._curve_sdc[k], self._curve_due[k])
                for k in range(len(self._curve_sdc))]

    def prefix_for(self, target: ResilienceTarget) -> int:
        """Smallest finite-walk prefix length meeting ``target``.

        Falls back to the full effective walk when the target is never met,
        matching the legacy loop's exhaustion behaviour.  Callers must route
        protect-everything ("max") targets through :meth:`plan` instead.
        """
        length = len(self._effective)
        first_sdc = 0 if target.sdc is None else _first_index_at_least(
            self._sdc_record_values, self._sdc_record_indices, target.sdc)
        first_due = 0 if target.due is None else _first_index_at_least(
            self._due_record_values, self._due_record_indices, target.due)
        if first_sdc is None or first_due is None:
            return length
        if target.sdc is None or target.due is None:
            return max(first_sdc, first_due)
        # Joint target: satisfaction is not monotone along the walk, so scan
        # forward from the later single-metric crossing (a valid lower bound).
        for k in range(max(first_sdc, first_due), length + 1):
            if target.satisfied_by(self._curve_sdc[k], self._curve_due[k]):
                return k
        return length

    @staticmethod
    def _protects_everything(target: ResilienceTarget) -> bool:
        return ((target.sdc or 0) == float("inf")
                or (target.due or 0) == float("inf"))

    # ------------------------------------------------------------------ planning
    def _membership(self, steps: list[ScheduleStep],
                    ) -> tuple[dict[int, CellType], list[int], set[int]]:
        hardened: dict[int, CellType] = {}
        parity_members: list[int] = []
        eds_members: set[int] = set()
        for step in steps:
            if step.choice is LowLevelChoice.LEAP_DICE:
                hardened[step.flat_index] = self.hardening_cell
            elif step.choice is LowLevelChoice.PARITY:
                parity_members.append(step.flat_index)
            else:
                eds_members.add(step.flat_index)
        return hardened, parity_members, eds_members

    def plan(self, target: ResilienceTarget, label: str = "") -> SelectiveHardeningResult:
        """Answer one target from the precomputed schedule (no replanning)."""
        if self._protects_everything(target):
            selected = self.steps
            protected = len(self.steps)
            achieved_sdc, achieved_due = self._full_achieved
        else:
            prefix = self.prefix_for(target)
            selected = self._effective[:prefix]
            protected = prefix
            achieved_sdc = self._curve_sdc[prefix]
            achieved_due = self._curve_due[prefix]
        hardened, parity_members, eds_members = self._membership(selected)
        design = materialise_design(self.registry, self.timing, self.vulnerability,
                                    hardened, parity_members, eds_members,
                                    self.recovery, list(self.high_level), label)
        return SelectiveHardeningResult(design=design, protected_count=protected,
                                        achieved_sdc=achieved_sdc,
                                        achieved_due=achieved_due)
