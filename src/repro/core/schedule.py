"""Incremental protection schedules (one-pass Fig. 7 planning).

The selective-hardening loop of Fig. 7 is deterministic given the selection
policy, the recovery mechanism and the high-level technique set: the target
only decides *where the walk down the vulnerability ranking stops*.  A
:class:`ProtectionSchedule` therefore records the whole walk once -- the
Heuristic-1 choice per flip-flop plus the cumulative SDC/DUE improvement
curves (Eq. 1, including the evolving parity-γ) -- and answers any target by
locating its first crossing on the curve: O(ffs) once per schedule plus
O(log ffs) per target, instead of O(ffs) per (combination, target) pair.

Cost is answered the same way: :meth:`ProtectionSchedule.plan_costed` reads
energy/area/execution-time for a prefix from incremental cost curves
(memoised per cost model, bit-identical to materialising the design and
costing it), so streaming sweeps never rebuild parity plans per target.

Bit-exactness with per-target replanning
(:meth:`repro.core.heuristics.SelectiveHardeningPlanner.plan_replanning`) is
guaranteed by construction and property-tested:

* the walk applies the exact arithmetic sequence of the legacy loop (zero-
  residual sites contribute bitwise no-ops, so one pass serves both the
  finite-target path, which skips them, and the protect-everything path,
  which does not);
* a target's stopping point is its *first* crossing of the improvement
  curve.  The curve need not be monotone (parity-γ and detection-to-DUE
  conversion can lower it), but any first crossing of a single-metric
  threshold is a strict running maximum, so single-metric targets bisect the
  record subsequence; joint targets scan forward from the later of their two
  single-metric crossings.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from dataclasses import dataclass
from enum import Enum, unique

from repro.core.improvement import ResilienceTarget
from repro.faultinjection.vulnerability import VulnerabilityMap
from repro.microarch.flipflop import FlipFlopRegistry
from repro.physical.cells import CellType, RecoveryKind
from repro.physical.costmodel import CostReport, DesignCostModel, ParityGroupPlan
from repro.physical.timing import TimingModel
from repro.resilience.base import TechniqueDescriptor, core_family
from repro.resilience.circuit import HardeningPlan
from repro.resilience.design import ProtectedDesign, RESIDUAL_FLOOR_FRACTION
from repro.resilience.logic_parity import (
    ParityHeuristic,
    ParityPlanner,
    PIPELINED_GROUP_SIZE,
    UNPIPELINED_GROUP_SIZE,
)

#: LEAP-DICE-class residual soft-error rate (Table 4), as a suppression
#: probability.  Shared with the legacy replanning loop.
HARDENING_SUPPRESSION = 1.0 - 2.0e-4


@unique
class LowLevelChoice(Enum):
    """Technique choices Heuristic 1 can make for a single flip-flop."""

    LEAP_DICE = "leap-dice"
    PARITY = "parity"
    EDS = "eds"


@dataclass
class SelectiveHardeningResult:
    """Output of the Fig. 7 selective-protection loop."""

    design: ProtectedDesign
    protected_count: int
    achieved_sdc: float
    achieved_due: float


@dataclass(frozen=True)
class CostedPlan:
    """One target answered from the improvement *and* cost curves.

    Carries everything streaming exploration needs -- achieved improvements
    plus the exact :class:`CostReport` of the prefix design -- without ever
    materialising the :class:`ProtectedDesign` itself.
    """

    protected_count: int
    achieved_sdc: float
    achieved_due: float
    cost: CostReport


@dataclass(frozen=True)
class ScheduleStep:
    """One flip-flop's slot in the vulnerability-ranked protection walk.

    Attributes:
        flat_index: the flip-flop.
        choice: the Heuristic-1 technique choice (policy- and recovery-
            dependent, but target-independent).
        recoverable: whether the schedule's recovery mechanism covers this
            flip-flop's unit (decides detection semantics).
        zero_residual: True when the site's post-high-level SDC and DUE
            residuals are both zero; finite targets skip such sites, the
            protect-everything walk does not.
    """

    flat_index: int
    choice: LowLevelChoice
    recoverable: bool
    zero_residual: bool


def materialise_design(registry: FlipFlopRegistry, timing: TimingModel,
                       vulnerability: VulnerabilityMap,
                       hardened: dict[int, CellType], parity_members: list[int],
                       eds_members: set[int], recovery: RecoveryKind,
                       high_level: list[TechniqueDescriptor],
                       label: str) -> ProtectedDesign:
    """Turn selected memberships into a :class:`ProtectedDesign` (Fig. 3 parity)."""
    planner = ParityPlanner(registry, timing, vulnerability)
    groups = planner.build_groups(parity_members, ParityHeuristic.OPTIMIZED)
    plan = HardeningPlan(assignments=dict(hardened))
    return ProtectedDesign(registry=registry, hardening=plan, parity_groups=groups,
                           eds_flip_flops=set(eds_members), recovery=recovery,
                           high_level=high_level, label=label)


def _first_index_at_least(record_values: list[float], record_indices: list[int],
                          threshold: float) -> int | None:
    """First curve index whose value reaches ``threshold`` (record bisection)."""
    position = bisect_left(record_values, threshold)
    if position == len(record_values):
        return None
    return record_indices[position]


class ProtectionSchedule:
    """The full prefix schedule for one (policy, recovery, high-level) context.

    Built once by :meth:`SelectiveHardeningPlanner.schedule_for`; answers
    every resilience target through :meth:`plan` without replanning.
    """

    def __init__(self, registry: FlipFlopRegistry, timing: TimingModel,
                 vulnerability: VulnerabilityMap, recovery: RecoveryKind,
                 hardening_cell: CellType,
                 high_level: list[TechniqueDescriptor],
                 steps: list[ScheduleStep],
                 residual_sdc: list[float], residual_due: list[float],
                 baseline_sdc: float, baseline_due: float, gamma_fixed: float):
        self.registry = registry
        self.timing = timing
        self.vulnerability = vulnerability
        self.recovery = recovery
        self.hardening_cell = hardening_cell
        self.high_level = high_level
        self.steps = steps
        self._baseline_sdc = baseline_sdc
        self._baseline_due = baseline_due
        self._gamma_fixed = gamma_fixed
        # (unit, 32-bit slack) per parity site, filled lazily by the cost
        # curves; keyed by flat index so the finite and full walks share it.
        self._parity_site_info: dict[int, tuple[str, bool]] = {}
        # One (cost model, {prefix or "full" -> CostReport}) memo entry:
        # schedules live inside a planner that serves one explorer with one
        # cost model, so a single identity-checked slot memoises the whole
        # sweep without pinning every model ever passed.
        self._cost_curve_entry: tuple[DesignCostModel, dict] | None = None
        self._walk(residual_sdc, residual_due)
        self._build_records()

    # ------------------------------------------------------------------ construction
    def _improvements(self, parity_count: int, sum_sdc: float,
                      sum_due: float) -> tuple[float, float]:
        """Eq. 1 improvements -- the exact arithmetic of the legacy loop."""
        added = parity_count / UNPIPELINED_GROUP_SIZE
        gamma = self._gamma_fixed * (1.0 + added / max(1, self.registry.total_flip_flops))
        sdc = self._baseline_sdc / max(sum_sdc, self._baseline_sdc
                                       * RESIDUAL_FLOOR_FRACTION) / gamma
        due = self._baseline_due / max(sum_due, self._baseline_due
                                       * RESIDUAL_FLOOR_FRACTION) / gamma
        return sdc, due

    def _walk(self, residual_sdc: list[float], residual_due: list[float]) -> None:
        """One pass down the ranking, recording both stopping-rule curves.

        Zero-residual sites change the sums by exact floating-point no-ops,
        so a single pass yields bitwise-identical curves for the finite-
        target walk (which skips them) and the protect-everything walk
        (which visits them, growing the parity count).
        """
        sum_sdc = sum(residual_sdc)
        sum_due = sum(residual_due)
        parity_finite = 0
        parity_full = 0
        effective: list[ScheduleStep] = []
        start = self._improvements(0, sum_sdc, sum_due)
        curve_sdc = [start[0]]
        curve_due = [start[1]]
        # Cumulative membership counts accumulated alongside the improvement
        # curves: the cost curves read prefix membership from these instead
        # of re-scanning the walk per target.
        cum_hardened = [0]
        cum_eds = [0]
        parity_prefix_ends: list[int] = []   # prefix length that admits member i
        parity_flats: list[int] = []
        for step in self.steps:
            site_sdc = residual_sdc[step.flat_index]
            site_due = residual_due[step.flat_index]
            if step.choice is LowLevelChoice.LEAP_DICE:
                sum_sdc -= site_sdc * HARDENING_SUPPRESSION
                sum_due -= site_due * HARDENING_SUPPRESSION
            else:
                if step.choice is LowLevelChoice.PARITY:
                    parity_full += 1
                if step.recoverable:
                    sum_sdc -= site_sdc
                    sum_due -= site_due
                else:
                    # Detection without recovery: SDC becomes detected (DUE).
                    sum_due += site_sdc
                    sum_sdc -= site_sdc
            if not step.zero_residual:
                effective.append(step)
                is_parity = step.choice is LowLevelChoice.PARITY
                if is_parity:
                    parity_finite += 1
                    parity_prefix_ends.append(len(effective))
                    parity_flats.append(step.flat_index)
                cum_hardened.append(cum_hardened[-1]
                                    + (step.choice is LowLevelChoice.LEAP_DICE))
                cum_eds.append(cum_eds[-1]
                               + (step.choice is LowLevelChoice.EDS))
                achieved = self._improvements(parity_finite, sum_sdc, sum_due)
                curve_sdc.append(achieved[0])
                curve_due.append(achieved[1])
        self._effective = effective
        self._curve_sdc = curve_sdc
        self._curve_due = curve_due
        self._cum_hardened = cum_hardened
        self._cum_eds = cum_eds
        self._parity_prefix_ends = parity_prefix_ends
        self._parity_flats = parity_flats
        self._full_achieved = self._improvements(parity_full, sum_sdc, sum_due)

    def _build_records(self) -> None:
        """Strict-running-maximum subsequences enabling first-crossing bisection."""
        self._sdc_record_values: list[float] = []
        self._sdc_record_indices: list[int] = []
        self._due_record_values: list[float] = []
        self._due_record_indices: list[int] = []
        best_sdc = best_due = float("-inf")
        for index, (sdc, due) in enumerate(zip(self._curve_sdc, self._curve_due)):
            if sdc > best_sdc:
                best_sdc = sdc
                self._sdc_record_values.append(sdc)
                self._sdc_record_indices.append(index)
            if due > best_due:
                best_due = due
                self._due_record_values.append(due)
                self._due_record_indices.append(index)

    # ------------------------------------------------------------------ queries
    @property
    def effective_length(self) -> int:
        """Number of walk steps finite targets can take (zero sites excluded)."""
        return len(self._effective)

    def improvement_curve(self) -> list[tuple[int, float, float]]:
        """The (protected count, SDC, DUE) improvement curve for finite targets."""
        return [(k, self._curve_sdc[k], self._curve_due[k])
                for k in range(len(self._curve_sdc))]

    def prefix_for(self, target: ResilienceTarget) -> int:
        """Smallest finite-walk prefix length meeting ``target``.

        Falls back to the full effective walk when the target is never met,
        matching the legacy loop's exhaustion behaviour.  Callers must route
        protect-everything ("max") targets through :meth:`plan` instead.
        """
        length = len(self._effective)
        first_sdc = 0 if target.sdc is None else _first_index_at_least(
            self._sdc_record_values, self._sdc_record_indices, target.sdc)
        first_due = 0 if target.due is None else _first_index_at_least(
            self._due_record_values, self._due_record_indices, target.due)
        if first_sdc is None or first_due is None:
            return length
        if target.sdc is None or target.due is None:
            return max(first_sdc, first_due)
        # Joint target: satisfaction is not monotone along the walk, so scan
        # forward from the later single-metric crossing (a valid lower bound).
        for k in range(max(first_sdc, first_due), length + 1):
            if target.satisfied_by(self._curve_sdc[k], self._curve_due[k]):
                return k
        return length

    @staticmethod
    def _protects_everything(target: ResilienceTarget) -> bool:
        return ((target.sdc or 0) == float("inf")
                or (target.due or 0) == float("inf"))

    # ------------------------------------------------------------------ planning
    def _membership(self, steps: list[ScheduleStep],
                    ) -> tuple[dict[int, CellType], list[int], set[int]]:
        hardened: dict[int, CellType] = {}
        parity_members: list[int] = []
        eds_members: set[int] = set()
        for step in steps:
            if step.choice is LowLevelChoice.LEAP_DICE:
                hardened[step.flat_index] = self.hardening_cell
            elif step.choice is LowLevelChoice.PARITY:
                parity_members.append(step.flat_index)
            else:
                eds_members.add(step.flat_index)
        return hardened, parity_members, eds_members

    def plan(self, target: ResilienceTarget, label: str = "") -> SelectiveHardeningResult:
        """Answer one target from the precomputed schedule (no replanning)."""
        if self._protects_everything(target):
            selected = self.steps
            protected = len(self.steps)
            achieved_sdc, achieved_due = self._full_achieved
        else:
            prefix = self.prefix_for(target)
            selected = self._effective[:prefix]
            protected = prefix
            achieved_sdc = self._curve_sdc[prefix]
            achieved_due = self._curve_due[prefix]
        hardened, parity_members, eds_members = self._membership(selected)
        design = materialise_design(self.registry, self.timing, self.vulnerability,
                                    hardened, parity_members, eds_members,
                                    self.recovery, list(self.high_level), label)
        return SelectiveHardeningResult(design=design, protected_count=protected,
                                        achieved_sdc=achieved_sdc,
                                        achieved_due=achieved_due)

    # ------------------------------------------------------------------ cost curves
    #
    # The walk's membership at any prefix determines its physical cost, and
    # the cost computation factors through counts alone: hardened cells and
    # EDS cost linearly in their counts, and the Fig. 3 "optimized" parity
    # grouping produces group *sizes* that depend only on how many members
    # each (functional unit, slack class) bucket holds.  The helpers below
    # recompute `ProtectedDesign.cost` term for term from that membership --
    # same conditionals, same combine order, same per-group arithmetic -- so
    # the answers are bit-identical to materialising the design, at
    # O(prefix + groups) per (memoised) prefix instead of a full
    # materialise + cost per target.

    def _parity_info(self, flat_index: int) -> tuple[str, bool]:
        info = self._parity_site_info.get(flat_index)
        if info is None:
            info = (self.registry.unit_of(flat_index),
                    self.timing.supports_unpipelined(flat_index,
                                                     UNPIPELINED_GROUP_SIZE))
            self._parity_site_info[flat_index] = info
        return info

    def _classify_parity(self, flat_indices: list[int]) -> tuple[list, list]:
        """Split parity members into (flat index, unit) slack-class buckets."""
        slack_members: list[tuple[int, str]] = []
        pipelined_members: list[tuple[int, str]] = []
        for flat_index in flat_indices:
            unit, has_slack = self._parity_info(flat_index)
            bucket = slack_members if has_slack else pipelined_members
            bucket.append((flat_index, unit))
        return slack_members, pipelined_members

    def _cost_membership(self, steps: list[ScheduleStep],
                         ) -> tuple[int, int, list, list]:
        """Counts and parity (flat index, unit) pairs of one step sequence."""
        hardened = 0
        eds = 0
        parity_flats: list[int] = []
        for step in steps:
            if step.choice is LowLevelChoice.LEAP_DICE:
                hardened += 1
            elif step.choice is LowLevelChoice.PARITY:
                parity_flats.append(step.flat_index)
            else:
                eds += 1
        slack_members, pipelined_members = self._classify_parity(parity_flats)
        return hardened, eds, slack_members, pipelined_members

    @staticmethod
    def _bucket_group_sizes(members: list[tuple[int, str]],
                            group_size: int) -> list[int]:
        """Group sizes of one slack class, in the planner's canonical order.

        Mirrors ``ParityPlanner._locality_groups``: members sorted by flat
        index, units in first-appearance order, each unit chunked into full
        groups plus one remainder.
        """
        by_unit: dict[str, int] = {}
        for _, unit in sorted(members):
            by_unit[unit] = by_unit.get(unit, 0) + 1
        sizes: list[int] = []
        for count in by_unit.values():
            sizes.extend([group_size] * (count // group_size))
            if count % group_size:
                sizes.append(count % group_size)
        return sizes

    def _parity_plans(self, slack_members: list, pipelined_members: list,
                      ) -> list[ParityGroupPlan]:
        """The optimized-heuristic group plan (sizes are all the model reads)."""
        plans = [ParityGroupPlan(members=(0,) * size, pipelined=False, local=True)
                 for size in self._bucket_group_sizes(slack_members,
                                                      UNPIPELINED_GROUP_SIZE)]
        plans.extend(ParityGroupPlan(members=(0,) * size, pipelined=True, local=True)
                     for size in self._bucket_group_sizes(pipelined_members,
                                                          PIPELINED_GROUP_SIZE))
        return plans

    def _cost_of_membership(self, cost_model: DesignCostModel, hardened: int,
                            eds: int, slack_members: list,
                            pipelined_members: list) -> CostReport:
        report = CostReport()
        if hardened and self.hardening_cell is not CellType.BASELINE:
            report = report.combined_with(
                cost_model.hardened_cells_cost({self.hardening_cell: hardened}))
        plans = self._parity_plans(slack_members, pipelined_members)
        if plans:
            report = report.combined_with(cost_model.parity_cost(plans))
        if eds:
            report = report.combined_with(cost_model.eds_cost(eds))
        if self.recovery is not RecoveryKind.NONE:
            report = report.combined_with(cost_model.recovery_report(self.recovery))
        family = core_family(self.registry.core_name)
        for technique in self.high_level:
            costs = technique.costs(family)
            report = report.combined_with(cost_model.fixed_overhead(
                costs.area_pct, costs.power_pct, costs.exec_time_pct))
        return report

    def _cost_memo(self, cost_model: DesignCostModel) -> dict:
        entry = self._cost_curve_entry
        if entry is None or entry[0] is not cost_model:
            entry = (cost_model, {})
            self._cost_curve_entry = entry
        return entry[1]

    def cost_at(self, prefix: int, cost_model: DesignCostModel) -> CostReport:
        """Exact cost of the finite-walk prefix design (no materialisation).

        Membership comes straight from the cumulative counts recorded during
        the walk -- O(parity members + groups) per uncached prefix.
        """
        memo = self._cost_memo(cost_model)
        report = memo.get(prefix)
        if report is None:
            parity_count = bisect_right(self._parity_prefix_ends, prefix)
            slack_members, pipelined_members = self._classify_parity(
                self._parity_flats[:parity_count])
            report = self._cost_of_membership(
                cost_model, self._cum_hardened[prefix], self._cum_eds[prefix],
                slack_members, pipelined_members)
            memo[prefix] = report
        return report

    def full_cost(self, cost_model: DesignCostModel) -> CostReport:
        """Exact cost of the protect-everything walk (no materialisation)."""
        memo = self._cost_memo(cost_model)
        report = memo.get("full")
        if report is None:
            report = self._cost_of_membership(
                cost_model, *self._cost_membership(self.steps))
            memo["full"] = report
        return report

    def cost_curve(self, cost_model: DesignCostModel,
                   ) -> list[tuple[int, CostReport]]:
        """The cumulative (protected count, cost) curve of the finite walk.

        The companion of :meth:`improvement_curve`: index ``k`` costs the
        same design whose improvements sit at curve index ``k``.
        """
        return [(k, self.cost_at(k, cost_model))
                for k in range(self.effective_length + 1)]

    def plan_costed(self, target: ResilienceTarget,
                    cost_model: DesignCostModel) -> CostedPlan:
        """Answer one target with improvements and cost from the curves.

        Bit-identical to ``plan(target).design.cost(cost_model)`` but never
        builds the design -- this is what lets frontier sweeps and the pruned
        cheapest search evaluate thousands of (combination, target) pairs
        while materialising only the designs a caller actually asks for.
        """
        if self._protects_everything(target):
            return CostedPlan(protected_count=len(self.steps),
                              achieved_sdc=self._full_achieved[0],
                              achieved_due=self._full_achieved[1],
                              cost=self.full_cost(cost_model))
        prefix = self.prefix_for(target)
        return CostedPlan(protected_count=prefix,
                          achieved_sdc=self._curve_sdc[prefix],
                          achieved_due=self._curve_due[prefix],
                          cost=self.cost_at(prefix, cost_model))
