"""Cross-layer exploration engine.

Evaluates cross-layer combinations: for a combination (a set of techniques
plus a recovery mechanism) and a resilience target, it builds the cheapest
protected design reachable with that combination -- applying high-level
techniques first and then selectively adding tunable circuit/logic protection
per the Fig. 7 methodology -- and reports its cost and achieved improvement.
This is the machinery behind Tables 17, 19, 20, 21 and Figures 1(d), 9
and 10.

The engine is *incremental and streaming*:

* tunable combinations are answered from cached
  :class:`~repro.core.schedule.ProtectionSchedule` prefix schedules (one
  Fig. 7 walk per (policy, recovery, high-level set), any number of
  targets);
* non-tunable combinations are target-independent, so their design, Eq. 1
  estimate and cost are computed once and reused across the target sweep;
* high-level :class:`TechniqueDescriptor`s are immutable and constructed
  once per process (:func:`high_level_descriptor`), not per evaluation;
* large sweeps shard the combination pool over the engine's pluggable
  Serial/ProcessPool executors (:meth:`CrossLayerExplorer.stream_records`)
  and stream lightweight :class:`ExplorationRecord` aggregates back, which
  feed the dominance-pruned :class:`~repro.analysis.pareto.ParetoFrontier`;
* :meth:`CrossLayerExplorer.cheapest_meeting_target` orders candidates by
  their fixed-cost energy lower bound and stops as soon as the incumbent
  beats every remaining bound, instead of evaluating all 586 combinations.

:meth:`CrossLayerExplorer.evaluate_reference` preserves the original
replan-from-scratch semantics; the property tests pin the incremental paths
to it bit-for-bit.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Iterator

from repro.analysis.pareto import ParetoFrontier, ParetoPoint
from repro.core.combinations import (
    ABFT_CORRECTION,
    ABFT_DETECTION,
    ASSERTIONS,
    CFCSS,
    CrossLayerCombination,
    DFC,
    EDDI,
    EDS,
    LEAP_DICE,
    MONITOR,
    PARITY,
    enumerate_combinations,
)
from repro.core.heuristics import SelectionPolicy, SelectiveHardeningPlanner
from repro.core.improvement import MAX_TARGET, ResilienceTarget, sdc_targets
from repro.engine.executors import ParallelExecutor
from repro.faultinjection.vulnerability import VulnerabilityMap
from repro.microarch.flipflop import FlipFlopRegistry
from repro.physical.cells import RecoveryKind
from repro.physical.costmodel import CostReport, DesignCostModel
from repro.physical.timing import TimingModel
from repro.resilience.algorithm import abft_correction_descriptor, abft_detection_descriptor
from repro.resilience.architecture import dfc_descriptor, monitor_core_descriptor
from repro.resilience.base import TechniqueDescriptor, core_family
from repro.resilience.design import ProtectedDesign
from repro.resilience.software import assertions_descriptor, cfcss_descriptor, eddi_descriptor

_HIGH_LEVEL_FACTORIES: dict[str, Callable[[], TechniqueDescriptor]] = {
    DFC: dfc_descriptor,
    MONITOR: monitor_core_descriptor,
    ASSERTIONS: assertions_descriptor,
    CFCSS: cfcss_descriptor,
    EDDI: eddi_descriptor,
    ABFT_CORRECTION: abft_correction_descriptor,
    ABFT_DETECTION: abft_detection_descriptor,
}

#: Descriptors are immutable value objects; build each exactly once per
#: process instead of on every ``evaluate()`` call.
_HIGH_LEVEL_DESCRIPTORS: dict[str, TechniqueDescriptor] = {}


def high_level_descriptor(name: str) -> TechniqueDescriptor:
    """The process-wide shared descriptor of one high-level technique."""
    descriptor = _HIGH_LEVEL_DESCRIPTORS.get(name)
    if descriptor is None:
        descriptor = _HIGH_LEVEL_FACTORIES[name]()
        _HIGH_LEVEL_DESCRIPTORS[name] = descriptor
    return descriptor


def high_level_descriptors(combination: CrossLayerCombination) -> list[TechniqueDescriptor]:
    """The (shared) high-level descriptors of one combination, in order."""
    return [high_level_descriptor(name) for name in combination.techniques
            if name in _HIGH_LEVEL_FACTORIES]


@dataclass
class EvaluatedDesign:
    """One evaluated (combination, target) point."""

    combination: CrossLayerCombination
    target: ResilienceTarget
    design: ProtectedDesign
    cost: CostReport
    sdc_improvement: float
    due_improvement: float
    protected_flip_flops: int

    @property
    def meets_target(self) -> bool:
        return self.target.satisfied_by(self.sdc_improvement, self.due_improvement)

    @property
    def energy_pct(self) -> float:
        return self.cost.energy_pct


@dataclass(frozen=True)
class CostedEvaluation:
    """One (combination, target) point costed without materialising a design.

    Numerically bit-identical to :class:`EvaluatedDesign` -- improvements
    come from the same schedule curves and the cost from the schedule's
    incremental cost curves -- it just never builds the
    :class:`ProtectedDesign`.  Streaming consumers (frontier sweeps, the
    pruned cheapest search) run on this; call
    :meth:`CrossLayerExplorer.evaluate` when the design itself is needed.
    """

    combination: CrossLayerCombination
    target: ResilienceTarget
    cost: CostReport
    sdc_improvement: float
    due_improvement: float
    protected_flip_flops: int

    @property
    def meets_target(self) -> bool:
        return self.target.satisfied_by(self.sdc_improvement, self.due_improvement)

    @property
    def energy_pct(self) -> float:
        return self.cost.energy_pct


@dataclass(frozen=True)
class ExplorationRecord:
    """Streamed lightweight aggregate of one (combination, target) evaluation.

    Carries everything frontier construction and reporting need -- costs,
    achieved improvements, pool coordinates -- without shipping the full
    :class:`ProtectedDesign` across process boundaries.
    """

    combination_index: int
    target_index: int
    label: str
    target_label: str
    area_pct: float
    power_pct: float
    energy_pct: float
    exec_time_pct: float
    sdc_improvement: float
    due_improvement: float
    protected_flip_flops: int
    meets_target: bool

    def pareto_point(self, metric: str = "sdc") -> ParetoPoint:
        if metric not in ("sdc", "due"):
            raise ValueError(f"metric must be 'sdc' or 'due', got {metric!r}")
        improvement = self.sdc_improvement if metric == "sdc" else self.due_improvement
        return ParetoPoint(improvement=improvement, energy_pct=self.energy_pct,
                           area_pct=self.area_pct, exec_time_pct=self.exec_time_pct,
                           label=f"{self.label} @ {self.target_label}", payload=self)


# ---------------------------------------------------------------------- sharding
@dataclass
class ExplorationSpec:
    """Everything a worker needs to evaluate combination shards.

    Pickled once per worker by the pool initializer; each worker rebuilds
    one explorer from it lazily and keeps its schedule caches warm across
    the shards it is handed.
    """

    registry: FlipFlopRegistry
    vulnerability: VulnerabilityMap
    timing: TimingModel
    cost_model: DesignCostModel
    benchmarks: list[str] | None
    combinations: list[CrossLayerCombination]
    targets: list[ResilienceTarget]


@dataclass(frozen=True)
class ExplorationShard:
    """A contiguous slice of the combination pool (all targets per entry).

    Whole combinations are sharded -- never (combination, target) pairs --
    so each worker answers a combination's full target sweep from a single
    cached schedule.
    """

    index: int
    combination_indices: tuple[int, ...]


@dataclass
class ExplorationShardResult:
    """Streamed aggregate for one executed exploration shard."""

    index: int
    records: list[ExplorationRecord]


def shard_combinations(count: int, workers: int,
                       chunk_size: int | None = None) -> list[ExplorationShard]:
    """Split a combination pool into contiguous shards (~4 per worker)."""
    if count <= 0:
        return []
    if chunk_size is None:
        chunk_size = max(1, math.ceil(count / max(1, workers * 4)))
    chunk_size = max(1, chunk_size)
    return [ExplorationShard(index=index,
                             combination_indices=tuple(range(start, min(start + chunk_size,
                                                                        count))))
            for index, start in enumerate(range(0, count, chunk_size))]


_SPEC_EXPLORER: tuple[ExplorationSpec, "CrossLayerExplorer"] | None = None


def _explorer_for_spec(spec: ExplorationSpec) -> "CrossLayerExplorer":
    """One explorer per worker process, rebuilt only when the spec changes.

    The memo holds the spec itself (not a derived key), so identity cannot
    alias across garbage-collected specs in the serial-fallback path.
    """
    global _SPEC_EXPLORER
    if _SPEC_EXPLORER is None or _SPEC_EXPLORER[0] is not spec:
        explorer = CrossLayerExplorer(spec.registry, spec.vulnerability,
                                      timing=spec.timing, cost_model=spec.cost_model,
                                      benchmarks=spec.benchmarks)
        _SPEC_EXPLORER = (spec, explorer)
    return _SPEC_EXPLORER[1]


def evaluate_exploration_shard(spec: ExplorationSpec,
                               shard: ExplorationShard) -> ExplorationShardResult:
    """Evaluate one shard of combinations over every target (worker entry)."""
    explorer = _explorer_for_spec(spec)
    records = [explorer.record(spec.combinations[ci], target,
                               combination_index=ci, target_index=ti)
               for ci in shard.combination_indices
               for ti, target in enumerate(spec.targets)]
    return ExplorationShardResult(index=shard.index, records=records)


class CrossLayerExplorer:
    """Evaluates combinations over a vulnerability map and a cost model."""

    def __init__(self, registry: FlipFlopRegistry, vulnerability: VulnerabilityMap,
                 timing: TimingModel | None = None,
                 cost_model: DesignCostModel | None = None,
                 benchmarks: list[str] | None = None):
        self.registry = registry
        self.vulnerability = vulnerability
        self.timing = timing or TimingModel(registry)
        self.cost_model = cost_model or DesignCostModel(registry.core_name,
                                                        registry.total_flip_flops)
        self.benchmarks = benchmarks
        self.family = core_family(registry.core_name)
        self._planner = SelectiveHardeningPlanner(registry, vulnerability, self.timing,
                                                  benchmarks)
        # (high-level names, recovery) -> (design, sdc, due, cost); non-
        # tunable combinations are target-independent, so one entry answers
        # the whole sweep.
        self._fixed_cache: dict[tuple, tuple[ProtectedDesign, float, float, CostReport]] = {}

    # ------------------------------------------------------------------ single combination
    def _high_level_descriptors(self, combination: CrossLayerCombination) -> list[TechniqueDescriptor]:
        return high_level_descriptors(combination)

    def _policy_for(self, combination: CrossLayerCombination) -> SelectionPolicy:
        return SelectionPolicy(
            allow_hardening=LEAP_DICE in combination.techniques,
            allow_parity=PARITY in combination.techniques,
            allow_eds=EDS in combination.techniques,
        )

    def _fixed_design(self, combination: CrossLayerCombination,
                      ) -> tuple[ProtectedDesign, float, float, CostReport]:
        """Design/improvement/cost of a combination with no tunable technique."""
        key = (tuple(name for name in combination.techniques
                     if name in _HIGH_LEVEL_FACTORIES), combination.recovery)
        cached = self._fixed_cache.get(key)
        if cached is not None:
            return cached
        high_level = self._high_level_descriptors(combination)
        design = ProtectedDesign(registry=self.registry, recovery=combination.recovery,
                                 high_level=high_level, label=combination.label)
        estimate = design.estimate_improvement(self.vulnerability, self.benchmarks)
        cost = design.cost(self.cost_model)
        result = (design, estimate.sdc_improvement, estimate.due_improvement, cost)
        self._fixed_cache[key] = result
        return result

    def _schedule_for(self, combination: CrossLayerCombination):
        return self._planner.schedule_for(
            recovery=combination.recovery,
            policy=self._policy_for(combination),
            high_level=self._high_level_descriptors(combination))

    def evaluate(self, combination: CrossLayerCombination,
                 target: ResilienceTarget) -> EvaluatedDesign:
        """Build and cost the cheapest design for one combination and target."""
        if combination.has_tunable_technique:
            result = self._schedule_for(combination).plan(target,
                                                          label=combination.label)
            design = result.design
            protected = result.protected_count
            sdc, due = result.achieved_sdc, result.achieved_due
            cost = design.cost(self.cost_model)
        else:
            design, sdc, due, cost = self._fixed_design(combination)
            protected = 0
        return EvaluatedDesign(combination=combination, target=target, design=design,
                               cost=cost, sdc_improvement=sdc, due_improvement=due,
                               protected_flip_flops=protected)

    def evaluate_costed(self, combination: CrossLayerCombination,
                        target: ResilienceTarget) -> CostedEvaluation:
        """Cost one (combination, target) pair from the schedule's curves.

        Bit-identical numbers to :meth:`evaluate` without materialising the
        design: tunable combinations answer from the cached
        :class:`ProtectionSchedule`'s improvement *and* incremental cost
        curves, non-tunable ones from the per-context fixed cache.
        """
        if combination.has_tunable_technique:
            costed = self._schedule_for(combination).plan_costed(target,
                                                                 self.cost_model)
            cost = costed.cost
            protected = costed.protected_count
            sdc, due = costed.achieved_sdc, costed.achieved_due
        else:
            _, sdc, due, cost = self._fixed_design(combination)
            protected = 0
        return CostedEvaluation(combination=combination, target=target, cost=cost,
                                sdc_improvement=sdc, due_improvement=due,
                                protected_flip_flops=protected)

    def evaluate_reference(self, combination: CrossLayerCombination,
                           target: ResilienceTarget) -> EvaluatedDesign:
        """The original replan-from-scratch evaluation (equivalence baseline).

        Rebuilds descriptors, vulnerability profiles and the whole Fig. 7
        walk per call; the incremental :meth:`evaluate` is property-tested
        to match it bit-for-bit.
        """
        high_level = [_HIGH_LEVEL_FACTORIES[name]() for name in combination.techniques
                      if name in _HIGH_LEVEL_FACTORIES]
        if combination.has_tunable_technique:
            policy = self._policy_for(combination)
            result = self._planner.plan_replanning(
                target, recovery=combination.recovery, policy=policy,
                high_level=high_level, label=combination.label)
            design = result.design
            protected = result.protected_count
            sdc, due = result.achieved_sdc, result.achieved_due
        else:
            design = ProtectedDesign(registry=self.registry, recovery=combination.recovery,
                                     high_level=high_level, label=combination.label)
            estimate = design.estimate_improvement(self.vulnerability, self.benchmarks)
            protected = 0
            sdc, due = estimate.sdc_improvement, estimate.due_improvement
        cost = design.cost(self.cost_model)
        return EvaluatedDesign(combination=combination, target=target, design=design,
                               cost=cost, sdc_improvement=sdc, due_improvement=due,
                               protected_flip_flops=protected)

    def record(self, combination: CrossLayerCombination, target: ResilienceTarget,
               combination_index: int = 0, target_index: int = 0) -> ExplorationRecord:
        """Evaluate one pair into a lightweight streaming record.

        Runs on the design-free :meth:`evaluate_costed` path -- records only
        ever carry aggregates, so sweeps never pay for materialisation.
        """
        evaluated = self.evaluate_costed(combination, target)
        return ExplorationRecord(
            combination_index=combination_index, target_index=target_index,
            label=combination.label, target_label=target.label,
            area_pct=evaluated.cost.area_pct, power_pct=evaluated.cost.power_pct,
            energy_pct=evaluated.cost.energy_pct,
            exec_time_pct=evaluated.cost.exec_time_pct,
            sdc_improvement=evaluated.sdc_improvement,
            due_improvement=evaluated.due_improvement,
            protected_flip_flops=evaluated.protected_flip_flops,
            meets_target=evaluated.meets_target)

    # ------------------------------------------------------------------ sweeps
    def sweep_targets(self, combination: CrossLayerCombination,
                      targets: list[ResilienceTarget] | None = None) -> list[EvaluatedDesign]:
        """Evaluate one combination over the standard target sweep (Table 17/19).

        All targets are answered from one cached protection schedule.
        """
        return [self.evaluate(combination, target)
                for target in (targets or sdc_targets())]

    def explore_all(self, target: ResilienceTarget,
                    combinations: list[CrossLayerCombination] | None = None) -> list[EvaluatedDesign]:
        """Evaluate every combination at one target (the Fig. 1d cloud)."""
        pool = combinations if combinations is not None \
            else enumerate_combinations(self.family)
        return [self.evaluate(combination, target) for combination in pool]

    def stream_records(self, targets: list[ResilienceTarget],
                       combinations: list[CrossLayerCombination] | None = None,
                       workers: int = 1,
                       chunk_size: int | None = None) -> Iterator[ExplorationRecord]:
        """Stream every (combination, target) evaluation, optionally sharded.

        With ``workers > 1`` the combination pool is sharded over the
        engine's :class:`ParallelExecutor` (process pool, serial fallback)
        and records arrive in shard *completion* order; each record carries
        its pool coordinates, so order-sensitive consumers can sort while
        streaming consumers (the Pareto frontier, incumbent searches) fold
        results as they land.
        """
        pool = combinations if combinations is not None \
            else enumerate_combinations(self.family)
        if workers <= 1:
            for ci, combination in enumerate(pool):
                for ti, target in enumerate(targets):
                    yield self.record(combination, target,
                                      combination_index=ci, target_index=ti)
            return
        spec = ExplorationSpec(registry=self.registry, vulnerability=self.vulnerability,
                               timing=self.timing, cost_model=self.cost_model,
                               benchmarks=self.benchmarks, combinations=list(pool),
                               targets=list(targets))
        shards = shard_combinations(len(pool), workers, chunk_size)
        executor = ParallelExecutor(workers=workers)
        # audit: allow[completion-order-fold] records carry their pool coordinates (combination_index/target_index) and the ParetoFrontier fold is insertion-order invariant (pinned by test_exploration order tests)
        for shard_result in executor.stream(spec, shards, evaluate_exploration_shard):
            yield from shard_result.records

    def explore_frontier(self, targets: list[ResilienceTarget] | None = None,
                         combinations: list[CrossLayerCombination] | None = None,
                         workers: int = 1, metric: str = "sdc") -> ParetoFrontier:
        """Stream the sweep into a dominance-pruned Pareto frontier."""
        frontier = ParetoFrontier()
        for record in self.stream_records(targets or sdc_targets(), combinations,
                                          workers=workers):
            frontier.add(record.pareto_point(metric))
        return frontier

    # ------------------------------------------------------------------ cheapest search
    def fixed_energy_lower_bound(self, combination: CrossLayerCombination) -> float:
        """Energy of the combination's non-tunable parts -- a lower bound.

        Tunable protection only ever adds area/power (and never execution
        time), and combined energy is monotone in both, so the recovery +
        high-level cost bounds the full design's energy from below.  For
        combinations without tunable techniques the bound is exact.
        """
        report = CostReport()
        if combination.recovery is not RecoveryKind.NONE:
            report = report.combined_with(
                self.cost_model.recovery_report(combination.recovery))
        for technique in self._high_level_descriptors(combination):
            costs = technique.costs(self.family)
            report = report.combined_with(self.cost_model.fixed_overhead(
                costs.area_pct, costs.power_pct, costs.exec_time_pct))
        return report.energy_pct

    def cheapest_meeting_target(self, target: ResilienceTarget,
                                combinations: list[CrossLayerCombination] | None = None,
                                prune: bool = True) -> EvaluatedDesign | None:
        """The minimum-energy combination that meets a target (Question 2).

        Candidates are visited in ascending order of their fixed-cost energy
        lower bound; the search stops as soon as the incumbent's energy is
        below every remaining bound.  Ties are broken by enumeration order,
        matching the historical first-minimum semantics exactly.  Candidates
        are costed from the incremental cost curves; only the winner is
        materialised into a design.
        """
        pool = combinations if combinations is not None \
            else enumerate_combinations(self.family)
        if not prune:
            evaluated = [e for e in self.explore_all(target, pool) if e.meets_target]
            if not evaluated:
                return None
            return min(evaluated, key=lambda e: e.cost.energy_pct)
        bounds = [self.fixed_energy_lower_bound(combination) for combination in pool]
        order = sorted(range(len(pool)), key=lambda i: (bounds[i], i))
        best_index: int | None = None
        best_key: tuple[float, int] | None = None
        for i in order:
            if best_key is not None and bounds[i] > best_key[0]:
                break
            costed = self.evaluate_costed(pool[i], target)
            if not costed.meets_target:
                continue
            key = (costed.cost.energy_pct, i)
            if best_key is None or key < best_key:
                best_index, best_key = i, key
        if best_index is None:
            return None
        return self.evaluate(pool[best_index], target)

    # ------------------------------------------------------------------ named combinations
    def named_combination(self, names: tuple[str, ...],
                          recovery: RecoveryKind = RecoveryKind.NONE) -> CrossLayerCombination:
        """Convenience constructor for the named combinations of Tables 17/19/21."""
        return CrossLayerCombination(core_family=self.family, techniques=names,
                                     recovery=recovery)

    def best_practice_combination(self) -> CrossLayerCombination:
        """LEAP-DICE + parity + micro-architectural recovery (the paper's winner)."""
        recovery = RecoveryKind.FLUSH if self.family == "InO" else RecoveryKind.ROB
        return self.named_combination((LEAP_DICE, PARITY), recovery)

    def bounds_envelope(self, targets: list[ResilienceTarget] | None = None,
                        standalone: bool = False) -> list[tuple[float, float]]:
        """Energy-cost vs improvement envelope for new-technique bounds (Fig. 9/10).

        Returns (improvement, energy_pct) points for the best-practice
        cross-layer combination (Fig. 9) or for standalone LEAP-DICE
        (Fig. 10).
        """
        if standalone:
            combination = self.named_combination((LEAP_DICE,))
        else:
            combination = self.best_practice_combination()
        points = []
        for evaluated in self.sweep_targets(combination, targets):
            improvement = evaluated.target.sdc if evaluated.target.sdc is not None \
                else evaluated.target.due
            if improvement == MAX_TARGET:
                improvement = evaluated.sdc_improvement
            points.append((improvement, evaluated.cost.energy_pct))
        return points
