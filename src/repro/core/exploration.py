"""Cross-layer exploration engine.

Evaluates cross-layer combinations: for a combination (a set of techniques
plus a recovery mechanism) and a resilience target, it builds the cheapest
protected design reachable with that combination -- applying high-level
techniques first and then selectively adding tunable circuit/logic protection
per the Fig. 7 methodology -- and reports its cost and achieved improvement.
This is the machinery behind Tables 17, 19, 20, 21 and Figures 1(d), 9
and 10.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.combinations import (
    ABFT_CORRECTION,
    ABFT_DETECTION,
    ASSERTIONS,
    CFCSS,
    CrossLayerCombination,
    DFC,
    EDDI,
    EDS,
    LEAP_DICE,
    MONITOR,
    PARITY,
    enumerate_combinations,
)
from repro.core.heuristics import SelectionPolicy, SelectiveHardeningPlanner
from repro.core.improvement import MAX_TARGET, ResilienceTarget, sdc_targets
from repro.faultinjection.vulnerability import VulnerabilityMap
from repro.microarch.flipflop import FlipFlopRegistry
from repro.physical.cells import RecoveryKind
from repro.physical.costmodel import CostReport, DesignCostModel
from repro.physical.timing import TimingModel
from repro.resilience.algorithm import abft_correction_descriptor, abft_detection_descriptor
from repro.resilience.architecture import dfc_descriptor, monitor_core_descriptor
from repro.resilience.base import TechniqueDescriptor, core_family
from repro.resilience.design import ProtectedDesign
from repro.resilience.software import assertions_descriptor, cfcss_descriptor, eddi_descriptor

_HIGH_LEVEL_FACTORIES = {
    DFC: dfc_descriptor,
    MONITOR: monitor_core_descriptor,
    ASSERTIONS: assertions_descriptor,
    CFCSS: cfcss_descriptor,
    EDDI: eddi_descriptor,
    ABFT_CORRECTION: abft_correction_descriptor,
    ABFT_DETECTION: abft_detection_descriptor,
}


@dataclass
class EvaluatedDesign:
    """One evaluated (combination, target) point."""

    combination: CrossLayerCombination
    target: ResilienceTarget
    design: ProtectedDesign
    cost: CostReport
    sdc_improvement: float
    due_improvement: float
    protected_flip_flops: int

    @property
    def meets_target(self) -> bool:
        return self.target.satisfied_by(self.sdc_improvement, self.due_improvement)

    @property
    def energy_pct(self) -> float:
        return self.cost.energy_pct


class CrossLayerExplorer:
    """Evaluates combinations over a vulnerability map and a cost model."""

    def __init__(self, registry: FlipFlopRegistry, vulnerability: VulnerabilityMap,
                 timing: TimingModel | None = None,
                 cost_model: DesignCostModel | None = None,
                 benchmarks: list[str] | None = None):
        self.registry = registry
        self.vulnerability = vulnerability
        self.timing = timing or TimingModel(registry)
        self.cost_model = cost_model or DesignCostModel(registry.core_name,
                                                        registry.total_flip_flops)
        self.benchmarks = benchmarks
        self.family = core_family(registry.core_name)
        self._planner = SelectiveHardeningPlanner(registry, vulnerability, self.timing,
                                                  benchmarks)

    # ------------------------------------------------------------------ single combination
    def _high_level_descriptors(self, combination: CrossLayerCombination) -> list[TechniqueDescriptor]:
        return [_HIGH_LEVEL_FACTORIES[name]() for name in combination.techniques
                if name in _HIGH_LEVEL_FACTORIES]

    def _policy_for(self, combination: CrossLayerCombination) -> SelectionPolicy:
        return SelectionPolicy(
            allow_hardening=LEAP_DICE in combination.techniques,
            allow_parity=PARITY in combination.techniques,
            allow_eds=EDS in combination.techniques,
        )

    def evaluate(self, combination: CrossLayerCombination,
                 target: ResilienceTarget) -> EvaluatedDesign:
        """Build and cost the cheapest design for one combination and target."""
        high_level = self._high_level_descriptors(combination)
        if combination.has_tunable_technique:
            policy = self._policy_for(combination)
            result = self._planner.plan(target, recovery=combination.recovery,
                                        policy=policy, high_level=high_level,
                                        label=combination.label)
            design = result.design
            protected = result.protected_count
            sdc, due = result.achieved_sdc, result.achieved_due
        else:
            design = ProtectedDesign(registry=self.registry, recovery=combination.recovery,
                                     high_level=high_level, label=combination.label)
            estimate = design.estimate_improvement(self.vulnerability, self.benchmarks)
            protected = 0
            sdc, due = estimate.sdc_improvement, estimate.due_improvement
        cost = design.cost(self.cost_model)
        return EvaluatedDesign(combination=combination, target=target, design=design,
                               cost=cost, sdc_improvement=sdc, due_improvement=due,
                               protected_flip_flops=protected)

    # ------------------------------------------------------------------ sweeps
    def sweep_targets(self, combination: CrossLayerCombination,
                      targets: list[ResilienceTarget] | None = None) -> list[EvaluatedDesign]:
        """Evaluate one combination over the standard target sweep (Table 17/19)."""
        return [self.evaluate(combination, target)
                for target in (targets or sdc_targets())]

    def explore_all(self, target: ResilienceTarget,
                    combinations: list[CrossLayerCombination] | None = None) -> list[EvaluatedDesign]:
        """Evaluate every combination at one target (the Fig. 1d cloud)."""
        pool = combinations if combinations is not None \
            else enumerate_combinations(self.family)
        return [self.evaluate(combination, target) for combination in pool]

    def cheapest_meeting_target(self, target: ResilienceTarget,
                                combinations: list[CrossLayerCombination] | None = None,
                                ) -> EvaluatedDesign | None:
        """The minimum-energy combination that meets a target (Question 2)."""
        evaluated = [e for e in self.explore_all(target, combinations) if e.meets_target]
        if not evaluated:
            return None
        return min(evaluated, key=lambda e: e.cost.energy_pct)

    # ------------------------------------------------------------------ named combinations
    def named_combination(self, names: tuple[str, ...],
                          recovery: RecoveryKind = RecoveryKind.NONE) -> CrossLayerCombination:
        """Convenience constructor for the named combinations of Tables 17/19/21."""
        return CrossLayerCombination(core_family=self.family, techniques=names,
                                     recovery=recovery)

    def best_practice_combination(self) -> CrossLayerCombination:
        """LEAP-DICE + parity + micro-architectural recovery (the paper's winner)."""
        recovery = RecoveryKind.FLUSH if self.family == "InO" else RecoveryKind.ROB
        return self.named_combination((LEAP_DICE, PARITY), recovery)

    def bounds_envelope(self, targets: list[ResilienceTarget] | None = None,
                        standalone: bool = False) -> list[tuple[float, float]]:
        """Energy-cost vs improvement envelope for new-technique bounds (Fig. 9/10).

        Returns (improvement, energy_pct) points for the best-practice
        cross-layer combination (Fig. 9) or for standalone LEAP-DICE
        (Fig. 10).
        """
        if standalone:
            combination = self.named_combination((LEAP_DICE,))
        else:
            combination = self.best_practice_combination()
        points = []
        for evaluated in self.sweep_targets(combination, targets):
            improvement = evaluated.target.sdc if evaluated.target.sdc is not None \
                else evaluated.target.due
            if improvement == MAX_TARGET:
                improvement = evaluated.sdc_improvement
            points.append((improvement, evaluated.cost.energy_pct))
        return points
