"""The CLEAR framework core: metrics, heuristics, combinations, exploration."""

from repro.core.combinations import (
    CrossLayerCombination,
    combination_counts,
    enumerate_combinations,
    total_combination_count,
)
from repro.core.exploration import CrossLayerExplorer, EvaluatedDesign
from repro.core.framework import ClearFramework
from repro.core.heuristics import (
    LowLevelChoice,
    SelectionPolicy,
    SelectiveHardeningPlanner,
    SelectiveHardeningResult,
    choose_technique,
)
from repro.core.improvement import (
    MAX_TARGET,
    ResilienceTarget,
    STANDARD_TARGETS,
    due_improvement,
    due_targets,
    joint_targets,
    sdc_improvement,
    sdc_targets,
)

__all__ = [
    "CrossLayerCombination",
    "combination_counts",
    "enumerate_combinations",
    "total_combination_count",
    "CrossLayerExplorer",
    "EvaluatedDesign",
    "ClearFramework",
    "LowLevelChoice",
    "SelectionPolicy",
    "SelectiveHardeningPlanner",
    "SelectiveHardeningResult",
    "choose_technique",
    "MAX_TARGET",
    "ResilienceTarget",
    "STANDARD_TARGETS",
    "due_improvement",
    "due_targets",
    "joint_targets",
    "sdc_improvement",
    "sdc_targets",
]
