"""The CLEAR framework core: metrics, heuristics, combinations, exploration."""

from repro.core.combinations import (
    CrossLayerCombination,
    combination_counts,
    enumerate_combinations,
    total_combination_count,
)
from repro.core.exploration import (
    CostedEvaluation,
    CrossLayerExplorer,
    EvaluatedDesign,
    ExplorationRecord,
    ExplorationShard,
    ExplorationSpec,
    high_level_descriptor,
    shard_combinations,
)
from repro.core.framework import ClearFramework
from repro.core.heuristics import (
    LowLevelChoice,
    SelectionPolicy,
    SelectiveHardeningPlanner,
    SelectiveHardeningResult,
    choose_technique,
)
from repro.core.improvement import (
    MAX_TARGET,
    ResilienceTarget,
    STANDARD_TARGETS,
    due_improvement,
    due_targets,
    joint_targets,
    sdc_improvement,
    sdc_targets,
)
from repro.core.schedule import CostedPlan, ProtectionSchedule, ScheduleStep

__all__ = [
    "CostedEvaluation",
    "CostedPlan",
    "CrossLayerCombination",
    "combination_counts",
    "enumerate_combinations",
    "total_combination_count",
    "CrossLayerExplorer",
    "EvaluatedDesign",
    "ExplorationRecord",
    "ExplorationShard",
    "ExplorationSpec",
    "high_level_descriptor",
    "shard_combinations",
    "ClearFramework",
    "LowLevelChoice",
    "SelectionPolicy",
    "SelectiveHardeningPlanner",
    "SelectiveHardeningResult",
    "ProtectionSchedule",
    "ScheduleStep",
    "choose_technique",
    "MAX_TARGET",
    "ResilienceTarget",
    "STANDARD_TARGETS",
    "due_improvement",
    "due_targets",
    "joint_targets",
    "sdc_improvement",
    "sdc_targets",
]
