"""Resilience library: techniques across the system stack plus recovery.

Circuit (LEAP-DICE, LHL, LEAP-ctrl, EDS), logic (parity), architecture (DFC,
monitor core), software (assertions, CFCSS, EDDI), algorithm (ABFT
correction/detection) and hardware recovery (IR, EIR, flush, RoB), together
with the :class:`~repro.resilience.design.ProtectedDesign` configuration
object that ties a set of techniques to one core.
"""

from repro.resilience.algorithm import (
    AbftMeasurement,
    ABFT_FF_COVERAGE,
    abft_correction_descriptor,
    abft_covered_flip_flops,
    abft_detection_descriptor,
    measure_abft_impact,
)
from repro.resilience.architecture import (
    DFC_COVERAGE,
    MONITOR_CORE_IPC,
    dfc_coverage,
    dfc_descriptor,
    monitor_core_descriptor,
    monitor_core_throughput_sufficient,
)
from repro.resilience.base import (
    CoverageModel,
    GammaContribution,
    Layer,
    TechniqueCosts,
    TechniqueDescriptor,
    core_family,
)
from repro.resilience.circuit import (
    HardeningPlan,
    dual_mode_plan,
    harden_remaining_with_lhl,
    harden_top_flip_flops,
)
from repro.resilience.design import (
    ImprovementEstimate,
    ProtectedDesign,
    RECOVERY_GAMMA,
)
from repro.resilience.library import (
    TABLE3_PUBLISHED,
    TUNABLE_TECHNIQUES,
    TunableTechnique,
    all_detection_correction_techniques,
    high_level_techniques,
    recovery_mechanisms,
)
from repro.resilience.logic_parity import (
    ParityGroup,
    ParityHeuristic,
    ParityPlanner,
    PIPELINED_GROUP_SIZE,
    UNPIPELINED_GROUP_SIZE,
)
from repro.resilience.software import (
    ASSERTION_BREAKDOWN,
    EDDI_STORE_READBACK_TABLE,
    SELECTIVE_EDDI_TABLE,
    assertions_descriptor,
    cfcss_descriptor,
    eddi_descriptor,
)

__all__ = [
    "AbftMeasurement",
    "ABFT_FF_COVERAGE",
    "abft_correction_descriptor",
    "abft_covered_flip_flops",
    "abft_detection_descriptor",
    "measure_abft_impact",
    "DFC_COVERAGE",
    "MONITOR_CORE_IPC",
    "dfc_coverage",
    "dfc_descriptor",
    "monitor_core_descriptor",
    "monitor_core_throughput_sufficient",
    "CoverageModel",
    "GammaContribution",
    "Layer",
    "TechniqueCosts",
    "TechniqueDescriptor",
    "core_family",
    "HardeningPlan",
    "dual_mode_plan",
    "harden_remaining_with_lhl",
    "harden_top_flip_flops",
    "ImprovementEstimate",
    "ProtectedDesign",
    "RECOVERY_GAMMA",
    "TABLE3_PUBLISHED",
    "TUNABLE_TECHNIQUES",
    "TunableTechnique",
    "all_detection_correction_techniques",
    "high_level_techniques",
    "recovery_mechanisms",
    "ParityGroup",
    "ParityHeuristic",
    "ParityPlanner",
    "PIPELINED_GROUP_SIZE",
    "UNPIPELINED_GROUP_SIZE",
    "ASSERTION_BREAKDOWN",
    "EDDI_STORE_READBACK_TABLE",
    "SELECTIVE_EDDI_TABLE",
    "assertions_descriptor",
    "cfcss_descriptor",
    "eddi_descriptor",
]
