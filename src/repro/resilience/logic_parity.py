"""Logic-level parity checking.

XOR-tree parity predictors/checkers detect flip-flop soft errors (Sec. 2.4).
The cost of parity depends strongly on how flip-flops are grouped; the paper
evaluates five grouping heuristics (Table 7) and settles on the "optimized"
strategy of Fig. 3: 32-bit unpipelined groups where timing slack allows,
16-bit pipelined groups elsewhere, both formed within functional units
(locality) to keep wiring short.  Layouts additionally enforce a minimum
spacing between members of the same group so that a single strike (SEMU)
cannot flip two bits checked by the same parity tree.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum, unique

from repro.faultinjection.vulnerability import VulnerabilityMap
from repro.microarch.flipflop import FlipFlopRegistry
from repro.physical.costmodel import DesignCostModel, ParityGroupPlan
from repro.physical.timing import TimingModel

UNPIPELINED_GROUP_SIZE = 32
PIPELINED_GROUP_SIZE = 16


@unique
class ParityHeuristic(Enum):
    """Parity-group formation heuristics evaluated in Table 7."""

    GROUP_SIZE = "group-size"
    VULNERABILITY = "vulnerability"
    LOCALITY = "locality"
    TIMING = "timing"
    OPTIMIZED = "optimized"


@dataclass(frozen=True)
class ParityGroup:
    """A set of flip-flops checked by one parity predictor/checker pair."""

    members: tuple[int, ...]
    pipelined: bool
    local: bool

    def as_plan(self) -> ParityGroupPlan:
        return ParityGroupPlan(members=self.members, pipelined=self.pipelined,
                               local=self.local)


def _chunk(indices: list[int], size: int) -> list[list[int]]:
    return [indices[start:start + size] for start in range(0, len(indices), size)]


def _unit_of(registry: FlipFlopRegistry, flat_index: int) -> str:
    return registry.unit_of(flat_index)


class ParityPlanner:
    """Builds parity groups over a set of flip-flops with a chosen heuristic."""

    def __init__(self, registry: FlipFlopRegistry, timing: TimingModel,
                 vulnerability: VulnerabilityMap | None = None):
        self.registry = registry
        self.timing = timing
        self.vulnerability = vulnerability

    # ------------------------------------------------------------------ public
    def build_groups(self, flip_flops: list[int], heuristic: ParityHeuristic,
                     group_size: int = PIPELINED_GROUP_SIZE,
                     benchmarks: list[str] | None = None) -> list[ParityGroup]:
        """Group ``flip_flops`` according to ``heuristic``."""
        if not flip_flops:
            return []
        if heuristic is ParityHeuristic.OPTIMIZED:
            return self._optimized_groups(flip_flops)
        if heuristic is ParityHeuristic.GROUP_SIZE:
            ordered = sorted(flip_flops)
            local = False
        elif heuristic is ParityHeuristic.VULNERABILITY:
            ordered = self._order_by_vulnerability(flip_flops, benchmarks)
            local = False
        elif heuristic is ParityHeuristic.LOCALITY:
            return self._locality_groups(flip_flops, group_size, pipelined=None)
        elif heuristic is ParityHeuristic.TIMING:
            ordered = sorted(flip_flops, key=lambda i: (-self.timing.slack_levels(i), i))
            local = False
        else:  # pragma: no cover - exhaustive enum
            raise ValueError(f"unknown heuristic {heuristic}")
        groups = []
        for members in _chunk(ordered, group_size):
            pipelined = not self.timing.group_supports_unpipelined(members, group_size)
            groups.append(ParityGroup(tuple(members), pipelined=pipelined, local=local))
        return groups

    # ------------------------------------------------------------------ helpers
    def _order_by_vulnerability(self, flip_flops: list[int],
                                benchmarks: list[str] | None) -> list[int]:
        if self.vulnerability is None:
            return sorted(flip_flops)
        key = {i: (self.vulnerability.sdc_probability(i, benchmarks)
                   + self.vulnerability.due_probability(i, benchmarks))
               for i in flip_flops}
        return sorted(flip_flops, key=lambda i: (-key[i], i))

    def _locality_groups(self, flip_flops: list[int], group_size: int,
                         pipelined: bool | None) -> list[ParityGroup]:
        # Keep in sync with ProtectionSchedule._bucket_group_sizes
        # (repro/core/schedule.py), which reproduces this chunking from
        # member counts for the incremental cost curves; the equivalence is
        # property-tested in tests/test_exploration.py.
        groups: list[ParityGroup] = []
        by_unit: dict[str, list[int]] = {}
        for flat_index in sorted(flip_flops):
            by_unit.setdefault(_unit_of(self.registry, flat_index), []).append(flat_index)
        for members_in_unit in by_unit.values():
            for members in _chunk(members_in_unit, group_size):
                if pipelined is None:
                    group_pipelined = not self.timing.group_supports_unpipelined(
                        members, group_size)
                else:
                    group_pipelined = pipelined
                groups.append(ParityGroup(tuple(members), pipelined=group_pipelined,
                                          local=True))
        return groups

    def _optimized_groups(self, flip_flops: list[int]) -> list[ParityGroup]:
        """Fig. 3: 32-bit unpipelined where slack allows, 16-bit pipelined else.

        Flip-flops are first split by whether they can absorb a 32-bit
        predictor tree, then grouped by functional unit (locality) within
        each class.
        """
        with_slack = [i for i in flip_flops
                      if self.timing.supports_unpipelined(i, UNPIPELINED_GROUP_SIZE)]
        slack_set = set(with_slack)
        without_slack = [i for i in flip_flops if i not in slack_set]
        groups = self._locality_groups(with_slack, UNPIPELINED_GROUP_SIZE, pipelined=False)
        groups.extend(self._locality_groups(without_slack, PIPELINED_GROUP_SIZE,
                                            pipelined=True))
        return groups

    # ------------------------------------------------------------------ costs
    def cost_of(self, groups: list[ParityGroup], cost_model: DesignCostModel):
        """Physical cost of a parity plan."""
        return cost_model.parity_cost([group.as_plan() for group in groups])

    def compare_heuristics(self, flip_flops: list[int], cost_model: DesignCostModel,
                           benchmarks: list[str] | None = None) -> dict[str, dict[str, float]]:
        """Reproduce the Table 7 comparison over all heuristics/group sizes."""
        rows: dict[str, dict[str, float]] = {}
        for size in (4, 8, 16, 32):
            groups = self.build_groups(flip_flops, ParityHeuristic.VULNERABILITY,
                                       group_size=size, benchmarks=benchmarks)
            report = self.cost_of(groups, cost_model)
            rows[f"vulnerability-{size}"] = {"area_pct": report.area_pct,
                                             "power_pct": report.power_pct,
                                             "energy_pct": report.energy_pct}
        for heuristic, label in ((ParityHeuristic.LOCALITY, "locality-16"),
                                 (ParityHeuristic.TIMING, "timing-16")):
            groups = self.build_groups(flip_flops, heuristic,
                                       group_size=PIPELINED_GROUP_SIZE,
                                       benchmarks=benchmarks)
            report = self.cost_of(groups, cost_model)
            rows[label] = {"area_pct": report.area_pct, "power_pct": report.power_pct,
                           "energy_pct": report.energy_pct}
        optimized = self.build_groups(flip_flops, ParityHeuristic.OPTIMIZED)
        report = self.cost_of(optimized, cost_model)
        rows["optimized"] = {"area_pct": report.area_pct, "power_pct": report.power_pct,
                             "energy_pct": report.energy_pct}
        return rows

    def added_flip_flops(self, groups: list[ParityGroup]) -> int:
        """Parity and pipeline flip-flops added by a parity plan (for γ)."""
        added = 0
        for group in groups:
            added += 1  # parity flip-flop
            if group.pipelined:
                added += max(1, len(group.members) // 8)
        return added
