"""The resilience library (Fig. 1c): all techniques and recovery mechanisms.

Provides registry-style access to the ten error detection/correction
techniques and the four hardware recovery mechanisms the paper explores,
plus the per-technique standalone characteristics used to regenerate
Table 3.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.physical.cells import RecoveryKind, available_recoveries
from repro.resilience.algorithm import abft_correction_descriptor, abft_detection_descriptor
from repro.resilience.architecture import dfc_descriptor, monitor_core_descriptor
from repro.resilience.base import Layer, TechniqueDescriptor
from repro.resilience.software import assertions_descriptor, cfcss_descriptor, eddi_descriptor


@dataclass(frozen=True)
class TunableTechnique:
    """A circuit/logic technique applied selectively to flip-flops."""

    name: str
    layer: Layer
    detection_only: bool
    description: str


TUNABLE_TECHNIQUES = (
    TunableTechnique("leap-dice", Layer.CIRCUIT, detection_only=False,
                     description="Hardened flip-flop; no additional recovery needed."),
    TunableTechnique("eds", Layer.CIRCUIT, detection_only=True,
                     description="Error-detecting sequential; needs recovery for correction."),
    TunableTechnique("parity", Layer.LOGIC, detection_only=True,
                     description="XOR-tree parity prediction/checking over flip-flop groups."),
)


def high_level_techniques(core_family: str) -> list[TechniqueDescriptor]:
    """Architecture/software/algorithm techniques applicable to one core family."""
    techniques = [dfc_descriptor(), abft_correction_descriptor(), abft_detection_descriptor()]
    if core_family == "InO":
        techniques.extend([assertions_descriptor(), cfcss_descriptor(), eddi_descriptor()])
    else:
        techniques.append(monitor_core_descriptor())
    return techniques


def all_detection_correction_techniques() -> list[str]:
    """Names of the ten detection/correction techniques in the library."""
    return ["abft-correction", "abft-detection", "assertions", "cfcss", "eddi",
            "dfc", "monitor-core", "parity", "leap-dice", "eds"]


def recovery_mechanisms(core_name: str) -> list[RecoveryKind]:
    """The hardware recovery mechanisms available on a core."""
    return available_recoveries(core_name)


#: Standalone technique characteristics as published (Table 3), used by the
#: Table 3 benchmark harness to print paper-reference rows next to the
#: model-computed ones.
TABLE3_PUBLISHED = {
    ("leap-dice", "InO"): {"energy_max_pct": 22.4, "sdc_max": 5000, "due_max": 5000},
    ("leap-dice", "OoO"): {"energy_max_pct": 9.4, "sdc_max": 5000, "due_max": 5000},
    ("parity-ir", "InO"): {"energy_max_pct": 44.0, "sdc_max": 100000, "due_max": 100000},
    ("parity-ir", "OoO"): {"energy_max_pct": 13.7, "sdc_max": 100000, "due_max": 100000},
    ("dfc", "InO"): {"energy_pct": 7.3, "sdc": 1.2, "due": 0.5},
    ("dfc", "OoO"): {"energy_pct": 7.2, "sdc": 1.2, "due": 0.5},
    ("monitor-core", "OoO"): {"energy_pct": 16.3, "sdc": 19.0, "due": 15.0},
    ("assertions", "InO"): {"energy_pct": 15.6, "sdc": 1.5, "due": 0.6},
    ("cfcss", "InO"): {"energy_pct": 40.6, "sdc": 1.5, "due": 0.5},
    ("eddi", "InO"): {"energy_pct": 110.0, "sdc": 37.8, "due": 0.3},
    ("abft-correction", "both"): {"energy_pct": 1.4, "sdc": 4.3, "due": 1.2},
    ("abft-detection", "both"): {"energy_pct": 24.0, "sdc": 3.5, "due": 0.5},
}
