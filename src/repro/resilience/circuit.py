"""Circuit-level resilience: selective flip-flop hardening and EDS.

Circuit techniques are *tunable*: they are applied to an explicit set of
flip-flops, chosen by vulnerability ranking, so a range of SDC/DUE
improvements can be traded against cost (Table 17).  The cells available are
those of Table 4: LEAP-DICE (full hardening), Light-Hardened LEAP (LHL,
~4x soft-error-rate reduction at ~1.3x energy), the dual-mode LEAP-ctrl, and
the error-detecting EDS sequential.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.physical.cells import CELL_LIBRARY, CellType
from repro.resilience.base import Layer


@dataclass
class HardeningPlan:
    """Assignment of hardened/detecting cells to individual flip-flops."""

    assignments: dict[int, CellType] = field(default_factory=dict)

    def assign(self, flat_indices, cell_type: CellType) -> "HardeningPlan":
        """Assign ``cell_type`` to every flip-flop in ``flat_indices``."""
        for flat_index in flat_indices:
            self.assignments[flat_index] = cell_type
        return self

    def cell_counts(self) -> dict[CellType, int]:
        """Number of flip-flops per assigned cell type (baseline cells omitted)."""
        counts: dict[CellType, int] = {}
        for cell_type in self.assignments.values():
            if cell_type is CellType.BASELINE:
                continue
            counts[cell_type] = counts.get(cell_type, 0) + 1
        return counts

    def protected_count(self) -> int:
        return len([c for c in self.assignments.values() if c is not CellType.BASELINE])

    def cell_for(self, flat_index: int) -> CellType:
        return self.assignments.get(flat_index, CellType.BASELINE)

    def suppression_for(self, flat_index: int) -> float:
        """Upset-suppression probability of the cell protecting a flip-flop."""
        return CELL_LIBRARY[self.cell_for(flat_index)].suppression


LAYER = Layer.CIRCUIT


def harden_top_flip_flops(ranked_flip_flops: list[int], count: int,
                          cell_type: CellType = CellType.LEAP_DICE) -> HardeningPlan:
    """Harden the ``count`` most vulnerable flip-flops with one cell type."""
    plan = HardeningPlan()
    plan.assign(ranked_flip_flops[:count], cell_type)
    return plan


def harden_remaining_with_lhl(plan: HardeningPlan, all_flip_flops: range | list[int]) -> HardeningPlan:
    """Protect every still-unprotected flip-flop with LHL (Sec. 4).

    This is the paper's answer to application-benchmark dependence: after
    selective hardening guided by the training benchmarks, the remaining
    flip-flops receive the cheap Light-Hardened LEAP cell so that resilience
    targets are met even when field applications differ from the training
    set, at roughly 1% extra cost.
    """
    for flat_index in all_flip_flops:
        if plan.cell_for(flat_index) is CellType.BASELINE:
            plan.assignments[flat_index] = CellType.LHL
    return plan


def dual_mode_plan(abft_covered: set[int], hardened: dict[int, CellType]) -> HardeningPlan:
    """Replace hardened cells on ABFT-covered flip-flops by LEAP-ctrl.

    For general-purpose processors that only sometimes run ABFT-protected
    applications (Sec. 3.2.1), flip-flops protected by ABFT still need
    circuit protection for non-ABFT applications.  LEAP-ctrl cells provide a
    resilient mode (when ABFT is unavailable) and an economy mode (when ABFT
    is running).
    """
    plan = HardeningPlan(assignments=dict(hardened))
    for flat_index in abft_covered:
        if plan.cell_for(flat_index) in (CellType.LEAP_DICE, CellType.LHL):
            plan.assignments[flat_index] = CellType.LEAP_CTRL_RESILIENT
    return plan
