"""Resilience-technique data model.

The resilience library (Sec. 2.4) contains ten error detection/correction
techniques spanning five abstraction layers plus four hardware recovery
mechanisms.  This module defines the common vocabulary: layers, technique
descriptors (costs, coverage, detection latency, gamma contributions) and the
coverage abstraction used to estimate SDC/DUE improvements from a
vulnerability map.

Low-level techniques (circuit hardening, logic parity, EDS) are *tunable*:
they protect an explicit set of flip-flops chosen by the selective-hardening
heuristics, and their effect is simulated exactly by the fault injector.
High-level techniques (DFC, monitor core, software assertions, CFCSS, EDDI,
ABFT) protect whichever flip-flops their checks happen to observe; they are
characterised by measured coverage parameters (calibrated to the paper's
flip-flop-injection results) and, for ABFT and assertions, by genuinely
transformed programs whose detections the simulator observes directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum, unique


@unique
class Layer(Enum):
    """Abstraction layer a technique belongs to (Fig. 1c)."""

    CIRCUIT = "circuit"
    LOGIC = "logic"
    ARCHITECTURE = "architecture"
    SOFTWARE = "software"
    ALGORITHM = "algorithm"


@dataclass(frozen=True)
class GammaContribution:
    """A technique's contribution to the susceptibility correction factor γ.

    γ accounts for the extra soft-error susceptibility introduced by a
    technique: extra flip-flops are extra targets, and longer execution
    exposes every flip-flop for more cycles (Sec. 2.1, Eq. 1).  The total γ
    of a configuration multiplies the (1 + flip-flop increase) and
    (1 + execution-time increase) factors of every technique employed.
    """

    flip_flop_increase: float = 0.0
    execution_time_increase: float = 0.0

    @property
    def factor(self) -> float:
        return (1.0 + self.flip_flop_increase) * (1.0 + self.execution_time_increase)


@dataclass(frozen=True)
class CoverageModel:
    """How a high-level technique reduces SDC-/DUE-causing errors.

    Attributes:
        ff_coverage_sdc: fraction of SDC-vulnerable flip-flops whose errors
            the technique's checks can observe at all (e.g. Table 8: DFC
            observes 57-65%).
        detect_sdc: probability that an observed SDC-causing error is
            actually detected (e.g. Table 8: ~30% for DFC).
        ff_coverage_due / detect_due: same for DUE-causing errors.
        corrects: True when a detection is corrected in place (ABFT
            correction); detections then remove errors entirely instead of
            converting them into detected-but-uncorrected errors.
        false_positive_rate: fraction of error-free runs that raise a check.
        detection_latency_cycles: mean error-detection latency.
    """

    ff_coverage_sdc: float
    detect_sdc: float
    ff_coverage_due: float
    detect_due: float
    corrects: bool = False
    false_positive_rate: float = 0.0
    detection_latency_cycles: int = 0

    @property
    def overall_sdc_detection(self) -> float:
        """Fraction of all SDC-causing errors detected (or corrected)."""
        return self.ff_coverage_sdc * self.detect_sdc

    @property
    def overall_due_detection(self) -> float:
        return self.ff_coverage_due * self.detect_due


@dataclass(frozen=True)
class TechniqueCosts:
    """Fixed per-core overheads of a (non-tunable) technique (Table 3)."""

    area_pct: float = 0.0
    power_pct: float = 0.0
    exec_time_pct: float = 0.0


@dataclass(frozen=True)
class TechniqueDescriptor:
    """Static description of one resilience technique.

    Tunable (circuit/logic) techniques leave ``coverage`` as None -- their
    effect is computed per protected flip-flop -- and report zero fixed cost
    (their cost is computed by the physical cost model from the selected
    flip-flops).

    Frozen: descriptors are shared process-wide (exploration caches one
    instance per technique and keys schedule/residual caches on their
    content), so mutation would silently corrupt every cached schedule.
    Derive variants with :func:`dataclasses.replace` instead.
    """

    name: str
    layer: Layer
    tunable: bool
    detection_only: bool
    coverage: CoverageModel | None = None
    costs_by_core: dict[str, TechniqueCosts] = field(default_factory=dict)
    gamma_by_core: dict[str, GammaContribution] = field(default_factory=dict)
    requires_recovery_for_due: bool = True
    notes: str = ""

    def costs(self, core_family: str) -> TechniqueCosts:
        return self.costs_by_core.get(core_family, TechniqueCosts())

    def gamma(self, core_family: str) -> GammaContribution:
        return self.gamma_by_core.get(core_family, GammaContribution())


def core_family(core_name: str) -> str:
    """Map a core name to its family key ("InO" or "OoO")."""
    if "ooo" in core_name.lower() or "out" in core_name.lower():
        return "OoO"
    return "InO"
