"""Architecture-level resilience techniques: DFC and monitor cores.

Data Flow Checking (DFC, including control-flow checking as in [Meixner 07])
and monitor ("checker") cores similar to DIVA [Austin 99].  Both are
characterised by the flip-flop-level coverage the paper measured (Tables 3,
8, 9): the fraction of SDC-/DUE-vulnerable flip-flops whose errors the
checkers observe, and the per-flip-flop detection probability.
"""

from __future__ import annotations

from repro.resilience.base import (
    CoverageModel,
    GammaContribution,
    Layer,
    TechniqueCosts,
    TechniqueDescriptor,
)

#: DFC error coverage measured by flip-flop injection (Table 8).
DFC_COVERAGE = {
    "InO": CoverageModel(ff_coverage_sdc=0.57, detect_sdc=0.30,
                         ff_coverage_due=0.68, detect_due=0.30,
                         detection_latency_cycles=15),
    "OoO": CoverageModel(ff_coverage_sdc=0.65, detect_sdc=0.29,
                         ff_coverage_due=0.66, detect_due=0.40,
                         detection_latency_cycles=15),
}


def dfc_descriptor() -> TechniqueDescriptor:
    """Data Flow Checking (with embedded control-flow checking)."""
    return TechniqueDescriptor(
        name="dfc",
        layer=Layer.ARCHITECTURE,
        tunable=False,
        detection_only=True,
        coverage=DFC_COVERAGE["InO"],
        costs_by_core={
            "InO": TechniqueCosts(area_pct=3.0, power_pct=1.0, exec_time_pct=6.2),
            "OoO": TechniqueCosts(area_pct=0.2, power_pct=0.1, exec_time_pct=7.1),
        },
        gamma_by_core={
            "InO": GammaContribution(flip_flop_increase=0.20,
                                     execution_time_increase=0.062),
            "OoO": GammaContribution(flip_flop_increase=0.02,
                                     execution_time_increase=0.071),
        },
        notes="Static dataflow/control-flow signature checking; compiler embeds "
              "signatures into unused delay slots (13% execution-time saving "
              "already included in the published overhead).",
    )


def dfc_coverage(core_family: str) -> CoverageModel:
    return DFC_COVERAGE.get(core_family, DFC_COVERAGE["InO"])


#: Monitor-core coverage corresponding to 19x SDC / 15x DUE improvement.
MONITOR_COVERAGE = CoverageModel(ff_coverage_sdc=0.985, detect_sdc=0.965,
                                 ff_coverage_due=0.985, detect_due=0.95,
                                 detection_latency_cycles=128)


def monitor_core_descriptor() -> TechniqueDescriptor:
    """Monitor (checker) core validating the main core's instructions.

    Only evaluated for the OoO-core: for in-order cores the monitor core is
    of the same order of size as the main core (Sec. 2.4) and is therefore
    excluded, exactly as in the paper.
    """
    return TechniqueDescriptor(
        name="monitor-core",
        layer=Layer.ARCHITECTURE,
        tunable=False,
        detection_only=True,
        coverage=MONITOR_COVERAGE,
        costs_by_core={
            "OoO": TechniqueCosts(area_pct=9.0, power_pct=16.3, exec_time_pct=0.0),
        },
        gamma_by_core={
            "OoO": GammaContribution(flip_flop_increase=0.38),
        },
        notes="Simpler checker core running at 2 GHz with IPC 0.7; confirmed "
              "not to stall the 600 MHz / IPC 1.3 main core (Table 9).",
    )


#: Main-core vs monitor-core operating points (Table 9).
MONITOR_CORE_IPC = {"OoO-core": (600.0, 1.3), "Monitor core": (2000.0, 0.7)}


def monitor_core_throughput_sufficient(main_clock_mhz: float, main_ipc: float,
                                       monitor_clock_mhz: float = 2000.0,
                                       monitor_ipc: float = 0.7) -> bool:
    """True when the monitor core keeps up with the main core (no stalls)."""
    return monitor_clock_mhz * monitor_ipc >= main_clock_mhz * main_ipc
