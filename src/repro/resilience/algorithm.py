"""Algorithm-level resilience: Algorithm-Based Fault Tolerance (ABFT).

ABFT protects specific algorithms (matrix operations, transforms) with
algebraic checksum invariants.  ABFT *correction* repairs a detected
corruption in place (no separate recovery mechanism needed); ABFT
*detection* only flags it, and its multi-million-cycle detection latency
rules out hardware recovery (Sec. 2.4).

Unlike the other high-level techniques, ABFT is implemented for real in this
reproduction: every PERFECT-class workload carries an ABFT-protected variant
(:mod:`repro.workloads.perfect`) whose checks execute on the simulated cores,
so execution-time impact is *measured* rather than modelled.  The coverage
descriptors below (used by the analytic improvement estimator) are calibrated
to the paper's flip-flop-injection results (Tables 3, 21, 22).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.microarch.core import BaseCore
from repro.resilience.base import (
    CoverageModel,
    GammaContribution,
    Layer,
    TechniqueCosts,
    TechniqueDescriptor,
)
from repro.workloads.base import AbftSupport, Workload

ABFT_CORRECTION_COVERAGE = CoverageModel(ff_coverage_sdc=0.85, detect_sdc=0.90,
                                         ff_coverage_due=0.35, detect_due=0.48,
                                         corrects=True,
                                         detection_latency_cycles=0)
ABFT_DETECTION_COVERAGE = CoverageModel(ff_coverage_sdc=0.80, detect_sdc=0.89,
                                        ff_coverage_due=0.45, detect_due=0.20,
                                        detection_latency_cycles=9_600_000)

#: Fraction of flip-flops whose errors ABFT can correct (Table 22).
ABFT_FF_COVERAGE = {
    "InO": {"union": 0.44, "intersection": 0.05},
    "OoO": {"union": 0.22, "intersection": 0.02},
}


def abft_correction_descriptor() -> TechniqueDescriptor:
    """ABFT correction (checksum-protected matrix-style kernels)."""
    return TechniqueDescriptor(
        name="abft-correction",
        layer=Layer.ALGORITHM,
        tunable=False,
        detection_only=False,
        coverage=ABFT_CORRECTION_COVERAGE,
        costs_by_core={
            "InO": TechniqueCosts(exec_time_pct=1.4),
            "OoO": TechniqueCosts(exec_time_pct=1.4),
        },
        gamma_by_core={
            "InO": GammaContribution(execution_time_increase=0.014),
            "OoO": GammaContribution(execution_time_increase=0.014),
        },
        requires_recovery_for_due=False,
        notes="In-place correction: no separate recovery mechanism required.",
    )


def abft_detection_descriptor() -> TechniqueDescriptor:
    """ABFT detection (checksum checks without in-place correction)."""
    return TechniqueDescriptor(
        name="abft-detection",
        layer=Layer.ALGORITHM,
        tunable=False,
        detection_only=True,
        coverage=ABFT_DETECTION_COVERAGE,
        costs_by_core={
            "InO": TechniqueCosts(exec_time_pct=24.0),
            "OoO": TechniqueCosts(exec_time_pct=24.0),
        },
        gamma_by_core={
            "InO": GammaContribution(execution_time_increase=0.24),
            "OoO": GammaContribution(execution_time_increase=0.24),
        },
        notes="Detection checks may require expensive computations (e.g. "
              "Parseval's theorem for transforms); long detection latency makes "
              "hardware recovery infeasible.",
    )


@dataclass(frozen=True)
class AbftMeasurement:
    """Measured execution-time impact of one ABFT-protected workload."""

    workload: str
    flavour: AbftSupport
    baseline_cycles: int
    abft_cycles: int

    @property
    def exec_time_impact_pct(self) -> float:
        if self.baseline_cycles == 0:
            return 0.0
        return 100.0 * (self.abft_cycles - self.baseline_cycles) / self.baseline_cycles


def measure_abft_impact(core: BaseCore, workload: Workload,
                        max_cycles: int = 2_000_000) -> AbftMeasurement:
    """Run baseline and ABFT variants of a workload and compare execution time.

    Raises:
        ValueError: if the workload has no ABFT variant.
    """
    if workload.abft is AbftSupport.NONE:
        raise ValueError(f"workload {workload.name!r} does not admit ABFT")
    baseline = core.run(workload.program(), max_cycles=max_cycles)
    protected = core.run(workload.abft_program(), max_cycles=max_cycles)
    return AbftMeasurement(workload=workload.name, flavour=workload.abft,
                           baseline_cycles=baseline.cycles,
                           abft_cycles=protected.cycles)


def abft_covered_flip_flops(registry, core_name: str, seed: int = 7,
                            scope: str = "union") -> set[int]:
    """Deterministic set of flip-flops whose errors ABFT correction covers.

    Used by combinations that place LEAP-ctrl cells on the ABFT-covered
    flip-flops (Sec. 3.2.1): the union across algorithms determines which
    flip-flops need dual-mode cells, the intersection how many can run in
    economy mode at any given time (Table 22).
    """
    import random

    family = "OoO" if ("ooo" in core_name.lower() or "out" in core_name.lower()) else "InO"
    fraction = ABFT_FF_COVERAGE[family][scope]
    rng = random.Random(seed)
    architectural = [index for structure in registry.structures if structure.architectural
                     for index in structure.bit_indices()]
    count = round(fraction * registry.total_flip_flops)
    count = min(count, len(architectural))
    return set(rng.sample(architectural, count))
