"""Software-level resilience techniques: assertions, CFCSS and EDDI.

The paper evaluates three software techniques on the in-order core (the LLVM
Alpha backend needed for the OoO-core no longer exists, footnote 7):

* **Software assertions** for general-purpose processors: likely-invariant
  checks on data variables [Sahoo 08] plus control-variable checks
  [Hari 12].
* **CFCSS**: control-flow checking by software signatures [Oh 02a].
* **EDDI**: error detection by duplicated instructions [Oh 02b], evaluated
  with store-readback [Lin 14] (and without, for Table 13).

Each technique is characterised by the flip-flop-injection-measured coverage
and execution-time impact the paper reports (Tables 3, 10, 12, 13, 16); the
descriptors below carry those parameters, and the data tables used by the
corresponding benchmark harnesses live here as module constants.
"""

from __future__ import annotations

from repro.resilience.base import (
    CoverageModel,
    GammaContribution,
    Layer,
    TechniqueCosts,
    TechniqueDescriptor,
)


# --------------------------------------------------------------------------- assertions
#: Data-variable vs control-variable assertion breakdown (Table 10).
ASSERTION_BREAKDOWN = {
    "data": {"exec_time_pct": 12.1, "sdc_improvement": 1.5, "due_improvement": 0.7,
             "false_positive_rate": 3e-5},
    "control": {"exec_time_pct": 3.5, "sdc_improvement": 1.1, "due_improvement": 0.9,
                "false_positive_rate": 0.0},
    "combined": {"exec_time_pct": 15.6, "sdc_improvement": 1.5, "due_improvement": 0.6,
                 "false_positive_rate": 3e-5},
}

ASSERTIONS_COVERAGE = CoverageModel(ff_coverage_sdc=0.55, detect_sdc=0.60,
                                    ff_coverage_due=0.40, detect_due=0.10,
                                    false_positive_rate=3e-5,
                                    detection_latency_cycles=9_300_000)


def assertions_descriptor() -> TechniqueDescriptor:
    """Software assertions (likely program invariants + control checks)."""
    return TechniqueDescriptor(
        name="assertions",
        layer=Layer.SOFTWARE,
        tunable=False,
        detection_only=True,
        coverage=ASSERTIONS_COVERAGE,
        costs_by_core={"InO": TechniqueCosts(exec_time_pct=15.6)},
        gamma_by_core={"InO": GammaContribution(execution_time_increase=0.156)},
        notes="Checks on data variables are derived from training inputs and can "
              "therefore raise false positives (0.003%).",
    )


# --------------------------------------------------------------------------- CFCSS
#: CFCSS error coverage (Table 12).
CFCSS_COVERAGE_TABLE = {
    "sdc": {"ff_coverage": 0.55, "detect_per_ff": 0.61, "improvement": 1.5},
    "due": {"ff_coverage": 0.66, "detect_per_ff": 0.14, "improvement": 0.5},
}

CFCSS_COVERAGE = CoverageModel(ff_coverage_sdc=0.55, detect_sdc=0.61,
                               ff_coverage_due=0.66, detect_due=0.14,
                               detection_latency_cycles=6_200_000)


def cfcss_descriptor() -> TechniqueDescriptor:
    """Control Flow Checking by Software Signatures."""
    return TechniqueDescriptor(
        name="cfcss",
        layer=Layer.SOFTWARE,
        tunable=False,
        detection_only=True,
        coverage=CFCSS_COVERAGE,
        costs_by_core={"InO": TechniqueCosts(exec_time_pct=40.6)},
        gamma_by_core={"InO": GammaContribution(execution_time_increase=0.406)},
        notes="Only control-flow signatures are checked, so data-only corruptions "
              "escape; crashes can abort execution before a check triggers.",
    )


# --------------------------------------------------------------------------- EDDI
#: Importance of store-readback for EDDI (Table 13).
EDDI_STORE_READBACK_TABLE = {
    "without": {"sdc_improvement": 3.3, "sdc_detected_pct": 86.1, "sdc_escaped": 49,
                "due_improvement": 0.4, "due_detected_pct": 19.0, "due_escaped": 3090},
    "with": {"sdc_improvement": 37.8, "sdc_detected_pct": 98.7, "sdc_escaped": 6,
             "due_improvement": 0.3, "due_detected_pct": 19.8, "due_escaped": 3006},
}

#: Published "selective" EDDI variants vs flip-flop-injected EDDI (Table 16).
SELECTIVE_EDDI_TABLE = [
    ("EDDI with store-readback (implemented)", "Flip-flop", 37.8, 2.10),
    ("Reliability-aware transforms (published)", "Arch. reg.", 1.8, 1.05),
    ("Shoestring (published)", "Arch. reg.", 5.1, 1.15),
    ("SWIFT (published)", "Arch. reg.", 13.7, 1.41),
    ("Error detectors (flip-flop evaluated)", "Flip-flop", 2.6, 3.90),
]

EDDI_COVERAGE = CoverageModel(ff_coverage_sdc=0.995, detect_sdc=0.992,
                              ff_coverage_due=0.60, detect_due=0.33,
                              detection_latency_cycles=287_000)
EDDI_NO_READBACK_COVERAGE = CoverageModel(ff_coverage_sdc=0.95, detect_sdc=0.906,
                                          ff_coverage_due=0.60, detect_due=0.32,
                                          detection_latency_cycles=287_000)


def eddi_descriptor(store_readback: bool = True) -> TechniqueDescriptor:
    """Error Detection by Duplicated Instructions (optionally with readback)."""
    return TechniqueDescriptor(
        name="eddi" if store_readback else "eddi-no-readback",
        layer=Layer.SOFTWARE,
        tunable=False,
        detection_only=True,
        coverage=EDDI_COVERAGE if store_readback else EDDI_NO_READBACK_COVERAGE,
        costs_by_core={"InO": TechniqueCosts(exec_time_pct=110.0)},
        gamma_by_core={"InO": GammaContribution(execution_time_increase=1.10)},
        notes="Store-readback verifies written values and detects an additional "
              "12% of SDCs, improving SDC improvement by an order of magnitude "
              "(Table 13).",
    )
