"""Protected-design configuration: the unit of cross-layer exploration.

A :class:`ProtectedDesign` describes one resilient variant of one core:

* which flip-flops are hardened (and with which cell),
* which flip-flops are covered by logic parity or EDS (and how they are
  grouped),
* which hardware recovery mechanism (if any) is attached,
* which architecture/software/algorithm techniques are layered on top.

It is consumed three ways:

* the fault injector queries :meth:`site_protection` to apply circuit/logic
  protection semantics during injected runs;
* the physical cost model turns it into area/power/energy/execution-time
  overheads (:meth:`cost`);
* the analytic improvement estimator predicts SDC/DUE improvements from a
  vulnerability map (:meth:`estimate_improvement`), including the γ
  susceptibility correction of Eq. 1.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.faultinjection.injector import SiteProtection
from repro.faultinjection.vulnerability import VulnerabilityMap
from repro.microarch.flipflop import FlipFlopRegistry
from repro.physical.cells import CELL_LIBRARY, CellType, RecoveryKind, recovery_cost
from repro.physical.costmodel import CostReport, DesignCostModel
from repro.resilience.base import GammaContribution, TechniqueDescriptor, core_family
from repro.resilience.circuit import HardeningPlan
from repro.resilience.logic_parity import ParityGroup

#: Additional flip-flops (as a fraction of the core) introduced by recovery
#: hardware, used for the γ correction (shadow register files, replay
#: buffers); calibrated against the γ values reported in Table 3.
RECOVERY_GAMMA = {
    "InO": {RecoveryKind.NONE: 0.0, RecoveryKind.FLUSH: 0.01,
            RecoveryKind.IR: 0.32, RecoveryKind.EIR: 0.40},
    "OoO": {RecoveryKind.NONE: 0.0, RecoveryKind.ROB: 0.005,
            RecoveryKind.IR: 0.05, RecoveryKind.EIR: 0.07},
}

#: Detection latency (cycles) beyond which hardware recovery cannot help.
HARDWARE_RECOVERY_LATENCY_LIMIT = 1024

#: Floor on the residual error rate, as a fraction of the baseline rate.
#: Detection-plus-recovery removes every injected error in simulation, which
#: would give an infinite improvement; the paper caps such configurations at
#: ~100,000x, which a 1e-5 floor reproduces.
RESIDUAL_FLOOR_FRACTION = 1e-5


@dataclass(frozen=True)
class ImprovementEstimate:
    """Estimated SDC/DUE improvements of a protected design (Eq. 1)."""

    sdc_improvement: float
    due_improvement: float
    gamma: float
    residual_sdc: float
    residual_due: float


@dataclass
class ProtectedDesign:
    """One resilient configuration of one core."""

    registry: FlipFlopRegistry
    hardening: HardeningPlan = field(default_factory=HardeningPlan)
    parity_groups: list[ParityGroup] = field(default_factory=list)
    eds_flip_flops: set[int] = field(default_factory=set)
    recovery: RecoveryKind = RecoveryKind.NONE
    high_level: list[TechniqueDescriptor] = field(default_factory=list)
    label: str = ""

    def __post_init__(self) -> None:
        self._family = core_family(self.registry.core_name)
        self._parity_membership: dict[int, ParityGroup] = {}
        for group in self.parity_groups:
            for member in group.members:
                self._parity_membership[member] = group
        self._unrecoverable_units = set(
            recovery_cost(self.registry.core_name, self.recovery).unrecoverable_units)
        self._recovery_latency = recovery_cost(self.registry.core_name,
                                               self.recovery).latency_cycles

    # ------------------------------------------------------------------ descriptive
    @property
    def core_name(self) -> str:
        return self.registry.core_name

    @property
    def family(self) -> str:
        return self._family

    def technique_names(self) -> list[str]:
        names = [technique.name for technique in self.high_level]
        if self.hardening.protected_count():
            cells = {cell.value for cell in self.hardening.cell_counts()}
            names.extend(sorted(cells))
        if self.parity_groups:
            names.append("parity")
        if self.eds_flip_flops:
            names.append("eds")
        if self.recovery is not RecoveryKind.NONE:
            names.append(self.recovery.value)
        return names

    # ------------------------------------------------------------------ injector interface
    def recovery_covers(self, flat_index: int) -> bool:
        """True when the attached recovery can recover an error in this flip-flop."""
        if self.recovery is RecoveryKind.NONE:
            return False
        unit = self.registry.site(flat_index).structure.unit
        return unit not in self._unrecoverable_units

    def site_protection(self, flat_index: int) -> SiteProtection:
        """Low-level protection attributes of one flip-flop (injector hook)."""
        cell = self.hardening.cell_for(flat_index)
        if cell not in (CellType.BASELINE, CellType.EDS):
            return SiteProtection(technique=cell.value,
                                  suppression=CELL_LIBRARY[cell].suppression)
        detects = flat_index in self._parity_membership or flat_index in self.eds_flip_flops
        if detects or cell is CellType.EDS:
            technique = "parity" if flat_index in self._parity_membership else "eds"
            return SiteProtection(technique=technique, detects=True,
                                  recoverable=self.recovery_covers(flat_index),
                                  recovery_latency=self._recovery_latency)
        return SiteProtection()

    # ------------------------------------------------------------------ gamma
    def gamma(self) -> float:
        """Susceptibility correction factor γ of the configuration (Sec. 2.1)."""
        factor = 1.0
        for technique in self.high_level:
            factor *= technique.gamma(self._family).factor
        recovery_ffs = RECOVERY_GAMMA[self._family].get(self.recovery, 0.0)
        factor *= 1.0 + recovery_ffs
        added_parity_ffs = 0
        for group in self.parity_groups:
            added_parity_ffs += 1
            if group.pipelined:
                added_parity_ffs += max(1, len(group.members) // 8)
        if added_parity_ffs:
            factor *= 1.0 + added_parity_ffs / max(1, self.registry.total_flip_flops)
        return factor

    def gamma_contribution(self) -> GammaContribution:
        """γ expressed as a single flip-flop-increase-equivalent contribution."""
        return GammaContribution(flip_flop_increase=self.gamma() - 1.0)

    # ------------------------------------------------------------------ cost
    def execution_time_impact_pct(self) -> float:
        """Error-free execution-time impact of the layered techniques."""
        impact = 1.0
        for technique in self.high_level:
            impact *= 1.0 + technique.costs(self._family).exec_time_pct / 100.0
        return (impact - 1.0) * 100.0

    def cost(self, cost_model: DesignCostModel) -> CostReport:
        """Area/power/energy/execution-time overheads over the baseline core.

        Keep the term order and conditionals in sync with
        ``ProtectionSchedule._cost_of_membership`` (repro/core/schedule.py),
        which mirrors this computation for the design-free cost curves; the
        bit-equality is property-tested in tests/test_exploration.py.
        """
        report = CostReport()
        cell_counts = self.hardening.cell_counts()
        if cell_counts:
            report = report.combined_with(cost_model.hardened_cells_cost(cell_counts))
        if self.parity_groups:
            report = report.combined_with(
                cost_model.parity_cost([group.as_plan() for group in self.parity_groups]))
        if self.eds_flip_flops:
            report = report.combined_with(cost_model.eds_cost(len(self.eds_flip_flops)))
        if self.recovery is not RecoveryKind.NONE:
            report = report.combined_with(cost_model.recovery_report(self.recovery))
        for technique in self.high_level:
            costs = technique.costs(self._family)
            report = report.combined_with(cost_model.fixed_overhead(
                costs.area_pct, costs.power_pct, costs.exec_time_pct))
        return report

    # ------------------------------------------------------------------ improvement
    def estimate_improvement(self, vulnerability: VulnerabilityMap,
                             benchmarks: list[str] | None = None) -> ImprovementEstimate:
        """Estimate SDC/DUE improvement over the unprotected design (Eq. 1)."""
        baseline_sdc = 0.0
        baseline_due = 0.0
        residual_sdc = 0.0
        residual_due = 0.0
        for flat_index in range(self.registry.total_flip_flops):
            p_sdc = vulnerability.sdc_probability(flat_index, benchmarks)
            p_due = vulnerability.due_probability(flat_index, benchmarks)
            baseline_sdc += p_sdc
            baseline_due += p_due
            sdc, due = self._residual_for_site(flat_index, p_sdc, p_due)
            residual_sdc += sdc
            residual_due += due
        gamma = self.gamma()
        floor_sdc = baseline_sdc * RESIDUAL_FLOOR_FRACTION
        floor_due = baseline_due * RESIDUAL_FLOOR_FRACTION
        sdc_improvement = (baseline_sdc / max(residual_sdc, floor_sdc) / gamma
                           if baseline_sdc > 0 else 1.0)
        due_improvement = (baseline_due / max(residual_due, floor_due) / gamma
                           if baseline_due > 0 else 1.0)
        return ImprovementEstimate(sdc_improvement=sdc_improvement,
                                   due_improvement=due_improvement,
                                   gamma=gamma,
                                   residual_sdc=residual_sdc,
                                   residual_due=residual_due)

    def _residual_for_site(self, flat_index: int, p_sdc: float,
                           p_due: float) -> tuple[float, float]:
        """Residual SDC/DUE contribution of one flip-flop under this design."""
        # 1. High-level techniques (algorithm -> software -> architecture order
        #    does not matter for the residual: coverages compose multiplicatively
        #    and converted errors accumulate into DUE).
        for technique in self.high_level:
            coverage = technique.coverage
            if coverage is None:
                continue
            detected_sdc = p_sdc * coverage.overall_sdc_detection
            detected_due = p_due * coverage.overall_due_detection
            recovered = (coverage.corrects
                         or (self.recovery is not RecoveryKind.NONE
                             and coverage.detection_latency_cycles
                             <= HARDWARE_RECOVERY_LATENCY_LIMIT))
            p_sdc -= detected_sdc
            if recovered:
                p_due -= detected_due
            else:
                # Detected SDCs become detected-but-uncorrected errors (ED);
                # detected DUEs remain DUEs.
                p_due += detected_sdc
        # 2. Circuit/logic protection of this specific flip-flop.
        cell = self.hardening.cell_for(flat_index)
        if cell not in (CellType.BASELINE, CellType.EDS):
            suppression = CELL_LIBRARY[cell].suppression
            p_sdc *= 1.0 - suppression
            p_due *= 1.0 - suppression
            return p_sdc, p_due
        detects = (flat_index in self._parity_membership
                   or flat_index in self.eds_flip_flops or cell is CellType.EDS)
        if detects:
            if self.recovery_covers(flat_index):
                return 0.0, 0.0
            # Detected but not recoverable: SDCs convert to DUEs.
            return 0.0, p_due + p_sdc
        return p_sdc, p_due
