"""Benchmark workloads for the CLEAR reproduction.

18 programs (11 SPEC-class + 7 PERFECT-class) with Python reference models
and, for the PERFECT kernels, ABFT-protected variants.  See
:mod:`repro.workloads.base` for the workload data model and
:mod:`repro.workloads.suite` for suite-level accessors.
"""

from repro.workloads.base import AbftSupport, Workload, WorkloadClass, lcg_sequence
from repro.workloads.suite import (
    abft_correction_suite,
    abft_detection_suite,
    full_suite,
    perfect_suite,
    spec_suite,
    suite_for_core,
    workload_by_name,
)

__all__ = [
    "AbftSupport",
    "Workload",
    "WorkloadClass",
    "lcg_sequence",
    "abft_correction_suite",
    "abft_detection_suite",
    "full_suite",
    "perfect_suite",
    "spec_suite",
    "suite_for_core",
    "workload_by_name",
]
