"""Benchmark workloads for the CLEAR reproduction.

The fixed paper suite -- 18 programs (11 SPEC-class + 7 PERFECT-class) with
Python reference models and, for the PERFECT kernels, ABFT-protected
variants -- plus a workload registry that also serves parameterized
*synthetic* scenario families (:mod:`repro.workloads.synthesis`): seeded,
constrained-random programs whose golden outputs are derived from the ISA
reference simulator.  See :mod:`repro.workloads.base` for the workload data
model and :mod:`repro.workloads.suite` for registry and suite accessors.
"""

from repro.workloads.base import AbftSupport, Workload, WorkloadClass, lcg_sequence
from repro.workloads.suite import (
    abft_correction_suite,
    abft_detection_suite,
    build_family,
    family_names,
    full_suite,
    perfect_suite,
    register_family,
    register_suite,
    spec_suite,
    suite_for_core,
    suite_names,
    suite_workloads,
    synthetic_suite,
    workload_by_name,
)

__all__ = [
    "AbftSupport",
    "Workload",
    "WorkloadClass",
    "lcg_sequence",
    "abft_correction_suite",
    "abft_detection_suite",
    "build_family",
    "family_names",
    "full_suite",
    "perfect_suite",
    "register_family",
    "register_suite",
    "spec_suite",
    "suite_for_core",
    "suite_names",
    "suite_workloads",
    "synthetic_suite",
    "workload_by_name",
]
