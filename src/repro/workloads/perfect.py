"""PERFECT-class workloads.

Seven signal/image-processing kernels standing in for the DARPA PERFECT
benchmarks the paper uses: 2d_convolution, debayer_filter, inner_product
(matrix product), fft (Walsh-Hadamard transform), histogram, outer_product
and sort.  The first three admit Algorithm-Based Fault Tolerance *correction*
and the remaining four ABFT *detection*, mirroring Sec. 3.2 of the paper.

Each ABFT variant augments the baseline algorithm with an algebraic checksum
invariant:

* ``2d_convolution``: ``sum(output) == sum(input) * sum(kernel)`` (circular
  convolution), corrected by recomputation on mismatch.
* ``debayer_filter``: ``sum(output) == sum(input[p] * w[p])`` where ``w`` is a
  geometry-only weight table, corrected by recomputation.
* ``inner_product``: Huang-Abraham checksum test
  ``sum(C) == sum_k colsum(A)[k] * rowsum(B)[k]``, corrected by
  recomputation.
* ``fft``: Parseval check ``sum(X**2) == N * sum(x**2)`` (detection only).
* ``histogram``: population invariant ``sum(bins) == N`` (detection only).
* ``outer_product``: ``sum(output) == sum(a) * sum(b)`` (detection only).
* ``sort``: permutation-sum preservation plus sortedness (detection only).

Detection failures raise the ``assert_eq`` trap, which the outcome classifier
records as a detected error (the paper's ED outcome).
"""

from __future__ import annotations

from repro.workloads.base import (
    AbftSupport,
    Workload,
    WorkloadClass,
    lcg_sequence,
    words_directive,
)

# The paper ran only three PERFECT benchmarks on the OoO RTL model.
_OOO_COMPATIBLE = {"2d_convolution", "debayer_filter", "inner_product"}


# --------------------------------------------------------------------------- 2d_convolution
_CONV_N = 6
_CONV_K = 3
_CONV_INPUT = [v % 16 for v in lcg_sequence(_CONV_N * _CONV_N, seed=211)]
_CONV_KERNEL = [v % 4 for v in lcg_sequence(_CONV_K * _CONV_K, seed=223)]


def _conv_outputs() -> list[int]:
    out = [0] * (_CONV_N * _CONV_N)
    for i in range(_CONV_N):
        for j in range(_CONV_N):
            acc = 0
            for di in range(_CONV_K):
                for dj in range(_CONV_K):
                    src = _CONV_INPUT[((i + di) % _CONV_N) * _CONV_N + (j + dj) % _CONV_N]
                    acc += src * _CONV_KERNEL[di * _CONV_K + dj]
            out[i * _CONV_N + j] = acc
    return out


def _conv_reference() -> list[int]:
    out = _conv_outputs()
    return [sum(out), out[0], out[-1]]


_CONV_BODY = f"""
# conv(): compute the circular 2-D convolution into `outbuf`.
# Returns a2 = sum of all output elements.  Clobbers t0-t6, s2-s6.
conv:
    li a2, 0
    li t0, 0                  # i
convi:
    li t6, {_CONV_N}
    bge t0, t6, convret
    li t1, 0                  # j
convj:
    li t6, {_CONV_N}
    bge t1, t6, convinext
    li s2, 0                  # acc
    li t2, 0                  # di
convdi:
    li t6, {_CONV_K}
    bge t2, t6, convstore
    li t3, 0                  # dj
convdj:
    li t6, {_CONV_K}
    bge t3, t6, convdinext
    add t4, t0, t2            # i + di
    li t6, {_CONV_N}
    blt t4, t6, rowok
    sub t4, t4, t6
rowok:
    add t5, t1, t3            # j + dj
    blt t5, t6, colok
    sub t5, t5, t6
colok:
    li t6, {_CONV_N}
    mul t4, t4, t6
    add t4, t4, t5
    slli t4, t4, 2
    add t4, a0, t4
    lw t4, 0(t4)              # input element
    li t6, {_CONV_K}
    mul s3, t2, t6
    add s3, s3, t3
    slli s3, s3, 2
    add s3, a1, s3
    lw s3, 0(s3)              # kernel element
    mul t4, t4, s3
    add s2, s2, t4
    addi t3, t3, 1
    j convdj
convdinext:
    addi t2, t2, 1
    j convdi
convstore:
    li t6, {_CONV_N}
    mul t4, t0, t6
    add t4, t4, t1
    slli t4, t4, 2
    add t4, a4, t4
    sw s2, 0(t4)
    add a2, a2, s2
    addi t1, t1, 1
    j convj
convinext:
    addi t0, t0, 1
    j convi
convret:
    ret
"""

_CONV_OUTPUT_TAIL = f"""
emit:
    out a2
    lw t0, 0(a4)
    out t0
    li t1, {(_CONV_N * _CONV_N - 1) * 4}
    add t1, a4, t1
    lw t1, 0(t1)
    out t1
    halt
"""

_CONV_SOURCE = f"""
    .data
input:
{words_directive(_CONV_INPUT)}
kernel:
{words_directive(_CONV_KERNEL)}
outbuf:
    .space {_CONV_N * _CONV_N}
    .text
main:
    la a0, input
    la a1, kernel
    la a4, outbuf
    call conv
    j emit
{_CONV_BODY}
{_CONV_OUTPUT_TAIL}
"""

_CONV_ABFT_SOURCE = f"""
    .data
input:
{words_directive(_CONV_INPUT)}
kernel:
{words_directive(_CONV_KERNEL)}
outbuf:
    .space {_CONV_N * _CONV_N}
    .text
main:
    la a0, input
    la a1, kernel
    la a4, outbuf
    # ABFT checksum: expected output sum = sum(input) * sum(kernel).
    li s8, 0
    li t0, 0
    li t1, {_CONV_N * _CONV_N}
sumin:
    bge t0, t1, sumk
    slli t2, t0, 2
    add t2, a0, t2
    lw t3, 0(t2)
    add s8, s8, t3
    addi t0, t0, 1
    j sumin
sumk:
    li s9, 0
    li t0, 0
    li t1, {_CONV_K * _CONV_K}
sumkl:
    bge t0, t1, runconv
    slli t2, t0, 2
    add t2, a1, t2
    lw t3, 0(t2)
    add s9, s9, t3
    addi t0, t0, 1
    j sumkl
runconv:
    mul s8, s8, s9            # expected checksum
    li s10, 0                 # retry counter
attempt:
    call conv
    beq a2, s8, emit          # checksum matches: accept
    li t0, 1
    bge s10, t0, emit         # already retried once: give up, emit anyway
    addi s10, s10, 1
    j attempt                 # ABFT correction: recompute the kernel
{_CONV_BODY}
{_CONV_OUTPUT_TAIL}
"""


# --------------------------------------------------------------------------- debayer_filter
_DEBAYER_N = 6
_DEBAYER_INPUT = [v % 64 for v in lcg_sequence(_DEBAYER_N * _DEBAYER_N, seed=227)]


def _debayer_weights() -> list[int]:
    """Geometry-only weight of each input pixel in the interior-output sum."""
    weights = [0] * (_DEBAYER_N * _DEBAYER_N)
    for i in range(1, _DEBAYER_N - 1):
        for j in range(1, _DEBAYER_N - 1):
            for di, dj in ((-1, 0), (1, 0), (0, -1), (0, 1)):
                weights[(i + di) * _DEBAYER_N + (j + dj)] += 1
    return weights


def _debayer_outputs() -> list[int]:
    out = []
    for i in range(1, _DEBAYER_N - 1):
        for j in range(1, _DEBAYER_N - 1):
            acc = (_DEBAYER_INPUT[(i - 1) * _DEBAYER_N + j]
                   + _DEBAYER_INPUT[(i + 1) * _DEBAYER_N + j]
                   + _DEBAYER_INPUT[i * _DEBAYER_N + j - 1]
                   + _DEBAYER_INPUT[i * _DEBAYER_N + j + 1])
            out.append(acc)
    return out


def _debayer_reference() -> list[int]:
    out = _debayer_outputs()
    return [sum(out), out[0], out[-1]]


_DEBAYER_BODY = f"""
# debayer(): 4-neighbour interpolation of the interior pixels into `outbuf`.
# Returns a2 = sum of interpolated values.  Clobbers t0-t6, s2-s3.
debayer:
    li a2, 0
    li s3, 0                   # output index
    li t0, 1                   # i
dbi:
    li t6, {_DEBAYER_N - 1}
    bge t0, t6, dbret
    li t1, 1                   # j
dbj:
    li t6, {_DEBAYER_N - 1}
    bge t1, t6, dbinext
    li t6, {_DEBAYER_N}
    addi t2, t0, -1
    mul t2, t2, t6
    add t2, t2, t1
    slli t2, t2, 2
    add t2, a0, t2
    lw s2, 0(t2)               # in[i-1][j]
    addi t2, t0, 1
    mul t2, t2, t6
    add t2, t2, t1
    slli t2, t2, 2
    add t2, a0, t2
    lw t3, 0(t2)               # in[i+1][j]
    add s2, s2, t3
    mul t2, t0, t6
    add t2, t2, t1
    addi t2, t2, -1
    slli t2, t2, 2
    add t2, a0, t2
    lw t3, 0(t2)               # in[i][j-1]
    add s2, s2, t3
    mul t2, t0, t6
    add t2, t2, t1
    addi t2, t2, 1
    slli t2, t2, 2
    add t2, a0, t2
    lw t3, 0(t2)               # in[i][j+1]
    add s2, s2, t3
    slli t2, s3, 2
    add t2, a4, t2
    sw s2, 0(t2)
    add a2, a2, s2
    addi s3, s3, 1
    addi t1, t1, 1
    j dbj
dbinext:
    addi t0, t0, 1
    j dbi
dbret:
    ret
"""

_DEBAYER_TAIL = f"""
emit:
    out a2
    lw t0, 0(a4)
    out t0
    li t1, {((_DEBAYER_N - 2) * (_DEBAYER_N - 2) - 1) * 4}
    add t1, a4, t1
    lw t1, 0(t1)
    out t1
    halt
"""

_DEBAYER_SOURCE = f"""
    .data
input:
{words_directive(_DEBAYER_INPUT)}
outbuf:
    .space {(_DEBAYER_N - 2) * (_DEBAYER_N - 2)}
    .text
main:
    la a0, input
    la a4, outbuf
    call debayer
    j emit
{_DEBAYER_BODY}
{_DEBAYER_TAIL}
"""

_DEBAYER_ABFT_SOURCE = f"""
    .data
input:
{words_directive(_DEBAYER_INPUT)}
weights:
{words_directive(_debayer_weights())}
outbuf:
    .space {(_DEBAYER_N - 2) * (_DEBAYER_N - 2)}
    .text
main:
    la a0, input
    la a1, weights
    la a4, outbuf
    # ABFT checksum: expected output sum = sum(input[p] * weight[p]).
    li s8, 0
    li t0, 0
    li t1, {_DEBAYER_N * _DEBAYER_N}
wsum:
    bge t0, t1, rundb
    slli t2, t0, 2
    add t3, a0, t2
    lw t3, 0(t3)
    add t4, a1, t2
    lw t4, 0(t4)
    mul t3, t3, t4
    add s8, s8, t3
    addi t0, t0, 1
    j wsum
rundb:
    li s10, 0                 # retry counter
attempt:
    call debayer
    beq a2, s8, emit
    li t0, 1
    bge s10, t0, emit
    addi s10, s10, 1
    j attempt                 # ABFT correction: recompute
{_DEBAYER_BODY}
{_DEBAYER_TAIL}
"""


# --------------------------------------------------------------------------- inner_product (matrix product)
_MM_N = 4
_MM_A = [v % 10 for v in lcg_sequence(_MM_N * _MM_N, seed=229)]
_MM_B = [v % 10 for v in lcg_sequence(_MM_N * _MM_N, seed=233)]


def _mm_outputs() -> list[int]:
    out = [0] * (_MM_N * _MM_N)
    for i in range(_MM_N):
        for j in range(_MM_N):
            out[i * _MM_N + j] = sum(_MM_A[i * _MM_N + k] * _MM_B[k * _MM_N + j]
                                     for k in range(_MM_N))
    return out


def _mm_reference() -> list[int]:
    out = _mm_outputs()
    return [sum(out), out[0], out[-1]]


_MM_BODY = f"""
# matmul(): C = A * B ({_MM_N}x{_MM_N}).  Returns a2 = sum(C).
# Clobbers t0-t6, s2-s4.
matmul:
    li a2, 0
    li t0, 0                  # i
mmi:
    li t6, {_MM_N}
    bge t0, t6, mmret
    li t1, 0                  # j
mmj:
    bge t1, t6, mminext
    li s2, 0                  # acc
    li t2, 0                  # k
mmk:
    bge t2, t6, mmstore
    mul t3, t0, t6
    add t3, t3, t2
    slli t3, t3, 2
    add t3, a0, t3
    lw t3, 0(t3)              # A[i][k]
    mul t4, t2, t6
    add t4, t4, t1
    slli t4, t4, 2
    add t4, a1, t4
    lw t4, 0(t4)              # B[k][j]
    mul t3, t3, t4
    add s2, s2, t3
    addi t2, t2, 1
    j mmk
mmstore:
    mul t3, t0, t6
    add t3, t3, t1
    slli t3, t3, 2
    add t3, a4, t3
    sw s2, 0(t3)
    add a2, a2, s2
    addi t1, t1, 1
    j mmj
mminext:
    addi t0, t0, 1
    j mmi
mmret:
    ret
"""

_MM_TAIL = f"""
emit:
    out a2
    lw t0, 0(a4)
    out t0
    li t1, {(_MM_N * _MM_N - 1) * 4}
    add t1, a4, t1
    lw t1, 0(t1)
    out t1
    halt
"""

_MM_SOURCE = f"""
    .data
mata:
{words_directive(_MM_A)}
matb:
{words_directive(_MM_B)}
matc:
    .space {_MM_N * _MM_N}
    .text
main:
    la a0, mata
    la a1, matb
    la a4, matc
    call matmul
    j emit
{_MM_BODY}
{_MM_TAIL}
"""

_MM_ABFT_SOURCE = f"""
    .data
mata:
{words_directive(_MM_A)}
matb:
{words_directive(_MM_B)}
matc:
    .space {_MM_N * _MM_N}
    .text
main:
    la a0, mata
    la a1, matb
    la a4, matc
    # Huang-Abraham checksum: sum(C) == sum_k colsum(A)[k] * rowsum(B)[k].
    li s8, 0
    li t2, 0                  # k
hacol:
    li t6, {_MM_N}
    bge t2, t6, runmm
    li s2, 0                  # colsum(A)[k]
    li s3, 0                  # rowsum(B)[k]
    li t0, 0
hain:
    bge t0, t6, hadot
    mul t3, t0, t6
    add t3, t3, t2
    slli t3, t3, 2
    add t3, a0, t3
    lw t3, 0(t3)              # A[i][k]
    add s2, s2, t3
    mul t4, t2, t6
    add t4, t4, t0
    slli t4, t4, 2
    add t4, a1, t4
    lw t4, 0(t4)              # B[k][j]
    add s3, s3, t4
    addi t0, t0, 1
    j hain
hadot:
    mul s2, s2, s3
    add s8, s8, s2
    addi t2, t2, 1
    j hacol
runmm:
    li s10, 0                 # retry counter
attempt:
    call matmul
    beq a2, s8, emit
    li t0, 1
    bge s10, t0, emit
    addi s10, s10, 1
    j attempt                 # ABFT correction: recompute
{_MM_BODY}
{_MM_TAIL}
"""


# --------------------------------------------------------------------------- fft (Walsh-Hadamard transform)
_FFT_N = 8
_FFT_INPUT = [v % 32 for v in lcg_sequence(_FFT_N, seed=239)]


def _fft_outputs() -> list[int]:
    data = list(_FFT_INPUT)
    size = 1
    while size < _FFT_N:
        for start in range(0, _FFT_N, size * 2):
            for offset in range(size):
                a = data[start + offset]
                b = data[start + offset + size]
                data[start + offset] = a + b
                data[start + offset + size] = a - b
        size *= 2
    return data


def _fft_reference() -> list[int]:
    spectrum = _fft_outputs()
    energy = sum(value * value for value in spectrum)
    return [spectrum[0] & 0xFFFFFFFF, energy]


_FFT_COMMON = f"""
# wht(): in-place Walsh-Hadamard transform of `buf` ({_FFT_N} points).
wht:
    li s2, 1                   # size
whtsz:
    li t6, {_FFT_N}
    bge s2, t6, whtret
    li t0, 0                   # start
whtst:
    bge t0, t6, whtnext
    li t1, 0                   # offset
whtof:
    bge t1, s2, whtstnext
    add t2, t0, t1
    slli t3, t2, 2
    add t3, a0, t3
    lw t4, 0(t3)               # a
    add t2, t2, s2
    slli t2, t2, 2
    add t2, a0, t2
    lw t5, 0(t2)               # b
    add s3, t4, t5
    sw s3, 0(t3)
    sub s3, t4, t5
    sw s3, 0(t2)
    addi t1, t1, 1
    j whtof
whtstnext:
    slli t2, s2, 1
    add t0, t0, t2
    j whtst
whtnext:
    slli s2, s2, 1
    j whtsz
whtret:
    ret

# energy(): a2 = sum of squares of `buf`.
energy:
    li a2, 0
    li t0, 0
    li t6, {_FFT_N}
enloop:
    bge t0, t6, enret
    slli t1, t0, 2
    add t1, a0, t1
    lw t2, 0(t1)
    mul t2, t2, t2
    add a2, a2, t2
    addi t0, t0, 1
    j enloop
enret:
    ret
"""

_FFT_SOURCE = f"""
    .data
buf:
{words_directive(_FFT_INPUT)}
    .text
main:
    la a0, buf
    call wht
    lw t0, 0(a0)
    out t0
    call energy
    out a2
    halt
{_FFT_COMMON}
"""

_FFT_ABFT_SOURCE = f"""
    .data
buf:
{words_directive(_FFT_INPUT)}
    .text
main:
    la a0, buf
    call energy
    mv s8, a2                  # input energy
    li t6, {_FFT_N}
    mul s8, s8, t6             # Parseval: expected spectrum energy
    call wht
    lw s9, 0(a0)
    call energy
    assert_eq a2, s8           # ABFT detection: Parseval check
    out s9
    out a2
    halt
{_FFT_COMMON}
"""


# --------------------------------------------------------------------------- histogram
_HIST_N = 64
_HIST_BINS = 8
_HIST_DATA = [v % _HIST_BINS for v in lcg_sequence(_HIST_N, seed=241)]


def _hist_reference() -> list[int]:
    bins = [0] * _HIST_BINS
    for value in _HIST_DATA:
        bins[value] += 1
    checksum = sum(bins[i] * (i + 1) for i in range(_HIST_BINS))
    return [checksum, max(bins)]


_HIST_BODY = f"""
# buildhist(): fill `bins` from `data`; a2 = sum of bin counts.
buildhist:
    li t0, 0
    li t6, {_HIST_BINS}
clearloop:
    bge t0, t6, fill
    slli t1, t0, 2
    add t1, a1, t1
    sw zero, 0(t1)
    addi t0, t0, 1
    j clearloop
fill:
    li t0, 0
    li t6, {_HIST_N}
    li a2, 0
fillloop:
    bge t0, t6, bhret
    slli t1, t0, 2
    add t1, a0, t1
    lw t2, 0(t1)
    slli t2, t2, 2
    add t2, a1, t2
    lw t3, 0(t2)
    addi t3, t3, 1
    sw t3, 0(t2)
    addi a2, a2, 1
    addi t0, t0, 1
    j fillloop
bhret:
    ret
"""

_HIST_TAIL = f"""
emit:
    li t0, 0
    li t6, {_HIST_BINS}
    li s0, 0                 # checksum
    li s1, 0                 # max
statloop:
    bge t0, t6, report
    slli t1, t0, 2
    add t1, a1, t1
    lw t2, 0(t1)
    addi t3, t0, 1
    mul t3, t3, t2
    add s0, s0, t3
    ble t2, s1, statnext
    mv s1, t2
statnext:
    addi t0, t0, 1
    j statloop
report:
    out s0
    out s1
    halt
"""

_HIST_SOURCE = f"""
    .data
data:
{words_directive(_HIST_DATA)}
bins:
    .space {_HIST_BINS}
    .text
main:
    la a0, data
    la a1, bins
    call buildhist
    j emit
{_HIST_BODY}
{_HIST_TAIL}
"""

_HIST_ABFT_SOURCE = f"""
    .data
data:
{words_directive(_HIST_DATA)}
bins:
    .space {_HIST_BINS}
    .text
main:
    la a0, data
    la a1, bins
    call buildhist
    # ABFT detection: total bin population must equal the element count.
    li t0, 0
    li t6, {_HIST_BINS}
    li s2, 0
chkloop:
    bge t0, t6, check
    slli t1, t0, 2
    add t1, a1, t1
    lw t2, 0(t1)
    add s2, s2, t2
    addi t0, t0, 1
    j chkloop
check:
    li t3, {_HIST_N}
    assert_eq s2, t3
    j emit
{_HIST_BODY}
{_HIST_TAIL}
"""


# --------------------------------------------------------------------------- outer_product
_OUTER_N = 6
_OUTER_A = [v % 20 for v in lcg_sequence(_OUTER_N, seed=251)]
_OUTER_B = [v % 20 for v in lcg_sequence(_OUTER_N, seed=257)]


def _outer_reference() -> list[int]:
    out = [[a * b for b in _OUTER_B] for a in _OUTER_A]
    total = sum(sum(row) for row in out)
    return [total, out[0][0], out[-1][-1]]


_OUTER_BODY = f"""
# outer(): out[i][j] = a[i] * b[j]; a2 = sum of all products.
outer:
    li a2, 0
    li t0, 0
    li t6, {_OUTER_N}
oi:
    bge t0, t6, oret
    slli t1, t0, 2
    add t1, a0, t1
    lw t2, 0(t1)              # a[i]
    li t3, 0
oj:
    bge t3, t6, oinext
    slli t4, t3, 2
    add t4, a1, t4
    lw t5, 0(t4)              # b[j]
    mul t5, t5, t2
    mul s2, t0, t6
    add s2, s2, t3
    slli s2, s2, 2
    add s2, a4, s2
    sw t5, 0(s2)
    add a2, a2, t5
    addi t3, t3, 1
    j oj
oinext:
    addi t0, t0, 1
    j oi
oret:
    ret
"""

_OUTER_TAIL = f"""
emit:
    out a2
    lw t0, 0(a4)
    out t0
    li t1, {(_OUTER_N * _OUTER_N - 1) * 4}
    add t1, a4, t1
    lw t1, 0(t1)
    out t1
    halt
"""

_OUTER_SOURCE = f"""
    .data
veca:
{words_directive(_OUTER_A)}
vecb:
{words_directive(_OUTER_B)}
outbuf:
    .space {_OUTER_N * _OUTER_N}
    .text
main:
    la a0, veca
    la a1, vecb
    la a4, outbuf
    call outer
    j emit
{_OUTER_BODY}
{_OUTER_TAIL}
"""

_OUTER_ABFT_SOURCE = f"""
    .data
veca:
{words_directive(_OUTER_A)}
vecb:
{words_directive(_OUTER_B)}
outbuf:
    .space {_OUTER_N * _OUTER_N}
    .text
main:
    la a0, veca
    la a1, vecb
    la a4, outbuf
    # ABFT detection: sum(out) must equal sum(a) * sum(b).
    li s8, 0
    li s9, 0
    li t0, 0
    li t6, {_OUTER_N}
sumab:
    bge t0, t6, runouter
    slli t1, t0, 2
    add t2, a0, t1
    lw t2, 0(t2)
    add s8, s8, t2
    add t3, a1, t1
    lw t3, 0(t3)
    add s9, s9, t3
    addi t0, t0, 1
    j sumab
runouter:
    mul s8, s8, s9
    call outer
    assert_eq a2, s8
    j emit
{_OUTER_BODY}
{_OUTER_TAIL}
"""


# --------------------------------------------------------------------------- sort
_SORT_N = 24
_SORT_DATA = [v % 200 for v in lcg_sequence(_SORT_N, seed=263)]


def _sort_reference() -> list[int]:
    data = sorted(_SORT_DATA)
    checksum = sum(data[i] * (i + 1) for i in range(_SORT_N))
    return [data[0], data[-1], checksum]


_SORT_BODY = f"""
# isort(): in-place insertion sort of `arr` ({_SORT_N} elements).
isort:
    li t0, 1                   # i
isorti:
    li t6, {_SORT_N}
    bge t0, t6, isret
    slli t1, t0, 2
    add t1, a0, t1
    lw t2, 0(t1)               # key
    mv t3, t0                  # j
isortj:
    beq t3, zero, place
    addi t4, t3, -1
    slli t5, t4, 2
    add t5, a0, t5
    lw s2, 0(t5)               # arr[j-1]
    ble s2, t2, place
    slli s3, t3, 2
    add s3, a0, s3
    sw s2, 0(s3)               # arr[j] = arr[j-1]
    mv t3, t4
    j isortj
place:
    slli s3, t3, 2
    add s3, a0, s3
    sw t2, 0(s3)
    addi t0, t0, 1
    j isorti
isret:
    ret

# checksum(): a2 = sum(arr[i] * (i+1)); a3 = sum(arr[i]).
checksum:
    li a2, 0
    li a3, 0
    li t0, 0
    li t6, {_SORT_N}
csloop:
    bge t0, t6, csret
    slli t1, t0, 2
    add t1, a0, t1
    lw t2, 0(t1)
    add a3, a3, t2
    addi t3, t0, 1
    mul t3, t3, t2
    add a2, a2, t3
    addi t0, t0, 1
    j csloop
csret:
    ret
"""

_SORT_TAIL = f"""
emit:
    lw t0, 0(a0)
    out t0
    li t1, {(_SORT_N - 1) * 4}
    add t1, a0, t1
    lw t1, 0(t1)
    out t1
    call checksum
    out a2
    halt
"""

_SORT_SOURCE = f"""
    .data
arr:
{words_directive(_SORT_DATA)}
    .text
main:
    la a0, arr
    call isort
    j emit
{_SORT_BODY}
{_SORT_TAIL}
"""

_SORT_ABFT_SOURCE = f"""
    .data
arr:
{words_directive(_SORT_DATA)}
    .text
main:
    la a0, arr
    call checksum
    mv s8, a3                  # element sum before sorting
    call isort
    call checksum
    assert_eq a3, s8           # ABFT detection: permutation preserves the sum
    # ABFT detection: result must be non-decreasing.
    li t0, 1
    li t6, {_SORT_N}
sortedchk:
    bge t0, t6, emit
    slli t1, t0, 2
    add t1, a0, t1
    lw t2, 0(t1)
    addi t3, t0, -1
    slli t3, t3, 2
    add t3, a0, t3
    lw t4, 0(t3)
    assert_range t4, t2        # traps unless arr[i-1] <= arr[i]
    addi t0, t0, 1
    j sortedchk
{_SORT_BODY}
{_SORT_TAIL}
"""


def build_perfect_workloads() -> list[Workload]:
    """Construct the seven PERFECT-class workloads."""
    definitions = [
        ("2d_convolution", _CONV_SOURCE, _conv_reference, AbftSupport.CORRECTION,
         _CONV_ABFT_SOURCE, "circular 2-D convolution of an image tile"),
        ("debayer_filter", _DEBAYER_SOURCE, _debayer_reference, AbftSupport.CORRECTION,
         _DEBAYER_ABFT_SOURCE, "4-neighbour demosaicing interpolation"),
        ("inner_product", _MM_SOURCE, _mm_reference, AbftSupport.CORRECTION,
         _MM_ABFT_SOURCE, "dense matrix product with Huang-Abraham checksums"),
        ("fft", _FFT_SOURCE, _fft_reference, AbftSupport.DETECTION,
         _FFT_ABFT_SOURCE, "Walsh-Hadamard transform with Parseval check"),
        ("histogram", _HIST_SOURCE, _hist_reference, AbftSupport.DETECTION,
         _HIST_ABFT_SOURCE, "histogram binning with population check"),
        ("outer_product", _OUTER_SOURCE, _outer_reference, AbftSupport.DETECTION,
         _OUTER_ABFT_SOURCE, "vector outer product with product-sum check"),
        ("sort", _SORT_SOURCE, _sort_reference, AbftSupport.DETECTION,
         _SORT_ABFT_SOURCE, "insertion sort with permutation and order checks"),
    ]
    workloads = []
    for name, source, reference, abft, abft_source, description in definitions:
        workloads.append(Workload(
            name=name,
            suite=WorkloadClass.PERFECT,
            source=source,
            reference=reference,
            abft=abft,
            abft_source=abft_source,
            ooo_compatible=name in _OOO_COMPATIBLE,
            description=description,
        ))
    return workloads
