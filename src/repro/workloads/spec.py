"""SPEC-class workloads.

Eleven control/integer-heavy programs standing in for the SPECINT2000
benchmarks the paper runs (bzip2, crafty, gzip, mcf, parser, gcc, gap,
vortex, twolf, perlbmk, vpr).  Each program is a compact kernel that captures
the *kind* of computation of its namesake (compression, search/evaluation,
string matching, graph optimisation, parsing, expression evaluation,
permutation groups, database hashing, placement, string hashing, routing)
and emits a short output stream of checksums that is sensitive to data
corruption anywhere in the computation.

Every workload has a pure-Python reference model producing the same output
stream, which is used both as the golden output for SDC classification and
as a correctness oracle for the core models.
"""

from __future__ import annotations

from repro.workloads.base import Workload, WorkloadClass, lcg_sequence, words_directive

# Three of the paper's eleven SPEC benchmarks could not run on the OoO RTL
# model (footnote 3).  We reproduce the same split so per-core benchmark
# counts match (11 SPEC on InO, 8 on OoO).
_NOT_ON_OOO = {"gap", "twolf", "perlbmk"}


# --------------------------------------------------------------------------- bzip2
_BZIP2_N = 48
_BZIP2_DATA = [v % 4 for v in lcg_sequence(_BZIP2_N, seed=11)]


def _bzip2_reference() -> list[int]:
    runs = 0
    checksum = 0
    i = 0
    while i < _BZIP2_N:
        value = _BZIP2_DATA[i]
        runlen = 1
        while i + runlen < _BZIP2_N and _BZIP2_DATA[i + runlen] == value:
            runlen += 1
        runs += 1
        checksum += value * runlen + runs
        i += runlen
    return [runs, checksum]


_BZIP2_SOURCE = f"""
    .data
vals:
{words_directive(_BZIP2_DATA)}
    .text
main:
    la a0, vals
    li t0, 0          # i
    li t1, {_BZIP2_N} # N
    li s0, 0          # runs
    li s1, 0          # checksum
outer:
    bge t0, t1, done
    slli t2, t0, 2
    add t2, a0, t2
    lw t3, 0(t2)      # v = vals[i]
    li t4, 1          # runlen
inner:
    add t5, t0, t4
    bge t5, t1, endrun
    slli t6, t5, 2
    add t6, a0, t6
    lw t6, 0(t6)
    bne t6, t3, endrun
    addi t4, t4, 1
    j inner
endrun:
    addi s0, s0, 1
    mul t5, t3, t4
    add s1, s1, t5
    add s1, s1, s0
    add t0, t0, t4
    j outer
done:
    out s0
    out s1
    halt
"""


# --------------------------------------------------------------------------- crafty
_CRAFTY_N = 32
_CRAFTY_BOARD = [v % 6 for v in lcg_sequence(_CRAFTY_N, seed=23)]
_CRAFTY_WEIGHTS = [0, 1, 3, 3, 5, 9]


def _crafty_reference() -> list[int]:
    material = 0
    mobility = 0
    for i, piece in enumerate(_CRAFTY_BOARD):
        material += _CRAFTY_WEIGHTS[piece]
        mobility += (i ^ piece) & 7
    score = material * 8 + mobility
    return [material, mobility, score]


_CRAFTY_SOURCE = f"""
    .data
board:
{words_directive(_CRAFTY_BOARD)}
weights:
{words_directive(_CRAFTY_WEIGHTS)}
    .text
main:
    la a0, board
    la a1, weights
    li t0, 0           # i
    li t1, {_CRAFTY_N}
    li s0, 0           # material
    li s1, 0           # mobility
loop:
    bge t0, t1, done
    slli t2, t0, 2
    add t2, a0, t2
    lw t3, 0(t2)       # piece
    slli t4, t3, 2
    add t4, a1, t4
    lw t4, 0(t4)       # weight
    add s0, s0, t4
    xor t5, t0, t3
    andi t5, t5, 7
    add s1, s1, t5
    addi t0, t0, 1
    j loop
done:
    out s0
    out s1
    slli t6, s0, 3
    add t6, t6, s1
    out t6
    halt
"""


# --------------------------------------------------------------------------- gzip
_GZIP_N = 32
_GZIP_WINDOW = 8
_GZIP_TEXT = [v % 8 for v in lcg_sequence(_GZIP_N, seed=37)]


def _gzip_reference() -> list[int]:
    matches = 0
    total = 0
    for i in range(1, _GZIP_N):
        best = 0
        jstart = i - _GZIP_WINDOW if i >= _GZIP_WINDOW else 0
        for j in range(jstart, i):
            length = 0
            while (i + length < _GZIP_N and length < 8
                   and _GZIP_TEXT[j + length] == _GZIP_TEXT[i + length]):
                length += 1
            if length > best:
                best = length
        if best >= 3:
            matches += 1
            total += best
    return [matches, total]


_GZIP_SOURCE = f"""
    .data
text:
{words_directive(_GZIP_TEXT)}
    .text
main:
    la a0, text
    li s0, 0            # matches
    li s1, 0            # total
    li t0, 1            # i
    li t1, {_GZIP_N}    # N
iloop:
    bge t0, t1, done
    li s2, 0            # best
    addi t2, t0, -{_GZIP_WINDOW}   # jstart = i - window
    bge t2, zero, jready
    li t2, 0
jready:
jloop:
    bge t2, t0, iend
    li t3, 0            # len
lenloop:
    add t4, t0, t3
    bge t4, t1, lendone
    li t5, 8
    bge t3, t5, lendone
    add t5, t2, t3
    slli t5, t5, 2
    add t5, a0, t5
    lw t5, 0(t5)        # text[j+len]
    slli t6, t4, 2
    add t6, a0, t6
    lw t6, 0(t6)        # text[i+len]
    bne t5, t6, lendone
    addi t3, t3, 1
    j lenloop
lendone:
    ble t3, s2, nextj
    mv s2, t3
nextj:
    addi t2, t2, 1
    j jloop
iend:
    li t4, 3
    blt s2, t4, nexti
    addi s0, s0, 1
    add s1, s1, s2
nexti:
    addi t0, t0, 1
    j iloop
done:
    out s0
    out s1
    halt
"""


# --------------------------------------------------------------------------- mcf
_MCF_NODES = 8
_MCF_WEIGHTS = [v % 9 + 1 for v in lcg_sequence(16, seed=41)]
_MCF_EDGES = ([(i, (i + 1) % _MCF_NODES, _MCF_WEIGHTS[i]) for i in range(_MCF_NODES)]
              + [(i, (i + 3) % _MCF_NODES, _MCF_WEIGHTS[8 + i]) for i in range(_MCF_NODES)])
_MCF_INFINITY = 9999


def _mcf_reference() -> list[int]:
    dist = [_MCF_INFINITY] * _MCF_NODES
    dist[0] = 0
    for _ in range(_MCF_NODES):
        for u, v, w in _MCF_EDGES:
            if dist[u] + w < dist[v]:
                dist[v] = dist[u] + w
    return [sum(dist), dist[_MCF_NODES - 1]]


_MCF_EDGE_WORDS = [value for edge in _MCF_EDGES for value in edge]
_MCF_SOURCE = f"""
    .data
edges:
{words_directive(_MCF_EDGE_WORDS)}
dist:
{words_directive([0] + [_MCF_INFINITY] * (_MCF_NODES - 1))}
    .text
main:
    la a0, edges
    la a1, dist
    li s0, 0                 # iteration
    li s1, {_MCF_NODES}      # node count
iterloop:
    bge s0, s1, sumphase
    li t0, 0                 # edge index
    li t1, {len(_MCF_EDGES)}
edgeloop:
    bge t0, t1, iternext
    li t2, 12                # 3 words per edge: offset = e * 12
    mul t2, t2, t0
    add t2, a0, t2
    lw t3, 0(t2)             # u
    lw t4, 4(t2)             # v
    lw t5, 8(t2)             # w
    slli t3, t3, 2
    add t3, a1, t3
    lw t3, 0(t3)             # dist[u]
    add t3, t3, t5           # dist[u] + w
    slli t4, t4, 2
    add t4, a1, t4           # &dist[v]
    lw t6, 0(t4)             # dist[v]
    bge t3, t6, norelax
    sw t3, 0(t4)
norelax:
    addi t0, t0, 1
    j edgeloop
iternext:
    addi s0, s0, 1
    j iterloop
sumphase:
    li t0, 0
    li s2, 0                 # sum
loop2:
    bge t0, s1, done
    slli t2, t0, 2
    add t2, a1, t2
    lw t3, 0(t2)
    add s2, s2, t3
    addi t0, t0, 1
    j loop2
done:
    out s2
    slli t2, s1, 2
    addi t2, t2, -4
    add t2, a1, t2
    lw t3, 0(t2)
    out t3
    halt
"""


# --------------------------------------------------------------------------- parser
_PARSER_N = 40
_PARSER_TOKENS = [v % 5 for v in lcg_sequence(_PARSER_N, seed=53)]


def _parser_reference() -> list[int]:
    depth = 0
    max_depth = 0
    errors = 0
    words = 0
    for token in _PARSER_TOKENS:
        if token == 0:
            depth += 1
            if depth > max_depth:
                max_depth = depth
        elif token == 1:
            if depth == 0:
                errors += 1
            else:
                depth -= 1
        elif token == 2:
            words += 1
    return [max_depth, errors, words, depth]


_PARSER_SOURCE = f"""
    .data
tokens:
{words_directive(_PARSER_TOKENS)}
    .text
main:
    la a0, tokens
    li t0, 0            # i
    li t1, {_PARSER_N}
    li s0, 0            # depth
    li s1, 0            # maxdepth
    li s2, 0            # errors
    li s3, 0            # words
loop:
    bge t0, t1, done
    slli t2, t0, 2
    add t2, a0, t2
    lw t3, 0(t2)        # token
    li t4, 0
    bne t3, t4, notopen
    addi s0, s0, 1
    ble s0, s1, next
    mv s1, s0
    j next
notopen:
    li t4, 1
    bne t3, t4, notclose
    bne s0, zero, dec
    addi s2, s2, 1
    j next
dec:
    addi s0, s0, -1
    j next
notclose:
    li t4, 2
    bne t3, t4, next
    addi s3, s3, 1
next:
    addi t0, t0, 1
    j loop
done:
    out s1
    out s2
    out s3
    out s0
    halt
"""


# --------------------------------------------------------------------------- gcc
def _gcc_build_program() -> list[int]:
    operands = [v % 50 + 1 for v in lcg_sequence(24, seed=61)]
    sequence: list[int] = []
    for k in range(12):
        sequence.append(operands[2 * k])
        sequence.append(operands[2 * k + 1])
        sequence.append(200 + (k % 3))
    # Reduce the 12 intermediate values to one.
    sequence.extend([200] * 11)
    return sequence


_GCC_PROGRAM = _gcc_build_program()


def _gcc_reference() -> list[int]:
    stack: list[int] = []
    for token in _GCC_PROGRAM:
        if token < 200:
            stack.append(token)
        else:
            b = stack.pop()
            a = stack.pop()
            if token == 200:
                value = (a + b) & 0xFFFF
            elif token == 201:
                value = (a - b) & 0xFFFF
            else:
                value = (a * b) & 0xFFFF
            stack.append(value)
    return [stack[-1], len(stack)]


_GCC_SOURCE = f"""
    .data
prog:
{words_directive(_GCC_PROGRAM)}
stk:
    .space 40
    .text
main:
    la a0, prog
    la a1, stk
    li s0, 0              # stack pointer (index)
    li t0, 0              # i
    li t1, {len(_GCC_PROGRAM)}
loop:
    bge t0, t1, done
    slli t2, t0, 2
    add t2, a0, t2
    lw t3, 0(t2)          # token
    li t4, 200
    bge t3, t4, operator
    # push operand
    slli t5, s0, 2
    add t5, a1, t5
    sw t3, 0(t5)
    addi s0, s0, 1
    j next
operator:
    addi s0, s0, -1
    slli t5, s0, 2
    add t5, a1, t5
    lw t6, 0(t5)          # b
    addi s0, s0, -1
    slli t5, s0, 2
    add t5, a1, t5
    lw s2, 0(t5)          # a
    li t4, 200
    bne t3, t4, trysub
    add s3, s2, t6
    j store
trysub:
    li t4, 201
    bne t3, t4, trymul
    sub s3, s2, t6
    j store
trymul:
    mul s3, s2, t6
store:
    li t4, 0xFFFF
    and s3, s3, t4
    slli t5, s0, 2
    add t5, a1, t5
    sw s3, 0(t5)
    addi s0, s0, 1
next:
    addi t0, t0, 1
    j loop
done:
    addi t5, s0, -1
    slli t5, t5, 2
    add t5, a1, t5
    lw t6, 0(t5)
    out t6
    out s0
    halt
"""


# --------------------------------------------------------------------------- gap
_GAP_N = 16
_GAP_PERM = [(5 * i + 3) % _GAP_N for i in range(_GAP_N)]  # a fixed permutation
_GAP_VEC = [v % 100 for v in lcg_sequence(_GAP_N, seed=71)]
_GAP_ITERATIONS = 5


def _gap_reference() -> list[int]:
    vec = list(_GAP_VEC)
    for _ in range(_GAP_ITERATIONS):
        vec = [vec[_GAP_PERM[i]] for i in range(_GAP_N)]
    checksum = sum(vec[i] * (i + 1) for i in range(_GAP_N))
    return [checksum, vec[0]]


_GAP_SOURCE = f"""
    .data
perm:
{words_directive(_GAP_PERM)}
vec:
{words_directive(_GAP_VEC)}
tmp:
    .space {_GAP_N}
    .text
main:
    la a0, perm
    la a1, vec
    la a2, tmp
    li s0, 0                 # iteration
    li s1, {_GAP_ITERATIONS}
iterloop:
    bge s0, s1, checksum
    li t0, 0
    li t1, {_GAP_N}
permloop:
    bge t0, t1, copyback
    slli t2, t0, 2
    add t2, a0, t2
    lw t3, 0(t2)             # perm[i]
    slli t3, t3, 2
    add t3, a1, t3
    lw t4, 0(t3)             # vec[perm[i]]
    slli t5, t0, 2
    add t5, a2, t5
    sw t4, 0(t5)             # tmp[i] = ...
    addi t0, t0, 1
    j permloop
copyback:
    li t0, 0
cploop:
    bge t0, t1, iternext
    slli t2, t0, 2
    add t3, a2, t2
    lw t4, 0(t3)
    add t5, a1, t2
    sw t4, 0(t5)
    addi t0, t0, 1
    j cploop
iternext:
    addi s0, s0, 1
    j iterloop
checksum:
    li t0, 0
    li t1, {_GAP_N}
    li s2, 0
csloop:
    bge t0, t1, done
    slli t2, t0, 2
    add t2, a1, t2
    lw t3, 0(t2)
    addi t4, t0, 1
    mul t3, t3, t4
    add s2, s2, t3
    addi t0, t0, 1
    j csloop
done:
    out s2
    lw t3, 0(a1)
    out t3
    halt
"""


# --------------------------------------------------------------------------- vortex
_VORTEX_KEYS = [v % 199 + 1 for v in lcg_sequence(24, seed=83)]
_VORTEX_TABLE_SIZE = 32


def _vortex_reference() -> list[int]:
    table = [0] * _VORTEX_TABLE_SIZE
    collisions = 0
    probes = 0
    for key in _VORTEX_KEYS:
        slot = (key * 7) % _VORTEX_TABLE_SIZE
        while table[slot] != 0:
            slot = (slot + 1) % _VORTEX_TABLE_SIZE
            collisions += 1
        table[slot] = key
    for key in _VORTEX_KEYS:
        slot = (key * 7) % _VORTEX_TABLE_SIZE
        while table[slot] != key:
            slot = (slot + 1) % _VORTEX_TABLE_SIZE
            probes += 1
    return [collisions, probes]


_VORTEX_SOURCE = f"""
    .data
keys:
{words_directive(_VORTEX_KEYS)}
table:
    .space {_VORTEX_TABLE_SIZE}
    .text
main:
    la a0, keys
    la a1, table
    li s0, 0                # collisions
    li s1, 0                # probes
    li t0, 0                # i
    li t1, {len(_VORTEX_KEYS)}
insloop:
    bge t0, t1, lookup
    slli t2, t0, 2
    add t2, a0, t2
    lw t3, 0(t2)            # key
    li t4, 7
    mul t4, t3, t4
    li t5, {_VORTEX_TABLE_SIZE - 1}
    and t4, t4, t5          # slot
probeins:
    slli t6, t4, 2
    add t6, a1, t6
    lw s2, 0(t6)
    beq s2, zero, doins
    addi t4, t4, 1
    and t4, t4, t5
    addi s0, s0, 1
    j probeins
doins:
    sw t3, 0(t6)
    addi t0, t0, 1
    j insloop
lookup:
    li t0, 0
lkloop:
    bge t0, t1, done
    slli t2, t0, 2
    add t2, a0, t2
    lw t3, 0(t2)            # key
    li t4, 7
    mul t4, t3, t4
    li t5, {_VORTEX_TABLE_SIZE - 1}
    and t4, t4, t5
probelk:
    slli t6, t4, 2
    add t6, a1, t6
    lw s2, 0(t6)
    beq s2, t3, foundlk
    addi t4, t4, 1
    and t4, t4, t5
    addi s1, s1, 1
    j probelk
foundlk:
    addi t0, t0, 1
    j lkloop
done:
    out s0
    out s1
    halt
"""


# --------------------------------------------------------------------------- twolf
_TWOLF_CELLS = 16
_TWOLF_POS = [v % 64 for v in lcg_sequence(_TWOLF_CELLS, seed=97)]
_TWOLF_NETS = [(v % _TWOLF_CELLS, (v * 7 + 3) % _TWOLF_CELLS)
               for v in lcg_sequence(12, seed=101)]


def _twolf_cost(pos: list[int]) -> int:
    return sum(abs(pos[a] - pos[b]) for a, b in _TWOLF_NETS)


def _twolf_reference() -> list[int]:
    pos = list(_TWOLF_POS)
    initial = _twolf_cost(pos)
    cost = initial
    for k in range(_TWOLF_CELLS - 1):
        pos[k], pos[k + 1] = pos[k + 1], pos[k]
        new_cost = _twolf_cost(pos)
        if new_cost < cost:
            cost = new_cost
        else:
            pos[k], pos[k + 1] = pos[k + 1], pos[k]
    return [initial, cost]


_TWOLF_NET_WORDS = [value for net in _TWOLF_NETS for value in net]
_TWOLF_SOURCE = f"""
    .data
pos:
{words_directive(_TWOLF_POS)}
nets:
{words_directive(_TWOLF_NET_WORDS)}
    .text
main:
    la a0, pos
    la a1, nets
    call cost
    mv s4, a2               # initial cost
    mv s5, a2               # best cost
    li s6, 0                 # k
    li s7, {_TWOLF_CELLS - 1}
swaploop:
    bge s6, s7, finish
    # swap pos[k], pos[k+1]
    slli t0, s6, 2
    add t0, a0, t0
    lw t1, 0(t0)
    lw t2, 4(t0)
    sw t2, 0(t0)
    sw t1, 4(t0)
    call cost
    bge a2, s5, revert
    mv s5, a2
    j nextk
revert:
    slli t0, s6, 2
    add t0, a0, t0
    lw t1, 0(t0)
    lw t2, 4(t0)
    sw t2, 0(t0)
    sw t1, 4(t0)
nextk:
    addi s6, s6, 1
    j swaploop
finish:
    out s4
    out s5
    halt

# cost(): a2 = sum over nets of |pos[a]-pos[b]|  (clobbers t0..t6)
cost:
    li a2, 0
    li t0, 0
    li t1, {len(_TWOLF_NETS)}
costloop:
    bge t0, t1, costdone
    slli t2, t0, 3           # 8 bytes per net
    add t2, a1, t2
    lw t3, 0(t2)             # a
    lw t4, 4(t2)             # b
    slli t3, t3, 2
    add t3, a0, t3
    lw t3, 0(t3)             # pos[a]
    slli t4, t4, 2
    add t4, a0, t4
    lw t4, 0(t4)             # pos[b]
    sub t5, t3, t4
    bge t5, zero, posd
    sub t5, t4, t3
posd:
    add a2, a2, t5
    addi t0, t0, 1
    j costloop
costdone:
    ret
"""


# --------------------------------------------------------------------------- perlbmk
_PERL_N = 48
_PERL_TEXT = [v % 26 for v in lcg_sequence(_PERL_N, seed=113)]
_PERL_VOWELS = (0, 4, 8, 14, 20)


def _perlbmk_reference() -> list[int]:
    digest = 0
    vowels = 0
    for c in _PERL_TEXT:
        digest = (digest * 31 + c) & 0xFFFFFF
        if c in _PERL_VOWELS:
            vowels += 1
    return [digest, vowels]


_PERL_SOURCE = f"""
    .data
text:
{words_directive(_PERL_TEXT)}
    .text
main:
    la a0, text
    li t0, 0            # i
    li t1, {_PERL_N}
    li s0, 0            # hash
    li s1, 0            # vowels
loop:
    bge t0, t1, done
    slli t2, t0, 2
    add t2, a0, t2
    lw t3, 0(t2)        # c
    li t4, 31
    mul s0, s0, t4
    add s0, s0, t3
    li t4, 0xFFFFFF
    and s0, s0, t4
    li t4, 0
    beq t3, t4, vowel
    li t4, 4
    beq t3, t4, vowel
    li t4, 8
    beq t3, t4, vowel
    li t4, 14
    beq t3, t4, vowel
    li t4, 20
    beq t3, t4, vowel
    j next
vowel:
    addi s1, s1, 1
next:
    addi t0, t0, 1
    j loop
done:
    out s0
    out s1
    halt
"""


# --------------------------------------------------------------------------- vpr
_VPR_CELLS = 16
_VPR_X = [v % 32 for v in lcg_sequence(_VPR_CELLS, seed=127)]
_VPR_Y = [v % 32 for v in lcg_sequence(_VPR_CELLS, seed=131)]
_VPR_NETS = [(v % _VPR_CELLS, (v * 5 + 1) % _VPR_CELLS)
             for v in lcg_sequence(12, seed=137)]


def _vpr_reference() -> list[int]:
    total = 0
    longest = 0
    for a, b in _VPR_NETS:
        distance = abs(_VPR_X[a] - _VPR_X[b]) + abs(_VPR_Y[a] - _VPR_Y[b])
        total += distance
        if distance > longest:
            longest = distance
    return [total, longest]


_VPR_NET_WORDS = [value for net in _VPR_NETS for value in net]
_VPR_SOURCE = f"""
    .data
xs:
{words_directive(_VPR_X)}
ys:
{words_directive(_VPR_Y)}
nets:
{words_directive(_VPR_NET_WORDS)}
    .text
main:
    la a0, xs
    la a1, ys
    la a3, nets
    li s0, 0             # total
    li s1, 0             # longest
    li t0, 0             # net index
    li t1, {len(_VPR_NETS)}
loop:
    bge t0, t1, done
    slli t2, t0, 3
    add t2, a3, t2
    lw t3, 0(t2)         # a
    lw t4, 4(t2)         # b
    slli t5, t3, 2
    add t5, a0, t5
    lw t5, 0(t5)         # x[a]
    slli t6, t4, 2
    add t6, a0, t6
    lw t6, 0(t6)         # x[b]
    sub s2, t5, t6
    bge s2, zero, xd
    sub s2, t6, t5
xd:
    slli t5, t3, 2
    add t5, a1, t5
    lw t5, 0(t5)         # y[a]
    slli t6, t4, 2
    add t6, a1, t6
    lw t6, 0(t6)         # y[b]
    sub s3, t5, t6
    bge s3, zero, yd
    sub s3, t6, t5
yd:
    add s2, s2, s3       # manhattan distance
    add s0, s0, s2
    ble s2, s1, next
    mv s1, s2
next:
    addi t0, t0, 1
    j loop
done:
    out s0
    out s1
    halt
"""


def build_spec_workloads() -> list[Workload]:
    """Construct the eleven SPEC-class workloads."""
    definitions = [
        ("bzip2", _BZIP2_SOURCE, _bzip2_reference,
         "run-length compression of a byte stream"),
        ("crafty", _CRAFTY_SOURCE, _crafty_reference,
         "board material and mobility evaluation"),
        ("gzip", _GZIP_SOURCE, _gzip_reference,
         "sliding-window longest-match search"),
        ("mcf", _MCF_SOURCE, _mcf_reference,
         "Bellman-Ford relaxation over a flow network"),
        ("parser", _PARSER_SOURCE, _parser_reference,
         "token stream parsing with nesting checks"),
        ("gcc", _GCC_SOURCE, _gcc_reference,
         "postfix expression evaluation with an operand stack"),
        ("gap", _GAP_SOURCE, _gap_reference,
         "repeated permutation application (group operation)"),
        ("vortex", _VORTEX_SOURCE, _vortex_reference,
         "hash-table build and probe (database index)"),
        ("twolf", _TWOLF_SOURCE, _twolf_reference,
         "placement cost optimisation by local swaps"),
        ("perlbmk", _PERL_SOURCE, _perlbmk_reference,
         "string hashing and character classification"),
        ("vpr", _VPR_SOURCE, _vpr_reference,
         "Manhattan wirelength estimation for routing"),
    ]
    workloads = []
    for name, source, reference, description in definitions:
        workloads.append(Workload(
            name=name,
            suite=WorkloadClass.SPEC,
            source=source,
            reference=reference,
            ooo_compatible=name not in _NOT_ON_OOO,
            description=description,
        ))
    return workloads
