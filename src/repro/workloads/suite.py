"""The benchmark suite used for reliability analysis.

Provides registry-style access to the 18 workloads (11 SPEC-class + 7
PERFECT-class) and the per-core sub-suites matching the paper's footnote 3
(the OoO RTL model could only run 8 SPEC + 3 PERFECT benchmarks).
"""

from __future__ import annotations

from functools import lru_cache

from repro.workloads.base import AbftSupport, Workload, WorkloadClass
from repro.workloads.perfect import build_perfect_workloads
from repro.workloads.spec import build_spec_workloads


@lru_cache(maxsize=1)
def _all_workloads() -> tuple[Workload, ...]:
    return tuple(build_spec_workloads() + build_perfect_workloads())


def full_suite() -> list[Workload]:
    """All 18 workloads in suite order (SPEC first, PERFECT second)."""
    return list(_all_workloads())


def workload_by_name(name: str) -> Workload:
    """Look a workload up by name.

    Raises:
        KeyError: if no workload with that name exists.
    """
    for workload in _all_workloads():
        if workload.name == name:
            return workload
    raise KeyError(f"unknown workload: {name!r}")


def spec_suite() -> list[Workload]:
    """The eleven SPEC-class workloads."""
    return [w for w in _all_workloads() if w.suite is WorkloadClass.SPEC]


def perfect_suite() -> list[Workload]:
    """The seven PERFECT-class workloads."""
    return [w for w in _all_workloads() if w.suite is WorkloadClass.PERFECT]


def suite_for_core(core_name: str) -> list[Workload]:
    """Workloads runnable on a given core.

    The in-order core runs the full suite; the out-of-order core runs the
    reduced 8 SPEC + 3 PERFECT subset, as in the paper.
    """
    if "ooo" in core_name.lower() or "out" in core_name.lower():
        return [w for w in _all_workloads() if w.ooo_compatible]
    return list(_all_workloads())


def abft_correction_suite() -> list[Workload]:
    """Workloads whose algorithm admits ABFT correction."""
    return [w for w in _all_workloads() if w.abft is AbftSupport.CORRECTION]


def abft_detection_suite() -> list[Workload]:
    """Workloads whose algorithm admits ABFT detection (but not correction)."""
    return [w for w in _all_workloads() if w.abft is AbftSupport.DETECTION]
