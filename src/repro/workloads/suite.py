"""Workload registry and suite-level accessors.

Two kinds of workload sources live here:

* **Static suites** -- fixed benchmark lists registered once at import time.
  The paper's 18 benchmarks (11 SPEC-class + 7 PERFECT-class) are registered
  as the ``"spec"`` and ``"perfect"`` suites and together form
  :func:`full_suite`; per-core sub-suites follow the paper's footnote 3 (the
  OoO RTL model could only run 8 SPEC + 3 PERFECT benchmarks).
* **Workload families** -- parameterized generators (seed, member count,
  profile overrides) producing unbounded sets of workloads.  The synthetic
  scenario families of :mod:`repro.workloads.synthesis` register themselves
  here, so campaign drivers can enumerate and build them uniformly.

Name lookup is O(1) through a cached name index rebuilt whenever a new suite
is registered.
"""

from __future__ import annotations

from typing import Callable, Sequence

from repro.microarch.core import BaseCore, CoreClass
from repro.workloads.base import AbftSupport, Workload
from repro.workloads.perfect import build_perfect_workloads
from repro.workloads.spec import build_spec_workloads

SuiteBuilder = Callable[[], Sequence[Workload]]
"""Zero-argument builder returning the workloads of a static suite."""

FamilyBuilder = Callable[..., Sequence[Workload]]
"""Family builder with signature ``(seed, count, **overrides)``."""

_SUITES: dict[str, SuiteBuilder] = {}
_SUITE_CACHE: dict[str, tuple[Workload, ...]] = {}
_IN_FULL_SUITE: list[str] = []
_FAMILIES: dict[str, FamilyBuilder] = {}
_NAME_INDEX: dict[str, Workload] | None = None


# ---------------------------------------------------------------------- registry
def register_suite(name: str, builder: SuiteBuilder,
                   in_full_suite: bool = False) -> None:
    """Register a static workload suite under ``name``.

    ``in_full_suite`` adds the suite's workloads to :func:`full_suite` (and
    the per-core sub-suites); registration invalidates the name index so
    :func:`workload_by_name` sees the new workloads.

    Raises:
        ValueError: if ``name`` is already registered.
    """
    global _NAME_INDEX
    if name in _SUITES:
        raise ValueError(f"suite {name!r} is already registered")
    _SUITES[name] = builder
    if in_full_suite:
        _IN_FULL_SUITE.append(name)
    _NAME_INDEX = None


def register_family(name: str, builder: FamilyBuilder) -> None:
    """Register a parameterized workload family under ``name``.

    The built-in families are loaded first, so user registrations can never
    race them (which keeps ``family_names()`` order -- and therefore derived
    sweep seeds -- stable) and name collisions are detected immediately.
    During the built-in load itself the synthesis module is mid-import and
    the ensure call is a no-op.

    Raises:
        ValueError: if ``name`` is already registered.
    """
    _ensure_families_loaded()
    if name in _FAMILIES:
        raise ValueError(f"workload family {name!r} is already registered")
    _FAMILIES[name] = builder


def suite_names() -> list[str]:
    """Names of all registered static suites, in registration order."""
    return list(_SUITES)


def family_names() -> list[str]:
    """Names of all registered workload families, in registration order."""
    _ensure_families_loaded()
    return list(_FAMILIES)


def suite_workloads(name: str) -> list[Workload]:
    """The workloads of a registered static suite.

    (Named ``suite_workloads`` rather than ``suite`` so the accessor can be
    exported from :mod:`repro.workloads` without shadowing this submodule.)

    Raises:
        KeyError: if no suite with that name is registered.
    """
    if name not in _SUITES:
        raise KeyError(f"unknown suite: {name!r} (registered: {suite_names()})")
    if name not in _SUITE_CACHE:
        _SUITE_CACHE[name] = tuple(_SUITES[name]())
    return list(_SUITE_CACHE[name])


def build_family(name: str, seed: int = 2016, count: int = 4,
                 **overrides) -> list[Workload]:
    """Build ``count`` members of a registered family from ``seed``.

    ``overrides`` are forwarded to the family builder (synthetic families
    accept :class:`~repro.workloads.synthesis.profile.WorkloadProfile` field
    overrides such as ``target_cycles``).

    Raises:
        KeyError: if no family with that name is registered.
    """
    _ensure_families_loaded()
    if name not in _FAMILIES:
        raise KeyError(f"unknown workload family: {name!r} "
                       f"(registered: {family_names()})")
    return list(_FAMILIES[name](seed=seed, count=count, **overrides))


def _ensure_families_loaded() -> None:
    # The synthesis package registers its scenario families at import time;
    # import it lazily so suite lookup does not pay for generator machinery.
    import repro.workloads.synthesis  # noqa: F401  (registration side effect)


def _all_workloads() -> tuple[Workload, ...]:
    return tuple(w for name in _IN_FULL_SUITE for w in suite_workloads(name))


def _name_index() -> dict[str, Workload]:
    global _NAME_INDEX
    if _NAME_INDEX is None:
        index: dict[str, Workload] = {}
        for suite_name in _SUITES:
            for workload in suite_workloads(suite_name):
                if workload.name in index:
                    raise ValueError(f"duplicate workload name {workload.name!r} "
                                     f"registered by suite {suite_name!r}")
                index[workload.name] = workload
        _NAME_INDEX = index
    return _NAME_INDEX


# ---------------------------------------------------------------------- accessors
def full_suite() -> list[Workload]:
    """All 18 paper workloads in suite order (SPEC first, PERFECT second)."""
    return list(_all_workloads())


def workload_by_name(name: str) -> Workload:
    """Look a workload up by name (O(1) through the cached name index).

    Raises:
        KeyError: if no workload with that name exists.
    """
    try:
        return _name_index()[name]
    except KeyError:
        raise KeyError(f"unknown workload: {name!r}") from None


def spec_suite() -> list[Workload]:
    """The eleven SPEC-class workloads."""
    return suite_workloads("spec")


def perfect_suite() -> list[Workload]:
    """The seven PERFECT-class workloads."""
    return suite_workloads("perfect")


def synthetic_suite(seed: int = 2016, per_family: int = 4,
                    **overrides) -> list[Workload]:
    """One seeded synthetic suite: ``per_family`` members of every family.

    With the five built-in scenario families and the default ``per_family``
    this yields a 20-workload suite; family ``i`` derives its members from
    ``seed`` so the whole suite is reproducible from one integer.
    """
    workloads: list[Workload] = []
    for name in family_names():
        workloads.extend(build_family(name, seed=seed, count=per_family,
                                      **overrides))
    return workloads


_CORE_NAME_TO_CLASS = {
    "ino-core": CoreClass.IN_ORDER,
    "ooo-core": CoreClass.OUT_OF_ORDER,
}
"""Default core names, kept for string-based lookups from old call sites."""


def suite_for_core(core: BaseCore | CoreClass | str) -> list[Workload]:
    """Workloads runnable on a given core.

    The in-order core runs the full suite; the out-of-order core runs the
    reduced 8 SPEC + 3 PERFECT subset, as in the paper.  ``core`` may be a
    :class:`~repro.microarch.core.BaseCore` instance (preferred -- its
    ``core_class`` attribute decides), a :class:`CoreClass`, or one of the
    default core names (``"InO-core"``/``"OoO-core"``).

    Raises:
        KeyError: for an unrecognised core name string.
    """
    if isinstance(core, BaseCore):
        core_class = core.core_class
    elif isinstance(core, CoreClass):
        core_class = core
    else:
        try:
            core_class = _CORE_NAME_TO_CLASS[core.lower()]
        except KeyError:
            raise KeyError(
                f"unknown core name {core!r}; pass the core object (or a "
                f"CoreClass) for cores with custom names") from None
    if core_class is CoreClass.OUT_OF_ORDER:
        return [w for w in _all_workloads() if w.ooo_compatible]
    return list(_all_workloads())


def abft_correction_suite() -> list[Workload]:
    """Workloads whose algorithm admits ABFT correction."""
    return [w for w in _all_workloads() if w.abft is AbftSupport.CORRECTION]


def abft_detection_suite() -> list[Workload]:
    """Workloads whose algorithm admits ABFT detection (but not correction)."""
    return [w for w in _all_workloads() if w.abft is AbftSupport.DETECTION]


register_suite("spec", build_spec_workloads, in_full_suite=True)
register_suite("perfect", build_perfect_workloads, in_full_suite=True)
