"""Workload infrastructure: definitions, data generation and golden outputs.

The paper evaluates 18 full-length benchmarks (SPECINT2000 plus DARPA
PERFECT kernels).  Our reproduction provides 18 self-contained programs with
the same *roles*: eleven control/integer-heavy "SPEC-class" programs and
seven signal/image-processing "PERFECT-class" kernels, three of which are
amenable to ABFT correction (2d_convolution, debayer_filter, inner_product)
and the rest to ABFT detection -- mirroring Sec. 3.2 of the paper.

Every workload carries:

* the assembly source of the baseline program,
* optional ABFT-correction / ABFT-detection variants (used by
  :mod:`repro.resilience.algorithm`),
* a pure-Python reference model that computes the expected output stream,
  which doubles as a correctness oracle for the core models.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum, unique
from typing import Callable

from repro.isa import Program, assemble


@unique
class WorkloadClass(Enum):
    """Which suite a workload stands in for."""

    SPEC = "spec"
    PERFECT = "perfect"
    SYNTHETIC = "synthetic"


@unique
class AbftSupport(Enum):
    """Which ABFT flavour (if any) the workload's algorithm admits."""

    NONE = "none"
    CORRECTION = "correction"
    DETECTION = "detection"


def lcg_sequence(count: int, seed: int = 2016, modulus: int = 256) -> list[int]:
    """Deterministic pseudo-random data used to fill workload inputs.

    A small linear congruential generator; the same constants are used by the
    assembly-side data sections (values are baked in at assembly time) and by
    the Python reference models, so both operate on identical inputs.
    """
    values = []
    state = seed & 0x7FFFFFFF
    for _ in range(count):
        state = (1103515245 * state + 12345) & 0x7FFFFFFF
        values.append(state % modulus)
    return values


@dataclass
class Workload:
    """A single benchmark program plus its reference model.

    Attributes:
        name: benchmark name (``"bzip2"``, ``"2d_convolution"``, ...).
        suite: SPEC-class or PERFECT-class.
        source: baseline assembly text.
        reference: callable returning the expected output stream.
        abft: which ABFT flavour the underlying algorithm admits.
        abft_source: assembly of the ABFT-protected variant (when ``abft`` is
            not NONE); produces the same output stream as the baseline on
            error-free runs.
        ooo_compatible: False for workloads the paper could not run on the
            OoO RTL model (footnote 3); we reproduce the same restriction so
            per-core benchmark counts match (11+7 for InO, 8+3 for OoO).
        description: one-line description of the modelled application.
    """

    name: str
    suite: WorkloadClass
    source: str
    reference: Callable[[], list[int]]
    abft: AbftSupport = AbftSupport.NONE
    abft_source: str | None = None
    ooo_compatible: bool = True
    description: str = ""
    _program_cache: dict[str, Program] = field(default_factory=dict, repr=False)

    def program(self) -> Program:
        """Assemble (and cache) the baseline program."""
        if "base" not in self._program_cache:
            program = assemble(self.source, name=self.name)
            program.expected_output = self.reference()
            self._program_cache["base"] = program
        return self._program_cache["base"]

    def abft_program(self) -> Program:
        """Assemble (and cache) the ABFT-protected variant.

        Raises:
            ValueError: if the workload has no ABFT variant.
        """
        if self.abft is AbftSupport.NONE or self.abft_source is None:
            raise ValueError(f"workload {self.name!r} has no ABFT variant")
        if "abft" not in self._program_cache:
            program = assemble(self.abft_source, name=f"{self.name}_abft")
            program.expected_output = self.reference()
            self._program_cache["abft"] = program
        return self._program_cache["abft"]

    def expected_output(self) -> list[int]:
        """Golden output stream from the Python reference model."""
        return self.reference()


def words_directive(values: list[int], per_line: int = 12) -> str:
    """Render a list of integers as ``.word`` directives."""
    lines = []
    for start in range(0, len(values), per_line):
        chunk = values[start:start + per_line]
        lines.append("    .word " + ", ".join(str(v) for v in chunk))
    return "\n".join(lines)
