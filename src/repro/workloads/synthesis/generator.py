"""Constrained-random program synthesis.

:class:`ProgramSynthesizer` turns a (:class:`WorkloadProfile`, seed) pair
into one valid assembly program.  The construction is *structured*, not
free-form instruction soup, so every generated program is correct by
construction:

* the skeleton is a counted loop nest (depth and trip counts derived from the
  profile's cycle budget) over an LCG-filled data section;
* loop bodies are drawn from four operation classes -- arithmetic, memory,
  data-dependent forward branches, shifts -- with relative frequencies given
  by the profile's instruction mix;
* every operation folds its result into one of four checksum accumulator
  registers, loop counters are folded each iteration, and an epilogue reduces
  the whole data section into a final checksum before emitting all
  accumulators via ``out`` -- so stores, address computations and control
  flow all feed the output stream and injected bit-flips stay observable;
* memory indices are masked into the (power-of-two sized) data section, shift
  amounts are bounded, and ``div``/``rem`` are never drawn, so no generated
  program can trap.

Termination is guaranteed because loop counters and bounds live in reserved
registers that body operations only read, and every generated branch is a
forward skip within one body.

The generator is deterministic: the same profile and seed produce the same
source text (and therefore identical program bytes and golden output) on any
platform and in any process -- a property the parallel injection engine's
bit-exactness guarantee builds on.
"""

from __future__ import annotations

import random
import zlib
from dataclasses import dataclass

from repro.workloads.base import lcg_sequence, words_directive
from repro.workloads.synthesis.profile import (
    EPILOGUE_INSTRUCTIONS_PER_WORD,
    ESTIMATED_CPI,
    WorkloadProfile,
)

# Register allocation contract of generated programs.  Loop machinery owns
# its registers exclusively; body operations may read counters but write only
# accumulators and scratch.
DATA_POINTER = "a0"
LOOP_COUNTERS = ("t0", "t1", "t2")
LOOP_BOUNDS = ("a1", "a2", "a3")
ACCUMULATORS = ("s0", "s1", "s2", "s3")
SCRATCH = ("t3", "t4", "t5", "t6")
ADDRESS_TEMP = "s6"
VALUE_TEMP = "s7"

_MAX_OUTER_TRIPS = 4096
_MAX_INNER_TRIPS = 32768
"""Trip-count caps.  The innermost level carries most of the iteration
budget (outer levels are sized to the depth-th root), so it gets the larger
cap; together with ``MAX_TARGET_CYCLES`` these keep every generated program
well under the oracle simulator's instruction limit and the engine's
golden-run watchdog."""

_DATA_VALUE_MODULUS = 1 << 16


class SynthesisError(RuntimeError):
    """Raised when a generated program violates the construction invariants."""


@dataclass(frozen=True)
class GeneratedProgram:
    """The synthesizer's output: source text plus derived loop shape."""

    name: str
    source: str
    loop_trips: tuple[int, ...]
    body_operations: int


class ProgramSynthesizer:
    """Emits one assembly program for a (profile, seed) pair.

    ``cpi`` overrides the fixed :data:`ESTIMATED_CPI` used to size loop
    bounds against the profile's cycle budget; pass a measured value (see
    :mod:`repro.workloads.synthesis.calibration`) to hit the budget more
    accurately.  The RNG stream depends only on (profile, seed), so changing
    ``cpi`` rescales trip counts without re-rolling the loop body.
    """

    def __init__(self, profile: WorkloadProfile, seed: int = 2016,
                 cpi: float | None = None):
        self.profile = profile
        self.seed = seed
        self.cpi = ESTIMATED_CPI if cpi is None else cpi
        if self.cpi <= 0:
            raise ValueError(f"cpi must be positive, got {self.cpi}")

    def generate(self) -> GeneratedProgram:
        """Synthesize the program (deterministic in profile and seed)."""
        profile = self.profile
        # Mix the full profile name into the seed (crc32, not hash(): the
        # latter is randomized per process) so distinct families never share
        # an RNG stream even when generated from the same seed.
        rng = random.Random((self.seed * 1_000_003)
                            ^ zlib.crc32(profile.name.encode()))
        data = lcg_sequence(profile.data_words,
                            seed=rng.randrange(1, 1 << 31),
                            modulus=_DATA_VALUE_MODULUS)
        body, body_length = self._generate_body(rng)
        trips = self._loop_trips(body_length)
        lines: list[str] = ["    .data", "vals:", words_directive(data),
                            "    .text", "main:",
                            f"    la {DATA_POINTER}, vals"]
        for acc in ACCUMULATORS:
            lines.append(f"    li {acc}, {rng.randrange(_DATA_VALUE_MODULUS)}")
        for level, trip in enumerate(trips):
            lines.append(f"    li {LOOP_BOUNDS[level]}, {trip}")
        lines.extend(self._loop_nest(trips, body))
        lines.extend(self._epilogue())
        return GeneratedProgram(name=profile.name, source="\n".join(lines) + "\n",
                                loop_trips=trips, body_operations=len(body))

    # ------------------------------------------------------------------ structure
    def _loop_trips(self, body_length: int) -> tuple[int, ...]:
        """Trip counts sizing the nest to the profile's cycle budget."""
        profile = self.profile
        depth = profile.loop_depth
        # Per innermost iteration: the body, one counter fold per level, and
        # the innermost increment + back-branch.
        per_iteration = body_length + depth + 2
        # Fixed cost outside the nest: prologue (la + li expansions), the
        # data-section reduction epilogue, outs, halt.  Budgets below this
        # floor yield floor-sized programs (see WorkloadProfile.floor_cycles).
        fixed = (2 + 2 * len(ACCUMULATORS) + 2 * depth + 4
                 + EPILOGUE_INSTRUCTIONS_PER_WORD * profile.data_words
                 + len(ACCUMULATORS) + 1)
        target_instructions = max(
            float(per_iteration),
            profile.target_cycles / self.cpi - fixed)
        total = max(1, round(target_instructions / per_iteration))
        base = max(2, round(total ** (1.0 / depth)))
        trips = [min(base, _MAX_OUTER_TRIPS)] * (depth - 1)
        outer = 1
        for trip in trips:
            outer *= trip
        innermost = max(1, min(round(total / outer), _MAX_INNER_TRIPS))
        trips.append(innermost)
        return tuple(trips)

    def _loop_nest(self, trips: tuple[int, ...], body: list[str]) -> list[str]:
        depth = len(trips)
        lines: list[str] = []
        for level in range(depth):
            lines.append(f"    li {LOOP_COUNTERS[level]}, 0")
            lines.append(f"loop{level}:")
        lines.extend(body)
        # Fold every live loop counter into an accumulator so counter-register
        # corruption surfaces in the output stream, not only via control flow.
        for level in range(depth):
            lines.append(f"    add s1, s1, {LOOP_COUNTERS[level]}")
        for level in reversed(range(depth)):
            counter, bound = LOOP_COUNTERS[level], LOOP_BOUNDS[level]
            lines.append(f"    addi {counter}, {counter}, 1")
            lines.append(f"    blt {counter}, {bound}, loop{level}")
        return lines

    def _epilogue(self) -> list[str]:
        """Reduce the data section into s3, then emit every accumulator."""
        lines = [
            "    li t0, 0",
            f"    li a1, {self.profile.data_words}",
            "redloop:",
            f"    slli {ADDRESS_TEMP}, t0, 2",
            f"    add {ADDRESS_TEMP}, {DATA_POINTER}, {ADDRESS_TEMP}",
            f"    lw {VALUE_TEMP}, 0({ADDRESS_TEMP})",
            f"    add s3, s3, {VALUE_TEMP}",
            "    addi t0, t0, 1",
            "    blt t0, a1, redloop",
        ]
        lines.extend(f"    out {acc}" for acc in ACCUMULATORS)
        lines.append("    halt")
        return lines

    # ------------------------------------------------------------------ body
    def _generate_body(self, rng: random.Random) -> tuple[list[str], int]:
        """Draw the innermost loop body; returns (lines, instruction count)."""
        emitters = (self._op_arithmetic, self._op_memory, self._op_branch,
                    self._op_shift)
        weights = self.profile.mix.as_weights()
        lines: list[str] = []
        instructions = 0
        self._skip_labels = 0
        for _ in range(self.profile.ops_per_block):
            emit = rng.choices(emitters, weights=weights, k=1)[0]
            op_lines, op_count = emit(rng)
            lines.extend(op_lines)
            instructions += op_count
        return lines, instructions

    def _source_register(self, rng: random.Random) -> str:
        """A register safe to *read* in a body operation."""
        counters = LOOP_COUNTERS[:self.profile.loop_depth]
        pool = ACCUMULATORS + SCRATCH + counters
        return rng.choice(pool)

    def _op_arithmetic(self, rng: random.Random) -> tuple[list[str], int]:
        acc = rng.choice(ACCUMULATORS)
        variant = rng.randrange(4)
        if variant == 0:
            op = rng.choice(("add", "sub", "xor"))
            return [f"    {op} {acc}, {acc}, {self._source_register(rng)}"], 1
        if variant == 1:
            return [f"    addi {acc}, {acc}, {rng.randrange(-1024, 1025)}"], 1
        if variant == 2:
            scratch = rng.choice(SCRATCH)
            return [f"    mul {scratch}, {self._source_register(rng)}, "
                    f"{self._source_register(rng)}",
                    f"    add {acc}, {acc}, {scratch}"], 2
        scratch = rng.choice(SCRATCH)
        op = rng.choice(("and", "or"))
        return [f"    {op} {scratch}, {self._source_register(rng)}, "
                f"{self._source_register(rng)}",
                f"    xor {acc}, {acc}, {scratch}"], 2

    def _op_shift(self, rng: random.Random) -> tuple[list[str], int]:
        scratch = rng.choice(SCRATCH)
        acc = rng.choice(ACCUMULATORS)
        op = rng.choice(("slli", "srli", "srai"))
        amount = rng.randrange(1, 5)
        fold = rng.choice(("add", "xor"))
        return [f"    {op} {scratch}, {self._source_register(rng)}, {amount}",
                f"    {fold} {acc}, {acc}, {scratch}"], 2

    def _op_memory(self, rng: random.Random) -> tuple[list[str], int]:
        mask = self.profile.data_words - 1
        index = self._source_register(rng)
        lines = [f"    andi {ADDRESS_TEMP}, {index}, {mask}",
                 f"    slli {ADDRESS_TEMP}, {ADDRESS_TEMP}, 2",
                 f"    add {ADDRESS_TEMP}, {DATA_POINTER}, {ADDRESS_TEMP}"]
        if rng.random() < self.profile.store_fraction:
            lines.append(f"    sw {rng.choice(ACCUMULATORS)}, 0({ADDRESS_TEMP})")
        else:
            acc = rng.choice(ACCUMULATORS)
            fold = rng.choice(("add", "xor"))
            lines.append(f"    lw {VALUE_TEMP}, 0({ADDRESS_TEMP})")
            lines.append(f"    {fold} {acc}, {acc}, {VALUE_TEMP}")
        return lines, len(lines)

    def _op_branch(self, rng: random.Random) -> tuple[list[str], int]:
        """A data-dependent forward skip over one or two filler operations."""
        label = f"skip{self._skip_labels}"
        self._skip_labels += 1
        tested = self._source_register(rng)
        mask = rng.randrange(1, 8)
        branch = rng.choice(("beq", "bne"))
        lines = [f"    andi {VALUE_TEMP}, {tested}, {mask}",
                 f"    {branch} {VALUE_TEMP}, zero, {label}"]
        for _ in range(rng.randrange(1, 3)):
            acc = rng.choice(ACCUMULATORS)
            op = rng.choice(("add", "xor", "sub"))
            lines.append(f"    {op} {acc}, {acc}, {self._source_register(rng)}")
        lines.append(f"{label}:")
        return lines, len(lines) - 1
